
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/aig.cpp" "src/logic/CMakeFiles/cryo_logic.dir/aig.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/aig.cpp.o.d"
  "/root/repo/src/logic/aiger.cpp" "src/logic/CMakeFiles/cryo_logic.dir/aiger.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/aiger.cpp.o.d"
  "/root/repo/src/logic/blif.cpp" "src/logic/CMakeFiles/cryo_logic.dir/blif.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/blif.cpp.o.d"
  "/root/repo/src/logic/cuts.cpp" "src/logic/CMakeFiles/cryo_logic.dir/cuts.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/cuts.cpp.o.d"
  "/root/repo/src/logic/factor.cpp" "src/logic/CMakeFiles/cryo_logic.dir/factor.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/factor.cpp.o.d"
  "/root/repo/src/logic/simulate.cpp" "src/logic/CMakeFiles/cryo_logic.dir/simulate.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/simulate.cpp.o.d"
  "/root/repo/src/logic/tt.cpp" "src/logic/CMakeFiles/cryo_logic.dir/tt.cpp.o" "gcc" "src/logic/CMakeFiles/cryo_logic.dir/tt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
