#pragma once

#include <cstddef>
#include <vector>

namespace cryo::liberty {

/// Out-of-grid behaviour of NldmTable::lookup.
enum class LookupMode {
  /// Linear extrapolation from the edge cells (legacy default). Can
  /// produce negative delays/transitions/energies far off-grid.
  kExtrapolate,
  /// Clamp x1/x2 to the index range; off-grid queries return the edge
  /// value. This is what signoff uses.
  kClamp,
};

/// A non-linear delay model (NLDM) lookup table: values on a 2-D grid of
/// (index1 = input slew, index2 = output load), the industry-standard
/// table format cell libraries use for delay, output slew, and internal
/// energy. Lookup is bilinear inside the grid; outside it the behaviour
/// is selected by LookupMode (linear extrapolation or clamping).
class NldmTable {
public:
  NldmTable() = default;
  NldmTable(std::vector<double> index1, std::vector<double> index2,
            std::vector<double> values);

  double lookup(double x1, double x2,
                LookupMode mode = LookupMode::kExtrapolate) const;

  const std::vector<double>& index1() const { return index1_; }
  const std::vector<double>& index2() const { return index2_; }
  const std::vector<double>& values() const { return values_; }
  double value_at(std::size_t i, std::size_t j) const {
    return values_[i * index2_.size() + j];
  }

  bool empty() const { return values_.empty(); }

  /// Scalar "table" (single value, no axes) — used for constant arcs.
  static NldmTable scalar(double value);

private:
  std::vector<double> index1_;
  std::vector<double> index2_;
  std::vector<double> values_;
};

}  // namespace cryo::liberty
