# Empty compiler generated dependencies file for cryo_logic.
# This may be replaced when dependencies are built.
