#pragma once

#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cells/characterize.hpp"
#include "core/pipeline.hpp"
#include "liberty/library.hpp"
#include "logic/aig.hpp"
#include "map/matcher.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "util/budget.hpp"

namespace cryo::service {

/// Daemon configuration (`cryoeda serve` flags map onto this; tests
/// inject a cheap catalog and a temp lib dir).
struct ServeOptions {
  /// Job workers; 0 resolves via CRYOEDA_THREADS / the machine.
  int threads = 0;
  /// Directory of per-corner liberty caches (the one-shot CLI defaults
  /// to the same place, so daemon and CLI share characterized corners).
  std::string lib_dir = "cryoeda_out";
  /// Cell catalog to characterize; empty = cells::standard_catalog().
  std::vector<cells::CellSpec> catalog;
  /// Characterization defaults; `vdd` and `budget` are overridden per
  /// job (tests shrink the slew/load grids here).
  cells::CharOptions char_options;
  /// Longest accepted request line.
  std::size_t max_line = kMaxRequestLine;
};

/// The resident synthesis daemon behind `cryoeda serve`.
///
/// One server owns the long-lived expensive state every job shares:
///  * a characterized-corner map — (preset, engine, temp, vdd) ->
///    liberty library +
///    `map::CellMatcher`, built at most once per corner (concurrent
///    requesters wait on a shared future; a corner whose
///    characterization *failed* — e.g. the requesting job's budget
///    expired mid-SPICE — is evicted so a later job retries);
///  * a built-benchmark cache (generator AIGs are deterministic);
///  * the process-global `util::ArtifactCache` (scenario / pass /
///    characterization stages), warmed across jobs;
///  * a private `core::PassRegistry` copy that `load_plugin` requests
///    extend with composite passes (plugin passes are `cacheable =
///    false`, so their results never enter name-keyed caches).
///
/// Each job gets its own `util::Budget` (armed from `deadline_s`), its
/// own `service.job:<id>` obs span subtree, and full fault isolation:
/// any throw becomes a structured error reply carrying the `cryo::Error`
/// taxonomy (kind + the exit code the one-shot CLI would have returned)
/// while the daemon keeps serving.
///
/// Jobs run concurrently on the queue's thread pool, but replies are
/// emitted strictly in request order (the protocol is positional).
/// `load_plugin`, `stats`, and `shutdown` are barriers: all pending
/// jobs drain before the registry mutates / the snapshot is taken /
/// the session ends.
class Server {
public:
  explicit Server(ServeOptions options);

  /// Serve one NDJSON session: read requests from `in` line by line,
  /// write one reply line each to `out` (in request order). Returns the
  /// session exit code: 0 on EOF or a clean `shutdown` — per-job
  /// failures are replies, not session failures.
  int serve(std::istream& in, std::ostream& out);

  /// Same over raw file descriptors (socketpair / pipe clients). Does
  /// not close the descriptors.
  int serve_fd(int in_fd, int out_fd);

  /// Accept loop on an AF_UNIX stream socket (one connection at a
  /// time), until a client sends `shutdown`. Replaces any stale socket
  /// file at `path`. Throws cryo::Error{kIo} when the socket cannot be
  /// created or bound.
  int serve_unix(const std::string& path);

  /// True once a `shutdown` request was served.
  bool shutdown_requested() const { return shutdown_; }

  const core::PassRegistry& registry() const { return registry_; }

private:
  /// A characterized corner: the matcher points into `library`, so the
  /// two live (and are shared) together.
  struct Corner {
    liberty::Library library;
    std::optional<map::CellMatcher> matcher;
  };
  using CornerPtr = std::shared_ptr<const Corner>;

  void dispatch(const std::string& line, std::ostream& out);
  void flush(std::vector<util::Json> replies, std::ostream& out);

  util::Json run_job(const JobRequest& req);
  util::Json stats_reply(const std::string& id) const;
  util::Json load_plugin(const JobRequest& req);

  logic::Aig resolve_design(const JobRequest& req);
  /// Get or build the job's (preset, engine, temp, vdd) corner — keyed
  /// by the canonical library path, so two presets at the same
  /// temperature never share a matcher. `budget` bounds a cold build
  /// (characterization aborts with kBudget when it expires); `warm`
  /// reports whether the corner was already resident.
  CornerPtr corner(const JobRequest& req, util::Budget* budget, bool& warm);
  CornerPtr build_corner(const JobRequest& req, util::Budget* budget);

  ServeOptions options_;
  core::PassRegistry registry_;
  JobQueue queue_;
  bool shutdown_ = false;

  std::mutex bench_mutex_;
  std::map<std::string, logic::Aig> benches_;

  std::mutex corner_mutex_;
  std::map<std::string, std::shared_future<CornerPtr>> corners_;
};

}  // namespace cryo::service
