#pragma once

#include "device/measurement.hpp"

namespace cryo::device {

/// Result of calibrating the compact model against measurements.
struct CalibrationResult {
  FinFetParams params;        ///< extracted parameter set
  double rms_log_error = 0.0; ///< RMS of log10(I) residuals over all points
  double max_log_error = 0.0; ///< worst-case log10(I) residual
  int evaluations = 0;        ///< optimizer objective evaluations
};

/// Figure-of-merit comparison between model and measurement on one curve.
struct CurveError {
  double temperature_k = 0.0;
  double vds = 0.0;
  double rms_log_error = 0.0;
  double mean_rel_error = 0.0;  ///< mean |I_model - I_meas| / I_meas (above floor)
};

/// Fit the cryogenic-aware FinFET model to a measurement set.
///
/// This is the reproduction of the paper's §II-C: parameter extraction of
/// the cryogenic BSIM-CMG against the 5 nm FinFET data over the *entire*
/// temperature range (300 K → 10 K) simultaneously. The objective is the
/// sum of squared log10-current residuals (log scale so subthreshold and
/// ON-current regions carry comparable weight), minimized with
/// Nelder–Mead over {Vth300, n, Wt, mu0, theta, kvt, lambda, Ifloor}.
CalibrationResult calibrate(const MeasurementSet& measurements,
                            const FinFetParams& initial_guess,
                            int max_evaluations = 6000);

/// Per-curve (T, Vds) error report for a given parameter set — the data
/// behind the "lines vs dots" agreement of paper Fig. 1(b,c).
std::vector<CurveError> curve_errors(const FinFetParams& params,
                                     const MeasurementSet& measurements);

}  // namespace cryo::device
