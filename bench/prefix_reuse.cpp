// Prefix-reuse microbenchmark: how much wall time the per-pass artifact
// cache (core/pipeline.hpp, stage `core.pass`) saves between recipes
// that share a script prefix — the workload shape of the recipe-search
// driver, where every variant starts from the same compression passes.
//
// Three phases over a set of recipes that share the `c2rs; dch` prefix:
//   cold  — empty cache directory, every pass executes and stores;
//   warm  — same recipes again, the shared prefix restores from cache;
//   off   — pass cache disabled, the no-cache reference.
// Prints per-recipe wall times and the hit/miss counters, and asserts
// warm results match cold results exactly (the cache must be invisible
// in the figures).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"
#include "map/matcher.hpp"
#include "sta/sta.hpp"
#include "util/artifact_cache.hpp"
#include "util/table.hpp"

using namespace cryo;

namespace {

struct Figures {
  std::size_t gates = 0;
  double area = 0.0;
  double delay = 0.0;
  double power = 0.0;
};

Figures run_once(const logic::Aig& aig, const map::CellMatcher& matcher,
                 const std::string& recipe) {
  const auto result = core::synthesize_with_recipe(aig, matcher, {}, recipe);
  const auto signoff = sta::analyze(result.netlist, {});
  Figures figures;
  figures.gates = result.netlist.gate_count();
  figures.area = result.netlist.total_area();
  figures.delay = signoff.critical_delay;
  figures.power = signoff.power.total();
  return figures;
}

bool same(const Figures& a, const Figures& b) {
  return a.gates == b.gates && a.area == b.area && a.delay == b.delay &&
         a.power == b.power;
}

}  // namespace

int main() {
  std::printf("=== Prefix reuse: per-pass cache across recipe variants ===\n\n");
  const auto lib = bench::corner_library(10.0);
  const map::CellMatcher matcher{lib};
  logic::Aig design = epfl::make_dec(5);
  design.set_name("dec5");

  // The recipe-search shape: one shared compression prefix, divergent
  // LUT/map tails. Only the prefix is pass-cacheable (AIG-to-AIG).
  const std::vector<std::string> recipes{
      "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad",
      "c2rs; dch; if -K 6 -p pda; mfs; strash; map -p pda",
      "c2rs; dch; if -K 5 -p pad; mfs; strash; map -p pad",
      "c2rs; dch; if -K 4 -p baseline; strash; map -p baseline",
  };

  // A scratch cache root keeps the experiment self-contained: the cold
  // phase must not be warmed by a previous run or by the env cache.
  auto& cache = util::ArtifactCache::global();
  const auto saved = util::ArtifactCache::env_config();
  const auto root = bench::output_dir() / "prefix_reuse_cache";
  std::filesystem::remove_all(root);
  cache.configure({true, root, 256ull << 20});

  util::Table table{{"phase", "recipe", "wall [ms]"}};
  std::vector<Figures> cold, warm;
  double cold_s = 0.0, warm_s = 0.0, off_s = 0.0;
  for (const char* phase : {"cold", "warm", "off"}) {
    const bool off = std::string{phase} == "off";
    if (off) {
      cache.configure({false, root, 256ull << 20});
    }
    for (const auto& recipe : recipes) {
      util::ScopedTimer timer{std::string{phase} + " " + recipe,
                              /*log=*/false};
      const Figures figures = run_once(design, matcher, recipe);
      const double s = timer.elapsed_s();
      (off ? off_s : (std::string{phase} == "cold" ? cold_s : warm_s)) += s;
      (std::string{phase} == "cold" ? cold : warm).push_back(figures);
      table.add_row({phase, recipe, util::Table::num(s * 1e3, 2)});
    }
  }
  cache.configure(saved);

  table.write_csv(bench::csv_path("prefix_reuse.csv"));
  std::printf("%s\n", table.render().c_str());
  std::printf("totals: cold %.1f ms, warm %.1f ms, cache-off %.1f ms\n",
              cold_s * 1e3, warm_s * 1e3, off_s * 1e3);

  // `warm` accumulated both the warm and off phases (same figures
  // expected from all three); any divergence means the cache leaked
  // into the results.
  for (std::size_t i = 0; i < warm.size(); ++i) {
    if (!same(cold[i % cold.size()], warm[i])) {
      std::fprintf(stderr,
                   "FAIL: recipe %zu figures differ between phases — the "
                   "pass cache changed the result\n",
                   i % cold.size());
      return 1;
    }
  }
  std::printf("figures identical across cold/warm/off phases\n");
  bench::write_bench_report("prefix_reuse");
  return 0;
}
