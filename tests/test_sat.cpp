#include <gtest/gtest.h>

#include "logic/simulate.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "sat/sweep.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo::sat;

TEST(Solver, TrivialSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_TRUE(s.add_clause(mk_lit(a), mk_lit(b)));
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_TRUE(s.model_value(a) || s.model_value(b));

  Solver u;
  const Var x = u.new_var();
  u.add_clause(mk_lit(x));
  u.add_clause(mk_lit(x, true));
  EXPECT_EQ(u.solve(), Status::kUnsat);
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) {
    v.push_back(s.new_var());
  }
  s.add_clause(mk_lit(v[0]));
  for (int i = 0; i + 1 < 20; ++i) {
    s.add_clause(mk_lit(v[i], true), mk_lit(v[i + 1]));  // v[i] -> v[i+1]
  }
  EXPECT_EQ(s.solve(), Status::kSat);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(s.model_value(v[i]));
  }
}

TEST(Solver, Assumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), Status::kUnsat);
  EXPECT_EQ(s.solve({mk_lit(a)}), Status::kSat);
  EXPECT_TRUE(s.model_value(b));
  // The solver is reusable after assumption solves.
  EXPECT_EQ(s.solve({mk_lit(b, true)}), Status::kSat);
  EXPECT_FALSE(s.model_value(a));
}

/// Pigeonhole principle PHP(n+1, n): always UNSAT, needs real search.
TEST(Solver, PigeonholeUnsat) {
  const int holes = 5;
  const int pigeons = 6;
  Solver s;
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (auto& row : in) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(mk_lit(in[p][h]));
    }
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(mk_lit(in[p1][h], true), mk_lit(in[p2][h], true));
      }
    }
  }
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

/// Helper: encode PHP(pigeons, holes) into `s`.
void add_pigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (auto& row : in) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(mk_lit(in[p][h]));
    }
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(mk_lit(in[p1][h], true), mk_lit(in[p2][h], true));
      }
    }
  }
}

TEST(Solver, ClauseDatabaseReductionFiresAndStaysSound) {
  // Shrink the reduction schedule so a modest pigeonhole instance
  // triggers several reductions; UNSAT must still be proven (dropping
  // learnt clauses never loses soundness, only heuristic guidance).
  SolverConfig config;
  config.restart_base = 10;
  config.reduce_base = 50;
  config.reduce_inc = 25;
  Solver s{config};
  add_pigeonhole(s, 7, 6);
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_GT(s.last_stats().restarts, 0u);
  EXPECT_GT(s.last_stats().reduce_dbs, 0u);
  EXPECT_GT(s.last_stats().learnts_dropped, 0u);
}

TEST(Solver, ReductionPreservesModelsOnSatisfiableInstances) {
  // Random 3-SAT at a satisfiable ratio with an aggressive reduction
  // schedule: every returned model must actually satisfy the formula.
  SolverConfig config;
  config.restart_base = 8;
  config.reduce_base = 20;
  config.reduce_inc = 10;
  config.glue_lbd = 2;
  cryo::util::Rng rng{1234};
  for (int round = 0; round < 20; ++round) {
    Solver s{config};
    const int nvars = 30;
    for (int i = 0; i < nvars; ++i) {
      s.new_var();
    }
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 100; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(mk_lit(static_cast<Var>(rng.next_below(nvars)),
                                rng.next_bool()));
      }
      clauses.push_back(clause);
      s.add_clause(std::move(clause));
    }
    const Status status = s.solve();
    if (status != Status::kSat) {
      continue;  // rare at this ratio; UNSAT is checked elsewhere
    }
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        satisfied = satisfied || s.model_value_lit(l);
      }
      EXPECT_TRUE(satisfied);
    }
  }
}

TEST(Solver, DefaultConfigMatchesLegacyRestartCadence) {
  // The default restart base must stay at the tuned production value:
  // fig3's frozen counter baselines depend on it.
  EXPECT_EQ(SolverConfig{}.restart_base, 100);
  EXPECT_EQ(SolverConfig{}.glue_lbd, 2u);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard pigeonhole with a one-conflict budget.
  const int holes = 8;
  const int pigeons = 9;
  Solver s;
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (auto& row : in) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(mk_lit(in[p][h]));
    }
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(mk_lit(in[p1][h], true), mk_lit(in[p2][h], true));
      }
    }
  }
  EXPECT_EQ(s.solve({}, 1), Status::kUnknown);
}

/// Random 3-SAT instances cross-checked against brute force.
class Random3Sat : public ::testing::TestWithParam<int> {};

TEST_P(Random3Sat, AgreesWithBruteForce) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const int num_vars = 12;
  const int num_clauses = 50;

  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(mk_lit(static_cast<Var>(rng.next_below(num_vars)),
                              rng.next_bool()));
    }
    clauses.push_back(clause);
  }

  bool brute_sat = false;
  for (unsigned m = 0; m < (1u << num_vars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) {
        const bool val = ((m >> lit_var(l)) & 1u) != 0;
        any |= val != lit_sign(l);
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  for (int i = 0; i < num_vars; ++i) {
    s.new_var();
  }
  bool trivially_unsat = false;
  for (const auto& clause : clauses) {
    if (!s.add_clause(clause)) {
      trivially_unsat = true;
    }
  }
  const Status status = trivially_unsat ? Status::kUnsat : s.solve();
  EXPECT_EQ(status == Status::kSat, brute_sat) << "seed " << GetParam();
  if (status == Status::kSat) {
    // Verify the model actually satisfies every clause.
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) {
        any |= s.model_value_lit(l);
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat, ::testing::Range(1, 21));

// --------------------------------------------------------------- CNF ----

cryo::logic::Aig xor_chain(unsigned n) {
  cryo::logic::Aig aig;
  std::vector<cryo::logic::Lit> pis;
  for (unsigned i = 0; i < n; ++i) {
    pis.push_back(aig.add_pi());
  }
  cryo::logic::Lit acc = cryo::logic::kConst0;
  for (const auto pi : pis) {
    acc = aig.lxor(acc, pi);
  }
  aig.add_po(acc);
  return aig;
}

TEST(Cec, EquivalentStructuresProveEqual) {
  // XOR chain vs reversed-order XOR chain.
  cryo::logic::Aig a = xor_chain(8);
  cryo::logic::Aig b;
  {
    std::vector<cryo::logic::Lit> pis;
    for (int i = 0; i < 8; ++i) {
      pis.push_back(b.add_pi());
    }
    cryo::logic::Lit acc = cryo::logic::kConst0;
    for (int i = 7; i >= 0; --i) {
      acc = b.lxor(acc, pis[static_cast<std::size_t>(i)]);
    }
    b.add_po(acc);
  }
  const auto result = check_equivalence(a, b);
  EXPECT_TRUE(result.proven());
  EXPECT_TRUE(result.equivalent());
}

TEST(Cec, InequivalentGivesCounterexample) {
  cryo::logic::Aig a = xor_chain(4);
  cryo::logic::Aig b;
  {
    std::vector<cryo::logic::Lit> pis;
    for (int i = 0; i < 4; ++i) {
      pis.push_back(b.add_pi());
    }
    b.add_po(b.land(pis[0], pis[1]));  // definitely not the XOR
  }
  const auto result = check_equivalence(a, b);
  EXPECT_TRUE(result.proven());
  EXPECT_FALSE(result.equivalent());
  ASSERT_EQ(result.counterexample.size(), 4u);
  // The counterexample must actually distinguish the circuits.
  unsigned xor_val = 0;
  for (const bool bit : result.counterexample) {
    xor_val ^= bit ? 1u : 0u;
  }
  const bool and_val = result.counterexample[0] && result.counterexample[1];
  EXPECT_NE(xor_val != 0, and_val);
}

TEST(Cec, InterfaceMismatchThrows) {
  cryo::logic::Aig a = xor_chain(3);
  cryo::logic::Aig b = xor_chain(4);
  EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

// ------------------------------------------------------------- sweep ----

TEST(Sweep, MergesFunctionallyEqualNodes) {
  // Build the same function twice with different structure.
  cryo::logic::Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  // f1 = (a & b) & c
  const auto f1 = aig.land(aig.land(a, b), c);
  // f2 = a & (b & c) — structurally different, functionally equal.
  const auto f2 = aig.land(a, aig.land(b, c));
  aig.add_po(f1, "x");
  aig.add_po(f2, "y");
  const auto result = sat_sweep(aig);
  EXPECT_GE(result.merged, 1u);
  EXPECT_TRUE(cryo::logic::simulate_equal(aig, result.aig.cleanup()));
  // Both POs now point at the same node.
  EXPECT_EQ(cryo::logic::lit_var(result.aig.po(0)),
            cryo::logic::lit_var(result.aig.po(1)));
}

TEST(Sweep, DetectsComplementEquivalence) {
  cryo::logic::Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto nand_ab = aig.lnand(a, b);
  const auto or_nn = aig.lor(cryo::logic::lit_not(a), cryo::logic::lit_not(b));
  aig.add_po(nand_ab);
  aig.add_po(or_nn);
  // NAND(a,b) == !a | !b: strashing may or may not catch it; sweeping must.
  const auto result = sat_sweep(aig);
  EXPECT_EQ(cryo::logic::lit_var(result.aig.po(0)),
            cryo::logic::lit_var(result.aig.po(1)));
  EXPECT_TRUE(cryo::logic::simulate_equal(aig, result.aig.cleanup()));
}

TEST(Sweep, PreservesFunctionOnRandomNetworks) {
  cryo::util::Rng rng{123};
  for (int trial = 0; trial < 5; ++trial) {
    cryo::logic::Aig aig;
    std::vector<cryo::logic::Lit> pool;
    for (int i = 0; i < 8; ++i) {
      pool.push_back(aig.add_pi());
    }
    for (int i = 0; i < 120; ++i) {
      const auto a = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                            rng.next_bool());
      const auto b = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                            rng.next_bool());
      pool.push_back(aig.land(a, b));
    }
    for (int i = 0; i < 6; ++i) {
      aig.add_po(pool[pool.size() - 1 - static_cast<std::size_t>(i) * 7]);
    }
    const auto result = sat_sweep(aig);
    EXPECT_TRUE(cryo::logic::simulate_equal(aig, result.aig.cleanup()))
        << "trial " << trial;
    EXPECT_LE(result.aig.cleanup().num_ands(), aig.num_ands());
  }
}

}  // namespace
