#include "sta/sta.hpp"

#include <algorithm>
#include <stdexcept>

namespace cryo::sta {

StaResult analyze(const map::Netlist& netlist, const StaOptions& options) {
  const std::uint32_t nets = netlist.num_nets;
  StaResult result;
  result.arrival.assign(nets, 0.0);
  result.slew.assign(nets, options.input_slew);
  result.activity =
      netlist.simulate_activity(options.input_activity, options.sim_words,
                                options.seed);

  // Net loads: sum of the input-pin capacitances hanging on each net,
  // plus the fanout-based wire-load estimate.
  std::vector<double> load(nets, 0.0);
  std::vector<unsigned> fanouts(nets, 0);
  for (const auto& gate : netlist.gates) {
    const auto inputs = gate.cell->input_names();
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      const auto* pin = gate.cell->find_pin(inputs[i]);
      if (pin != nullptr) {
        load[gate.fanins[i]] += pin->capacitance;
      }
      ++fanouts[gate.fanins[i]];
    }
  }
  for (const std::uint32_t po : netlist.pos) {
    load[po] += options.output_load;
    ++fanouts[po];
  }
  if (options.wire_cap_base > 0.0 || options.wire_cap_per_fanout > 0.0) {
    for (std::uint32_t n = 0; n < nets; ++n) {
      if (fanouts[n] > 0) {
        load[n] += options.wire_cap_base +
                   options.wire_cap_per_fanout * fanouts[n];
      }
    }
  }

  const double vdd = netlist.library != nullptr ? netlist.library->voltage : 0.7;

  // Forward propagation (gates are topologically ordered).
  for (const auto& gate : netlist.gates) {
    const auto inputs = gate.cell->input_names();
    double out_arrival = 0.0;
    double out_slew = options.input_slew;
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      const auto* arc = gate.cell->arc_from(inputs[i]);
      if (arc == nullptr) {
        continue;
      }
      const double in_slew = result.slew[gate.fanins[i]];
      const double out_load = load[gate.output];
      const double delay =
          std::max(arc->cell_rise.lookup(in_slew, out_load),
                   arc->cell_fall.lookup(in_slew, out_load));
      const double tr =
          std::max(arc->rise_transition.lookup(in_slew, out_load),
                   arc->fall_transition.lookup(in_slew, out_load));
      out_arrival =
          std::max(out_arrival, result.arrival[gate.fanins[i]] + delay);
      out_slew = std::max(out_slew, tr);
    }
    result.arrival[gate.output] = out_arrival;
    result.slew[gate.output] = out_slew;
  }

  for (const std::uint32_t po : netlist.pos) {
    result.critical_delay = std::max(result.critical_delay, result.arrival[po]);
  }

  // ------------------------------ power ---------------------------------
  const double freq = 1.0 / options.clock_period;
  for (const auto& gate : netlist.gates) {
    result.power.leakage += gate.cell->leakage_power;
    // Internal power: the output toggles `activity` times per cycle; each
    // toggle consumes the arc's internal energy (mean of rise/fall) —
    // attributed to the worst-slew input arc, a common approximation.
    const auto inputs = gate.cell->input_names();
    double energy = 0.0;
    int narcs = 0;
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      const auto* parc = gate.cell->power_arc_from(inputs[i]);
      if (parc == nullptr) {
        continue;
      }
      const double in_slew = result.slew[gate.fanins[i]];
      const double out_load = load[gate.output];
      energy += 0.5 * (parc->rise_power.lookup(in_slew, out_load) +
                       parc->fall_power.lookup(in_slew, out_load));
      ++narcs;
    }
    if (narcs > 0) {
      energy /= narcs;
      result.power.internal +=
          energy * result.activity[gate.output] * freq;
    }
  }
  // Net switching power: 1/2 C V^2 per toggle.
  for (std::uint32_t n = 0; n < nets; ++n) {
    result.power.switching +=
        0.5 * load[n] * vdd * vdd * result.activity[n] * freq;
  }
  return result;
}

}  // namespace cryo::sta
