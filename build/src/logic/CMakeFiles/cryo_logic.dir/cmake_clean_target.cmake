file(REMOVE_RECURSE
  "libcryo_logic.a"
)
