// Tests of the observability layer (util::obs): instrument atomicity
// under parallel_for, span nesting and thread attribution, JSON
// round-tripping of the run report, determinism of the report across
// thread counts, histogram bucket semantics, and the disabled mode.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/json.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cryo;
namespace obs = util::obs;
using util::Json;

// Every test starts from a zeroed registry; instruments registered by
// earlier tests keep their names (the registry never forgets), so tests
// that compare whole reports must only assert on their own metrics or
// run the identical workload on both sides of the comparison.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
};

TEST_F(ObsTest, CounterIsAtomicUnderParallelFor) {
  obs::Counter& hits = obs::counter("test.parallel_hits");
  constexpr std::size_t kIters = 20000;
  util::parallel_for(
      kIters,
      [&](std::size_t i) {
        hits.add();
        if (i % 2 == 0) {
          // Exercise the lookup path concurrently as well: references
          // from obs::counter must stay stable while other threads
          // insert new instruments.
          obs::counter("test.parallel_even").add(2);
        }
      },
      /*threads=*/4);
  EXPECT_EQ(hits.get(), kIters);
  EXPECT_EQ(obs::counter("test.parallel_even").get(), kIters);
}

TEST_F(ObsTest, HistogramIsAtomicUnderParallelFor) {
  obs::Histogram& h = obs::histogram("test.parallel_hist");
  constexpr std::size_t kIters = 8000;
  util::parallel_for(
      kIters,
      // Multiples of 0.125 sum exactly in binary floating point, so the
      // accumulated sum is independent of addition order.
      [&](std::size_t i) { h.record(0.125 * static_cast<double>(i % 16 + 1)); },
      /*threads=*/4);
  EXPECT_EQ(h.count(), kIters);
  EXPECT_DOUBLE_EQ(h.sum(), 0.125 * (1.0 + 16.0) / 2.0 * 16.0 * (kIters / 16));
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST_F(ObsTest, ConcurrentFirstRegistrationWithUnits) {
  // cells::characterize registers unit-tagged instruments from inside
  // parallel_map workers, so first registrations race each other and
  // later report dumps. Run the whole pattern under contention (TSan
  // covers the unit handshake) and check the unit sticks.
  util::parallel_for(
      64,
      [&](std::size_t i) {
        obs::histogram("test.unit_race_hist", obs::Unit::kWallSeconds)
            .record(0.5);
        obs::gauge("test.unit_race_gauge", obs::Unit::kWallSeconds)
            .set(static_cast<double>(i));
        if (i % 8 == 0) {
          obs::ReportOptions options;
          options.include_wallclock = false;
          (void)obs::report_json(options);
        }
      },
      /*threads=*/4);

  obs::ReportOptions deterministic;
  deterministic.include_spans = false;
  deterministic.include_wallclock = false;
  deterministic.include_meta = false;
  const std::string dump = obs::report_json(deterministic).dump();
  // All workers agreed on kWallSeconds, so both instruments drop out of
  // the deterministic report.
  EXPECT_EQ(dump.find("test.unit_race_hist"), std::string::npos);
  EXPECT_EQ(dump.find("test.unit_race_gauge"), std::string::npos);
}

TEST_F(ObsTest, ResetConcurrentWithLiveSpans) {
  // reset() restarts the span clock while worker threads may be timing
  // spans; the epoch is atomic, so this must be race-free (TSan).
  util::parallel_for(
      256,
      [&](std::size_t i) {
        if (i == 128) {
          obs::reset();
        } else {
          const obs::ScopedSpan span{"reset_race"};
        }
      },
      /*threads=*/4);
  const Json report = obs::report_json({});
  const Json& spans = report.at("spans");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans.at(i).at("dur_ns").as_int(), 0);
  }
}

TEST_F(ObsTest, HistogramSumIsRoundedAtDumpTime) {
  obs::Histogram& h = obs::histogram("test.sum_round");
  // 0.1 is not exactly representable; accumulate enough of them that
  // the raw sum carries ordering-sensitive low bits.
  for (int i = 0; i < 1000; ++i) {
    h.record(0.1);
  }
  const Json report = obs::report_json({});
  const double dumped =
      report.at("histograms").at("test.sum_round").at("sum").as_double();
  // Rounded to nine significant digits: exactly 100, not 99.9999999986.
  EXPECT_EQ(dumped, 100.0);
  EXPECT_NE(h.sum(), 100.0);  // raw accumulator keeps the noise
}

TEST_F(ObsTest, HistogramBucketSemantics) {
  obs::Histogram& h = obs::histogram("test.buckets");
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(0), 0.0);
  // Bucket 1 holds (0, 2^kMinExponent]; the last bucket is a catch-all.
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(1),
                   std::ldexp(1.0, obs::Histogram::kMinExponent));

  h.record(-1.0);    // non-positive -> bucket 0
  h.record(0.0);     // non-positive -> bucket 0
  h.record(1.5);     // in (1, 2]
  h.record(2.0);     // exactly a bound: in (1, 2]
  h.record(1e300);   // beyond the top bound -> last bucket
  h.record(1e-300);  // below the bottom bound -> bucket 1

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 1u);
  // Find the (1, 2] bucket from its bound rather than hard-coding it.
  int two_bucket = -1;
  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    if (obs::Histogram::bucket_le(i) == 2.0) {
      two_bucket = i;
    }
  }
  ASSERT_GT(two_bucket, 0);
  EXPECT_EQ(h.bucket(two_bucket), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
}

TEST_F(ObsTest, GaugeSetAndMax) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.get(), 3.5);
  g.max(2.0);
  EXPECT_DOUBLE_EQ(g.get(), 3.5);
  g.max(7.25);
  EXPECT_DOUBLE_EQ(g.get(), 7.25);
}

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  {
    const obs::ScopedSpan outer{"outer"};
    { const obs::ScopedSpan inner{"inner"}; }
    { const obs::ScopedSpan sibling{"sibling"}; }
  }
  const Json report = obs::report_json({});
  const Json& spans = report.at("spans");
  ASSERT_EQ(spans.size(), 3u);

  // Spans are sorted by allocation id: outer opened first.
  const Json& outer = spans.at(0);
  const Json& inner = spans.at(1);
  const Json& sibling = spans.at(2);
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(sibling.at("name").as_string(), "sibling");

  EXPECT_EQ(outer.at("parent").as_int(), 0);
  EXPECT_EQ(inner.at("parent").as_int(), outer.at("id").as_int());
  EXPECT_EQ(sibling.at("parent").as_int(), outer.at("id").as_int());

  // All three ran on this thread; durations are non-negative and the
  // children start no earlier than the parent.
  EXPECT_EQ(inner.at("thread").as_int(), outer.at("thread").as_int());
  EXPECT_GE(outer.at("dur_ns").as_int(), 0);
  EXPECT_GE(inner.at("start_ns").as_int(), outer.at("start_ns").as_int());
}

TEST_F(ObsTest, SpansOnWorkerThreadsGetDistinctThreadIds) {
  util::parallel_for(
      4, [&](std::size_t i) {
        const obs::ScopedSpan span{"task" + std::to_string(i)};
      },
      /*threads=*/4);
  const Json report = obs::report_json({});
  const Json& spans = report.at("spans");
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // Worker-thread spans have no lexical parent.
    EXPECT_EQ(spans.at(i).at("parent").as_int(), 0);
    EXPECT_GT(spans.at(i).at("thread").as_int(), 0);
  }
}

TEST_F(ObsTest, ReportJsonRoundTrips) {
  obs::counter("test.roundtrip_count").add(42);
  obs::gauge("test.roundtrip_gauge", obs::Unit::kSeconds).set(1.25e-12);
  obs::histogram("test.roundtrip_hist").record(3.0);
  { const obs::ScopedSpan span{"roundtrip"}; }

  obs::ReportOptions options;
  options.flow = "test_obs";
  const Json report = obs::report_json(options);
  EXPECT_EQ(report.at("schema").as_string(), "cryoeda-report-v1");
  EXPECT_EQ(report.at("meta").at("flow").as_string(), "test_obs");

  const Json reparsed = Json::parse(report.dump(2));
  EXPECT_EQ(reparsed, report);
  EXPECT_EQ(reparsed.at("counters").at("test.roundtrip_count").as_int(), 42);
  EXPECT_DOUBLE_EQ(
      reparsed.at("gauges").at("test.roundtrip_gauge").as_double(), 1.25e-12);
  const Json& hist = reparsed.at("histograms").at("test.roundtrip_hist");
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 3.0);
}

TEST_F(ObsTest, DeterministicReportIsByteIdenticalAcrossThreadCounts) {
  const auto workload = [](int threads) {
    obs::reset();
    util::parallel_for(
        1024,
        [&](std::size_t i) {
          const obs::ScopedSpan span{"work"};  // excluded from the report
          obs::counter("test.det_count").add(i % 3 == 0 ? 2 : 1);
          obs::gauge("test.det_gauge").max(static_cast<double>(i % 17));
          obs::gauge("test.det_wall", obs::Unit::kWallSeconds)
              .set(static_cast<double>(threads));  // wall-clock: excluded
          obs::histogram("test.det_hist")
              .record(0.25 * static_cast<double>(i % 8 + 1));
        },
        threads);
    obs::ReportOptions options;
    options.include_spans = false;
    options.include_wallclock = false;
    options.include_meta = false;
    return obs::report_json(options).dump(2);
  };

  const std::string serial = workload(1);
  const std::string parallel = workload(4);
  EXPECT_EQ(serial, parallel);
  // The wall-clock gauge must really have been dropped.
  EXPECT_EQ(serial.find("test.det_wall"), std::string::npos);
  EXPECT_NE(serial.find("test.det_gauge"), std::string::npos);
}

TEST_F(ObsTest, SignoffReportExcludesDiagnosticNodeGauges) {
  obs::gauge("test.signoff_quality").set(3.5);
  obs::gauge("pass.test_if.nodes", obs::Unit::kNodes).set(128.0);
  obs::histogram("test.nodes_hist", obs::Unit::kNodes).record(64.0);

  // The full report keeps the work-shape diagnostics...
  const std::string full = obs::report_json({}).dump(2);
  EXPECT_NE(full.find("pass.test_if.nodes"), std::string::npos);
  EXPECT_NE(full.find("test.nodes_hist"), std::string::npos);

  // ...the signoff profile drops them but keeps the quality gauges, so
  // adding per-pass instrumentation cannot change the canonical
  // report.json.
  const std::string signoff =
      obs::report_json(obs::ReportOptions::signoff()).dump(2);
  EXPECT_EQ(signoff.find("pass.test_if.nodes"), std::string::npos);
  EXPECT_EQ(signoff.find("test.nodes_hist"), std::string::npos);
  EXPECT_NE(signoff.find("test.signoff_quality"), std::string::npos);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::Counter& c = obs::counter("test.disabled_count");
  obs::Histogram& h = obs::histogram("test.disabled_hist");
  obs::set_enabled(false);
  c.add(5);
  obs::gauge("test.disabled_gauge").set(9.0);
  h.record(1.0);
  { const obs::ScopedSpan span{"disabled"}; }
  obs::set_enabled(true);

  EXPECT_EQ(c.get(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.disabled_gauge").get(), 0.0);
  const Json report = obs::report_json({});
  EXPECT_EQ(report.at("spans").size(), 0u);
}

TEST_F(ObsTest, WriteReportCreatesDirectoriesAndValidJson) {
  obs::counter("test.write_count").add(7);
  const auto dir = std::filesystem::temp_directory_path() /
                   "cryoeda_test_obs" / "nested";
  const auto path = dir / "report.json";
  std::filesystem::remove_all(dir.parent_path());

  obs::ReportOptions options;
  options.flow = "write_test";
  obs::write_report(path.string(), options);

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json report = Json::parse(buffer.str());
  EXPECT_EQ(report.at("schema").as_string(), "cryoeda-report-v1");
  EXPECT_EQ(report.at("counters").at("test.write_count").as_int(), 7);
  std::filesystem::remove_all(dir.parent_path());
}

TEST_F(ObsTest, JsonParserEdgeCases) {
  EXPECT_EQ(Json::parse("[1, 2.5, \"x\", true, null]").size(), 5u);
  EXPECT_EQ(Json::parse("\"a\\u00e9b\"").as_string(), "a\xc3\xa9"
                                                      "b");
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1] trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);

  // Round-trip of doubles uses shortest-round-trip formatting.
  const Json v{0.1};
  EXPECT_EQ(v.dump(), "0.1");
  EXPECT_DOUBLE_EQ(Json::parse(v.dump()).as_double(), 0.1);
  // Integral doubles keep a decimal marker so the type survives.
  EXPECT_EQ(Json{2.0}.dump(), "2.0");
  EXPECT_EQ(Json::parse("2.0").as_double(), 2.0);
}

}  // namespace
