#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "liberty/library.hpp"
#include "liberty/units.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace cryo::liberty {
namespace {

/// Generic liberty syntax tree: group(args) { attribute : value; ... }.
struct Group {
  std::string type;
  std::vector<std::string> args;
  std::multimap<std::string, std::string> attributes;          // simple
  std::multimap<std::string, std::vector<std::string>> lists;  // complex
  std::vector<Group> children;

  const std::string& attr(const std::string& key,
                          const std::string& fallback = "") const {
    const auto it = attributes.find(key);
    static const std::string empty;
    if (it == attributes.end()) {
      return fallback.empty() ? empty : fallback;
    }
    return it->second;
  }
};

class Tokenizer {
public:
  explicit Tokenizer(const std::string& text) : text_{text} {}

  /// Token kinds: identifiers/numbers, quoted strings, punctuation.
  std::string next() {
    skip_space_and_comments();
    if (pos_ >= text_.size()) {
      was_quoted_ = false;  // EOF is never a quoted token
      return {};
    }
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside string
          continue;
        }
        out += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        throw std::runtime_error{"liberty parse: unterminated string"};
      }
      ++pos_;
      was_quoted_ = true;
      return out;
    }
    was_quoted_ = false;
    if (std::strchr("{}();:,", c) != nullptr) {
      ++pos_;
      return std::string(1, c);
    }
    std::string out;
    while (pos_ < text_.size() &&
           std::strchr("{}();:,\"", text_[pos_]) == nullptr &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\\') {  // line continuation
        ++pos_;
        continue;
      }
      out += text_[pos_++];
    }
    return out;
  }

  std::string peek() {
    const std::size_t saved = pos_;
    const bool saved_q = was_quoted_;
    std::string tok = next();
    pos_ = saved;
    was_quoted_ = saved_q;
    return tok;
  }

  bool was_quoted() const { return was_quoted_; }
  bool done() {
    skip_space_and_comments();
    return pos_ >= text_.size();
  }

private:
  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < text_.size() &&
             (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\\')) {
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        const std::size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          throw std::runtime_error{"liberty parse: unterminated comment"};
        }
        pos_ = end + 2;
        continue;
      }
      break;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool was_quoted_ = false;
};

class Parser {
public:
  explicit Parser(const std::string& text) : tok_{text} {}

  Group parse_top() {
    Group top = parse_group(tok_.next());
    return top;
  }

private:
  void expect(const std::string& want) {
    const std::string got = tok_.next();
    if (got != want) {
      throw std::runtime_error{"liberty parse: expected '" + want +
                               "', got '" + got + "'"};
    }
  }

  /// Next token, throwing on end of input. The tokenizer signals EOF by
  /// returning an empty token forever; every loop that scans for a
  /// closing delimiter must use this or it will spin (and, for attribute
  /// values, allocate) without bound on truncated input.
  std::string next_or_throw(const char* where) {
    std::string t = tok_.next();
    if (t.empty() && !tok_.was_quoted()) {
      throw std::runtime_error{std::string{"liberty parse: unexpected end "
                                           "of input in "} +
                               where};
    }
    return t;
  }

  /// Called with the group/attribute name already consumed.
  Group parse_group(const std::string& type) {
    Group group;
    group.type = type;
    expect("(");
    for (;;) {
      const std::string t = next_or_throw("group arguments");
      if (t == ")") {
        break;
      }
      if (t == ",") {
        continue;
      }
      group.args.push_back(t);
    }
    expect("{");
    parse_body(group);
    return group;
  }

  void parse_body(Group& group) {
    while (true) {
      const std::string name = tok_.next();
      if (name == "}") {
        return;
      }
      if (name.empty()) {
        throw std::runtime_error{"liberty parse: unexpected end of input"};
      }
      const std::string sep = tok_.peek();
      if (sep == ":") {
        tok_.next();
        std::string value;
        // Values may span several tokens until ';' (e.g. unquoted floats).
        for (;;) {
          const std::string v = next_or_throw("attribute value");
          if (v == ";") {
            break;
          }
          if (!value.empty()) {
            value += ' ';
          }
          value += v;
        }
        group.attributes.emplace(name, value);
      } else if (sep == "(") {
        // Either a complex attribute `name (a, b, ...);` or a child group
        // `name (args) { ... }`.
        tok_.next();
        std::vector<std::string> args;
        for (;;) {
          const std::string t = next_or_throw("complex attribute");
          if (t == ")") {
            break;
          }
          if (t == ",") {
            continue;
          }
          args.push_back(t);
        }
        const std::string after = tok_.peek();
        if (after == "{") {
          tok_.next();
          Group child;
          child.type = name;
          child.args = std::move(args);
          parse_body(child);
          group.children.push_back(std::move(child));
        } else {
          if (after == ";") {
            tok_.next();
          }
          group.lists.emplace(name, std::move(args));
        }
      } else {
        throw std::runtime_error{"liberty parse: unexpected token after '" +
                                 name + "'"};
      }
    }
  }

  Tokenizer tok_;
};

/// Strict numeric conversion with attribute context. Liberty numbers
/// used to go through raw `std::stod`, whose std::invalid_argument /
/// std::out_of_range escape with no hint of *which* attribute of which
/// cell was malformed; a corrupted characterization cache then read as
/// an internal crash instead of a bad input file. Rejects empty values,
/// trailing garbage, overflow, and non-finite results with the I/O
/// error taxonomy (exit code 3).
double to_number(const std::string& raw, const std::string& where) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    throw Error{ErrorKind::kIo, "liberty parse: bad number '" + raw +
                                    "' in " + where +
                                    " (expected a finite decimal value)"};
  }
  return value;
}

std::vector<double> parse_number_list(const std::vector<std::string>& args,
                                      const std::string& where) {
  std::vector<double> out;
  for (const auto& arg : args) {
    for (const auto& tok : util::split(arg, ", ")) {
      out.push_back(to_number(tok, where));
    }
  }
  return out;
}

NldmTable extract_table(const Group& g, double unit,
                        const std::string& where) {
  std::vector<double> index1{0.0};
  std::vector<double> index2{0.0};
  if (const auto it = g.lists.find("index_1"); it != g.lists.end()) {
    index1 = parse_number_list(it->second, where + " index_1");
    for (double& v : index1) {
      v *= kTimeUnit;
    }
  }
  if (const auto it = g.lists.find("index_2"); it != g.lists.end()) {
    index2 = parse_number_list(it->second, where + " index_2");
    for (double& v : index2) {
      v *= kCapUnit;
    }
  }
  std::vector<double> values;
  if (const auto it = g.lists.find("values"); it != g.lists.end()) {
    values = parse_number_list(it->second, where + " values");
  }
  for (double& v : values) {
    v *= unit;
  }
  return NldmTable{std::move(index1), std::move(index2), std::move(values)};
}

ArcSense parse_sense(const std::string& text) {
  if (text == "positive_unate") {
    return ArcSense::kPositive;
  }
  if (text == "negative_unate") {
    return ArcSense::kNegative;
  }
  return ArcSense::kNonUnate;
}

Cell extract_cell(const Group& g) {
  Cell cell;
  cell.name = g.args.empty() ? "" : g.args.front();
  const std::string where = "cell '" + cell.name + "'";
  cell.area = to_number(g.attr("area", "0"), where + " area");
  cell.leakage_power =
      to_number(g.attr("cell_leakage_power", "0"),
                where + " cell_leakage_power") *
      kLeakageUnit;
  for (const auto& child : g.children) {
    if (child.type == "ff") {
      cell.is_sequential = true;
      cell.next_state = child.attr("next_state");
      cell.clocked_on = child.attr("clocked_on");
      continue;
    }
    if (child.type != "pin") {
      continue;
    }
    Pin pin;
    pin.name = child.args.empty() ? "" : child.args.front();
    pin.is_output = child.attr("direction") == "output";
    const std::string pin_where = where + " pin '" + pin.name + "'";
    if (!pin.is_output) {
      pin.capacitance =
          to_number(child.attr("capacitance", "0"), pin_where + " capacitance") *
          kCapUnit;
    } else {
      pin.function = child.attr("function");
      for (const auto& sub : child.children) {
        if (sub.type == "timing") {
          TimingArc arc;
          arc.related_pin = sub.attr("related_pin");
          arc.sense = parse_sense(sub.attr("timing_sense"));
          for (const auto& t : sub.children) {
            if (t.type == "cell_rise") {
              arc.cell_rise = extract_table(t, kTimeUnit, pin_where + " cell_rise");
            } else if (t.type == "cell_fall") {
              arc.cell_fall = extract_table(t, kTimeUnit, pin_where + " cell_fall");
            } else if (t.type == "rise_transition") {
              arc.rise_transition =
                  extract_table(t, kTimeUnit, pin_where + " rise_transition");
            } else if (t.type == "fall_transition") {
              arc.fall_transition =
                  extract_table(t, kTimeUnit, pin_where + " fall_transition");
            }
          }
          cell.arcs.push_back(std::move(arc));
        } else if (sub.type == "internal_power") {
          PowerArc arc;
          arc.related_pin = sub.attr("related_pin");
          for (const auto& t : sub.children) {
            if (t.type == "rise_power") {
              arc.rise_power =
                  extract_table(t, kEnergyUnit, pin_where + " rise_power");
            } else if (t.type == "fall_power") {
              arc.fall_power =
                  extract_table(t, kEnergyUnit, pin_where + " fall_power");
            }
          }
          cell.power_arcs.push_back(std::move(arc));
        }
      }
    }
    cell.pins.push_back(std::move(pin));
  }
  return cell;
}

}  // namespace

Library parse_liberty(const std::string& text) {
  util::faultinject::maybe_fail("liberty.parse", ErrorKind::kIo);
  Parser parser{text};
  const Group top = parser.parse_top();
  if (top.type != "library") {
    throw std::runtime_error{"parse_liberty: top group is not 'library'"};
  }
  Library lib;
  lib.name = top.args.empty() ? "" : top.args.front();
  const std::string lib_where = "library '" + lib.name + "'";
  const std::string kelvin = top.attr("temperature_kelvin");
  if (!kelvin.empty()) {
    lib.temperature_k = to_number(kelvin, lib_where + " temperature_kelvin");
  } else {
    lib.temperature_k =
        to_number(top.attr("nom_temperature", "25"),
                  lib_where + " nom_temperature") +
        273.15;
  }
  lib.voltage =
      to_number(top.attr("nom_voltage", "0.7"), lib_where + " nom_voltage");
  for (const auto& child : top.children) {
    if (child.type == "cell") {
      lib.cells.push_back(extract_cell(child));
    }
  }
  return lib;
}

Library read_liberty(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_liberty: cannot open " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_liberty(buf.str());
}

const Cell* Library::find(const std::string& cell_name) const {
  for (const auto& cell : cells) {
    if (cell.name == cell_name) {
      return &cell;
    }
  }
  return nullptr;
}

Cell* Library::find(const std::string& cell_name) {
  for (auto& cell : cells) {
    if (cell.name == cell_name) {
      return &cell;
    }
  }
  return nullptr;
}

}  // namespace cryo::liberty
