#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace cryo::spice {

/// DC operating-point result of a backend run: the full node-voltage
/// vector (index = NodeId) plus, for every driven node, the current the
/// source delivers into the circuit at that operating point [A].
struct DcResult {
  std::vector<double> voltages;
  std::unordered_map<NodeId, double> source_currents;

  double source_current(NodeId node) const;
};

/// Abstract SPICE engine: a netlist (plus temperature) in, traces and
/// measurements out.
///
/// Everything above this seam — cell characterization, device
/// calibration, the corner matrix — talks to a `Backend`, never to a
/// concrete simulator. Implementations are stateless between calls
/// (temperature is a per-call argument, not bound state), so one
/// registered instance serves every thread concurrently.
///
/// `identity()` ("<name>/<version>") participates in every
/// characterization / calibration artifact-cache key: results computed
/// by different engines (or different versions of the same engine) must
/// never alias in the cache.
class Backend {
public:
  virtual ~Backend() = default;

  /// Stable registry name ("builtin", "ngspice").
  virtual std::string name() const = 0;

  /// Engine version for cache keying. The builtin backend versions its
  /// numerics explicitly; external backends report the detected binary
  /// version.
  virtual std::string version() const = 0;

  /// Whether the engine can run on this machine right now. The builtin
  /// backend is always available; external backends probe at first use.
  virtual bool available() const = 0;

  /// Human-readable reason when `available()` is false ("" otherwise).
  virtual std::string unavailable_reason() const { return ""; }

  /// DC operating point at t = 0 with per-source delivered currents.
  virtual DcResult dc(const Circuit& circuit, double temperature_k) const = 0;

  /// Transient run from the DC operating point at t = 0.
  virtual TransientResult transient(const Circuit& circuit,
                                    double temperature_k,
                                    const TransientOptions& options,
                                    const std::vector<NodeId>& probes)
      const = 0;

  /// "<name>/<version>" — the cache-key token of this engine.
  std::string identity() const { return name() + "/" + version(); }
};

/// Environment variable consulted by `resolve_backend("")`.
inline constexpr const char* kBackendEnv = "CRYOEDA_SPICE_BACKEND";

/// Registered backend names, in registry order ({"builtin", "ngspice"}).
std::vector<std::string> backend_names();

/// Look up a backend by name; nullptr when unknown. The returned
/// instance may be unavailable — callers that intend to simulate should
/// use `resolve_backend`.
const Backend* find_backend(const std::string& name);

/// The always-available builtin engine.
const Backend& builtin_backend();

/// Resolve the backend to simulate with: an explicit non-empty `name`
/// wins, else $CRYOEDA_SPICE_BACKEND, else "builtin". Throws
/// cryo::Error{kRecipe} for an unknown name and for a backend that is
/// not available on this machine (with its reason).
const Backend& resolve_backend(const std::string& name = "");

}  // namespace cryo::spice
