#include "logic/cuts.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/obs.hpp"

namespace cryo::logic {

bool Cut::contains_all_of(const Cut& other) const {
  // True if other's leaves are a subset of ours => other dominates us.
  if ((other.signature & ~signature) != 0) {
    return false;
  }
  unsigned i = 0;
  for (unsigned j = 0; j < other.size; ++j) {
    while (i < size && leaves[i] < other.leaves[j]) {
      ++i;
    }
    if (i >= size || leaves[i] != other.leaves[j]) {
      return false;
    }
  }
  return true;
}

std::uint64_t tt6_expand(std::uint64_t tt, const NodeIdx* sub_leaves,
                         unsigned sub_size, const NodeIdx* super_leaves,
                         unsigned super_size) {
  // Position of each sub leaf inside the super leaf list.
  std::array<unsigned, Cut::kMaxLeaves> pos{};
  unsigned si = 0;
  for (unsigned j = 0; j < sub_size; ++j) {
    while (si < super_size && super_leaves[si] != sub_leaves[j]) {
      ++si;
    }
    pos[j] = si;
  }
  std::uint64_t out = 0;
  for (unsigned m = 0; m < (1u << super_size); ++m) {
    unsigned sub_m = 0;
    for (unsigned j = 0; j < sub_size; ++j) {
      sub_m |= ((m >> pos[j]) & 1u) << j;
    }
    if (tt6_bit(tt, sub_m)) {
      out |= 1ull << m;
    }
  }
  return out;
}

CutEnumerator::CutEnumerator(const Aig& aig, unsigned k, unsigned max_cuts,
                             CutOrder order)
    : aig_{aig}, k_{k}, max_cuts_{max_cuts}, order_{order} {
  if (k > Cut::kMaxLeaves || k < 2) {
    throw std::invalid_argument{"CutEnumerator: k must be in [2, 6]"};
  }
}

void CutEnumerator::run() {
  cuts_.assign(aig_.num_nodes(), {});
  flow_.assign(aig_.num_nodes(), 0.0);
  depth_.assign(aig_.num_nodes(), 0u);
  refs_.assign(aig_.num_nodes(), 1.0);
  {
    const auto fanouts = aig_.fanout_counts();
    for (NodeIdx v = 0; v < aig_.num_nodes(); ++v) {
      refs_[v] = std::max<double>(1.0, fanouts[v]);
    }
  }
  merged_tally_ = 0;
  kept_tally_ = 0;
  // Constant node: single empty cut with constant-0 function.
  {
    Cut c;
    c.size = 0;
    c.tt = 0;
    cuts_[0].push_back(c);
  }
  for (NodeIdx v = 1; v < aig_.num_nodes(); ++v) {
    if (aig_.is_pi(v)) {
      Cut c;
      c.size = 1;
      c.leaves[0] = v;
      c.tt = 0x2;  // identity over one variable
      c.signature = 1ull << (v & 63u);
      cuts_[v].push_back(c);
    } else {
      merge_node(v);
    }
  }
  // Flush the batched local tallies once per enumeration: hot-loop
  // counters are far too frequent for per-event atomic updates.
  namespace obs = util::obs;
  obs::counter("cuts.merged_candidates").add(merged_tally_);
  obs::counter("cuts.kept_cuts").add(kept_tally_);
}

bool CutEnumerator::merge_leaves(const Cut& a, const Cut& b, unsigned k,
                                 Cut& out) {
  unsigned i = 0;
  unsigned j = 0;
  unsigned n = 0;
  while (i < a.size && j < b.size) {
    if (n >= k) {
      return false;
    }
    if (a.leaves[i] == b.leaves[j]) {
      out.leaves[n++] = a.leaves[i];
      ++i;
      ++j;
    } else if (a.leaves[i] < b.leaves[j]) {
      out.leaves[n++] = a.leaves[i++];
    } else {
      out.leaves[n++] = b.leaves[j++];
    }
  }
  while (i < a.size) {
    if (n >= k) {
      return false;
    }
    out.leaves[n++] = a.leaves[i++];
  }
  while (j < b.size) {
    if (n >= k) {
      return false;
    }
    out.leaves[n++] = b.leaves[j++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

void CutEnumerator::merge_node(NodeIdx v) {
  const Lit f0 = aig_.fanin0(v);
  const Lit f1 = aig_.fanin1(v);
  const auto& cuts0 = cuts_[lit_var(f0)];
  const auto& cuts1 = cuts_[lit_var(f1)];

  std::vector<Cut> candidates;
  candidates.reserve(cuts0.size() * cuts1.size());

  for (const Cut& c0 : cuts0) {
    for (const Cut& c1 : cuts1) {
      Cut merged;
      if (!merge_leaves(c0, c1, k_, merged)) {
        continue;
      }
      std::uint64_t t0 = tt6_expand(c0.tt, c0.leaves.data(), c0.size,
                                    merged.leaves.data(), merged.size);
      std::uint64_t t1 = tt6_expand(c1.tt, c1.leaves.data(), c1.size,
                                    merged.leaves.data(), merged.size);
      if (lit_compl(f0)) {
        t0 = ~t0;
      }
      if (lit_compl(f1)) {
        t1 = ~t1;
      }
      merged.tt = (t0 & t1) & tt6_mask(merged.size);
      candidates.push_back(merged);
    }
  }
  merged_tally_ += candidates.size();

  std::vector<Cut>& out = cuts_[v];
  if (order_ == CutOrder::kSizeFirst) {
    // Legacy dominance filtering: drop any cut that is a superset of
    // another; smallest first, first-come within a size.
    std::sort(candidates.begin(), candidates.end(),
              [](const Cut& a, const Cut& b) { return a.size < b.size; });
    for (const Cut& cand : candidates) {
      bool dominated = false;
      for (const Cut& kept : out) {
        if (cand.contains_all_of(kept)) {
          dominated = true;
          break;
        }
      }
      if (!dominated && out.size() < max_cuts_) {
        out.push_back(cand);
      }
    }
  } else {
    merge_ranked(v, candidates);
  }
  kept_tally_ += out.size();

  // Always include the trivial cut so the node itself stays mappable.
  Cut trivial;
  trivial.size = 1;
  trivial.leaves[0] = v;
  trivial.tt = 0x2;
  trivial.signature = 1ull << (v & 63u);
  out.push_back(trivial);
}

void CutEnumerator::merge_ranked(NodeIdx v, std::vector<Cut>& candidates) {
  // A merged candidate with its priority rank: area flow first (the
  // cost the mapper's own flow heuristic minimizes), then depth, then
  // size. Only the best `max_cuts_` non-dominated candidates survive.
  struct Ranked {
    Cut cut;
    double flow = 0.0;
    unsigned depth = 0;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (const Cut& cut : candidates) {
    Ranked r;
    r.cut = cut;
    r.flow = 1.0;
    for (unsigned i = 0; i < cut.size; ++i) {
      const NodeIdx leaf = cut.leaves[i];
      r.flow += flow_[leaf] / refs_[leaf];
      r.depth = std::max(r.depth, depth_[leaf] + 1u);
    }
    ranked.push_back(r);
  }

  // The structural fanin-pair cut (merge of the two trivial cuts, which
  // are stored last, so it is the last candidate produced) is the
  // mapper's universal fallback — any cell library with a 2-input
  // AND-class cell can realize it. Keep it regardless of rank, like the
  // trivial cut.
  Cut fanin_pair;
  bool have_fanin_pair = false;
  if (!candidates.empty()) {
    fanin_pair = candidates.back();
    have_fanin_pair = true;
  }

  // Priority order: smallest cuts first (they are the structurally
  // cheapest to realize), then area flow, then depth; leaf lists as the
  // final tie-break keep the ranking independent of merge order.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.cut.size != b.cut.size) {
                       return a.cut.size < b.cut.size;
                     }
                     if (a.flow != b.flow) {
                       return a.flow < b.flow;
                     }
                     if (a.depth != b.depth) {
                       return a.depth < b.depth;
                     }
                     return std::lexicographical_compare(
                         a.cut.leaves.begin(),
                         a.cut.leaves.begin() + a.cut.size,
                         b.cut.leaves.begin(),
                         b.cut.leaves.begin() + b.cut.size);
                   });

  // Keep the best non-dominated candidates, up to the bound. Dominance
  // runs both ways: a cheap subset cut arriving later evicts the
  // superset cuts it dominates.
  std::vector<Cut>& out = cuts_[v];
  for (const Ranked& cand : ranked) {
    bool dominated = false;
    for (const Cut& kept : out) {
      if (cand.cut.contains_all_of(kept)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      continue;
    }
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Cut& kept) {
                               return kept.contains_all_of(cand.cut);
                             }),
              out.end());
    if (out.size() < max_cuts_) {
      out.push_back(cand.cut);
    }
  }
  if (have_fanin_pair) {
    const bool present = std::any_of(
        out.begin(), out.end(), [&](const Cut& kept) {
          return fanin_pair.contains_all_of(kept) ||
                 (kept.size == fanin_pair.size &&
                  std::equal(kept.leaves.begin(),
                             kept.leaves.begin() + kept.size,
                             fanin_pair.leaves.begin()));
        });
    if (!present) {
      out.push_back(fanin_pair);
    }
  }

  // The node's flow/depth estimate follows its best surviving cut.
  if (!out.empty()) {
    double best_flow = 0.0;
    unsigned best_depth = 0;
    bool first = true;
    for (const Cut& c : out) {
      double flow = 1.0;
      unsigned depth = 0;
      for (unsigned i = 0; i < c.size; ++i) {
        flow += flow_[c.leaves[i]] / refs_[c.leaves[i]];
        depth = std::max(depth, depth_[c.leaves[i]] + 1u);
      }
      if (first || flow < best_flow ||
          (flow == best_flow && depth < best_depth)) {
        first = false;
        best_flow = flow;
        best_depth = depth;
      }
    }
    flow_[v] = best_flow;
    depth_[v] = best_depth;
  }
}

}  // namespace cryo::logic
