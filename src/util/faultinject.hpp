#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cryo::util::faultinject {

/// Deterministic fault injection for robustness testing.
///
/// The flow wires named *sites* at its failure-prone seams (cache I/O,
/// SPICE solves, SAT calls, parsers, fleet workers). A site decides
/// whether to fail purely from its per-site arrival counter — no
/// wall clock and no real RNG — so a given spec fails the exact same
/// arrivals on every run (modulo thread scheduling of *which* worker
/// makes the k-th arrival; pin threads for full determinism).
///
/// Configuration comes from the CRYOEDA_FAULTS environment variable (or
/// `configure()` in tests): a comma-separated list of
///
///   <site>=every-<N>   fail every N-th arrival (N >= 1)
///   <site>=once@<K>    fail exactly the K-th arrival (K >= 1)
///
/// e.g. CRYOEDA_FAULTS="cache.read=every-3,spice.solve=once@2".
/// A malformed spec or unknown site throws cryo::Error{kRecipe} at
/// first use (exit code 2 in the driver). With the variable unset the
/// registry is disarmed and every site costs one relaxed atomic load.
///
/// Registered sites (each also bumps `fault.<site>.injected` in
/// `util::obs` when it fires):
///   cache.read          ArtifactCache::load — transient read failure
///   cache.write         ArtifactCache::store — transient write failure
///   cache.corrupt       ArtifactCache::load — flip a byte of a
///                       successfully read entry (exercises quarantine)
///   cells.characterize  per-cell characterization worker (kInternal)
///   core.matrix         per-corner matrix worker (kInternal)
///   core.scenario       per-scenario fleet worker (kInternal)
///   liberty.parse       parse_liberty entry (kIo)
///   sat.solve           Solver::solve returns kUnknown
///   spice.solve         Simulator::transient entry (kNumeric)

/// All site names the flow has wired (sorted). `configure` rejects
/// anything else.
const std::vector<std::string>& known_sites();

/// Cheap global switch: false means no spec is loaded and `should_fail`
/// returns false without touching the registry.
bool armed();

/// Count an arrival at `site` and decide whether it fails this time.
bool should_fail(std::string_view site);

/// `should_fail`, surfaced as a classified error:
/// throws cryo::Error{kind, "injected fault at <site>"}.
void maybe_fail(std::string_view site, ErrorKind kind);

/// (Re)load a spec ("" disarms). Tests drive this directly; production
/// code never calls it — the CRYOEDA_FAULTS variable is parsed lazily on
/// first use. Throws cryo::Error{kRecipe} on a malformed spec or an
/// unknown site. Resets all arrival/injection counters.
void configure(std::string_view spec);

/// Injections fired at `site` since the last `configure`.
std::uint64_t injected(std::string_view site);

}  // namespace cryo::util::faultinject
