#pragma once

#include <cstdint>
#include <vector>

namespace cryo::logic {

/// Truth-table utilities.
///
/// Small functions (<= 6 variables) are packed into a single uint64_t —
/// the representation used by cut enumeration and cell matching. Larger
/// functions (refactoring cones) use TtVec, a word vector.

// ---------------------------------------------------------------- 6-var --

/// Projection truth tables of each variable for 6-var tables.
inline constexpr std::uint64_t kVarTt6[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// Mask of the meaningful bits of an n-variable table (n <= 6).
inline constexpr std::uint64_t tt6_mask(unsigned n) {
  return n >= 6 ? ~0ull : ((1ull << (1u << n)) - 1ull);
}

/// Value of bit (minterm) m.
inline constexpr bool tt6_bit(std::uint64_t tt, unsigned m) {
  return (tt >> m) & 1ull;
}

/// Does the function (over n vars) depend on variable v?
bool tt6_has_var(std::uint64_t tt, unsigned n, unsigned v);

/// Cofactors w.r.t. variable v (result still over n vars, padded).
std::uint64_t tt6_cofactor0(std::uint64_t tt, unsigned v);
std::uint64_t tt6_cofactor1(std::uint64_t tt, unsigned v);

/// Remove don't-depend variables: returns the table over the reduced
/// support and writes the surviving original variable indices to
/// `support` (ordered). n is the original variable count.
std::uint64_t tt6_shrink(std::uint64_t tt, unsigned n,
                         std::vector<unsigned>& support);

/// Apply an input permutation & phase + output phase:
/// result(x_0..x_{n-1}) = f(y_perm[0], ...) where y_i = x_i ^ phase_i.
/// `perm[i]` gives, for input i of f, which new variable feeds it.
std::uint64_t tt6_transform(std::uint64_t tt, unsigned n,
                            const std::vector<unsigned>& perm,
                            unsigned input_phase_mask, bool out_negate);

/// Number of set minterms (over n vars).
unsigned tt6_count_ones(std::uint64_t tt, unsigned n);

// --------------------------------------------------------------- dynamic --

/// Dynamic truth table over up to 16 variables.
class TtVec {
public:
  TtVec() = default;
  explicit TtVec(unsigned num_vars);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  bool bit(std::uint32_t minterm) const {
    return (words_[minterm >> 6] >> (minterm & 63u)) & 1ull;
  }
  void set_bit(std::uint32_t minterm, bool value);

  bool is_zero() const;
  bool is_ones() const;
  bool operator==(const TtVec& other) const { return words_ == other.words_; }

  TtVec operator&(const TtVec& o) const;
  TtVec operator|(const TtVec& o) const;
  TtVec operator^(const TtVec& o) const;
  TtVec operator~() const;

  TtVec cofactor(unsigned var, bool value) const;
  bool has_var(unsigned var) const;

  /// All-zero / all-one / single-variable tables.
  static TtVec zeros(unsigned num_vars);
  static TtVec ones(unsigned num_vars);
  static TtVec variable(unsigned num_vars, unsigned var);

  /// From a 6-var packed table.
  static TtVec from_tt6(std::uint64_t tt, unsigned num_vars);
  /// To packed (requires num_vars <= 6).
  std::uint64_t to_tt6() const;

private:
  void mask_top();
  unsigned num_vars_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A product term over num_vars variables: variable i appears positive if
/// bit i of `pos`, negated if bit i of `neg` (never both).
struct Cube {
  std::uint32_t pos = 0;
  std::uint32_t neg = 0;
  unsigned num_literals() const;
};

/// Irredundant sum-of-products via the Minato–Morreale algorithm.
/// Computes an ISOP F with on_set <= F <= on_set | dc_set (the don't-care
/// set enables mfs-style minimization).
std::vector<Cube> isop(const TtVec& on_set, const TtVec& dc_set);

/// Evaluate a cube list back into a truth table (for verification).
TtVec sop_to_tt(const std::vector<Cube>& cubes, unsigned num_vars);

}  // namespace cryo::logic
