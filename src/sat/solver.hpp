#pragma once

#include <cstdint>
#include <vector>

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::sat {

/// SAT variable (0-based) and literal (2*var + sign).
using Var = std::int32_t;
using Lit = std::int32_t;

inline constexpr Lit mk_lit(Var v, bool sign = false) {
  return (v << 1) | static_cast<Lit>(sign);
}
inline constexpr Var lit_var(Lit l) { return l >> 1; }
inline constexpr bool lit_sign(Lit l) { return (l & 1) != 0; }
inline constexpr Lit lit_neg(Lit l) { return l ^ 1; }

enum class Status { kSat, kUnsat, kUnknown };

/// Search-control knobs. The defaults reproduce the tuned production
/// behavior; tests shrink them to exercise restarts and clause-database
/// reduction on small instances.
struct SolverConfig {
  /// Luby restart unit: restart after `restart_base * luby(i)` conflicts.
  std::int64_t restart_base = 100;
  /// First clause-database reduction fires once this many learnt
  /// clauses are live...
  std::size_t reduce_base = 8000;
  /// ...and each reduction raises the threshold by this much, so the
  /// database is allowed to grow slowly as the search matures.
  std::size_t reduce_inc = 2000;
  /// "Glue" clauses (LBD <= glue_lbd) are never dropped: clauses that
  /// connect few decision levels are the ones rediscovered most often.
  std::uint32_t glue_lbd = 2;
};

/// Outcome record of the most recent `Solver::solve` call, including
/// *why* a call came back kUnknown: its own per-call `conflict_limit`
/// (`hit_conflict_limit`) versus the shared `util::Budget` running out
/// (`budget_exhausted`). Callers that degrade on budget exhaustion use
/// the distinction to stop issuing further calls.
struct SolveStats {
  std::int64_t conflicts = 0;  ///< conflicts spent by this call
  std::uint64_t decisions = 0;
  std::uint64_t restarts = 0;
  std::uint64_t reduce_dbs = 0;       ///< clause-database reductions
  std::uint64_t learnts_dropped = 0;  ///< learnt clauses discarded
  Status status = Status::kUnknown;
  bool hit_conflict_limit = false;
  bool budget_exhausted = false;
};

/// A CDCL SAT solver in the MiniSat tradition: two-literal watches,
/// first-UIP conflict learning, VSIDS decision order, phase saving, and
/// Luby restarts. Used by the synthesis flow for equivalence checking,
/// SAT sweeping (structural choices), and don't-care computation in
/// resubstitution — the "powerful reasoning engines" of paper §IV-A1.
class Solver {
public:
  Solver();
  explicit Solver(const SolverConfig& config);

  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Add a clause. Returns false if the formula is already unsatisfiable
  /// at the root level.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solve under assumptions. `conflict_limit` < 0 means no limit;
  /// exceeding it returns kUnknown.
  Status solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_limit = -1);

  /// Model value of a variable (valid after kSat).
  bool model_value(Var v) const { return model_[v] == 1; }
  bool model_value_lit(Lit l) const {
    return model_value(lit_var(l)) != lit_sign(l);
  }

  std::int64_t num_conflicts() const { return conflicts_total_; }

  /// Attach a shared resource budget (nullptr detaches): every conflict
  /// is charged against the budget's SAT-conflict ceiling, and an
  /// exhausted budget makes `solve` return kUnknown immediately with
  /// `last_stats().budget_exhausted` set.
  void set_budget(util::Budget* budget) { budget_ = budget; }

  /// Stats of the most recent `solve` call.
  const SolveStats& last_stats() const { return last_stats_; }

private:
  static constexpr std::int8_t kTrue = 1;
  static constexpr std::int8_t kFalse = -1;
  static constexpr std::int8_t kUndef = 0;

  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
    /// Literal block distance: distinct decision levels in the clause
    /// at learning time. Low LBD = high reuse value (Audemard/Simon).
    std::uint32_t lbd = 0;
  };

  struct Watcher {
    std::int32_t clause;
    Lit blocker;
  };

  std::int8_t value(Lit l) const {
    const std::int8_t a = assigns_[lit_var(l)];
    return lit_sign(l) ? static_cast<std::int8_t>(-a) : a;
  }

  void enqueue(Lit l, std::int32_t reason);
  std::int32_t propagate();
  void analyze(std::int32_t conflict, std::vector<Lit>& learnt,
               int& backtrack_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(Clause& c);
  void attach(std::int32_t ci);
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  void reduce_learnts(SolveStats& st);
  static std::int64_t luby(std::int64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<std::int8_t> assigns_;
  std::vector<std::int8_t> model_;
  std::vector<std::int8_t> polarity_;  // saved phases
  std::vector<std::int32_t> reason_;
  std::vector<std::int32_t> level_;
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  SolverConfig config_;
  /// Adaptive reduction threshold: starts at config_.reduce_base and
  /// grows by config_.reduce_inc after each reduction.
  std::size_t reduce_threshold_ = 0;
  bool ok_ = true;
  std::int64_t conflicts_total_ = 0;
  std::vector<std::int32_t> learnt_indices_;
  SolveStats last_stats_;
  util::Budget* budget_ = nullptr;

  // scratch for analyze() / compute_lbd()
  std::vector<std::int8_t> seen_;
  std::vector<std::int32_t> lbd_levels_;
};

}  // namespace cryo::sat
