#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "util/optimize.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace cryo::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedIsBounded) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng{11};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Stats, SummaryBasics) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_THROW(geomean({1.0, 0.0}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_NEAR(percentile_sorted(sorted, 0.5), 5.0, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 1.0), 10.0, 1e-12);
}

TEST(Stats, HistogramCountsAndClamps) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1.0);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Optimize, QuadraticBowl) {
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
  EXPECT_NEAR(result.x[1], -1.0, 1e-3);
}

TEST(Optimize, Rosenbrock2D) {
  NelderMeadOptions options;
  options.max_evaluations = 20000;
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

TEST(Optimize, RejectsEmptyStart) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      std::invalid_argument);
}

TEST(Strings, SplitAndTrim) {
  const auto tokens = split("a, b,,c", ", ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[2], "c");
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(starts_with("TIEHI", "TIE"));
  EXPECT_FALSE(starts_with("T", "TIE"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Table, RenderAndCsv) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"beta, with comma", Table::pct(-0.0621)});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("-6.21 %"), std::string::npos);

  const auto path =
      (std::filesystem::temp_directory_path() / "cryo_table_test.csv")
          .string();
  t.write_csv(path);
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_NE(line.find("\"beta, with comma\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, SiFormatting) {
  EXPECT_EQ(Table::si(1.5e-9, "s", 1), "1.5 ns");
  EXPECT_EQ(Table::si(2.5e-6, "W", 1), "2.5 uW");
}

}  // namespace
