#include "opt/passes.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "logic/cuts.hpp"
#include "logic/factor.hpp"
#include "logic/tt.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"

namespace cryo::opt {

using logic::Aig;
using logic::Lit;
using logic::NodeIdx;
using logic::TtVec;

namespace {

/// Book-keep one finished pass: how often it ran and how many AND nodes
/// it removed (gains only — a pass that inflates the network records 0).
Aig record_pass(const char* pass, const Aig& input, Aig output) {
  namespace obs = util::obs;
  obs::counter(std::string{"opt."} + pass + "_runs").add();
  if (output.num_ands() < input.num_ands()) {
    obs::counter(std::string{"opt."} + pass + "_gain")
        .add(input.num_ands() - output.num_ands());
  }
  return output;
}

}  // namespace

// ----------------------------------------------------------- balance ----

namespace {

/// Collect the leaves of the maximal AND tree rooted at `lit` in the old
/// AIG: descend through non-complemented AND fanins that have a single
/// fanout (so sharing is preserved).
void collect_and_leaves(const Aig& aig,
                        const std::vector<std::uint32_t>& fanouts, Lit lit,
                        std::vector<Lit>& leaves) {
  const NodeIdx v = logic::lit_var(lit);
  if (logic::lit_compl(lit) || !aig.is_and(v) || fanouts[v] > 1) {
    leaves.push_back(lit);
    return;
  }
  collect_and_leaves(aig, fanouts, aig.fanin0(v), leaves);
  collect_and_leaves(aig, fanouts, aig.fanin1(v), leaves);
}

}  // namespace

Aig balance(const Aig& input) {
  Aig out;
  out.set_name(input.name());
  const auto fanouts = input.fanout_counts();
  std::vector<Lit> map(input.num_nodes(), logic::kConst0);
  std::vector<std::uint32_t> out_level;  // level per *new* node
  out_level.push_back(0);

  auto level_of = [&](Lit l) { return out_level[logic::lit_var(l)]; };
  auto record_levels = [&](const Aig& aig) {
    while (out_level.size() < aig.num_nodes()) {
      const auto v = static_cast<NodeIdx>(out_level.size());
      if (aig.is_and(v)) {
        out_level.push_back(
            1 + std::max(out_level[logic::lit_var(aig.fanin0(v))],
                         out_level[logic::lit_var(aig.fanin1(v))]));
      } else {
        out_level.push_back(0);
      }
    }
  };

  for (NodeIdx i = 0; i < input.num_pis(); ++i) {
    map[logic::lit_var(input.pi(i))] = out.add_pi(input.pi_name(i));
  }
  record_levels(out);

  for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
    if (!input.is_and(v)) {
      continue;
    }
    // Only build nodes that will be referenced: every AND gets built,
    // cleanup() drops dead ones afterwards. The root itself is always
    // expanded (collect_and_leaves would otherwise return a multi-fanout
    // root as its own leaf).
    std::vector<Lit> leaves;
    collect_and_leaves(input, fanouts, input.fanin0(v), leaves);
    collect_and_leaves(input, fanouts, input.fanin1(v), leaves);
    // Map leaves into the new AIG.
    std::vector<Lit> mapped;
    mapped.reserve(leaves.size());
    for (Lit l : leaves) {
      mapped.push_back(
          logic::lit_notif(map[logic::lit_var(l)], logic::lit_compl(l)));
    }
    // Huffman-style: repeatedly AND the two lowest-level operands.
    while (mapped.size() > 1) {
      std::sort(mapped.begin(), mapped.end(), [&](Lit a, Lit b) {
        return level_of(a) > level_of(b);  // descending; take from the back
      });
      const Lit a = mapped.back();
      mapped.pop_back();
      const Lit b = mapped.back();
      mapped.pop_back();
      mapped.push_back(out.land(a, b));
      record_levels(out);
    }
    map[v] = mapped.front();
  }
  for (NodeIdx i = 0; i < input.num_pos(); ++i) {
    const Lit po = input.po(i);
    out.add_po(logic::lit_notif(map[logic::lit_var(po)], logic::lit_compl(po)),
               input.po_name(i));
  }
  return record_pass("balance", input, out.cleanup());
}

// ----------------------------------------------------------- rewrite ----

Aig rewrite(const Aig& input, unsigned k) {
  logic::CutEnumerator cuts{input, k, 8};
  cuts.run();

  Aig out;
  out.set_name(input.name());
  std::vector<Lit> map(input.num_nodes(), logic::kConst0);
  for (NodeIdx i = 0; i < input.num_pis(); ++i) {
    map[logic::lit_var(input.pi(i))] = out.add_pi(input.pi_name(i));
  }

  for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
    if (!input.is_and(v)) {
      continue;
    }
    // Default implementation: direct AND of the mapped fanins.
    const Lit f0 = input.fanin0(v);
    const Lit f1 = input.fanin1(v);
    const NodeIdx base = out.num_nodes();
    Lit best = out.land(
        logic::lit_notif(map[logic::lit_var(f0)], logic::lit_compl(f0)),
        logic::lit_notif(map[logic::lit_var(f1)], logic::lit_compl(f1)));
    NodeIdx best_cost = out.num_nodes() - base;

    if (best_cost > 0) {
      for (const logic::Cut& cut : cuts.cuts(v)) {
        if (cut.size < 2 || cut.size > k) {
          continue;
        }
        // Cut leaves precede v topologically, so they are already mapped
        // (possibly to constants, which is still functionally correct).
        std::vector<Lit> leaves;
        leaves.reserve(cut.size);
        for (unsigned i = 0; i < cut.size; ++i) {
          leaves.push_back(map[cut.leaves[i]]);
        }
        const NodeIdx mark = out.num_nodes();
        const Lit cand =
            logic::build_from_tt6(out, cut.tt, cut.size, leaves);
        const NodeIdx cost = out.num_nodes() - mark;
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
          if (cost == 0) {
            break;
          }
        }
      }
    }
    map[v] = best;
  }
  for (NodeIdx i = 0; i < input.num_pos(); ++i) {
    const Lit po = input.po(i);
    out.add_po(logic::lit_notif(map[logic::lit_var(po)], logic::lit_compl(po)),
               input.po_name(i));
  }
  return record_pass("rewrite", input, out.cleanup());
}

// ------------------------------------------------ reconvergent cones ----

namespace {

/// Grow a reconvergence-driven cone from node v: start from its fanins
/// and repeatedly expand the leaf whose replacement by its fanins
/// increases the leaf set least, until `max_leaves` would be exceeded.
/// Returns the leaves; `cone_nodes` gets all internal nodes (topological
/// order, v last).
std::vector<NodeIdx> collect_cone(const Aig& aig, NodeIdx v,
                                  unsigned max_leaves,
                                  std::vector<NodeIdx>& cone_nodes) {
  std::vector<NodeIdx> leaves{logic::lit_var(aig.fanin0(v)),
                              logic::lit_var(aig.fanin1(v))};
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());

  auto leaf_cost = [&](NodeIdx leaf) -> int {
    if (!aig.is_and(leaf)) {
      return 1000;  // cannot expand a PI
    }
    int cost = -1;  // removing the leaf itself
    const NodeIdx a = logic::lit_var(aig.fanin0(leaf));
    const NodeIdx b = logic::lit_var(aig.fanin1(leaf));
    if (std::find(leaves.begin(), leaves.end(), a) == leaves.end()) {
      ++cost;
    }
    if (b != a && std::find(leaves.begin(), leaves.end(), b) == leaves.end()) {
      ++cost;
    }
    return cost;
  };

  for (;;) {
    int best_cost = 1000;
    std::size_t best_i = leaves.size();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const int c = leaf_cost(leaves[i]);
      if (c < best_cost) {
        best_cost = c;
        best_i = i;
      }
    }
    if (best_i == leaves.size() ||
        leaves.size() + static_cast<std::size_t>(std::max(best_cost, 0)) >
            max_leaves ||
        best_cost >= 2) {
      break;
    }
    const NodeIdx expand = leaves[best_i];
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(best_i));
    for (const NodeIdx f : {logic::lit_var(aig.fanin0(expand)),
                            logic::lit_var(aig.fanin1(expand))}) {
      if (std::find(leaves.begin(), leaves.end(), f) == leaves.end()) {
        leaves.push_back(f);
      }
    }
    std::sort(leaves.begin(), leaves.end());
  }

  // Internal nodes: everything between leaves and v (DFS from v).
  cone_nodes.clear();
  std::vector<NodeIdx> stack{v};
  std::vector<NodeIdx> visited;
  while (!stack.empty()) {
    const NodeIdx n = stack.back();
    stack.pop_back();
    if (std::find(visited.begin(), visited.end(), n) != visited.end()) {
      continue;
    }
    if (std::find(leaves.begin(), leaves.end(), n) != leaves.end() ||
        !aig.is_and(n)) {
      continue;
    }
    visited.push_back(n);
    stack.push_back(logic::lit_var(aig.fanin0(n)));
    stack.push_back(logic::lit_var(aig.fanin1(n)));
  }
  std::sort(visited.begin(), visited.end());
  cone_nodes = std::move(visited);
  return leaves;
}

/// Local truth table of `lit` over the cone leaves.
TtVec cone_tt(const Aig& aig, const std::vector<NodeIdx>& leaves,
              const std::vector<NodeIdx>& cone_nodes, Lit root,
              std::map<NodeIdx, TtVec>& memo) {
  const auto n = static_cast<unsigned>(leaves.size());
  if (memo.empty()) {
    for (unsigned i = 0; i < n; ++i) {
      memo.emplace(leaves[i], TtVec::variable(n, i));
    }
    memo.emplace(0, TtVec::zeros(n));
    for (const NodeIdx c : cone_nodes) {
      const Lit f0 = aig.fanin0(c);
      const Lit f1 = aig.fanin1(c);
      const TtVec& t0 = memo.at(logic::lit_var(f0));
      const TtVec& t1 = memo.at(logic::lit_var(f1));
      const TtVec a = logic::lit_compl(f0) ? ~t0 : t0;
      const TtVec b = logic::lit_compl(f1) ? ~t1 : t1;
      memo.emplace(c, a & b);
    }
  }
  const TtVec& t = memo.at(logic::lit_var(root));
  return logic::lit_compl(root) ? ~t : t;
}

}  // namespace

// ---------------------------------------------------------- refactor ----

Aig refactor(const Aig& input, unsigned max_leaves) {
  Aig out;
  out.set_name(input.name());
  const auto fanouts = input.fanout_counts();
  std::vector<Lit> map(input.num_nodes(), logic::kConst0);
  for (NodeIdx i = 0; i < input.num_pis(); ++i) {
    map[logic::lit_var(input.pi(i))] = out.add_pi(input.pi_name(i));
  }

  for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
    if (!input.is_and(v)) {
      continue;
    }
    const Lit f0 = input.fanin0(v);
    const Lit f1 = input.fanin1(v);
    const NodeIdx base = out.num_nodes();
    Lit best = out.land(
        logic::lit_notif(map[logic::lit_var(f0)], logic::lit_compl(f0)),
        logic::lit_notif(map[logic::lit_var(f1)], logic::lit_compl(f1)));
    NodeIdx best_cost = out.num_nodes() - base;

    // Refactoring pays off on multi-fanout roots of big cones; trying it
    // everywhere is wasteful but harmless — gate on node being "fresh".
    if (best_cost > 0 && fanouts[v] >= 1) {
      std::vector<NodeIdx> cone_nodes;
      const auto leaves = collect_cone(input, v, max_leaves, cone_nodes);
      if (leaves.size() >= 3 && leaves.size() <= max_leaves &&
          cone_nodes.size() > 2) {
        std::map<NodeIdx, TtVec> memo;
        const TtVec tt =
            cone_tt(input, leaves, cone_nodes, logic::make_lit(v), memo);
        std::vector<Lit> mapped;
        mapped.reserve(leaves.size());
        for (const NodeIdx l : leaves) {
          mapped.push_back(map[l]);
        }
        const NodeIdx mark = out.num_nodes();
        const Lit cand = logic::build_from_tt(out, tt, mapped);
        const NodeIdx cost = out.num_nodes() - mark;
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
    }
    map[v] = best;
  }
  for (NodeIdx i = 0; i < input.num_pos(); ++i) {
    const Lit po = input.po(i);
    out.add_po(logic::lit_notif(map[logic::lit_var(po)], logic::lit_compl(po)),
               input.po_name(i));
  }
  return record_pass("refactor", input, out.cleanup());
}

// ------------------------------------------------------------- resub ----

Aig resub(const Aig& input, unsigned max_leaves, const util::Budget* budget) {
  Aig out;
  out.set_name(input.name());
  std::vector<Lit> map(input.num_nodes(), logic::kConst0);
  for (NodeIdx i = 0; i < input.num_pis(); ++i) {
    map[logic::lit_var(input.pi(i))] = out.add_pi(input.pi_name(i));
  }

  bool early_stop = false;
  for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
    if (!input.is_and(v)) {
      continue;
    }
    // Degrade under an exhausted budget: the remaining nodes are copied
    // structurally (the plain `land` below), skipping only the windowed
    // search, so the output stays equivalent.
    if (!early_stop && budget != nullptr && (v & 0xFFu) == 0 &&
        budget->exhausted()) {
      early_stop = true;
    }
    const Lit f0 = input.fanin0(v);
    const Lit f1 = input.fanin1(v);
    const NodeIdx base = out.num_nodes();
    Lit best = out.land(
        logic::lit_notif(map[logic::lit_var(f0)], logic::lit_compl(f0)),
        logic::lit_notif(map[logic::lit_var(f1)], logic::lit_compl(f1)));
    NodeIdx best_cost = out.num_nodes() - base;

    if (best_cost > 0 && !early_stop) {
      std::vector<NodeIdx> cone_nodes;
      const auto leaves = collect_cone(input, v, max_leaves, cone_nodes);
      if (leaves.size() <= max_leaves && cone_nodes.size() >= 2) {
        std::map<NodeIdx, TtVec> memo;
        const TtVec target =
            cone_tt(input, leaves, cone_nodes, logic::make_lit(v), memo);
        // Divisors: the cone's leaves and internal nodes other than v.
        std::vector<std::pair<NodeIdx, TtVec>> divisors;
        for (const NodeIdx l : leaves) {
          divisors.emplace_back(l, memo.at(l));
        }
        for (const NodeIdx c : cone_nodes) {
          if (c != v) {
            divisors.emplace_back(c, memo.at(c));
          }
        }
        // 1-resub: v == g(d1, d2) for g in {AND, OR, XOR} with phases.
        bool done = false;
        for (std::size_t i = 0; i < divisors.size() && !done; ++i) {
          for (std::size_t j = i + 1; j < divisors.size() && !done; ++j) {
            const TtVec& a = divisors[i].second;
            const TtVec& b = divisors[j].second;
            struct Try {
              TtVec tt;
              int kind;  // 0: and, 1: or, 2: xor
              bool na, nb, no;
            };
            const std::array<Try, 9> tries = {{
                {a & b, 0, false, false, false},
                {a & ~b, 0, false, true, false},
                {~a & b, 0, true, false, false},
                {~(a | b), 0, true, true, false},  // nor = and of negs
                {a | b, 1, false, false, false},
                {a | ~b, 1, false, true, false},
                {~a | b, 1, true, false, false},
                {~(a & b), 1, true, true, false},  // nand = or of negs
                {a ^ b, 2, false, false, false},
            }};
            for (const auto& t : tries) {
              const bool eq_pos = t.tt == target;
              const bool eq_neg = !eq_pos && (~t.tt == target);
              if (!eq_pos && !eq_neg) {
                continue;
              }
              const Lit da = logic::lit_notif(map[divisors[i].first], t.na);
              const Lit db = logic::lit_notif(map[divisors[j].first], t.nb);
              const NodeIdx mark = out.num_nodes();
              Lit cand;
              if (t.kind == 0) {
                cand = out.land(da, db);
              } else if (t.kind == 1) {
                cand = out.lor(da, db);
              } else {
                cand = out.lxor(da, db);
              }
              if (eq_neg) {
                cand = logic::lit_not(cand);
              }
              const NodeIdx cost = out.num_nodes() - mark;
              if (cost < best_cost) {
                best_cost = cost;
                best = cand;
                done = true;
              }
              break;
            }
          }
        }
      }
    }
    map[v] = best;
  }
  for (NodeIdx i = 0; i < input.num_pos(); ++i) {
    const Lit po = input.po(i);
    out.add_po(logic::lit_notif(map[logic::lit_var(po)], logic::lit_compl(po)),
               input.po_name(i));
  }
  return record_pass("resub", input, out.cleanup());
}

// -------------------------------------------------------------- c2rs ----

Aig compress2rs(const Aig& input, const util::Budget* budget) {
  // Mirrors ABC's compress2rs spirit: b; rs; rw; rs; rf; b, iterated
  // while the network keeps shrinking.
  const util::obs::ScopedSpan span{"opt.c2rs"};
  Aig current = balance(input);
  for (int round = 0; round < 4; ++round) {
    if (budget != nullptr && budget->exhausted()) {
      break;  // keep the compression achieved so far
    }
    const NodeIdx before = current.num_ands();
    current = resub(current, 8, budget);
    current = rewrite(current);
    current = refactor(current);
    current = balance(current);
    if (current.num_ands() >= before) {
      break;
    }
  }
  return record_pass("c2rs", input, std::move(current));
}

}  // namespace cryo::opt
