#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cryo::util {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument{"Table row width mismatch"};
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f %%", precision, fraction * 100.0);
  return buf;
}

std::string Table::si(double value, const std::string& unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
      {1e-18, "a"},
  };
  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale || (&p == &kPrefixes[std::size(kPrefixes) - 1])) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f %s%s", precision, value / p.scale,
                    p.prefix, unit.c_str());
      return buf;
    }
  }
  return num(value, precision) + " " + unit;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << ' ';
    }
    out << "|\n";
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"cannot open CSV output: " + path};
  }
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace cryo::util
