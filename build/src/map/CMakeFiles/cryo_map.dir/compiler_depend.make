# Empty compiler generated dependencies file for cryo_map.
# This may be replaced when dependencies are built.
