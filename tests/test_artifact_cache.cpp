// Tests of util::ArtifactCache: content-address stability, exact JSON
// round-trips, corruption recovery (truncation, bit flips), concurrent
// writers racing on one key, LRU eviction, the disabled mode, and the
// end-to-end guarantee the cache exists for — a warm rerun of a cached
// flow stage (characterization, calibration) reproduces the cold run's
// outputs bit for bit while skipping all SPICE / optimizer work.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "device/calibration.hpp"
#include "device/finfet.hpp"
#include "device/measurement.hpp"
#include "device/serialize.hpp"
#include "liberty/json_io.hpp"
#include "util/artifact_cache.hpp"
#include "util/json.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cryo;
namespace fs = std::filesystem;
namespace obs = util::obs;
using util::ArtifactCache;
using util::Json;

/// Unique per-test cache root under the system temp dir, removed on
/// scope exit. Tests may run concurrently (ctest -j), so the path mixes
/// in the pid.
class ScopedCacheDir {
public:
  explicit ScopedCacheDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("cryoeda_test_" + tag + "_" + std::to_string(::getpid()))} {
    fs::remove_all(path_);
  }
  ~ScopedCacheDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

private:
  fs::path path_;
};

/// Points the process-wide cache at a temp dir for the duration of a
/// test, restoring the environment-derived configuration afterwards
/// (stages like cells::characterize consult the global instance).
class ScopedGlobalCache {
public:
  explicit ScopedGlobalCache(const fs::path& root) {
    ArtifactCache::Config config;
    config.root = root;
    ArtifactCache::global().configure(std::move(config));
  }
  ~ScopedGlobalCache() {
    ArtifactCache::global().configure(ArtifactCache::env_config());
  }
};

class ArtifactCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
};

Json sample_value() {
  Json value = Json::object();
  value["delay_s"] = Json{1.0 / 3.0};
  value["tiny"] = Json{4.9e-324};  // smallest subnormal double
  value["avogadro"] = Json{6.02214076e23};
  value["count"] = Json{42};
  value["name"] = Json{std::string{"nand2_x1"}};
  return value;
}

TEST_F(ArtifactCacheTest, KeyIsStableAndInputSensitive) {
  Json inputs = Json::object();
  inputs["temperature_k"] = Json{77.0};
  inputs["vdd"] = Json{0.7};
  const std::string key = ArtifactCache::key("stage.a", inputs);
  ASSERT_EQ(key.size(), 16u);
  for (char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << key;
  }
  // Same stage + same inputs address the same entry, always.
  EXPECT_EQ(key, ArtifactCache::key("stage.a", inputs));
  // The stage namespaces the key space.
  EXPECT_NE(key, ArtifactCache::key("stage.b", inputs));
  // Any input change moves the address.
  inputs["vdd"] = Json{0.65};
  EXPECT_NE(key, ArtifactCache::key("stage.a", inputs));
}

TEST_F(ArtifactCacheTest, StoreLoadRoundTripsDoublesExactly) {
  const ScopedCacheDir dir{"roundtrip"};
  ArtifactCache cache{{true, dir.path(), 64ull << 20}};
  const Json value = sample_value();
  const std::string key = ArtifactCache::key("stage.rt", value);

  EXPECT_FALSE(cache.load("stage.rt", key).has_value());
  cache.store("stage.rt", key, value);
  const auto loaded = cache.load("stage.rt", key);
  ASSERT_TRUE(loaded.has_value());
  // dump() is shortest-round-trip, so byte equality of the dumps is
  // bit equality of every double inside.
  EXPECT_EQ(loaded->dump(0), value.dump(0));
  EXPECT_EQ(loaded->at("tiny").as_double(), 4.9e-324);

  EXPECT_EQ(obs::counter("cache.stage.rt.misses").get(), 1u);
  EXPECT_EQ(obs::counter("cache.stage.rt.hits").get(), 1u);
  EXPECT_EQ(obs::counter("cache.stage.rt.stores").get(), 1u);
}

TEST_F(ArtifactCacheTest, DisabledCacheNeverTouchesDisk) {
  const ScopedCacheDir dir{"disabled"};
  ArtifactCache cache{{false, dir.path(), 64ull << 20}};
  const Json value = sample_value();
  const std::string key = ArtifactCache::key("stage.off", value);
  cache.store("stage.off", key, value);
  EXPECT_FALSE(cache.load("stage.off", key).has_value());
  EXPECT_FALSE(fs::exists(dir.path()));
  EXPECT_EQ(obs::counter("cache.stage.off.stores").get(), 0u);
  EXPECT_EQ(obs::counter("cache.stage.off.misses").get(), 0u);
}

TEST_F(ArtifactCacheTest, TruncatedEntryIsAMissAndIsRecomputed) {
  const ScopedCacheDir dir{"truncate"};
  ArtifactCache cache{{true, dir.path(), 64ull << 20}};
  const Json value = sample_value();
  const std::string key = ArtifactCache::key("stage.trunc", value);
  cache.store("stage.trunc", key, value);

  const fs::path entry = cache.entry_path("stage.trunc", key);
  ASSERT_TRUE(fs::exists(entry));
  fs::resize_file(entry, fs::file_size(entry) - 5);

  obs::reset();
  int computes = 0;
  const Json result =
      cache.get_or_compute("stage.trunc", value, [&] {
        ++computes;
        return sample_value();
      });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(result.dump(0), value.dump(0));
  EXPECT_EQ(obs::counter("cache.corrupt").get(), 1u);
  EXPECT_EQ(obs::counter("cache.stage.trunc.misses").get(), 1u);

  // The recompute re-stored a valid entry: the next lookup hits.
  const auto again = cache.load("stage.trunc", key);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(0), value.dump(0));
}

TEST_F(ArtifactCacheTest, BitFlippedEntryIsAMissAndIsDeleted) {
  const ScopedCacheDir dir{"bitflip"};
  ArtifactCache cache{{true, dir.path(), 64ull << 20}};
  const Json value = sample_value();
  const std::string key = ArtifactCache::key("stage.flip", value);
  cache.store("stage.flip", key, value);

  const fs::path entry = cache.entry_path("stage.flip", key);
  std::string raw;
  {
    std::ifstream in{entry, std::ios::binary};
    raw.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
  }
  // Flip one bit in the middle of the payload (past the header line).
  const std::size_t pos = raw.find('\n') + 1 + 3;
  ASSERT_LT(pos, raw.size());
  raw[pos] = static_cast<char>(raw[pos] ^ 0x01);
  {
    std::ofstream out{entry, std::ios::binary | std::ios::trunc};
    out << raw;
  }

  obs::reset();
  EXPECT_FALSE(cache.load("stage.flip", key).has_value());
  EXPECT_EQ(obs::counter("cache.corrupt").get(), 1u);
  EXPECT_FALSE(fs::exists(entry)) << "corrupt entry must be deleted";
}

TEST_F(ArtifactCacheTest, ConcurrentWritersOnOneKeyLeaveOneValidEntry) {
  const ScopedCacheDir dir{"race"};
  ArtifactCache cache{{true, dir.path(), 64ull << 20}};
  const Json inputs = sample_value();
  const std::string key = ArtifactCache::key("stage.race", inputs);
  constexpr std::size_t kWorkers = 32;

  util::parallel_for(
      kWorkers,
      [&](std::size_t) {
        const Json got = cache.get_or_compute("stage.race", inputs,
                                              [&] { return sample_value(); });
        EXPECT_EQ(got.dump(0), inputs.dump(0));
      },
      /*threads=*/8);

  // Every lookup resolved to exactly one of hit / miss, no lost updates
  // in the counters, and the surviving entry is valid.
  EXPECT_EQ(obs::counter("cache.stage.race.hits").get() +
                obs::counter("cache.stage.race.misses").get(),
            kWorkers);
  EXPECT_EQ(obs::counter("cache.corrupt").get(), 0u);
  const auto loaded = cache.load("stage.race", key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dump(0), inputs.dump(0));

  // No temp litter: the stage dir holds exactly the renamed entry.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir.path() / "stage.race")) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(ArtifactCacheTest, LruEvictionDropsOldestEntriesFirst) {
  const ScopedCacheDir dir{"lru"};
  // Generous cap while populating so stores never auto-evict.
  ArtifactCache cache{{true, dir.path(), 64ull << 20}};
  Json value = sample_value();
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    value["count"] = Json{i};
    const std::string key = ArtifactCache::key("stage.lru", value);
    cache.store("stage.lru", key, value);
    keys.push_back(key);
  }
  // Explicit, strictly increasing mtimes (all safely in the past, so a
  // later hit-refresh to "now" lands newest) make the LRU order exact
  // regardless of filesystem timestamp granularity.
  const auto base = fs::file_time_type::clock::now();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    fs::last_write_time(
        cache.entry_path("stage.lru", keys[i]),
        base - std::chrono::seconds(600 - 10 * static_cast<int>(i)));
  }
  const std::uint64_t entry_size =
      fs::file_size(cache.entry_path("stage.lru", keys[0]));

  obs::reset();
  // Re-target the same root with a cap that holds ~4 entries; eviction
  // must delete the oldest and stop at 3/4 of the cap.
  cache.configure({true, dir.path(), 4 * entry_size + 8});
  const std::size_t evicted = cache.evict_to_cap();
  EXPECT_GE(evicted, 2u);
  EXPECT_EQ(obs::counter("cache.evictions").get(), evicted);
  for (std::size_t i = 0; i < evicted; ++i) {
    EXPECT_FALSE(fs::exists(cache.entry_path("stage.lru", keys[i])))
        << "oldest entry " << i << " should be evicted";
  }
  for (std::size_t i = evicted; i < keys.size(); ++i) {
    EXPECT_TRUE(fs::exists(cache.entry_path("stage.lru", keys[i])))
        << "newer entry " << i << " should survive";
  }
  // A hit refreshes recency: touch the now-oldest survivor, then evict
  // with a tighter cap — it must outlive an untouched newer entry.
  ASSERT_TRUE(cache.load("stage.lru", keys[evicted]).has_value());
  cache.configure({true, dir.path(), 2 * entry_size + 8});
  cache.evict_to_cap();
  EXPECT_TRUE(fs::exists(cache.entry_path("stage.lru", keys[evicted])));
}

TEST_F(ArtifactCacheTest, SignoffReportHasOnlyGauges) {
  obs::counter("test.signoff_counter").add(7);
  obs::gauge("experiment.x.baseline.delay_s").set(1.25e-10);
  obs::histogram("test.signoff_hist").record(1.0);
  const Json report = obs::report_json(obs::ReportOptions::signoff());
  EXPECT_NE(report.find("schema"), nullptr);
  EXPECT_NE(report.find("gauges"), nullptr);
  EXPECT_EQ(report.find("counters"), nullptr);
  EXPECT_EQ(report.find("histograms"), nullptr);
  EXPECT_EQ(report.find("meta"), nullptr);
  EXPECT_EQ(report.find("spans"), nullptr);
  const std::string first = report.dump(2);
  // Work counters moving (as they do between cold and warm runs) must
  // not perturb the signoff bytes.
  obs::counter("test.signoff_counter").add(1000);
  obs::counter("spice.transient_runs").add(12345);
  EXPECT_EQ(obs::report_json(obs::ReportOptions::signoff()).dump(2), first);
}

/// The tentpole guarantee, at characterization granularity: a warm rerun
/// of `cells::characterize` serves every cell from the artifact cache —
/// zero SPICE transients — and the resulting library is bit-identical
/// to the cold run's (fingerprint and per-cell JSON serialization).
TEST_F(ArtifactCacheTest, WarmCharacterizationSkipsSpiceBitIdentically) {
  const ScopedCacheDir dir{"char"};
  const ScopedGlobalCache global{dir.path()};

  cells::CharOptions options;
  options.slews = {4e-12, 16e-12};
  options.loads = {2e-16, 2e-15};
  options.transient_steps = 80;
  options.include_sequential = false;
  options.threads = 1;
  const auto full = cells::mini_catalog();
  const std::vector<cells::CellSpec> catalog{full.begin(), full.begin() + 3};

  const liberty::Library cold = cells::characterize(catalog, 300.0, options);
  const std::uint64_t cold_transients =
      obs::counter("spice.transient_runs").get();
  ASSERT_GT(cold_transients, 0u);
  EXPECT_EQ(obs::counter("cache.cells.characterize.stores").get(),
            catalog.size());

  obs::reset();
  const liberty::Library warm = cells::characterize(catalog, 300.0, options);
  EXPECT_EQ(obs::counter("spice.transient_runs").get(), 0u)
      << "warm run must not re-run SPICE";
  EXPECT_EQ(obs::counter("cache.cells.characterize.hits").get(),
            catalog.size());
  EXPECT_EQ(obs::counter("cache.cells.characterize.misses").get(), 0u);

  EXPECT_EQ(liberty::fingerprint(cold), liberty::fingerprint(warm));
  ASSERT_EQ(cold.cells.size(), warm.cells.size());
  for (std::size_t i = 0; i < cold.cells.size(); ++i) {
    EXPECT_EQ(liberty::to_json(cold.cells[i]).dump(0),
              liberty::to_json(warm.cells[i]).dump(0))
        << cold.cells[i].name;
  }
}

/// Same guarantee for device calibration: the warm rerun returns the
/// fitted parameter vector bit for bit without re-running Nelder–Mead.
TEST_F(ArtifactCacheTest, WarmCalibrationIsBitExact) {
  const ScopedCacheDir dir{"calib"};
  const ScopedGlobalCache global{dir.path()};

  const device::ReferenceDevice ref{device::Polarity::kN};
  device::MeasurementPlan plan;
  plan.temperatures_k = {300.0, 77.0};
  plan.vgs_steps = 9;
  const auto set = ref.measure(plan);

  const auto cold = device::calibrate(set, device::nominal_nfet_5nm(), 400);
  EXPECT_EQ(obs::counter("cache.device.calibrate.stores").get(), 1u);

  obs::reset();
  const auto warm = device::calibrate(set, device::nominal_nfet_5nm(), 400);
  EXPECT_EQ(obs::counter("cache.device.calibrate.hits").get(), 1u);
  EXPECT_EQ(obs::counter("cache.device.calibrate.misses").get(), 0u);

  EXPECT_EQ(device::to_json(cold).dump(0), device::to_json(warm).dump(0));
  EXPECT_EQ(cold.rms_log_error, warm.rms_log_error);
  EXPECT_EQ(cold.evaluations, warm.evaluations);
  EXPECT_EQ(cold.params.vth300, warm.params.vth300);
}

}  // namespace
