// Library characterization walkthrough: build transistor-level netlists
// for a handful of standard cells, characterize them at several
// temperatures over the 7x7 slew/load grid, and write industry-standard
// liberty files — the paper's §III pipeline, end to end.
//
// Writes quickstart_<T>K.lib files into the working directory.

#include <cstdio>

#include "cells/characterize.hpp"
#include "liberty/library.hpp"

using namespace cryo;

int main() {
  // A representative slice of the catalog.
  std::vector<cells::CellSpec> specs;
  for (const auto& spec : cells::standard_catalog()) {
    if (spec.name == "INV_X1" || spec.name == "NAND2_X1" ||
        spec.name == "NOR2_X2" || spec.name == "AOI21_X1" ||
        spec.name == "XOR2_X1" || spec.name == "MUX2_X1" ||
        spec.name == "DFF_X1") {
      specs.push_back(spec);
    }
  }
  std::printf("characterizing %zu cells at four temperatures...\n\n",
              specs.size());

  for (const double temp : {300.0, 200.0, 77.0, 10.0}) {
    const auto lib = cells::characterize(specs, temp, {});
    const std::string path =
        "quickstart_" + std::to_string(static_cast<int>(temp)) + "K.lib";
    liberty::write_liberty(lib, path);

    std::printf("--- %3.0f K (written to %s) ---\n", temp, path.c_str());
    std::printf("%-10s %-12s %-12s %-12s %-10s\n", "cell", "delay[ps]",
                "slew[ps]", "energy[fJ]", "leak[pW]");
    for (const auto& cell : lib.cells) {
      std::printf("%-10s %-12.2f %-12.2f %-12.3f %-10.4g\n",
                  cell.name.c_str(),
                  cell.typical_delay(10e-12, 1e-15) * 1e12,
                  cell.arcs.empty()
                      ? 0.0
                      : cell.arcs[0].rise_transition.lookup(10e-12, 1e-15) *
                            1e12,
                  cell.typical_energy(10e-12, 1e-15) * 1e15,
                  cell.leakage_power * 1e12);
    }
    std::printf("\n");
  }
  std::printf(
      "Note how delay and energy barely move while leakage collapses by\n"
      "orders of magnitude — the physics behind the cryogenic-aware cost\n"
      "functions.\n");
  return 0;
}
