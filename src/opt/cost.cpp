#include "opt/cost.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace cryo::opt {

std::string to_string(CostPriority priority) {
  switch (priority) {
    case CostPriority::kBaselinePowerAware:
      return "baseline-power-aware";
    case CostPriority::kPowerAreaDelay:
      return "p->a->d";
    case CostPriority::kPowerDelayArea:
      return "p->d->a";
  }
  return "?";
}

std::string short_name(CostPriority priority) {
  switch (priority) {
    case CostPriority::kBaselinePowerAware:
      return "baseline";
    case CostPriority::kPowerAreaDelay:
      return "pad";
    case CostPriority::kPowerDelayArea:
      return "pda";
  }
  return "?";
}

std::optional<CostPriority> priority_from_string(std::string_view text) {
  for (const auto priority :
       {CostPriority::kBaselinePowerAware, CostPriority::kPowerAreaDelay,
        CostPriority::kPowerDelayArea}) {
    if (text == short_name(priority) || text == to_string(priority)) {
      return priority;
    }
  }
  return std::nullopt;
}

namespace {

/// -1: a better, +1: b better, 0: tie within epsilon.
int compare(double a, double b, double epsilon) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
  if (a < b - epsilon * scale) {
    return -1;
  }
  if (b < a - epsilon * scale) {
    return 1;
  }
  return 0;
}

}  // namespace

bool better(const Cost& a, const Cost& b, CostPriority priority,
            double epsilon) {
  std::array<std::pair<double, double>, 3> keys{};
  switch (priority) {
    case CostPriority::kBaselinePowerAware:
      keys = {{{a.area, b.area}, {a.delay, b.delay}, {a.power, b.power}}};
      break;
    case CostPriority::kPowerAreaDelay:
      keys = {{{a.power, b.power}, {a.area, b.area}, {a.delay, b.delay}}};
      break;
    case CostPriority::kPowerDelayArea:
      keys = {{{a.power, b.power}, {a.delay, b.delay}, {a.area, b.area}}};
      break;
  }
  for (const auto& [ka, kb] : keys) {
    const int c = compare(ka, kb, epsilon);
    if (c != 0) {
      return c < 0;
    }
  }
  // Full tie within thresholds: break strictly on the primary key.
  return keys[0].first < keys[0].second;
}

}  // namespace cryo::opt
