#pragma once

#include <unordered_map>
#include <vector>

#include "device/finfet.hpp"
#include "spice/circuit.hpp"
#include "spice/linear.hpp"

namespace cryo::spice {

/// Transient analysis options.
struct TransientOptions {
  double t_stop = 1e-9;      ///< simulation end time [s]
  int steps = 200;           ///< fixed trapezoidal steps
  double gmin = 1e-12;       ///< convergence shunt conductance [S]
  int max_newton = 60;       ///< Newton iterations per step
  double abstol = 1e-11;     ///< residual current tolerance [A]
  double vstep_limit = 0.3;  ///< per-iteration voltage damping [V]
};

/// A recorded node waveform.
struct Trace {
  NodeId node = kGround;
  std::vector<double> values;  ///< one sample per time point
};

/// Result of a transient run.
struct TransientResult {
  std::vector<double> times;
  std::vector<Trace> traces;
  /// Energy delivered by each source node over the run [J]
  /// (positive = the source injected energy into the circuit).
  std::unordered_map<NodeId, double> source_energy;
  /// Charge delivered by each source node [C].
  std::unordered_map<NodeId, double> source_charge;

  const Trace& trace(NodeId node) const;
};

/// Newton–Raphson / trapezoidal transistor-level simulator.
///
/// The temperature is fixed per instance: all FinFET models are
/// instantiated at construction with their per-temperature derived
/// quantities precomputed — this is what makes characterizing the same
/// netlist at 300 K and 10 K a pure re-run with a different `temperature`.
class Simulator {
public:
  Simulator(const Circuit& circuit, double temperature_k);

  /// DC operating point at waveform time `time` (default: t = 0 values).
  /// Returns the full node-voltage vector (index = NodeId).
  /// Falls back to source stepping if plain Newton fails; throws
  /// std::runtime_error if no operating point can be found.
  std::vector<double> dc(double time = 0.0);

  /// Total current delivered by the source driving `node` at the given
  /// operating point [A] (used for leakage measurement).
  double source_current(const std::vector<double>& voltages,
                        NodeId node) const;

  /// Transient run from the DC operating point at t = 0.
  TransientResult transient(const TransientOptions& options,
                            const std::vector<NodeId>& probes);

  double temperature() const { return temperature_; }

private:
  /// Trapezoidal companion model of one capacitor for the current step.
  struct CapStamp {
    NodeId a;
    NodeId b;
    double geq;  ///< 2C/h
    double ieq;  ///< history current source
  };

  /// Compute per-node current *leaving* each node through all elements,
  /// and accumulate the free-node Jacobian when `jac` is non-null.
  void assemble(const std::vector<double>& v, double gmin,
                const std::vector<CapStamp>* caps,
                std::vector<double>& leaving, DenseMatrix* jac) const;

  /// Newton iteration on the free nodes; driven nodes of `v` must already
  /// hold their prescribed values. Returns true on convergence.
  bool newton_solve(std::vector<double>& v, double gmin,
                    const TransientOptions& options,
                    const std::vector<CapStamp>* caps) const;

  const Circuit& circuit_;
  double temperature_;
  std::vector<device::FinFetModel> models_;  // parallel to circuit_.fets()
  std::vector<int> free_index_;              // NodeId -> unknown index or -1
  std::vector<NodeId> free_nodes_;
};

}  // namespace cryo::spice
