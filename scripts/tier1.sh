#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite,
# then rebuild the parallel tests under ThreadSanitizer and run them.
#
#   scripts/tier1.sh [build-dir]
#
# CRYOEDA_THREADS is honored by the parallel characterization / flow
# drivers; the suite itself asserts thread-count independence.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: build + ctest =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== tier-1: ThreadSanitizer pass over the parallel tests =="
cmake -B "$BUILD-tsan" -S . -DCRYOEDA_TSAN=ON >/dev/null
cmake --build "$BUILD-tsan" -j "$(nproc)" --target test_parallel
"$BUILD-tsan"/tests/test_parallel

echo "tier-1: OK"
