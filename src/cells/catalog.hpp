#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace cryo::cells {

/// Pull-down network expression of one static-CMOS stage: AND = series
/// transistors, OR = parallel branches. The pull-up network is the dual.
struct PdnExpr {
  enum class Kind { kInput, kSeries, kParallel };
  Kind kind = Kind::kInput;
  int input = -1;  ///< stage-input index for kInput
  std::vector<PdnExpr> children;

  static PdnExpr in(int index);
  static PdnExpr series(std::vector<PdnExpr> parts);
  static PdnExpr parallel(std::vector<PdnExpr> parts);

  /// Max series stack depth (for fin sizing).
  unsigned depth() const;
  unsigned num_devices() const;
  /// Truth value given stage-input values (bit i of `minterm`).
  bool conducts(unsigned minterm) const;
};

/// One complementary static-CMOS stage inside a cell.
struct StageSpec {
  std::string out;                  ///< output node name
  std::vector<std::string> inputs;  ///< cell pins or internal node names
  PdnExpr pdn;
  int nfins_n = 2;  ///< NMOS fins per device
  int nfins_p = 3;  ///< PMOS fins per device
};

/// A standard-cell specification: schematic + interface + function.
struct CellSpec {
  std::string name;
  std::vector<std::string> inputs;  ///< ordered cell input pins
  std::string output = "Y";
  std::vector<StageSpec> stages;    ///< topologically ordered
  bool sequential = false;          ///< D-flip-flop / latch family
  bool level_sensitive = false;     ///< latch (sequential only)
  double area = 0.0;                ///< [um^2], derived from fin count

  /// Truth table of the output over `inputs` (combinational cells,
  /// <= 6 inputs).
  std::uint64_t truth_table() const;
  /// Liberty function string equivalent to the truth table.
  std::string function_string() const;
  unsigned total_fins() const;
};

/// The full cryoeda standard-cell catalog (~200 combinational and
/// sequential cells across drive strengths), mirroring the breadth of the
/// ASAP7 cell set the paper characterizes.
std::vector<CellSpec> standard_catalog();

/// A small catalog (a dozen cells) for fast tests.
std::vector<CellSpec> mini_catalog();

/// Canonical JSON of a cell spec: every schematic/interface detail that
/// can change the characterized tables (stages, networks, fin counts,
/// area, pin order). This is the spec component of the characterization
/// artifact-cache key.
util::Json to_json(const CellSpec& spec);

}  // namespace cryo::cells
