#include <gtest/gtest.h>

#include "liberty/function.hpp"
#include "liberty/library.hpp"
#include "liberty/nldm.hpp"
#include "util/error.hpp"

namespace {

using namespace cryo::liberty;

NldmTable small_table() {
  // f(x, y) = x + 10*y on the grid {0,1} x {0,2}.
  return NldmTable{{0.0, 1.0}, {0.0, 2.0}, {0.0, 20.0, 1.0, 21.0}};
}

TEST(Nldm, ExactGridPoints) {
  const auto t = small_table();
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 21.0);
}

TEST(Nldm, BilinearInterior) {
  const auto t = small_table();
  EXPECT_NEAR(t.lookup(0.5, 1.0), 10.5, 1e-12);
}

TEST(Nldm, LinearExtrapolationOutside) {
  const auto t = small_table();
  // Along x: slope 1 -> at x=2, y=0: 2.
  EXPECT_NEAR(t.lookup(2.0, 0.0), 2.0, 1e-12);
  // Along y: slope 10 -> at y=4, x=0: 40.
  EXPECT_NEAR(t.lookup(0.0, 4.0), 40.0, 1e-12);
  // Below the grid.
  EXPECT_NEAR(t.lookup(-1.0, 0.0), -1.0, 1e-12);
}

TEST(Nldm, ScalarTable) {
  const auto t = NldmTable::scalar(7.0);
  EXPECT_DOUBLE_EQ(t.lookup(123.0, 456.0), 7.0);
}

TEST(Nldm, RejectsMalformed) {
  EXPECT_THROW(NldmTable({1.0, 0.0}, {0.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(NldmTable({0.0}, {0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Function, BasicOperators) {
  const std::vector<std::string> ab{"A", "B"};
  EXPECT_EQ(function_truth_table("A&B", ab), 0x8u);
  EXPECT_EQ(function_truth_table("A|B", ab), 0xEu);
  EXPECT_EQ(function_truth_table("A^B", ab), 0x6u);
  EXPECT_EQ(function_truth_table("!(A&B)", ab), 0x7u);
  EXPECT_EQ(function_truth_table("A'", ab), 0x5u);
  EXPECT_EQ(function_truth_table("A B", ab), 0x8u);  // juxtaposition = AND
  EXPECT_EQ(function_truth_table("1", ab), 0xFu);
  EXPECT_EQ(function_truth_table("0", ab), 0x0u);
}

TEST(Function, PrecedenceAndParens) {
  const std::vector<std::string> abc{"A", "B", "C"};
  // AND binds tighter than OR.
  EXPECT_EQ(function_truth_table("A|B&C", abc),
            function_truth_table("A|(B&C)", abc));
  EXPECT_NE(function_truth_table("A|B&C", abc),
            function_truth_table("(A|B)&C", abc));
}

TEST(Function, Errors) {
  EXPECT_THROW(function_truth_table("A&", {"A"}), std::runtime_error);
  EXPECT_THROW(function_truth_table("Z", {"A"}), std::runtime_error);
  EXPECT_THROW(function_truth_table("(A", {"A"}), std::runtime_error);
}

TEST(Function, InputsDiscovery) {
  const auto names = function_inputs("(A1&A2)|!B1");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "A1");
  EXPECT_EQ(names[2], "B1");
}

Library sample_library() {
  Library lib;
  lib.name = "test_lib";
  lib.temperature_k = 10.0;
  lib.voltage = 0.7;

  Cell inv;
  inv.name = "INV_X1";
  inv.area = 0.06;
  inv.leakage_power = 1.5e-12;
  Pin a;
  a.name = "A";
  a.capacitance = 0.3e-15;
  Pin y;
  y.name = "Y";
  y.is_output = true;
  y.function = "!A";
  inv.pins = {a, y};
  TimingArc arc;
  arc.related_pin = "A";
  arc.sense = ArcSense::kNegative;
  arc.cell_rise = NldmTable{{1e-12, 2e-12}, {1e-16, 2e-16},
                            {3e-12, 4e-12, 5e-12, 6e-12}};
  arc.cell_fall = arc.cell_rise;
  arc.rise_transition = arc.cell_rise;
  arc.fall_transition = arc.cell_rise;
  inv.arcs.push_back(arc);
  PowerArc parc;
  parc.related_pin = "A";
  parc.rise_power = NldmTable{{1e-12, 2e-12}, {1e-16, 2e-16},
                              {1e-16, 2e-16, 3e-16, 4e-16}};
  parc.fall_power = parc.rise_power;
  inv.power_arcs.push_back(parc);
  lib.cells.push_back(inv);

  Cell dff;
  dff.name = "DFF_X1";
  dff.is_sequential = true;
  dff.next_state = "D";
  dff.clocked_on = "CK";
  dff.area = 0.3;
  Pin d;
  d.name = "D";
  d.capacitance = 0.2e-15;
  Pin ck;
  ck.name = "CK";
  ck.capacitance = 0.25e-15;
  Pin q;
  q.name = "Q";
  q.is_output = true;
  q.function = "IQ";
  dff.pins = {d, ck, q};
  lib.cells.push_back(dff);
  return lib;
}

TEST(Liberty, RoundTripPreservesEverything) {
  const Library lib = sample_library();
  const std::string text = to_liberty(lib);
  const Library parsed = parse_liberty(text);

  EXPECT_EQ(parsed.name, lib.name);
  EXPECT_NEAR(parsed.temperature_k, lib.temperature_k, 1e-9);
  EXPECT_NEAR(parsed.voltage, lib.voltage, 1e-9);
  ASSERT_EQ(parsed.cells.size(), lib.cells.size());

  const Cell* inv = parsed.find("INV_X1");
  ASSERT_NE(inv, nullptr);
  EXPECT_NEAR(inv->area, 0.06, 1e-9);
  EXPECT_NEAR(inv->leakage_power, 1.5e-12, 1e-18);
  ASSERT_EQ(inv->arcs.size(), 1u);
  EXPECT_EQ(inv->arcs[0].related_pin, "A");
  EXPECT_EQ(inv->arcs[0].sense, ArcSense::kNegative);
  // Table values survive the unit conversion round-trip.
  EXPECT_NEAR(inv->arcs[0].cell_rise.lookup(1e-12, 1e-16), 3e-12, 1e-17);
  EXPECT_NEAR(inv->arcs[0].cell_rise.lookup(2e-12, 2e-16), 6e-12, 1e-17);
  ASSERT_EQ(inv->power_arcs.size(), 1u);
  EXPECT_NEAR(inv->power_arcs[0].rise_power.lookup(2e-12, 2e-16), 4e-16,
              1e-22);
  const Pin* a = inv->find_pin("A");
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(a->capacitance, 0.3e-15, 1e-21);
  EXPECT_EQ(inv->output_pin()->function, "!A");

  const Cell* dff = parsed.find("DFF_X1");
  ASSERT_NE(dff, nullptr);
  EXPECT_TRUE(dff->is_sequential);
  EXPECT_EQ(dff->next_state, "D");
}

TEST(Liberty, WriterKeepsFullDoublePrecision) {
  // The default ostream precision (6 significant digits) used to
  // quantize every table value at ~1e-6 relative, so a library loaded
  // from the .lib cache differed from the freshly characterized one and
  // warm runs drifted off cold runs. The writer emits max_digits10
  // digits: a value survives the write -> parse round trip to within an
  // ulp of the unit conversion.
  Library lib = sample_library();
  const double awkward = 1.2244754282154207e-12;
  lib.cells[0].arcs[0].cell_rise = NldmTable{{1e-12}, {1e-16}, {awkward}};
  const Library parsed = parse_liberty(to_liberty(lib));
  const double got =
      parsed.find("INV_X1")->arcs[0].cell_rise.lookup(1e-12, 1e-16);
  EXPECT_NEAR(got, awkward, awkward * 1e-15);
}

TEST(Liberty, ParserHandlesCommentsAndContinuations) {
  const std::string text = R"(
/* a comment */
library (demo) {
  nom_voltage : 0.7;
  temperature_kelvin : 300;
  cell (BUF) {
    area : 0.1;
    pin (A) { direction : input; capacitance : 0.5; }
    pin (Y) { direction : output; function : "A"; }
  }
}
)";
  const Library lib = parse_liberty(text);
  EXPECT_EQ(lib.name, "demo");
  ASSERT_EQ(lib.cells.size(), 1u);
  EXPECT_EQ(lib.cells[0].name, "BUF");
}

TEST(Liberty, ParserRejectsGarbage) {
  EXPECT_THROW(parse_liberty("not liberty at all"), std::runtime_error);
  EXPECT_THROW(parse_liberty("library (x) { cell (y) {"), std::runtime_error);
}

TEST(Liberty, ParserThrowsOnTruncatedInputInsteadOfHanging) {
  // Input ending mid-attribute-value / mid-argument-list used to spin
  // forever appending empty tokens (the tokenizer returns "" at EOF),
  // allocating without bound. The contract is parse-or-throw.
  EXPECT_THROW(parse_liberty("library (x) { nom_voltage : 0.7"),
               std::runtime_error);
  EXPECT_THROW(parse_liberty("library (x) { index_1 (\"1, 2\""),
               std::runtime_error);
  EXPECT_THROW(parse_liberty("library (x"), std::runtime_error);
}

// Malformed numeric attributes used to reach raw std::stod, which
// aborts with std::invalid_argument / std::out_of_range carrying zero
// context. They must surface as cryo::Error{kIo} (exit 3) naming the
// cell/pin/attribute, so a corrupted characterization cache reads as a
// bad input file, not an internal crash.
void expect_io_error(const std::string& text, const std::string& needle) {
  try {
    parse_liberty(text);
    FAIL() << "expected Error{kIo} for: " << text;
  } catch (const cryo::Error& e) {
    EXPECT_EQ(e.kind(), cryo::ErrorKind::kIo);
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message '" << what << "' lacks '" << needle << "'";
  }
}

TEST(Liberty, MalformedNumbersAreIoErrorsWithAttributeContext) {
  expect_io_error("library (x) { cell (INV) { area : banana; } }",
                  "cell 'INV' area");
  expect_io_error("library (x) { cell (INV) { area : banana; } }", "banana");
  expect_io_error(
      "library (x) { cell (NAND2) { cell_leakage_power : 1.2.3; } }",
      "cell 'NAND2' cell_leakage_power");
  expect_io_error(
      "library (x) { cell (INV) { pin (A) { direction : input; "
      "capacitance : 2e; } } }",
      "pin 'A' capacitance");
  expect_io_error("library (x) { nom_temperature : cold; }",
                  "nom_temperature");
  expect_io_error("library (x) { temperature_kelvin : 4K; }",
                  "temperature_kelvin");
  expect_io_error("library (x) { nom_voltage : 0v7; }", "nom_voltage");
  // Overflow and non-finite values are as unusable as garbage text.
  expect_io_error("library (x) { cell (INV) { area : 1e999; } }",
                  "cell 'INV' area");
  expect_io_error("library (x) { nom_voltage : nan; }", "nom_voltage");
}

TEST(Liberty, MalformedTableNumbersNameTheTable) {
  expect_io_error(
      "library (x) { cell (INV) { pin (Y) { direction : output; "
      "timing () { cell_rise (t) { index_1 (\"0.1, oops\"); } } } } }",
      "cell 'INV' pin 'Y' cell_rise index_1");
  expect_io_error(
      "library (x) { cell (INV) { pin (Y) { direction : output; "
      "timing () { cell_fall (t) { values (\"0.1, 0.2x\"); } } } } }",
      "cell_fall values");
  expect_io_error(
      "library (x) { cell (INV) { pin (Y) { direction : output; "
      "internal_power () { rise_power (t) { index_2 (\"bad\"); } } } } }",
      "rise_power index_2");
}

TEST(Liberty, WellFormedNumbersStillParse) {
  const Library lib = parse_liberty(
      "library (x) { nom_temperature : -195.8; nom_voltage : 0.55;\n"
      "  cell (INV) { area : 0.798; cell_leakage_power : 0.0013;\n"
      "    pin (A) { direction : input; capacitance : 0.0008; } } }");
  EXPECT_NEAR(lib.temperature_k, -195.8 + 273.15, 1e-9);
  EXPECT_DOUBLE_EQ(lib.voltage, 0.55);
  ASSERT_EQ(lib.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(lib.cells[0].area, 0.798);
}

TEST(Cell, Helpers) {
  const Library lib = sample_library();
  const Cell& inv = lib.cells[0];
  EXPECT_EQ(inv.input_names(), std::vector<std::string>{"A"});
  EXPECT_NE(inv.arc_from("A"), nullptr);
  EXPECT_EQ(inv.arc_from("Z"), nullptr);
  EXPECT_GT(inv.typical_delay(1.5e-12, 1.5e-16), 0.0);
  EXPECT_GT(inv.typical_energy(1.5e-12, 1.5e-16), 0.0);
}

}  // namespace
