# Empty dependencies file for synthesis_cli.
# This may be replaced when dependencies are built.
