#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cryo::util {

/// Split on any of the given delimiter characters; empty tokens dropped.
std::vector<std::string> split(std::string_view text, std::string_view delims);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cryo::util
