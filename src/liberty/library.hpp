#pragma once

#include <string>
#include <vector>

#include "liberty/cell.hpp"

namespace cryo::liberty {

/// A characterized standard-cell library at one operating corner.
struct Library {
  std::string name;
  double temperature_k = 300.0;
  double voltage = 0.7;
  std::vector<Cell> cells;

  const Cell* find(const std::string& cell_name) const;
  Cell* find(const std::string& cell_name);
};

/// Serialize to liberty text (industry ".lib" format).
std::string to_liberty(const Library& library);

/// Write liberty text to a file. Throws std::runtime_error on I/O failure.
void write_liberty(const Library& library, const std::string& path);

/// Parse liberty text produced by `to_liberty` (and structurally similar
/// liberty files). Throws std::runtime_error on syntax errors.
Library parse_liberty(const std::string& text);

/// Read and parse a liberty file.
Library read_liberty(const std::string& path);

}  // namespace cryo::liberty
