#include "device/physics.hpp"

#include <cmath>
#include <stdexcept>

namespace cryo::device {

double thermal_voltage(double temperature_k) {
  if (temperature_k <= 0.0) {
    throw std::invalid_argument{"temperature must be positive"};
  }
  return kBoltzmann * temperature_k / kElementaryCharge;
}

double effective_thermal_voltage(double temperature_k, double band_tail_v) {
  const double vt = thermal_voltage(temperature_k);
  if (band_tail_v <= 0.0) {
    return vt;
  }
  const double x = band_tail_v / vt;
  // tanh saturates; for large x avoid wasteful exp evaluation.
  if (x > 30.0) {
    return band_tail_v;
  }
  return band_tail_v / std::tanh(x);
}

double vth_shift(double temperature_k, double kvt, double beta) {
  const double dt = kRoomTemperature - temperature_k;
  return kvt * dt * (1.0 - beta * dt / (2.0 * kRoomTemperature));
}

double mobility_factor(double temperature_k, double r_inf) {
  if (r_inf <= 0.0) {
    throw std::invalid_argument{"mobility saturation ratio must be positive"};
  }
  const double phonon = std::pow(temperature_k / kRoomTemperature, 1.5);
  return 1.0 / (phonon + 1.0 / r_inf);
}

double vsat_factor(double temperature_k, double vsat_gain) {
  // Linear rise with temperature drop, saturating like the mobility.
  const double frac = (kRoomTemperature - temperature_k) / kRoomTemperature;
  return 1.0 + vsat_gain * frac;
}

double cap_factor(double temperature_k, double cap_coeff) {
  const double frac = (kRoomTemperature - temperature_k) / kRoomTemperature;
  return 1.0 - cap_coeff * frac;
}

double subthreshold_slope(double temperature_k, double ideality,
                          double band_tail_v) {
  return ideality * effective_thermal_voltage(temperature_k, band_tail_v) *
         std::log(10.0);
}

}  // namespace cryo::device
