// Tests of the robustness layer: the cryo::Error taxonomy and its exit
// codes, the deterministic util::faultinject registry (spec parsing,
// every-N / once@K arithmetic, per-site counters), every fault site the
// flow wires (cache I/O, liberty parsing, SAT, SPICE, characterization,
// fleet workers), util::Budget degradation semantics through the pass
// pipeline and the SAT sweep, and fleet fault isolation — one injected
// scenario failure must not disturb its sibling scenarios' figures.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <optional>
#include <string>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "core/flow.hpp"
#include "core/pipeline.hpp"
#include "epfl/benchmarks.hpp"
#include "liberty/library.hpp"
#include "logic/aig.hpp"
#include "logic/simulate.hpp"
#include "map/mapper.hpp"
#include "sat/solver.hpp"
#include "sat/sweep.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"
#include "util/artifact_cache.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/obs.hpp"

namespace {

using namespace cryo;
namespace fs = std::filesystem;
namespace obs = util::obs;
namespace fi = util::faultinject;
using util::ArtifactCache;
using util::Json;

/// Arms a fault spec for the duration of one test and disarms on exit —
/// the registry is process-global and tests share one binary.
class ScopedFaults {
public:
  explicit ScopedFaults(const std::string& spec) { fi::configure(spec); }
  ~ScopedFaults() { fi::configure(""); }
};

/// Unique per-test cache root under the system temp dir (tests may run
/// concurrently under ctest -j, so the path mixes in the pid).
class ScopedCacheDir {
public:
  explicit ScopedCacheDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("cryoeda_fi_" + tag + "_" + std::to_string(::getpid()))} {
    fs::remove_all(path_);
  }
  ~ScopedCacheDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

private:
  fs::path path_;
};

class FaultInjectTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
    fi::configure("");
  }
  void TearDown() override { fi::configure(""); }
};

// ---------------------------------------------------------------------------
// Error taxonomy: golden messages and exit codes
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, KindNamesAreStable) {
  EXPECT_EQ(error_kind_name(ErrorKind::kRecipe), "recipe");
  EXPECT_EQ(error_kind_name(ErrorKind::kIo), "io");
  EXPECT_EQ(error_kind_name(ErrorKind::kBudget), "budget");
  EXPECT_EQ(error_kind_name(ErrorKind::kNumeric), "numeric");
  EXPECT_EQ(error_kind_name(ErrorKind::kInternal), "internal");
}

TEST(ErrorTaxonomy, ExitCodesAreDistinctAndStable) {
  EXPECT_EQ(error_exit_code(ErrorKind::kInternal), 1);
  EXPECT_EQ(error_exit_code(ErrorKind::kRecipe), 2);
  EXPECT_EQ(error_exit_code(ErrorKind::kIo), 3);
  EXPECT_EQ(error_exit_code(ErrorKind::kBudget), 4);
  EXPECT_EQ(error_exit_code(ErrorKind::kNumeric), 5);
}

TEST(ErrorTaxonomy, WhatCarriesTheKindPrefix) {
  const Error e{ErrorKind::kBudget, "cancelled in pass.mfs"};
  EXPECT_STREQ(e.what(), "budget: cancelled in pass.mfs");
  EXPECT_EQ(e.kind(), ErrorKind::kBudget);
  // The taxonomy survives a plain std::exception catch.
  try {
    throw Error{ErrorKind::kNumeric, "Newton failed"};
  } catch (const std::exception& plain) {
    EXPECT_STREQ(plain.what(), "numeric: Newton failed");
  }
}

// ---------------------------------------------------------------------------
// Spec parsing and arrival arithmetic
// ---------------------------------------------------------------------------

void expect_spec_error(const std::string& spec, const std::string& needle) {
  try {
    fi::configure(spec);
    FAIL() << "expected Error{kRecipe} for spec: " << spec;
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    const std::string what = e.what();
    EXPECT_NE(what.find("CRYOEDA_FAULTS"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message '" << what << "' lacks '" << needle << "'";
  }
  fi::configure("");
}

TEST_F(FaultInjectTest, MalformedSpecsAreRecipeErrors) {
  expect_spec_error("bogus", "missing '='");
  expect_spec_error("no.such.site=every-2", "unknown site");
  expect_spec_error("no.such.site=every-2", "cache.read");  // lists known
  expect_spec_error("sat.solve=sometimes", "bad mode");
  expect_spec_error("sat.solve=every-0", "bad count");
  expect_spec_error("sat.solve=every-x", "bad count");
  expect_spec_error("sat.solve=once@", "bad count");
  expect_spec_error("sat.solve=every-2,sat.solve=once@1", "duplicate site");
}

TEST_F(FaultInjectTest, DegenerateCountsAreRejectedNotSilentNoOps) {
  // once@0 can never match an arrival ordinal (they start at 1) and
  // every-0 would divide by zero in the arrival check: both must be
  // rejected up front rather than armed as faults that never fire.
  expect_spec_error("sat.solve=once@0", "bad count");
  expect_spec_error("sat.solve=every-0", "bad count");
  // strtoull quietly *accepts* negative counts by wrapping them to the
  // top of the uint64 range — an injection that would silently never
  // fire. Same for values past 2^64-1, which saturate with only errno
  // raised. Both are spec bugs and must fail loudly.
  expect_spec_error("sat.solve=every--1", "bad count");
  expect_spec_error("sat.solve=once@-3", "bad count");
  expect_spec_error("sat.solve=every-18446744073709551616", "bad count");
  expect_spec_error("sat.solve=once@99999999999999999999999", "bad count");
  // Stray sign/space characters are not part of a count either.
  expect_spec_error("sat.solve=every-+2", "bad count");
}

TEST_F(FaultInjectTest, DisarmedRegistryNeverFires) {
  EXPECT_FALSE(fi::armed());
  for (const std::string& site : fi::known_sites()) {
    EXPECT_FALSE(fi::should_fail(site)) << site;
  }
}

TEST_F(FaultInjectTest, EveryNthArrivalFiresDeterministically) {
  const ScopedFaults faults{"sat.solve=every-3"};
  EXPECT_TRUE(fi::armed());
  for (int arrival = 1; arrival <= 9; ++arrival) {
    EXPECT_EQ(fi::should_fail("sat.solve"), arrival % 3 == 0)
        << "arrival " << arrival;
  }
  EXPECT_EQ(fi::injected("sat.solve"), 3u);
  // Unlisted sites stay silent even while the registry is armed.
  EXPECT_FALSE(fi::should_fail("cache.read"));
  EXPECT_EQ(fi::injected("cache.read"), 0u);
}

TEST_F(FaultInjectTest, OnceAtKFiresExactlyTheKthArrival) {
  const ScopedFaults faults{" spice.solve = once@2 "};  // whitespace ok
  EXPECT_FALSE(fi::should_fail("spice.solve"));
  EXPECT_TRUE(fi::should_fail("spice.solve"));
  for (int arrival = 3; arrival <= 6; ++arrival) {
    EXPECT_FALSE(fi::should_fail("spice.solve")) << "arrival " << arrival;
  }
  EXPECT_EQ(fi::injected("spice.solve"), 1u);
  // `configure` resets all arrival counters.
  fi::configure("spice.solve=once@1");
  EXPECT_TRUE(fi::should_fail("spice.solve"));
}

TEST_F(FaultInjectTest, MaybeFailThrowsTheGoldenClassifiedError) {
  const ScopedFaults faults{"liberty.parse=every-1"};
  try {
    fi::maybe_fail("liberty.parse", ErrorKind::kIo);
    FAIL() << "expected an injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_STREQ(e.what(), "io: injected fault at liberty.parse");
  }
  // Each firing is also observable as a counter.
  EXPECT_EQ(obs::counter("fault.liberty.parse.injected").get(), 1u);
}

// ---------------------------------------------------------------------------
// Cache sites: transient retry, exhausted retry, corruption quarantine
// ---------------------------------------------------------------------------

Json sample_value() {
  Json value = Json::object();
  value["answer"] = Json{42.0};
  return value;
}

TEST_F(FaultInjectTest, CacheReadRetriesTransientFaultAndHits) {
  const ScopedCacheDir dir{"read_retry"};
  ArtifactCache cache{{true, dir.path(), 1 << 20}};
  const std::string key = ArtifactCache::key("stage", sample_value());
  cache.store("stage", key, sample_value());

  const ScopedFaults faults{"cache.read=once@1"};
  const auto hit = cache.load("stage", key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dump(), sample_value().dump());
  EXPECT_GE(obs::counter("cache.retries").get(), 1u);
  EXPECT_EQ(obs::counter("cache.errors").get(), 0u);
}

TEST_F(FaultInjectTest, CacheReadExhaustedRetriesDegradeToAMiss) {
  const ScopedCacheDir dir{"read_exhaust"};
  ArtifactCache cache{{true, dir.path(), 1 << 20}};
  const std::string key = ArtifactCache::key("stage", sample_value());
  cache.store("stage", key, sample_value());

  const ScopedFaults faults{"cache.read=every-1"};  // every attempt fails
  EXPECT_FALSE(cache.load("stage", key).has_value());
  EXPECT_GE(obs::counter("cache.retries").get(), 3u);
  EXPECT_GE(obs::counter("cache.errors").get(), 1u);
  // The entry itself is intact: a fault-free load still hits.
  fi::configure("");
  EXPECT_TRUE(cache.load("stage", key).has_value());
}

TEST_F(FaultInjectTest, CacheWriteRetriesTransientFault) {
  const ScopedCacheDir dir{"write_retry"};
  ArtifactCache cache{{true, dir.path(), 1 << 20}};
  const std::string key = ArtifactCache::key("stage", sample_value());

  {
    const ScopedFaults faults{"cache.write=once@1"};
    cache.store("stage", key, sample_value());
    EXPECT_GE(obs::counter("cache.retries").get(), 1u);
  }
  const auto hit = cache.load("stage", key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dump(), sample_value().dump());
}

TEST_F(FaultInjectTest, CorruptedEntryIsQuarantinedNotDeleted) {
  const ScopedCacheDir dir{"quarantine"};
  ArtifactCache cache{{true, dir.path(), 1 << 20}};
  const std::string key = ArtifactCache::key("stage", sample_value());
  cache.store("stage", key, sample_value());

  {
    // cache.corrupt flips a byte of a *successfully read* entry.
    const ScopedFaults faults{"cache.corrupt=every-1"};
    EXPECT_FALSE(cache.load("stage", key).has_value());
  }
  EXPECT_GE(obs::counter("cache.corrupt").get(), 1u);
  EXPECT_EQ(obs::counter("cache.quarantined").get(), 1u);
  // The damaged entry moved into quarantine/ for post-mortem...
  const fs::path moved =
      dir.path() / "quarantine" / ("stage-" + key + ".json");
  EXPECT_TRUE(fs::exists(moved));
  // ...and is gone from the cache proper: the next load is a clean miss.
  EXPECT_FALSE(fs::exists(cache.entry_path("stage", key)));
  EXPECT_FALSE(cache.load("stage", key).has_value());
}

// ---------------------------------------------------------------------------
// Kernel sites: liberty, SAT, SPICE, characterization
// ---------------------------------------------------------------------------

TEST_F(FaultInjectTest, LibertyParseSiteThrowsIo) {
  const std::string text = "library (l) { }";
  EXPECT_NO_THROW((void)liberty::parse_liberty(text));
  const ScopedFaults faults{"liberty.parse=once@1"};
  try {
    (void)liberty::parse_liberty(text);
    FAIL() << "expected an injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_STREQ(e.what(), "io: injected fault at liberty.parse");
  }
  // once@1 consumed: the next parse succeeds.
  EXPECT_NO_THROW((void)liberty::parse_liberty(text));
}

TEST_F(FaultInjectTest, SatSolveSiteReturnsUnknown) {
  const ScopedFaults faults{"sat.solve=once@1"};
  sat::Solver solver;
  const sat::Var a = solver.new_var();
  solver.add_clause(sat::mk_lit(a));
  EXPECT_EQ(solver.solve(), sat::Status::kUnknown);
  EXPECT_EQ(solver.solve(), sat::Status::kSat);  // solver stays usable
  EXPECT_TRUE(solver.model_value(a));
}

TEST_F(FaultInjectTest, SpiceSolveSiteThrowsNumeric) {
  spice::Circuit ckt;
  const spice::NodeId in = ckt.add_node("in");
  const spice::NodeId out = ckt.add_node("out");
  ckt.add_res(in, out, 1e3);
  ckt.add_cap(out, spice::kGround, 1e-15);
  ckt.set_source(in, spice::Pwl::constant(1.0));
  spice::Simulator sim{ckt, 300.0};
  spice::TransientOptions opt;
  opt.t_stop = 1e-12;
  opt.steps = 10;

  const ScopedFaults faults{"spice.solve=once@1"};
  try {
    (void)sim.transient(opt, {out});
    FAIL() << "expected an injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kNumeric);
    EXPECT_STREQ(e.what(), "numeric: injected fault at spice.solve");
  }
  EXPECT_NO_THROW((void)sim.transient(opt, {out}));
}

TEST_F(FaultInjectTest, CharacterizeSiteAbortsTheWholeLibrary) {
  cells::CharOptions options;
  options.slews = {4e-12};
  options.loads = {1e-15};
  options.include_sequential = false;
  options.threads = 1;
  // Characterization must not degrade to a partial library: the injected
  // worker failure propagates out of the parallel fleet.
  const ScopedFaults faults{"cells.characterize=once@1"};
  try {
    (void)cells::characterize(cells::mini_catalog(), 300.0, options);
    FAIL() << "expected an injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInternal);
    EXPECT_STREQ(e.what(), "internal: injected fault at cells.characterize");
  }
}

// ---------------------------------------------------------------------------
// Budget semantics: degradation, cancellation, growth ceiling
// ---------------------------------------------------------------------------

class BudgetTest : public FaultInjectTest {};

TEST_F(BudgetTest, SatCeilingZeroSkipsSatPassesButFlowCompletes) {
  util::Budget budget;
  budget.set_sat_conflict_ceiling(0);  // exhausted from the start
  EXPECT_TRUE(budget.sat_exhausted());

  core::FlowState state;
  state.aig = epfl::make_adder(8);
  state.options = core::FlowOptions{};
  state.budget = &budget;
  core::Pipeline::parse("c2rs; dch; if -K 6; mfs; strash").run(state);

  EXPECT_TRUE(state.saw_strash);  // flow ran end to end
  EXPECT_GT(state.aig.num_ands(), 0u);
  EXPECT_GE(obs::counter("pass.dch.degraded").get(), 1u);
  EXPECT_GE(obs::counter("pass.mfs.degraded").get(), 1u);
  EXPECT_EQ(obs::counter("pass.dch.runs").get(), 0u);  // skipped, not run
  EXPECT_EQ(obs::counter("pass.mfs.runs").get(), 0u);
  // Non-SAT passes are untouched by the SAT ceiling.
  EXPECT_EQ(obs::counter("pass.c2rs.degraded").get(), 0u);
  EXPECT_EQ(obs::counter("pass.c2rs.runs").get(), 1u);
}

TEST_F(BudgetTest, CancellationThrowsBudgetErrorAtThePassBoundary) {
  util::Budget budget;
  budget.cancel();
  core::FlowState state;
  state.aig = epfl::make_adder(4);
  state.options = core::FlowOptions{};
  state.budget = &budget;
  try {
    core::Pipeline::parse("c2rs").run(state);
    FAIL() << "expected Error{kBudget}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBudget);
    EXPECT_NE(std::string{e.what()}.find("cancelled in pass.c2rs"),
              std::string::npos)
        << e.what();
  }
  budget.reset();
  EXPECT_FALSE(budget.cancelled());
  EXPECT_NO_THROW(core::Pipeline::parse("c2rs").run(state));
}

TEST_F(BudgetTest, NodeGrowthCeilingRevertsAnInflatingPass) {
  util::Budget budget;
  // A ceiling below 1.0 rejects any transform that fails to shrink the
  // network by that factor — guaranteed to trip on a tiny adder.
  budget.set_node_growth_limit(1e-6);
  core::FlowState state;
  state.aig = epfl::make_adder(8);
  state.options = core::FlowOptions{};
  state.budget = &budget;
  const unsigned before = state.aig.num_ands();
  core::Pipeline::parse("c2rs").run(state);
  EXPECT_EQ(state.aig.num_ands(), before);  // result reverted
  EXPECT_GE(obs::counter("pass.c2rs.degraded").get(), 1u);
  EXPECT_EQ(obs::counter("pass.c2rs.runs").get(), 1u);  // it did run
}

TEST_F(BudgetTest, SweepUnderExhaustedBudgetKeepsClassesUnmerged) {
  // Two structurally different builds of the same function: a normal
  // sweep merges them; an exhausted budget must leave them unmerged but
  // still return a valid, equivalent AIG.
  logic::Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  aig.add_po(aig.land(aig.land(a, b), c), "x");
  aig.add_po(aig.land(a, aig.land(b, c)), "y");

  util::Budget budget;
  budget.set_sat_conflict_ceiling(0);
  sat::SweepOptions options;
  options.budget = &budget;
  const auto degraded = sat::sat_sweep(aig, options);
  EXPECT_EQ(degraded.merged, 0u);
  EXPECT_GE(degraded.unresolved, 1u);
  EXPECT_TRUE(logic::simulate_equal(aig, degraded.aig.cleanup()));

  budget.reset();
  const auto clean = sat::sat_sweep(aig, options);
  EXPECT_GE(clean.merged, 1u);
}

TEST_F(BudgetTest, SolveStatsDistinguishLimitFromBudget) {
  // Pigeonhole PHP(4, 3): UNSAT, needs real search — one conflict is
  // never enough, so a per-call limit of 1 must come back kUnknown with
  // hit_conflict_limit set (and no budget involved).
  const int holes = 3;
  sat::Solver solver;
  std::vector<std::vector<sat::Var>> at(holes + 1);
  for (int p = 0; p <= holes; ++p) {
    for (int h = 0; h < holes; ++h) {
      at[p].push_back(solver.new_var());
    }
  }
  for (int p = 0; p <= holes; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(sat::mk_lit(at[p][h]));
    }
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p <= holes; ++p) {
      for (int q = p + 1; q <= holes; ++q) {
        solver.add_clause(sat::mk_lit(at[p][h], true),
                          sat::mk_lit(at[q][h], true));
      }
    }
  }
  EXPECT_EQ(solver.solve({}, /*conflict_limit=*/1), sat::Status::kUnknown);
  EXPECT_TRUE(solver.last_stats().hit_conflict_limit);
  EXPECT_FALSE(solver.last_stats().budget_exhausted);

  util::Budget budget;
  budget.set_sat_conflict_ceiling(0);
  solver.set_budget(&budget);
  EXPECT_EQ(solver.solve(), sat::Status::kUnknown);
  EXPECT_TRUE(solver.last_stats().budget_exhausted);
  EXPECT_FALSE(solver.last_stats().hit_conflict_limit);

  solver.set_budget(nullptr);
  EXPECT_EQ(solver.solve(), sat::Status::kUnsat);
}

TEST_F(BudgetTest, SatConflictBudgetOptionIsValidated) {
  core::FlowOptions options;
  EXPECT_EQ(options.sat_conflict_budget, 500);
  EXPECT_NO_THROW(core::validate(options));
  options.sat_conflict_budget = -1;  // unlimited
  EXPECT_NO_THROW(core::validate(options));
  options.sat_conflict_budget = 1;
  EXPECT_NO_THROW(core::validate(options));
  options.sat_conflict_budget = 0;
  EXPECT_THROW(core::validate(options), std::invalid_argument);
  options.sat_conflict_budget = -2;
  EXPECT_THROW(core::validate(options), std::invalid_argument);
}

TEST_F(BudgetTest, DegradationSectionAppearsOnlyOutsideSignoff) {
  obs::counter("pass.dch.degraded").add();
  obs::counter("cache.retries").add(2);
  obs::counter("pass.if.runs").add();  // not a degradation counter
  const Json full = obs::report_json({});
  EXPECT_NE(full.dump(2).find("\"degradation\""), std::string::npos);
  const Json& degradation = full.at("degradation");
  EXPECT_EQ(degradation.at("pass.dch.degraded").as_int(), 1);
  EXPECT_EQ(degradation.at("cache.retries").as_int(), 2);
  EXPECT_EQ(degradation.members().size(), 2u);
  // The signoff profile must stay byte-identical across degraded and
  // clean runs of equal quality, so it carries no degradation section.
  const std::string signoff =
      obs::report_json(obs::ReportOptions::signoff()).dump(2);
  EXPECT_EQ(signoff.find("\"degradation\""), std::string::npos);
  // And an all-clean report omits the section entirely.
  obs::reset();
  EXPECT_EQ(obs::report_json({}).dump(2).find("\"degradation\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fleet fault isolation: one failing scenario must not sink its siblings
// ---------------------------------------------------------------------------

class FleetIsolation : public FaultInjectTest {
protected:
  static void SetUpTestSuite() {
    fi::configure("");  // the library build must run fault-free
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    lib_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 300.0, options));
    matcher_ = new map::CellMatcher(*lib_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete lib_;
    matcher_ = nullptr;
    lib_ = nullptr;
  }
  static liberty::Library* lib_;
  static map::CellMatcher* matcher_;
};

liberty::Library* FleetIsolation::lib_ = nullptr;
map::CellMatcher* FleetIsolation::matcher_ = nullptr;

TEST_F(FleetIsolation, MidFleetScenarioFailureLeavesSiblingsExact) {
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[2];  // dec4: small, fast
  core::ExperimentOptions options;
  options.threads = 1;  // serial: scenario arrival order is fixed

  const auto clean = core::compare_circuit(bench, *matcher_, options);
  ASSERT_TRUE(clean.ok());

  // Scenarios run in order baseline, pad, pda — once@2 fails `pad`.
  obs::reset();
  const ScopedFaults faults{"core.scenario=once@2"};
  const auto faulted = core::compare_circuit(bench, *matcher_, options);

  EXPECT_TRUE(faulted.baseline.ok);
  EXPECT_FALSE(faulted.pad.ok);
  EXPECT_TRUE(faulted.pda.ok);
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.pad.error, "internal: injected fault at core.scenario");
  EXPECT_EQ(faulted.pad.error_kind, "internal");
  EXPECT_EQ(faulted.pad.total_power, 0.0);
  EXPECT_EQ(obs::counter("fleet.scenario_errors").get(), 1u);

  // The surviving siblings carry the exact figures of the clean run:
  // the failure is isolated, not smeared into normalization.
  EXPECT_EQ(faulted.baseline.delay, clean.baseline.delay);
  EXPECT_EQ(faulted.baseline.area, clean.baseline.area);
  EXPECT_EQ(faulted.pda.delay, clean.pda.delay);
  EXPECT_EQ(faulted.pda.area, clean.pda.area);
  EXPECT_EQ(faulted.pda.gates, clean.pda.gates);

  // Failed-side comparisons render as "no change", never NaN/inf.
  EXPECT_EQ(faulted.power_saving_pad(), 0.0);
  EXPECT_EQ(faulted.delay_overhead_pad(), 0.0);
  EXPECT_GT(faulted.power_saving_pda(), -1.0);  // real figure, pda is ok
}

TEST_F(FleetIsolation, BudgetCancellationIsNotIsolated) {
  // Budget exhaustion is a property of the whole run, not of one
  // scenario: the fleet must rethrow it instead of recording a row.
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[2];
  core::ExperimentOptions options;
  options.threads = 1;
  util::Budget::global().cancel();
  try {
    (void)core::compare_circuit(bench, *matcher_, options);
    util::Budget::global().reset();
    FAIL() << "expected Error{kBudget}";
  } catch (const Error& e) {
    util::Budget::global().reset();
    EXPECT_EQ(e.kind(), ErrorKind::kBudget);
  }
}

TEST_F(FleetIsolation, DeadlineDegradesOptimizationButMapStillRuns) {
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[2];
  util::Budget budget;
  budget.set_deadline_in(0.0);  // already blown
  EXPECT_TRUE(budget.deadline_exceeded());

  core::FlowState state;
  state.aig = bench.aig;
  state.matcher = matcher_;
  state.options = core::FlowOptions{};
  state.budget = &budget;
  core::Pipeline::parse(core::canonical_recipe(state.options)).run(state);

  // Every optimization pass degraded, but the flow still produced a
  // netlist: `map` is exempt from deadline skipping by design.
  EXPECT_TRUE(state.has_netlist);
  EXPECT_GT(state.netlist.gate_count(), 0u);
  EXPECT_GE(obs::counter("pass.c2rs.degraded").get(), 1u);
  EXPECT_GE(obs::counter("pass.dch.degraded").get(), 1u);
  EXPECT_GE(obs::counter("pass.if.degraded").get(), 1u);
  EXPECT_EQ(obs::counter("pass.map.degraded").get(), 0u);
  EXPECT_EQ(obs::counter("pass.map.runs").get(), 1u);
}

TEST_F(FleetIsolation, DegradedRunsNeverPoisonTheScenarioCache) {
  // The scenario cache key covers inputs only, not the budget state: a
  // budget-starved run must not store its (lower-quality) figures where
  // a later unbudgeted run would load them as authoritative.
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[2];
  core::ExperimentOptions options;
  options.threads = 1;

  const ScopedCacheDir dir{"degraded_poison"};
  auto& cache = ArtifactCache::global();
  cache.configure({true, dir.path(), 1 << 20});

  util::Budget::global().set_sat_conflict_ceiling(0);
  (void)core::compare_circuit(bench, *matcher_, options);
  util::Budget::global().reset();

  // All three scenarios degraded (dch/mfs skipped): nothing stored.
  EXPECT_GE(obs::counter("cache.degraded_skips").get(), 3u);
  EXPECT_EQ(obs::counter("cache.core.scenario.stores").get(), 0u);

  // An unbudgeted run now computes full-quality figures, stores them,
  // and a warm rerun serves those — bit-identical.
  const auto clean = core::compare_circuit(bench, *matcher_, options);
  EXPECT_EQ(obs::counter("cache.core.scenario.stores").get(), 3u);
  const auto warm = core::compare_circuit(bench, *matcher_, options);
  cache.configure({false, {}, 0});
  EXPECT_EQ(obs::counter("cache.core.scenario.hits").get(), 3u);
  EXPECT_EQ(warm.baseline.delay, clean.baseline.delay);
  EXPECT_EQ(warm.pad.total_power, clean.pad.total_power);
  EXPECT_EQ(warm.pda.gates, clean.pda.gates);
}

}  // namespace
