#pragma once

#include "logic/aig.hpp"
#include "logic/cuts.hpp"
#include "map/matcher.hpp"
#include "map/netlist.hpp"
#include "opt/cost.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::map {

/// Options for cut-based standard-cell technology mapping (ABC's `map`,
/// with the paper's configurable cost-priority list).
struct TechMapOptions {
  opt::CostPriority priority = opt::CostPriority::kBaselinePowerAware;
  double epsilon = 0.02;          ///< cost tie-break threshold
  unsigned k = 5;                 ///< max cut inputs (= max cell inputs)
  unsigned cuts_per_node = 8;     ///< priority-cut bound C (recipe flag -C)
  unsigned matches_per_cut = 2;   ///< surviving matches per cut (flag -M)
  /// Candidate ordering inside the bounded cut sets. kSizeFirst keeps
  /// the mapper's cut selection bit-compatible with earlier releases;
  /// kAreaFlow ranks by area flow for deeper area recovery (flag -F).
  logic::CutOrder cut_order = logic::CutOrder::kSizeFirst;
  unsigned rounds = 3;            ///< refinement rounds
  double input_activity = 0.2;    ///< PI toggle rate for the power cost
  double nominal_slew = 10e-12;   ///< corner for cost-model lookups
  double nominal_load = 1e-15;
  double clock_estimate = 1e-9;   ///< converts leakage [W] into energy [J]
  std::uint64_t seed = 17;
  /// Shared resource budget; nullptr means `util::Budget::global()`.
  /// Mapping must always produce a netlist, so only *cancellation* is
  /// honored (throws cryo::Error{kBudget}); soft exhaustion is ignored.
  util::Budget* budget = nullptr;
};

/// Map an AIG onto a standard-cell library using the given cost-priority
/// list. `choices` (optional, from SAT sweeping) contributes alternative
/// structures' cuts.
Netlist tech_map(const logic::Aig& aig, const CellMatcher& matcher,
                 const TechMapOptions& options = {},
                 const std::vector<std::vector<logic::Lit>>* choices = nullptr);

}  // namespace cryo::map
