# Empty compiler generated dependencies file for cryo_util.
# This may be replaced when dependencies are built.
