#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "core/flow.hpp"
#include "core/pipeline.hpp"
#include "core/search.hpp"
#include "util/artifact_cache.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"
#include "epfl/benchmarks.hpp"
#include "opt/lut_map.hpp"
#include "opt/passes.hpp"
#include "sat/sweep.hpp"
#include "sta/sta.hpp"

namespace {

using namespace cryo;

// ---------------------------------------------------------------------------
// Script parser: round-trip and diagnostics
// ---------------------------------------------------------------------------

TEST(PipelineParse, CanonicalRoundTrip) {
  const std::string script = "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad";
  const auto pipeline = core::Pipeline::parse(script);
  EXPECT_EQ(pipeline.to_string(), script);
  // parse(print(p)) is a fixpoint.
  EXPECT_EQ(core::Pipeline::parse(pipeline.to_string()).to_string(), script);
}

TEST(PipelineParse, NormalizesWhitespaceAndEmptySegments) {
  const auto pipeline = core::Pipeline::parse(
      "  c2rs ;;  dch ;\n if   -K 6\t-p pda ; strash ;; ");
  EXPECT_EQ(pipeline.to_string(), "c2rs; dch; if -K 6 -p pda; strash");
  EXPECT_EQ(pipeline.sequence().size(), 4u);
}

TEST(PipelineParse, ArgsPrintInSpecOrderRegardlessOfInputOrder) {
  // -p before -K in the input; canonical print follows the declaration
  // order of the pass's ArgSpecs.
  const auto pipeline = core::Pipeline::parse("if -p pad -K 4; strash");
  EXPECT_EQ(pipeline.to_string(), "if -K 4 -p pad; strash");
}

TEST(PipelineParse, PriorityLongNamesCanonicalizeToShortNames) {
  const auto pipeline =
      core::Pipeline::parse("if -p p->d->a; strash; map -p baseline-power-aware");
  EXPECT_EQ(pipeline.to_string(), "if -p pda; strash; map -p baseline");
}

void expect_recipe_error(const std::string& script,
                         const std::string& needle) {
  try {
    (void)core::Pipeline::parse(script);
    FAIL() << "expected RecipeError for script: " << script;
  } catch (const core::RecipeError& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(PipelineParse, UnknownPassNamesTheSegmentAndKnownPasses) {
  expect_recipe_error("c2rs; bogus; strash", "segment 2");
  expect_recipe_error("c2rs; bogus; strash", "unknown pass 'bogus'");
  expect_recipe_error("c2rs; bogus; strash", "known:");
}

TEST(PipelineParse, UnknownFlagIsRejected) {
  expect_recipe_error("if -Q 3", "unknown flag '-Q'");
  expect_recipe_error("c2rs -K 6", "unknown flag '-K'");
}

TEST(PipelineParse, MissingValueIsRejected) {
  expect_recipe_error("if -K", "missing value");
}

TEST(PipelineParse, MalformedOrOutOfRangeValuesAreRejected) {
  expect_recipe_error("if -K banana", "bad value for -K");
  expect_recipe_error("if -K banana", "[2, 16]");
  expect_recipe_error("if -K 99", "out of range");
  expect_recipe_error("if -K 1", "out of range");
  expect_recipe_error("if -K -6", "bad value for -K");
  expect_recipe_error("if -p turbo", "bad value for -p");
}

TEST(PipelineParse, DuplicateFlagIsRejected) {
  expect_recipe_error("if -K 6 -K 4", "duplicate flag -K");
}

TEST(PipelineParse, EmptyRecipeIsRejected) {
  expect_recipe_error("", "no passes");
  expect_recipe_error("  ;; ; ", "no passes");
}

TEST(PipelineParse, SequencingErrorsAreCaughtStatically) {
  // mfs/strash need a pending LUT cover from `if`.
  expect_recipe_error("mfs", "needs a pending LUT cover");
  expect_recipe_error("c2rs; strash", "needs a pending LUT cover");
  // AIG transforms / a second `if` / `map` cannot run over a pending cover.
  expect_recipe_error("if -K 4; rewrite", "while a LUT cover is pending");
  expect_recipe_error("if; if", "while a LUT cover is pending");
  expect_recipe_error("if; map", "while a LUT cover is pending");
  // A recipe must not end with the cover still pending.
  expect_recipe_error("c2rs; if -K 6", "ends with a pending LUT cover");
}

TEST(PipelineParse, CanonicalRecipeTracksFlowOptions) {
  core::FlowOptions options;  // defaults: choices+mfs on, k=6, baseline
  EXPECT_EQ(core::canonical_recipe(options),
            "c2rs; dch; if -K 6 -p baseline; mfs; strash; map -p baseline");
  options.priority = opt::CostPriority::kPowerDelayArea;
  options.lut_k = 4;
  EXPECT_EQ(core::canonical_recipe(options),
            "c2rs; dch; if -K 4 -p pda; mfs; strash; map -p pda");
  options.use_choices = false;
  options.use_mfs = false;
  EXPECT_EQ(core::canonical_recipe(options),
            "c2rs; if -K 4 -p pda; strash; map -p pda");
  // The canonical recipe always parses.
  EXPECT_EQ(core::Pipeline::parse(core::canonical_recipe(options)).to_string(),
            core::canonical_recipe(options));
}

// ---------------------------------------------------------------------------
// Option validation (satellite: reject misconfiguration on entry)
// ---------------------------------------------------------------------------

TEST(OptionValidation, FlowOptionsBoundsAreEnforced) {
  core::FlowOptions ok;
  EXPECT_NO_THROW(core::validate(ok));

  core::FlowOptions bad = ok;
  bad.lut_k = 0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.lut_k = 1;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.lut_k = 17;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = ok;
  bad.epsilon = -0.01;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  // epsilon = 0 is deliberately valid (the epsilon ablation sweeps it).
  bad.epsilon = 0.0;
  EXPECT_NO_THROW(core::validate(bad));

  bad = ok;
  bad.input_activity = 0.0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.input_activity = 1.5;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.input_activity = 1.0;
  EXPECT_NO_THROW(core::validate(bad));

  bad = ok;
  bad.clock_estimate = 0.0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.clock_estimate = -1e9;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
}

TEST(OptionValidation, ExperimentOptionsBoundsAreEnforced) {
  core::ExperimentOptions ok;
  EXPECT_NO_THROW(core::validate(ok));

  core::ExperimentOptions bad = ok;
  bad.threads = -1;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = ok;
  bad.sta.clock_period = 0.0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = ok;
  bad.sta.input_slew = -1e-12;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = ok;
  bad.flow.lut_k = 0;  // flow validation is included
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
}

TEST(OptionValidation, SynthesizeRejectsBadOptionsBeforeRunning) {
  const auto aig = epfl::make_adder(4);
  core::FlowOptions bad;
  bad.lut_k = 0;
  // No matcher needed: validation fires before any pass.
  core::FlowState state;
  state.aig = aig;
  state.options = bad;
  const auto pipeline = core::Pipeline::parse("c2rs");
  EXPECT_THROW(pipeline.run(state), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fig. 3 scenarios are recipe strings
// ---------------------------------------------------------------------------

TEST(Scenarios, Fig3RowsAreThreeRecipes) {
  core::FlowOptions flow;
  const auto specs = core::fig3_scenarios(flow);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "baseline");
  EXPECT_EQ(specs[1].name, "pad");
  EXPECT_EQ(specs[2].name, "pda");
  EXPECT_EQ(specs[0].recipe,
            "c2rs; dch; if -K 6 -p baseline; mfs; strash; map -p baseline");
  EXPECT_EQ(specs[1].recipe,
            "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad");
  EXPECT_EQ(specs[2].recipe,
            "c2rs; dch; if -K 6 -p pda; mfs; strash; map -p pda");
  for (const auto& spec : specs) {
    // Every scenario recipe is already canonical.
    EXPECT_EQ(core::Pipeline::parse(spec.recipe).to_string(), spec.recipe);
  }
}

// ---------------------------------------------------------------------------
// Pipeline-vs-legacy equivalence: the refactored core::synthesize must
// reproduce the pre-pipeline flow exactly (same option structs, same
// call order, same strash guard) at both corners.
// ---------------------------------------------------------------------------

/// Verbatim copy of the pre-pipeline core::synthesize (minus the obs
/// instrumentation): the reference the recipe executor must match
/// bit-for-bit.
core::FlowResult legacy_synthesize(const logic::Aig& input,
                                   const map::CellMatcher& matcher,
                                   const core::FlowOptions& options) {
  core::FlowResult result;
  result.initial_ands = input.num_ands();

  logic::Aig compact = opt::compress2rs(input);
  result.after_c2rs = compact.num_ands();

  const std::vector<std::vector<logic::Lit>>* choices = nullptr;
  sat::SweepResult sweep;
  if (options.use_choices) {
    sat::SweepOptions sopt;
    sopt.seed = options.seed;
    sweep = sat::sat_sweep(compact, sopt);
    choices = &sweep.choices;
  }
  const logic::Aig& choice_aig = options.use_choices ? sweep.aig : compact;

  opt::LutMapOptions lopt;
  lopt.k = options.lut_k;
  lopt.priority = options.priority;
  lopt.epsilon = options.epsilon;
  lopt.input_activity = options.input_activity;
  lopt.seed = options.seed;
  opt::LutMapping luts = opt::lut_map(choice_aig, lopt, choices);
  if (options.use_mfs) {
    opt::MfsOptions mopt;
    mopt.seed = options.seed;
    (void)opt::mfs(luts, mopt);
  }
  logic::Aig optimized = opt::luts_to_aig(luts);
  if (optimized.num_ands() > compact.num_ands()) {
    optimized = std::move(compact);
  }
  result.after_power_stage = optimized.num_ands();

  map::TechMapOptions topt;
  topt.priority = options.priority;
  topt.epsilon = options.epsilon;
  topt.input_activity = options.input_activity;
  topt.clock_estimate = options.clock_estimate;
  topt.seed = options.seed;
  result.netlist = map::tech_map(optimized, matcher, topt);
  result.optimized = std::move(optimized);
  return result;
}

class PipelineEquivalence : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    lib_300k_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 300.0, options));
    lib_10k_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 10.0, options));
    matcher_300k_ = new map::CellMatcher(*lib_300k_);
    matcher_10k_ = new map::CellMatcher(*lib_10k_);
  }
  static void TearDownTestSuite() {
    delete matcher_10k_;
    delete matcher_300k_;
    delete lib_10k_;
    delete lib_300k_;
    matcher_10k_ = nullptr;
    matcher_300k_ = nullptr;
    lib_10k_ = nullptr;
    lib_300k_ = nullptr;
  }
  static liberty::Library* lib_300k_;
  static liberty::Library* lib_10k_;
  static map::CellMatcher* matcher_300k_;
  static map::CellMatcher* matcher_10k_;
};

liberty::Library* PipelineEquivalence::lib_300k_ = nullptr;
liberty::Library* PipelineEquivalence::lib_10k_ = nullptr;
map::CellMatcher* PipelineEquivalence::matcher_300k_ = nullptr;
map::CellMatcher* PipelineEquivalence::matcher_10k_ = nullptr;

void expect_flow_results_identical(const core::FlowResult& got,
                                   const core::FlowResult& want,
                                   const std::string& label) {
  EXPECT_EQ(got.initial_ands, want.initial_ands) << label;
  EXPECT_EQ(got.after_c2rs, want.after_c2rs) << label;
  EXPECT_EQ(got.after_power_stage, want.after_power_stage) << label;
  EXPECT_EQ(got.optimized.num_ands(), want.optimized.num_ands()) << label;
  ASSERT_EQ(got.netlist.gate_count(), want.netlist.gate_count()) << label;
  // Exact double equality: the pipeline must feed the passes the same
  // options in the same order, so areas and the full STA signoff agree
  // to the last bit.
  EXPECT_EQ(got.netlist.total_area(), want.netlist.total_area()) << label;
  const auto got_sta = sta::analyze(got.netlist, {});
  const auto want_sta = sta::analyze(want.netlist, {});
  EXPECT_EQ(got_sta.critical_delay, want_sta.critical_delay) << label;
  EXPECT_EQ(got_sta.power.leakage, want_sta.power.leakage) << label;
  EXPECT_EQ(got_sta.power.internal, want_sta.power.internal) << label;
  EXPECT_EQ(got_sta.power.switching, want_sta.power.switching) << label;
}

TEST_F(PipelineEquivalence, CanonicalRecipeMatchesLegacyFlowAtBothCorners) {
  const auto suite = epfl::mini_suite();
  ASSERT_GE(suite.size(), 3u);
  const std::pair<const map::CellMatcher*, const char*> corners[] = {
      {matcher_300k_, "300K"}, {matcher_10k_, "10K"}};
  // Two benchmarks x two corners x the three Fig. 3 priorities.
  for (const std::size_t bench_idx : {std::size_t{0}, std::size_t{2}}) {
    const auto& bench = suite[bench_idx];
    for (const auto& [matcher, corner] : corners) {
      for (const auto priority :
           {opt::CostPriority::kBaselinePowerAware,
            opt::CostPriority::kPowerDelayArea}) {
        core::FlowOptions options;
        options.priority = priority;
        const std::string label = bench.name + "@" + corner + "/" +
                                  opt::short_name(priority);
        const auto want = legacy_synthesize(bench.aig, *matcher, options);
        const auto got = core::synthesize(bench.aig, *matcher, options);
        expect_flow_results_identical(got, want, label);
      }
    }
  }
}

TEST_F(PipelineEquivalence, RecipeVariantsMatchLegacyFlags) {
  // use_choices / use_mfs off map to recipes without dch / mfs.
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[2];  // dec4: small, fast
  core::FlowOptions options;
  options.use_choices = false;
  options.use_mfs = false;
  options.priority = opt::CostPriority::kPowerAreaDelay;
  const auto want = legacy_synthesize(bench.aig, *matcher_10k_, options);
  const auto got = core::synthesize(bench.aig, *matcher_10k_, options);
  expect_flow_results_identical(got, want, "dec4/no-dch-no-mfs");
  // And the same result again via an explicit --script-style recipe.
  const auto scripted = core::synthesize_with_recipe(
      bench.aig, *matcher_10k_, options,
      "c2rs ;  if -K 6 -p pad ; strash ; map -p pad");
  expect_flow_results_identical(scripted, want, "dec4/explicit-script");
}

TEST_F(PipelineEquivalence, RecipeWithoutMapYieldsNoNetlist) {
  core::FlowState state;
  state.aig = epfl::make_adder(8);
  state.options = core::FlowOptions{};
  const auto pipeline = core::Pipeline::parse("c2rs; if -K 6; strash");
  pipeline.run(state);  // no matcher needed: recipe never maps
  EXPECT_FALSE(state.has_netlist);
  EXPECT_TRUE(state.saw_strash);
  EXPECT_GT(state.after_c2rs, 0u);
}

TEST_F(PipelineEquivalence, MapWithoutMatcherIsARecipeError) {
  core::FlowState state;
  state.aig = epfl::make_adder(4);
  state.options = core::FlowOptions{};
  const auto pipeline = core::Pipeline::parse("map");
  EXPECT_THROW(pipeline.run(state), core::RecipeError);
}

// ---------------------------------------------------------------------------
// Per-pass prefix cache (Pipeline::run, stage `core.pass`)
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;
namespace obs = util::obs;

class PassCacheTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    lib_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 10.0, options));
    matcher_ = new map::CellMatcher(*lib_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete lib_;
    matcher_ = nullptr;
    lib_ = nullptr;
  }

  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
    root_ = fs::temp_directory_path() /
            ("cryoeda_passcache_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    util::ArtifactCache::global().configure({true, root_, 64ull << 20});
  }
  void TearDown() override {
    util::ArtifactCache::global().configure(
        util::ArtifactCache::env_config());
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  /// One pipeline run on the shared tiny circuit; `use_cache = false`
  /// gives the no-cache reference result.
  core::FlowState run(const std::string& recipe, bool use_cache = true,
                      util::Budget* budget = nullptr) {
    core::FlowState state;
    state.aig = epfl::make_dec(5);
    state.aig.set_name("dec5");
    state.matcher = matcher_;
    state.options = core::FlowOptions{};
    state.use_pass_cache = use_cache;
    state.budget = budget;
    core::Pipeline::parse(recipe).run(state);
    return state;
  }

  /// Exact signoff figures: the cache must be invisible to the last bit.
  static void expect_identical(const core::FlowState& got,
                               const core::FlowState& want,
                               const std::string& label) {
    EXPECT_EQ(got.aig.num_ands(), want.aig.num_ands()) << label;
    ASSERT_EQ(got.netlist.gate_count(), want.netlist.gate_count()) << label;
    EXPECT_EQ(got.netlist.total_area(), want.netlist.total_area()) << label;
    const auto got_sta = sta::analyze(got.netlist, {});
    const auto want_sta = sta::analyze(want.netlist, {});
    EXPECT_EQ(got_sta.critical_delay, want_sta.critical_delay) << label;
    EXPECT_EQ(got_sta.power.total(), want_sta.power.total()) << label;
  }

  std::vector<fs::path> pass_entries() const {
    std::vector<fs::path> entries;
    const fs::path stage_dir = root_ / "core.pass";
    if (!fs::exists(stage_dir)) {
      return entries;
    }
    for (const auto& entry : fs::recursive_directory_iterator(stage_dir)) {
      if (entry.is_regular_file()) {
        entries.push_back(entry.path());
      }
    }
    return entries;
  }

  static liberty::Library* lib_;
  static map::CellMatcher* matcher_;
  fs::path root_;
};

liberty::Library* PassCacheTest::lib_ = nullptr;
map::CellMatcher* PassCacheTest::matcher_ = nullptr;

TEST_F(PassCacheTest, PrefixWarmRunIsByteIdenticalToCold) {
  const std::string recipe_a =
      "c2rs; dch; if -K 4 -p pad; mfs; strash; map -p pad";
  const std::string recipe_b =
      "c2rs; dch; if -K 5 -p pda; mfs; strash; map -p pda";

  // Reference: recipe B with the pass cache off.
  const auto reference = run(recipe_b, /*use_cache=*/false);
  EXPECT_EQ(obs::counter("cache.pass_hits").get(), 0u);

  // Recipe A populates the cache: its `c2rs; dch` prefix snapshots.
  obs::reset();
  const auto cold_a = run(recipe_a);
  EXPECT_EQ(obs::counter("cache.pass_hits").get(), 0u);
  EXPECT_EQ(obs::counter("cache.core.pass.stores").get(), 2u);

  // Recipe B shares that prefix: both snapshots restore, c2rs and dch
  // never execute, and the figures match the no-cache run exactly.
  obs::reset();
  const auto warm_b = run(recipe_b);
  EXPECT_EQ(obs::counter("cache.pass_hits").get(), 2u);
  EXPECT_EQ(obs::counter("cache.pass_misses").get(), 0u);
  EXPECT_EQ(obs::counter("pass.c2rs.runs").get(), 0u);
  EXPECT_EQ(obs::counter("pass.dch.runs").get(), 0u);
  EXPECT_EQ(obs::counter("pass.if.runs").get(), 1u);
  expect_identical(warm_b, reference, "prefix-warm vs cold");
}

TEST_F(PassCacheTest, RerunOfSameRecipeReplaysTheWholeCacheablePrefix) {
  const std::string recipe =
      "balance; rewrite -k 4; c2rs; dch; if -K 4 -p pad; strash; map -p pad";
  (void)run(recipe);
  EXPECT_EQ(obs::counter("cache.core.pass.stores").get(), 4u);
  obs::reset();
  const auto warm = run(recipe);
  // balance, rewrite, c2rs, dch restore; `if` (LUT cover) is the first
  // non-cacheable pass and executes.
  EXPECT_EQ(obs::counter("cache.pass_hits").get(), 4u);
  EXPECT_EQ(obs::counter("pass.balance.runs").get(), 0u);
  EXPECT_EQ(obs::counter("pass.if.runs").get(), 1u);
  EXPECT_TRUE(warm.has_netlist);
}

TEST_F(PassCacheTest, DegradedRunsNeitherStoreNorLoad) {
  const std::string recipe = "c2rs; dch; if -K 4 -p pad; strash; map -p pad";

  // SAT ceiling 0 (soft-exhausted from the start): the run degrades and
  // opts out of the pass cache entirely — nothing stored.
  util::Budget sat_starved;
  sat_starved.set_sat_conflict_ceiling(0);
  const auto degraded = run(recipe, /*use_cache=*/true, &sat_starved);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(obs::counter("cache.core.pass.stores").get(), 0u);
  EXPECT_TRUE(pass_entries().empty());

  // Same for a blown deadline.
  obs::reset();
  util::Budget expired;
  expired.set_deadline_in(0.0);
  const auto all_degraded = run(recipe, /*use_cache=*/true, &expired);
  EXPECT_TRUE(all_degraded.degraded);
  EXPECT_TRUE(all_degraded.has_netlist);  // map is deadline-exempt
  EXPECT_EQ(obs::counter("cache.core.pass.stores").get(), 0u);
  EXPECT_TRUE(pass_entries().empty());

  // Warm the cache with a clean run, then rerun under a node-growth
  // ceiling: the constrained run must recompute (a cached full-quality
  // snapshot would silently undo the revert-on-growth semantics).
  obs::reset();
  (void)run(recipe);
  EXPECT_EQ(obs::counter("cache.core.pass.stores").get(), 2u);
  obs::reset();
  util::Budget guarded;
  guarded.set_node_growth_limit(1.0);  // any growth reverts
  (void)run(recipe, /*use_cache=*/true, &guarded);
  EXPECT_EQ(obs::counter("cache.pass_hits").get(), 0u);
  EXPECT_EQ(obs::counter("pass.c2rs.runs").get(), 1u);
}

TEST_F(PassCacheTest, CorruptedEntriesFallBackToRecompute) {
  const std::string recipe = "c2rs; dch; if -K 4 -p pad; strash; map -p pad";
  const auto reference = run(recipe, /*use_cache=*/false);
  const auto cold = run(recipe);
  const auto entries = pass_entries();
  ASSERT_EQ(entries.size(), 2u);

  // Valid JSON, wrong shape: the snapshot restore throws, the pipeline
  // records the corruption and recomputes the pass.
  {
    std::ofstream out{entries.front()};
    out << "{\"fingerprint\": \"0\"}";
  }
  // Invalid JSON: the cache layer itself quarantines the entry.
  {
    std::ofstream out{entries.back()};
    out << "{ not json";
  }
  obs::reset();
  const auto recovered = run(recipe);
  EXPECT_GE(obs::counter("cache.corrupt").get(), 1u);
  EXPECT_EQ(obs::counter("pass.if.runs").get(), 1u);
  expect_identical(recovered, reference, "recovered vs reference");
}

// ---------------------------------------------------------------------------
// Recipe search (core/search.hpp)
// ---------------------------------------------------------------------------

TEST(RecipeSearch, EnumerationIsDeterministicAndSeedLed) {
  const core::FlowOptions flow;
  const auto recipes = core::enumerate_recipes(flow, 10, 7);
  EXPECT_EQ(recipes, core::enumerate_recipes(flow, 10, 7));
  ASSERT_GE(recipes.size(), 3u);
  EXPECT_LE(recipes.size(), 10u);

  // The Fig. 3 seed recipes lead, in scenario order.
  const auto seeds = core::fig3_scenarios(flow);
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    EXPECT_EQ(recipes[k],
              core::Pipeline::parse(seeds[k].recipe).to_string());
  }
  // Every variant is canonical, unique, and statically valid.
  std::set<std::string> unique;
  for (const auto& recipe : recipes) {
    EXPECT_EQ(core::Pipeline::parse(recipe).to_string(), recipe);
    EXPECT_TRUE(unique.insert(recipe).second) << recipe;
  }
  // A different seed explores a different neighborhood (the seeds-first
  // prefix is shared by construction).
  const auto other = core::enumerate_recipes(flow, 10, 8);
  EXPECT_NE(recipes, other);
}

TEST(RecipeSearch, ZeroVariantsAndBadDeadlinesAreRejected) {
  core::SearchOptions bad;
  bad.variants = 0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
  bad.variants = 4;
  bad.per_variant_deadline_s = -1.0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
}

TEST_F(PassCacheTest, SearchResultsAreThreadCountIndependent) {
  std::vector<epfl::Benchmark> suite;
  suite.push_back({"dec5", false, epfl::make_dec(5)});

  core::SearchOptions options;
  options.variants = 5;
  options.seed = 3;
  auto run_with = [&](int threads) {
    options.experiment.threads = threads;
    return core::search_recipes(suite, *matcher_, options);
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(2);
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_EQ(serial[0].best, parallel[0].best);
  ASSERT_EQ(serial[0].trials.size(), parallel[0].trials.size());
  for (std::size_t v = 0; v < serial[0].trials.size(); ++v) {
    EXPECT_EQ(serial[0].trials[v].recipe, parallel[0].trials[v].recipe);
    EXPECT_EQ(serial[0].trials[v].result.total_power,
              parallel[0].trials[v].result.total_power);
  }
  ASSERT_GE(serial[0].best, 0);
  // The best can never lose to the pad seed: the seeds are trials too.
  EXPECT_LE(
      serial[0].trials[static_cast<std::size_t>(serial[0].best)]
          .result.total_power,
      serial[0].trials[1].result.total_power);

  // The report is deterministic and gate-ready: seeds named, best set.
  const auto report = core::search_report(serial, options);
  EXPECT_EQ(core::search_report(serial, options).dump(2), report.dump(2));
  EXPECT_NE(report.at("circuits").at(0).at("seeds").find("pad"), nullptr);
  EXPECT_FALSE(report.at("circuits").at(0).at("best").is_null());
}

}  // namespace
