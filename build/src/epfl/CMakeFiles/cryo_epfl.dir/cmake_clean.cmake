file(REMOVE_RECURSE
  "CMakeFiles/cryo_epfl.dir/benchmarks.cpp.o"
  "CMakeFiles/cryo_epfl.dir/benchmarks.cpp.o.d"
  "CMakeFiles/cryo_epfl.dir/wordlib.cpp.o"
  "CMakeFiles/cryo_epfl.dir/wordlib.cpp.o.d"
  "libcryo_epfl.a"
  "libcryo_epfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_epfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
