// Reproduction of paper Fig. 2(c): average contribution of leakage,
// internal, and switching power to the total power of the EPFL benchmark
// circuits, at 300 K and 10 K. The paper's headline: leakage contributes
// ~15 % at room temperature but becomes negligible (~0.003 %) at 10 K —
// the observation that motivates the cryogenic-aware cost functions.

#include <cstdio>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"
#include "map/mapper.hpp"
#include "sta/sta.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cryo;

int main() {
  std::printf("=== Fig. 2(c): power breakdown, 300 K vs 10 K ===\n\n");
  const auto warm_lib = bench::corner_library(300.0);
  const auto cold_lib = bench::corner_library(10.0);
  const map::CellMatcher warm_matcher{warm_lib};
  const map::CellMatcher cold_matcher{cold_lib};

  util::Table rows{{"circuit", "corner", "leakage", "internal", "switching",
                    "total [uW]"}};
  double warm_shares[3] = {0, 0, 0};
  double cold_shares[3] = {0, 0, 0};
  int count = 0;

  const auto suite = epfl::epfl_suite();
  // Each (circuit, corner) synthesis+signoff is independent: fan the
  // 2 x |suite| runs out across the worker pool and accumulate the rows
  // in deterministic (circuit-major, warm-then-cold) order afterwards.
  struct Breakdown {
    double shares[3] = {0, 0, 0};
    double total = 0.0;
  };
  util::ScopedTimer timer{"fig2c synthesis fleet"};
  const auto results = util::parallel_map(
      suite.size() * 2, [&](std::size_t k) {
        const auto& benchmark = suite[k / 2];
        const bool cold = (k % 2) != 0;
        if (!cold) {
          std::fprintf(stderr, "  synthesizing %s...\n",
                       benchmark.name.c_str());
        }
        const auto& matcher = cold ? cold_matcher : warm_matcher;
        core::FlowOptions flow;  // conventional baseline synthesis
        const auto result = core::synthesize(benchmark.aig, matcher, flow);
        const auto signoff = sta::analyze(result.netlist, {});
        Breakdown out;
        out.total = signoff.power.total();
        out.shares[0] = signoff.power.leakage / out.total;
        out.shares[1] = signoff.power.internal / out.total;
        out.shares[2] = signoff.power.switching / out.total;
        return out;
      });
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& benchmark = suite[k / 2];
    const bool cold = (k % 2) != 0;
    const auto& breakdown = results[k];
    auto* acc = cold ? cold_shares : warm_shares;
    for (int i = 0; i < 3; ++i) {
      acc[i] += breakdown.shares[i];
    }
    rows.add_row({benchmark.name, cold ? "10 K" : "300 K",
                  util::Table::pct(breakdown.shares[0], 4),
                  util::Table::pct(breakdown.shares[1], 2),
                  util::Table::pct(breakdown.shares[2], 2),
                  util::Table::num(breakdown.total * 1e6, 2)});
    if (cold) {
      ++count;
    }
  }
  rows.write_csv(bench::csv_path("fig2c_breakdown.csv"));
  std::printf("%s\n", rows.render().c_str());

  util::Table avg{{"corner", "avg leakage", "avg internal", "avg switching"}};
  avg.add_row({"300 K", util::Table::pct(warm_shares[0] / count, 3),
               util::Table::pct(warm_shares[1] / count, 2),
               util::Table::pct(warm_shares[2] / count, 2)});
  avg.add_row({"10 K", util::Table::pct(cold_shares[0] / count, 5),
               util::Table::pct(cold_shares[1] / count, 2),
               util::Table::pct(cold_shares[2] / count, 2)});
  std::printf("%s\n", avg.render().c_str());
  std::printf(
      "paper check: leakage share 300 K ~15 %%  ->  10 K negligible "
      "(~0.003 %%). Measured: %.3f %% -> %.5f %%\n",
      warm_shares[0] / count * 100.0, cold_shares[0] / count * 100.0);
  bench::write_bench_report("fig2c_power_breakdown");
  return 0;
}
