#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "logic/lit.hpp"

namespace cryo::logic {

/// And-Inverter Graph: the workhorse logic representation of the
/// synthesis flow (paper §IV-A1). Nodes are two-input ANDs; inverters
/// live on edges as complement bits. Structural hashing keeps the graph
/// canonical under (commutativity + constant/idempotence rules), and
/// construction order guarantees fanins precede fanouts, so every
/// algorithm can run a single forward sweep.
class Aig {
public:
  Aig() { nodes_.push_back({0, 0}); }  // node 0: constant false

  // --- construction -------------------------------------------------
  Lit add_pi(std::string name = "");
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  Lit lnand(Lit a, Lit b) { return lit_not(land(a, b)); }
  Lit lnor(Lit a, Lit b) { return land(lit_not(a), lit_not(b)); }
  Lit lxor(Lit a, Lit b);
  Lit lxnor(Lit a, Lit b) { return lit_not(lxor(a, b)); }
  /// if s then t else e
  Lit lmux(Lit s, Lit t, Lit e);
  Lit lmaj(Lit a, Lit b, Lit c);
  void add_po(Lit driver, std::string name = "");
  void set_name(std::string name) { name_ = std::move(name); }

  // --- inspection ----------------------------------------------------
  const std::string& name() const { return name_; }
  NodeIdx num_nodes() const { return static_cast<NodeIdx>(nodes_.size()); }
  NodeIdx num_pis() const { return static_cast<NodeIdx>(pis_.size()); }
  NodeIdx num_pos() const { return static_cast<NodeIdx>(pos_.size()); }
  NodeIdx num_ands() const { return num_ands_; }

  bool is_const0(NodeIdx v) const { return v == 0; }
  bool is_pi(NodeIdx v) const { return v != 0 && v <= num_pis(); }
  bool is_and(NodeIdx v) const { return v > num_pis() && v < num_nodes(); }

  Lit fanin0(NodeIdx v) const { return nodes_[v].f0; }
  Lit fanin1(NodeIdx v) const { return nodes_[v].f1; }

  Lit pi(NodeIdx index) const { return make_lit(index + 1); }
  const std::string& pi_name(NodeIdx index) const { return pi_names_[index]; }
  Lit po(NodeIdx index) const { return pos_[index]; }
  const std::string& po_name(NodeIdx index) const { return po_names_[index]; }

  /// Number of fanouts of each node (POs included).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Logic level of each node (PIs at 0).
  std::vector<std::uint32_t> levels() const;

  /// Depth = max level over POs.
  std::uint32_t depth() const;

  /// Copy with all nodes not reachable from a PO removed. PI count and
  /// order are preserved (so simulation patterns stay comparable).
  Aig cleanup() const;

private:
  struct Node {
    Lit f0;
    Lit f1;
  };

  static std::uint64_t key(Lit a, Lit b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeIdx> pis_;  // node indices (always 1..num_pis)
  std::vector<std::string> pi_names_;
  std::vector<Lit> pos_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint64_t, NodeIdx> strash_;
  NodeIdx num_ands_ = 0;
};

/// Stable structural fingerprint (FNV-1a over name, PI/PO interface, and
/// every AND node's fanin literals in construction order). Two AIGs with
/// the same fingerprint drive the synthesis flow identically, so this is
/// the circuit component of synthesis-stage artifact-cache keys.
std::uint64_t fingerprint(const Aig& aig);

}  // namespace cryo::logic
