#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace cryo {

/// Structured failure taxonomy of the flow. Every error the stack
/// surfaces to a driver (CLI, service loop, fleet worker) is classified
/// into one of these kinds, and the `cryoeda` driver maps each kind onto
/// a distinct exit code so callers can react without parsing messages:
///
///   kind      | exit | meaning
///   ----------+------+------------------------------------------------
///   kRecipe   |   2  | malformed user input: recipe strings, CLI
///             |      | flags, CRYOEDA_FAULTS specs
///   kIo       |   3  | filesystem or parse failures (AIGER, liberty)
///   kBudget   |   4  | a resource budget was exhausted where degrading
///             |      | is impossible, or the flow was cancelled
///   kNumeric  |   5  | numerical divergence (SPICE Newton failures)
///   kInternal |   1  | invariant violations and everything unclassified
enum class ErrorKind { kRecipe, kIo, kBudget, kNumeric, kInternal };

/// Stable lowercase name: "recipe", "io", "budget", "numeric",
/// "internal". Used as the `what()` prefix and in fleet error records.
std::string_view error_kind_name(ErrorKind kind);

/// The driver exit code of a kind (table above).
int error_exit_code(ErrorKind kind);

/// A classified runtime error. `what()` is "<kind>: <message>", so logs
/// carry the taxonomy even through a plain std::exception catch.
class Error : public std::runtime_error {
public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error{std::string{error_kind_name(kind)} + ": " +
                           message},
        kind_{kind} {}

  ErrorKind kind() const { return kind_; }

private:
  ErrorKind kind_;
};

}  // namespace cryo
