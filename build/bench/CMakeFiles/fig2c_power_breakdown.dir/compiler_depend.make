# Empty compiler generated dependencies file for fig2c_power_breakdown.
# This may be replaced when dependencies are built.
