#include "spice/builtin_backend.hpp"

namespace cryo::spice {

DcResult BuiltinBackend::dc(const Circuit& circuit,
                            double temperature_k) const {
  Simulator sim{circuit, temperature_k};
  DcResult result;
  result.voltages = sim.dc();
  for (const auto& src : circuit.sources()) {
    result.source_currents[src.node] =
        sim.source_current(result.voltages, src.node);
  }
  return result;
}

TransientResult BuiltinBackend::transient(
    const Circuit& circuit, double temperature_k,
    const TransientOptions& options, const std::vector<NodeId>& probes) const {
  Simulator sim{circuit, temperature_k};
  return sim.transient(options, probes);
}

}  // namespace cryo::spice
