// cryoeda — the unified flow driver.
//
// One binary that wires the whole stack (library characterization,
// matcher, pass pipeline, STA signoff, reporting) the way the bench
// main()s and examples/synthesis_cli used to wire it by hand, and
// exposes the scriptable pass pipeline directly:
//
//   cryoeda input.aig --script "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad"
//   cryoeda --bench dec4 --temp 10 --priority pda --out dec4.v --report run.json
//   cryoeda serve --threads 4            # resident NDJSON daemon
//   cryoeda cec before.aig after.aig     # SAT equivalence check
//   cryoeda --list-passes
//
// Exit codes: 0 success, 1 internal failure, 2 usage / recipe error,
// 3 I/O error, 4 budget exhausted / cancelled, 5 numerical failure.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cells/characterize.hpp"
#include "core/corner_matrix.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/search.hpp"
#include "device/preset.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/aiger.hpp"
#include "map/verilog.hpp"
#include "sat/cnf.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "spice/backend.hpp"
#include "sta/sta.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"

using namespace cryo;

namespace {

constexpr const char* kUsage =
    "usage: cryoeda [input.aig|aag] [options]\n"
    "       cryoeda serve [--threads N] [--lib-dir D] [--socket PATH]\n"
    "       cryoeda cec A.aig B.aig [--conflict-limit N]\n"
    "       cryoeda matrix [--preset P]... [--temp K]... [--vdd V]...\n"
    "                      [--bench NAME]... [--out REPORT.json] [options]\n"
    "\n"
    "input: an AIGER file, or --bench NAME for a built-in benchmark\n"
    "       (EPFL-style generators: adder, bar, ..., voter; mini-suite\n"
    "       names: adder8, mult4, dec4, priority16, voter15)\n"
    "\n"
    "flow options:\n"
    "  --script RECIPE    pass recipe (default: the canonical recipe for\n"
    "                     the chosen --priority; see --list-passes)\n"
    "  --priority P       baseline | pad | pda       (default pda)\n"
    "  --temp K           corner temperature          (default 10)\n"
    "  --vdd V            corner supply voltage       (default 0.7)\n"
    "                     (--temp/--vdd are checked against the preset's\n"
    "                     declared model envelope; out-of-range corners\n"
    "                     are a usage error, not an extrapolation)\n"
    "  --preset NAME      device/technology preset    (default finfet5;\n"
    "                     see --list-presets)\n"
    "  --spice-backend B  SPICE engine: builtin | ngspice (default: the\n"
    "                     CRYOEDA_SPICE_BACKEND env var, else builtin)\n"
    "  --lut-k N          k of the LUT stage, 2..16   (default 6)\n"
    "  --epsilon E        cost tie-break threshold    (default 0.02)\n"
    "  --activity A       PI toggle rate, (0,1]       (default 0.2)\n"
    "  --seed N           flow seed                   (default 29)\n"
    "\n"
    "budget options:\n"
    "  --deadline S       wall-clock budget in seconds; when it runs out\n"
    "                     remaining optimization passes degrade (skip /\n"
    "                     stop early) but 'map' still produces a netlist\n"
    "  --sat-budget N     per-call SAT conflict ceiling of dch sweeping\n"
    "                     (>= 1, or -1 for unlimited; default 500)\n"
    "\n"
    "search options:\n"
    "  --search N         recipe-search mode: evaluate N recipe variants\n"
    "                     (the Fig. 3 seeds plus deterministic mutations)\n"
    "                     and report the best signoff instead of running\n"
    "                     one recipe; prefix-sharing variants reuse the\n"
    "                     per-pass artifact cache\n"
    "  --search-report P  write the search report (JSON) to P\n"
    "                     (default cryoeda_out/search.json)\n"
    "  --search-seed N    variant mutation seed            (default 1)\n"
    "  --search-deadline S  wall budget of one variant in seconds;\n"
    "                     a variant that blows it is excluded from best\n"
    "  --threads N        search workers (0 = CRYOEDA_THREADS env or\n"
    "                     hardware concurrency, 1 = serial; default 0)\n"
    "\n"
    "i/o options:\n"
    "  --lib PATH         liberty cache path (default\n"
    "                     cryoeda_out/cryoeda_lib_<T>K.lib)\n"
    "  --out PATH         write the mapped netlist as structural Verilog\n"
    "  --pre-aig PATH     write the input AIG (binary AIGER) before any\n"
    "                     pass runs (for external equivalence checks)\n"
    "  --out-aig PATH     write the optimized AIG (binary AIGER) after\n"
    "                     the recipe's AIG stages\n"
    "  --report PATH      write the observability run report (JSON)\n"
    "  --job-report PATH  write the deterministic per-job report\n"
    "                     (schema cryoeda-job-v1; byte-identical to the\n"
    "                     'report' field a `cryoeda serve` daemon replies\n"
    "                     with for the same job)\n"
    "  --quiet            suppress progress chatter\n"
    "  --list-passes      print the pass registry and exit\n"
    "  --list-presets     print the device preset registry and exit\n"
    "  --list-backends    print the SPICE engine registry and exit\n"
    "  -h, --help         this text\n"
    "\n"
    "matrix options (cryoeda matrix):\n"
    "  --preset/--temp/--vdd  repeatable; the cross product is the corner\n"
    "                     grid. Defaults per preset: its paper corner\n"
    "                     temperatures at its default Vdd.\n"
    "  --bench NAME       repeatable; default: the mini suite\n"
    "  --out PATH         matrix report (default cryoeda_out/matrix.json)\n"
    "  --lib-dir D        per-corner library cache dir (default\n"
    "                     cryoeda_out)\n"
    "  --corner-deadline S  per-corner characterization wall budget\n"
    "  --mini             mini cell catalog + coarse char grid (CI smoke)\n"
    "  exit 0 = every corner and row clean; 1 = some corner/row faulted\n"
    "  (the report records each fault; siblings still complete)\n"
    "\n"
    "exit codes: 0 success, 1 internal failure, 2 usage/recipe error,\n"
    "            3 I/O error, 4 budget exhausted/cancelled, 5 numerical\n"
    "            failure\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "cryoeda: %s\n\n%s", message.c_str(), kUsage);
  std::exit(2);
}

struct Args {
  std::string input_path;
  std::string bench_name;
  std::string script;
  std::string lib_path;
  std::string out_path;
  std::string report_path;
  std::string job_report_path;
  std::string pre_aig_path;
  std::string out_aig_path;
  double temperature = 10.0;
  double vdd = 0.7;
  std::string preset;   ///< "" = the default platform
  std::string backend;  ///< "" = $CRYOEDA_SPICE_BACKEND / builtin
  bool quiet = false;
  core::FlowOptions flow;
  std::size_t search_variants = 0;  ///< 0 = normal single-recipe mode
  std::string search_report_path = "cryoeda_out/search.json";
  std::uint64_t search_seed = 1;
  double search_deadline = 0.0;
  int threads = 0;
};

double parse_double(const std::string& flag, const std::string& raw) {
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    usage_error("bad value for " + flag + ": '" + raw + "'");
  }
  return value;
}

unsigned long parse_uint(const std::string& flag, const std::string& raw) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw.c_str(), &end, 10);
  if (raw.empty() || raw[0] == '-' || end != raw.c_str() + raw.size()) {
    usage_error("bad value for " + flag + ": '" + raw + "'");
  }
  return value;
}

void list_passes() {
  std::printf("passes (compose with ';' in --script):\n\n");
  for (const core::Pass* pass : core::PassRegistry::global().passes()) {
    std::printf("  %-10s %s\n", pass->name.c_str(), pass->help.c_str());
    for (const auto& arg : pass->args) {
      if (arg.kind == core::ArgKind::kUInt) {
        std::printf("      %s <%u..%u>  %s\n", arg.flag.c_str(), arg.min_uint,
                    arg.max_uint, arg.help.c_str());
      } else {
        std::printf("      %s <name>  %s\n", arg.flag.c_str(),
                    arg.help.c_str());
      }
    }
  }
  std::printf("\ncanonical recipe (defaults): %s\n",
              core::canonical_recipe(core::FlowOptions{}).c_str());
}

void list_presets() {
  std::printf("device presets (--preset NAME):\n\n");
  for (const device::Preset& p : device::preset_registry()) {
    std::printf("  %-12s %-14s T [%g, %g] K, Vdd [%g, %g] V, default %g K / "
                "%g V\n",
                p.name.c_str(), p.technology.c_str(), p.temp_min_k,
                p.temp_max_k, p.vdd_min, p.vdd_max, p.default_temp_k,
                p.default_vdd);
    std::printf("               %s\n", p.description.c_str());
  }
}

void list_backends() {
  std::printf("SPICE engines (--spice-backend NAME, or the\n"
              "CRYOEDA_SPICE_BACKEND env var):\n\n");
  for (const std::string& name : spice::backend_names()) {
    const spice::Backend* backend = spice::find_backend(name);
    if (backend->available()) {
      std::printf("  %-10s %s (available)\n", name.c_str(),
                  backend->identity().c_str());
    } else {
      std::printf("  %-10s unavailable: %s\n", name.c_str(),
                  backend->unavailable_reason().c_str());
    }
  }
}

logic::Aig resolve_benchmark(const std::string& name) {
  logic::Aig aig;
  if (epfl::find_benchmark(name, aig)) {
    return aig;
  }
  std::string known;
  for (const std::string& candidate : epfl::benchmark_names()) {
    known += (known.empty() ? "" : ", ") + candidate;
  }
  usage_error("unknown benchmark '" + name + "' (known: " + known + ")");
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.flow.priority = opt::CostPriority::kPowerDelayArea;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--script") {
      args.script = next();
    } else if (arg == "--priority") {
      const std::string p = next();
      const auto priority = opt::priority_from_string(p);
      if (!priority) {
        usage_error("unknown priority '" + p +
                    "' (expected baseline | pad | pda)");
      }
      args.flow.priority = *priority;
    } else if (arg == "--temp") {
      args.temperature = parse_double(arg, next());
      if (!(args.temperature > 0.0)) {
        usage_error("--temp must be a positive temperature in kelvin");
      }
    } else if (arg == "--vdd") {
      args.vdd = parse_double(arg, next());
      if (!(args.vdd > 0.0)) {
        usage_error("--vdd must be a positive supply in volts");
      }
    } else if (arg == "--lut-k") {
      args.flow.lut_k = static_cast<unsigned>(parse_uint(arg, next()));
    } else if (arg == "--epsilon") {
      args.flow.epsilon = parse_double(arg, next());
    } else if (arg == "--activity") {
      args.flow.input_activity = parse_double(arg, next());
    } else if (arg == "--seed") {
      args.flow.seed = parse_uint(arg, next());
    } else if (arg == "--deadline") {
      const double seconds = parse_double(arg, next());
      if (!(seconds > 0.0)) {
        usage_error("--deadline must be a positive time in seconds");
      }
      util::Budget::global().set_deadline_in(seconds);
    } else if (arg == "--sat-budget") {
      const std::string raw = next();
      char* end = nullptr;
      const long long conflicts = std::strtoll(raw.c_str(), &end, 10);
      if (raw.empty() || end != raw.c_str() + raw.size() ||
          (conflicts != -1 && conflicts < 1)) {
        usage_error("bad value for --sat-budget: '" + raw +
                    "' (expected an integer >= 1, or -1 for unlimited)");
      }
      args.flow.sat_conflict_budget = conflicts;
    } else if (arg == "--search") {
      args.search_variants = parse_uint(arg, next());
      if (args.search_variants == 0) {
        usage_error("--search needs at least 1 variant");
      }
    } else if (arg == "--search-report") {
      args.search_report_path = next();
    } else if (arg == "--search-seed") {
      args.search_seed = parse_uint(arg, next());
    } else if (arg == "--search-deadline") {
      args.search_deadline = parse_double(arg, next());
      if (!(args.search_deadline > 0.0)) {
        usage_error("--search-deadline must be a positive time in seconds");
      }
    } else if (arg == "--threads") {
      args.threads = static_cast<int>(parse_uint(arg, next()));
    } else if (arg == "--bench") {
      args.bench_name = next();
    } else if (arg == "--lib") {
      args.lib_path = next();
    } else if (arg == "--out") {
      args.out_path = next();
    } else if (arg == "--report") {
      args.report_path = next();
    } else if (arg == "--job-report") {
      args.job_report_path = next();
    } else if (arg == "--pre-aig") {
      args.pre_aig_path = next();
    } else if (arg == "--out-aig") {
      args.out_aig_path = next();
    } else if (arg == "--preset") {
      args.preset = next();
    } else if (arg == "--spice-backend") {
      args.backend = next();
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--list-passes") {
      list_passes();
      std::exit(0);
    } else if (arg == "--list-presets") {
      list_presets();
      std::exit(0);
    } else if (arg == "--list-backends") {
      list_backends();
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (args.input_path.empty()) {
      args.input_path = arg;
    } else {
      usage_error("unexpected extra operand '" + arg + "' (input already '" +
                  args.input_path + "')");
    }
  }
  if (args.input_path.empty() && args.bench_name.empty()) {
    usage_error("no input: give an AIGER file or --bench NAME");
  }
  if (!args.input_path.empty() && !args.bench_name.empty()) {
    usage_error("give either an AIGER file or --bench, not both");
  }
  if (args.search_variants > 0 && !args.script.empty()) {
    usage_error("--search enumerates its own recipes; drop --script");
  }
  return args;
}

// `cryoeda serve`: run the resident NDJSON daemon over stdin/stdout or
// an AF_UNIX socket. Per-job failures are structured error replies; the
// session exit code is 0 unless the daemon itself cannot run.
int run_serve(int argc, char** argv) {
  service::ServeOptions options;
  std::string socket_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = static_cast<int>(parse_uint(arg, next()));
    } else if (arg == "--lib-dir") {
      options.lib_dir = next();
    } else if (arg == "--socket") {
      socket_path = next();
    } else {
      usage_error("unknown serve option '" + arg + "'");
    }
  }
  try {
    service::Server server{std::move(options)};
    if (!socket_path.empty()) {
      std::fprintf(stderr, "cryoeda: serving on %s\n", socket_path.c_str());
      return server.serve_unix(socket_path);
    }
    return server.serve(std::cin, std::cout);
  } catch (const Error& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return error_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 1;
  }
}

// `cryoeda cec A B`: SAT equivalence check of two AIGER files.
// Exit codes: 0 equivalent, 1 NOT equivalent, 4 unknown (conflict limit
// hit), 2 usage / interface mismatch, 3 I/O failure.
int run_cec(int argc, char** argv) {
  std::vector<std::string> paths;
  std::int64_t conflict_limit = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--conflict-limit") {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      conflict_limit = static_cast<std::int64_t>(parse_uint(arg, argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown cec option '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    usage_error("cec needs exactly two AIGER files");
  }
  try {
    const logic::Aig a = logic::read_aiger_file(paths[0]);
    const logic::Aig b = logic::read_aiger_file(paths[1]);
    const sat::CecResult result =
        sat::check_equivalence(a, b, conflict_limit);
    if (result.equivalent()) {
      std::printf("EQUIVALENT: %s == %s\n", paths[0].c_str(),
                  paths[1].c_str());
      return 0;
    }
    if (!result.proven()) {
      std::printf("UNKNOWN: conflict limit %lld hit before a proof\n",
                  static_cast<long long>(conflict_limit));
      return 4;
    }
    std::string cex;
    for (const bool bit : result.counterexample) {
      cex += bit ? '1' : '0';
    }
    std::printf("NOT EQUIVALENT: distinguishing input %s\n", cex.c_str());
    return 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return error_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 1;
  }
}

// `cryoeda matrix`: characterize + synthesize a temperature x Vdd x
// technology corner grid through the cached pipeline, one fault-isolated
// corner at a time, and write the deterministic cryoeda-matrix-v1
// report. Exit 0 only when every corner and row is clean; 1 when some
// entry faulted (the report says which); usage errors (unknown preset /
// benchmark / engine, out-of-envelope corner) exit 2 before any corner
// runs.
int run_matrix_cmd(int argc, char** argv) {
  core::MatrixOptions options;
  std::string report_path = "cryoeda_out/matrix.json";
  bool mini = false;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--preset") {
      options.axes.presets.push_back(next());
    } else if (arg == "--temp") {
      options.axes.temps.push_back(parse_double(arg, next()));
    } else if (arg == "--vdd") {
      options.axes.vdds.push_back(parse_double(arg, next()));
    } else if (arg == "--bench") {
      options.benches.push_back(next());
    } else if (arg == "--spice-backend") {
      options.backend = next();
    } else if (arg == "--lib-dir") {
      options.lib_dir = next();
    } else if (arg == "--out") {
      report_path = next();
    } else if (arg == "--corner-deadline") {
      options.per_corner_deadline_s = parse_double(arg, next());
      if (!(options.per_corner_deadline_s > 0.0)) {
        usage_error("--corner-deadline must be a positive time in seconds");
      }
    } else if (arg == "--threads") {
      const int threads = static_cast<int>(parse_uint(arg, next()));
      options.experiment.threads = threads;
      options.char_options.threads = threads;
    } else if (arg == "--seed") {
      options.experiment.flow.seed = parse_uint(arg, next());
    } else if (arg == "--mini") {
      mini = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage_error("unknown matrix option '" + arg + "'");
    }
  }
  if (mini) {
    // CI-smoke configuration: the mini catalog on a coarse 3x3 grid
    // keeps an 8-corner matrix in tens of seconds instead of hours.
    options.catalog = cells::mini_catalog();
    options.char_options.slews = {4e-12, 16e-12, 48e-12};
    options.char_options.loads = {2e-16, 1e-15, 4e-15};
  }
  options.verbose = !quiet;
  try {
    const core::MatrixResult result = core::run_matrix(options);
    for (const auto& corner : result.corners) {
      if (!quiet) {
        std::printf("corner %-28s %s\n", corner.corner.label().c_str(),
                    corner.ok ? "ok" : corner.error.c_str());
        for (const auto& row : corner.rows) {
          std::printf("  %-12s %s\n", row.bench.c_str(),
                      !row.ok ? row.error.c_str()
                              : (row.comparison.ok() ? "ok"
                                                     : "scenario fault"));
        }
      }
    }
    const util::Json report = core::matrix_report(result);
    const auto report_dir = std::filesystem::path{report_path}.parent_path();
    if (!report_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(report_dir, ec);
    }
    std::ofstream out{report_path};
    if (!out) {
      throw Error{ErrorKind::kIo, "cannot open matrix report path '" +
                                      report_path + "' for writing"};
    }
    out << report.dump(2) << '\n';
    std::printf("matrix : %zu corners (%d ok), %d rows (%d ok), engine %s\n",
                result.corners.size(), result.corners_ok(),
                result.rows_total(), result.rows_ok(),
                result.backend_identity.c_str());
    std::printf("matrix report written to %s\n", report_path.c_str());
    return result.all_ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return error_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string{argv[1]} == "serve") {
    return run_serve(argc, argv);
  }
  if (argc >= 2 && std::string{argv[1]} == "cec") {
    return run_cec(argc, argv);
  }
  if (argc >= 2 && std::string{argv[1]} == "matrix") {
    return run_matrix_cmd(argc, argv);
  }
  const Args args = parse_args(argc, argv);

  // Compile the recipe first: a typo should fail before we spend
  // characterization time.
  const std::string script = args.script.empty()
                                 ? core::canonical_recipe(args.flow)
                                 : args.script;
  core::Pipeline pipeline;
  const device::Preset* preset = nullptr;
  try {
    core::validate(args.flow);
    pipeline = core::Pipeline::parse(script);
    // The corner must sit inside the preset's declared model envelope —
    // silently extrapolating the compact model is a usage error, caught
    // before any characterization time is spent. The engine name is
    // resolved here too so a typo'd --spice-backend fails just as fast.
    preset = &device::resolve_preset(args.preset);
    device::validate_corner(*preset, args.temperature, args.vdd);
    spice::resolve_backend(args.backend);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 2;
  }

  try {
    logic::Aig design = args.bench_name.empty()
                            ? logic::read_aiger_file(args.input_path)
                            : resolve_benchmark(args.bench_name);
    if (design.name().empty()) {
      design.set_name("user_design");
    }
    if (!args.quiet) {
      std::printf("design : %s — %u PIs, %u POs, %u AND nodes, depth %u\n",
                  design.name().c_str(), design.num_pis(), design.num_pos(),
                  design.num_ands(), design.depth());
      std::printf("recipe : %s\n", pipeline.to_string().c_str());
    }

    if (!args.pre_aig_path.empty()) {
      logic::write_aiger_file(design, args.pre_aig_path);
      if (!args.quiet) {
        std::printf("input AIG written to %s\n", args.pre_aig_path.c_str());
      }
    }

    std::string lib_path = args.lib_path;
    if (lib_path.empty()) {
      // Shared with the `cryoeda serve` daemon and `cryoeda matrix`, so
      // all three resolve a (preset, engine, corner) to the same
      // characterized-library bytes.
      lib_path = cells::default_lib_path(
          "cryoeda_out", *preset, spice::resolve_backend(args.backend).name(),
          args.temperature, args.vdd);
    }
    if (!args.quiet) {
      std::printf("library: %s @ %g K, %g V\n", lib_path.c_str(),
                  args.temperature, args.vdd);
    }
    const auto lib_dir = std::filesystem::path{lib_path}.parent_path();
    if (!lib_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(lib_dir, ec);
    }
    cells::CharOptions char_options;
    char_options.vdd = args.vdd;
    char_options.preset = *preset;
    char_options.backend = args.backend;
    const auto library = cells::load_or_characterize(
        lib_path, cells::standard_catalog(), args.temperature, char_options);
    const map::CellMatcher matcher{library};

    // The deterministic per-job report goes through the same
    // `core::run_scenario` entry point the daemon uses, so the two are
    // byte-identical for the same job (the scenario cache serves the
    // figures; the pipeline run below reuses the warm pass cache).
    if (args.job_report_path.empty() == false && args.search_variants == 0) {
      core::ExperimentOptions experiment;
      experiment.flow = args.flow;
      const core::ScenarioSpec spec{opt::short_name(args.flow.priority),
                                    args.flow.priority, script};
      const core::ScenarioResult scenario =
          core::run_scenario(design, matcher, experiment, spec);
      const util::Json job_report = service::job_report_json(
          design, args.temperature, args.vdd, preset->name,
          spice::resolve_backend(args.backend).identity(),
          pipeline.to_string(), scenario);
      const auto report_dir =
          std::filesystem::path{args.job_report_path}.parent_path();
      if (!report_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(report_dir, ec);
      }
      std::ofstream job_out{args.job_report_path};
      if (!job_out) {
        throw Error{ErrorKind::kIo, "cannot open job report path '" +
                                        args.job_report_path +
                                        "' for writing"};
      }
      job_out << job_report.dump() << '\n';
      if (!args.quiet) {
        std::printf("job report written to %s\n",
                    args.job_report_path.c_str());
      }
    }

    if (args.search_variants > 0) {
      core::SearchOptions search;
      search.experiment.flow = args.flow;
      search.experiment.verbose = !args.quiet;
      search.experiment.threads = args.threads;
      search.variants = args.search_variants;
      search.seed = args.search_seed;
      search.per_variant_deadline_s = args.search_deadline;

      std::vector<epfl::Benchmark> suite;
      suite.push_back({design.name(), false, std::move(design)});
      const auto results = core::search_recipes(suite, matcher, search);

      std::printf("\nsearch results (%zu variants):\n", args.search_variants);
      for (const auto& circuit : results) {
        if (circuit.best < 0) {
          std::printf("  %s: no variant produced a clean signoff\n",
                      circuit.circuit.c_str());
          continue;
        }
        const auto& best =
            circuit.trials[static_cast<std::size_t>(circuit.best)];
        std::printf("  %s: %.4g W, %.1f ps, %.2f um^2, %zu gates\n",
                    circuit.circuit.c_str(), best.result.total_power,
                    best.result.delay * 1e12, best.result.area,
                    best.result.gates);
        std::printf("    recipe: %s\n", best.recipe.c_str());
      }

      const auto report_dir =
          std::filesystem::path{args.search_report_path}.parent_path();
      if (!report_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(report_dir, ec);
      }
      std::ofstream out{args.search_report_path};
      if (!out) {
        throw Error{ErrorKind::kIo, "cannot open search report path '" +
                                        args.search_report_path +
                                        "' for writing"};
      }
      out << core::search_report(results, search).dump(2) << '\n';
      std::printf("  search report written to %s\n",
                  args.search_report_path.c_str());

      if (!args.report_path.empty()) {
        util::obs::ReportOptions report;
        report.flow = "cryoeda-search";
        util::obs::write_report(args.report_path, report);
        std::printf("  run report written to %s\n", args.report_path.c_str());
      }
      return 0;
    }

    core::FlowState state;
    state.aig = std::move(design);
    state.matcher = &matcher;
    state.options = args.flow;
    pipeline.run(state);

    std::printf("\nresults:\n");
    std::printf("  AIG          : %u -> %u AND nodes\n", state.initial_ands,
                state.aig.num_ands());
    if (state.has_netlist) {
      std::printf("  netlist      : %zu gates, %.2f um^2\n",
                  state.netlist.gate_count(), state.netlist.total_area());
      const auto signoff = sta::analyze(state.netlist, {});
      std::printf("  critical path: %.1f ps\n",
                  signoff.critical_delay * 1e12);
      std::printf("  power @1GHz  : %.4g W (leakage %.4g, internal %.4g, "
                  "switching %.4g)\n",
                  signoff.power.total(), signoff.power.leakage,
                  signoff.power.internal, signoff.power.switching);
    } else {
      std::printf("  (recipe has no 'map' pass — no netlist/signoff)\n");
    }

    if (!args.out_aig_path.empty()) {
      logic::write_aiger_file(state.aig, args.out_aig_path);
      std::printf("  optimized AIG written to %s\n",
                  args.out_aig_path.c_str());
    }
    if (!args.out_path.empty()) {
      if (!state.has_netlist) {
        std::fprintf(stderr,
                     "cryoeda: --out needs a mapped netlist; add 'map' to "
                     "the recipe\n");
        return 2;
      }
      map::write_verilog(state.netlist, args.out_path);
      std::printf("  netlist written to %s\n", args.out_path.c_str());
    }
    if (!args.report_path.empty()) {
      util::obs::ReportOptions report;
      report.flow = "cryoeda";
      util::obs::write_report(args.report_path, report);
      std::printf("  run report written to %s\n", args.report_path.c_str());
    }
    return 0;
  } catch (const core::RecipeError& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return error_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 1;
  }
}
