#pragma once

#include "spice/backend.hpp"

namespace cryo::spice {

/// The in-process Newton–Raphson / trapezoidal engine (`Simulator`)
/// behind the `Backend` seam. Always available, and bit-identical to
/// driving `Simulator` directly: each call constructs a `Simulator`
/// (a pure function of circuit + temperature) and delegates.
///
/// `version()` names the numerics, not the build: bump it whenever a
/// change alters simulation results, so stale characterization /
/// calibration cache entries can never be replayed against new math.
class BuiltinBackend : public Backend {
public:
  std::string name() const override { return "builtin"; }
  std::string version() const override { return "1"; }
  bool available() const override { return true; }

  DcResult dc(const Circuit& circuit, double temperature_k) const override;
  TransientResult transient(const Circuit& circuit, double temperature_k,
                            const TransientOptions& options,
                            const std::vector<NodeId>& probes) const override;
};

}  // namespace cryo::spice
