#pragma once

#include <cstdint>

#include "core/pipeline.hpp"
#include "util/json.hpp"

namespace cryo::core {

/// JSON round-tripping of intermediate `FlowState` snapshots, the value
/// format of the per-pass artifact cache (core/pipeline.hpp). A snapshot
/// captures everything a *later pass* reads from the state — the AIG,
/// the `dch` structural choices, the stage-2 checkpoint, and the size
/// bookkeeping — but not the matcher/options/budget (those are supplied
/// by the run that restores it and are covered by the cache key).
///
/// The AIG serialization is exact by construction: AND fanin pairs are
/// stored in node order as `Aig::land` normalized them, so replaying
/// `land` reproduces identical node indices, and the PI/PO interface
/// (including names, which AIGER round-trips would drop) is stored
/// verbatim. Every snapshot embeds its own `state_fingerprint`; restore
/// recomputes it and rejects a mismatch, so a corrupt or stale entry
/// degrades to a recompute instead of silently corrupting the flow.

/// True when `state` can round-trip through a snapshot: no pending LUT
/// cover (it points into `aig` and `opt::LutMapping` has no serialized
/// form) and no mapped netlist. Passes whose *result* fails this (`if`,
/// `mfs`, `strash`, `map`) re-run instead of caching.
bool snapshotable(const FlowState& state);

/// Semantic fingerprint of what downstream passes consume: the AIG's
/// structural fingerprint plus the choice classes and the stage-2
/// checkpoint. States with equal fingerprints drive every later pass
/// identically (size counters are bookkeeping, not pass inputs).
std::uint64_t state_fingerprint(const FlowState& state);

/// Serialize `state` (requires `snapshotable(state)`; throws
/// std::logic_error otherwise).
util::Json snapshot_to_json(const FlowState& state);

/// Restore a snapshot into `state`, replacing the AIG, choices,
/// checkpoint, and counters; `matcher` / `options` / `budget` /
/// `initial_ands` keep their values. All-or-nothing: on a malformed,
/// inconsistent, or fingerprint-mismatched document it throws
/// std::runtime_error and leaves `state` untouched (the pass cache
/// treats that as a corrupt entry and recomputes).
void snapshot_from_json(const util::Json& json, FlowState& state);

/// Exact AIG <-> JSON conversion (PI/PO names and the design name
/// included). `aig_from_json` throws std::runtime_error on malformed or
/// non-canonical documents.
util::Json aig_to_json(const logic::Aig& aig);
logic::Aig aig_from_json(const util::Json& json);

}  // namespace cryo::core
