# Empty compiler generated dependencies file for qubit_controller.
# This may be replaced when dependencies are built.
