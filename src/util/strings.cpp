#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace cryo::util {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = end == std::string_view::npos ? text.size() : end;
    if (stop > start) {
      tokens.emplace_back(text.substr(start, stop - start));
    }
    start = stop + 1;
  }
  return tokens;
}

std::string_view trim(std::string_view text) {
  const auto* ws = " \t\r\n";
  const std::size_t first = text.find_first_not_of(ws);
  if (first == std::string_view::npos) {
    return {};
  }
  const std::size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace cryo::util
