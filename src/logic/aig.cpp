#include "logic/aig.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace cryo::logic {

Lit Aig::add_pi(std::string name) {
  if (num_ands_ != 0) {
    throw std::logic_error{"Aig: all PIs must be created before AND nodes"};
  }
  const NodeIdx v = num_nodes();
  nodes_.push_back({0, 0});
  pis_.push_back(v);
  if (name.empty()) {
    name = "pi" + std::to_string(pis_.size() - 1);
  }
  pi_names_.push_back(std::move(name));
  return make_lit(v);
}

Lit Aig::land(Lit a, Lit b) {
  // Trivial cases (constant propagation, idempotence, complementarity).
  if (a > b) {
    std::swap(a, b);
  }
  if (a == kConst0) {
    return kConst0;
  }
  if (a == kConst1) {
    return b;
  }
  if (a == b) {
    return a;
  }
  if (a == lit_not(b)) {
    return kConst0;
  }
  const std::uint64_t k = key(a, b);
  const auto it = strash_.find(k);
  if (it != strash_.end()) {
    return make_lit(it->second);
  }
  const NodeIdx v = num_nodes();
  nodes_.push_back({a, b});
  ++num_ands_;
  strash_.emplace(k, v);
  return make_lit(v);
}

Lit Aig::lxor(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lit_not(land(lit_not(land(a, lit_not(b))), lit_not(land(lit_not(a), b))));
}

Lit Aig::lmux(Lit s, Lit t, Lit e) {
  return lit_not(land(lit_not(land(s, t)), lit_not(land(lit_not(s), e))));
}

Lit Aig::lmaj(Lit a, Lit b, Lit c) {
  return lor(land(a, b), lor(land(a, c), land(b, c)));
}

void Aig::add_po(Lit driver, std::string name) {
  if (lit_var(driver) >= num_nodes()) {
    throw std::out_of_range{"Aig::add_po: literal out of range"};
  }
  if (name.empty()) {
    name = "po" + std::to_string(pos_.size());
  }
  pos_.push_back(driver);
  po_names_.push_back(std::move(name));
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> counts(num_nodes(), 0);
  for (NodeIdx v = 0; v < num_nodes(); ++v) {
    if (is_and(v)) {
      ++counts[lit_var(fanin0(v))];
      ++counts[lit_var(fanin1(v))];
    }
  }
  for (Lit po : pos_) {
    ++counts[lit_var(po)];
  }
  return counts;
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(num_nodes(), 0);
  for (NodeIdx v = 0; v < num_nodes(); ++v) {
    if (is_and(v)) {
      level[v] = 1 + std::max(level[lit_var(fanin0(v))],
                              level[lit_var(fanin1(v))]);
    }
  }
  return level;
}

std::uint32_t Aig::depth() const {
  const auto level = levels();
  std::uint32_t d = 0;
  for (Lit po : pos_) {
    d = std::max(d, level[lit_var(po)]);
  }
  return d;
}

Aig Aig::cleanup() const {
  Aig out;
  out.name_ = name_;
  std::vector<Lit> map(num_nodes(), kConst0);
  for (NodeIdx i = 0; i < num_pis(); ++i) {
    map[pis_[i]] = out.add_pi(pi_names_[i]);
  }
  // Mark reachable nodes from POs.
  std::vector<bool> reach(num_nodes(), false);
  std::vector<NodeIdx> stack;
  for (Lit po : pos_) {
    stack.push_back(lit_var(po));
  }
  while (!stack.empty()) {
    const NodeIdx v = stack.back();
    stack.pop_back();
    if (reach[v] || !is_and(v)) {
      continue;
    }
    reach[v] = true;
    stack.push_back(lit_var(fanin0(v)));
    stack.push_back(lit_var(fanin1(v)));
  }
  for (NodeIdx v = 0; v < num_nodes(); ++v) {
    if (is_and(v) && reach[v]) {
      const Lit a = map[lit_var(fanin0(v))];
      const Lit b = map[lit_var(fanin1(v))];
      map[v] = out.land(lit_notif(a, lit_compl(fanin0(v))),
                        lit_notif(b, lit_compl(fanin1(v))));
    }
  }
  for (NodeIdx i = 0; i < num_pos(); ++i) {
    const Lit po = pos_[i];
    out.add_po(lit_notif(map[lit_var(po)], lit_compl(po)), po_names_[i]);
  }
  return out;
}

std::uint64_t fingerprint(const Aig& aig) {
  util::Fnv1a hash;
  hash.str(aig.name());
  hash.u64(aig.num_pis());
  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    hash.str(aig.pi_name(i));
  }
  hash.u64(aig.num_nodes());
  for (NodeIdx v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    hash.u64(aig.fanin0(v));
    hash.u64(aig.fanin1(v));
  }
  hash.u64(aig.num_pos());
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    hash.u64(aig.po(i));
    hash.str(aig.po_name(i));
  }
  return hash.value();
}

}  // namespace cryo::logic
