#include "logic/npn.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cryo::logic {

std::uint64_t npn_apply(std::uint64_t tt, unsigned n, const NpnTransform& t) {
  std::uint64_t out = 0;
  for (unsigned m = 0; m < (1u << n); ++m) {
    unsigned z = 0;
    for (unsigned i = 0; i < n; ++i) {
      const unsigned x = (m >> t.perm[i]) & 1u;
      z |= (x ^ ((t.input_phase >> i) & 1u)) << i;
    }
    bool bit = tt6_bit(tt, z);
    if (t.out_negate) {
      bit = !bit;
    }
    if (bit) {
      out |= 1ull << m;
    }
  }
  return out;
}

NpnTransform npn_compose(const NpnTransform& a, const NpnTransform& b,
                         unsigned n) {
  // (a ∘ b) f: f's input i reads (through b) var b.perm[i] of the
  // intermediate, which (through a) reads var a.perm[b.perm[i]] of the
  // final domain, with the phases accumulating along the way.
  NpnTransform c;
  for (unsigned i = 0; i < n; ++i) {
    c.perm[i] = a.perm[b.perm[i]];
    const unsigned phase =
        ((b.input_phase >> i) & 1u) ^ ((a.input_phase >> b.perm[i]) & 1u);
    c.input_phase |= phase << i;
  }
  c.out_negate = a.out_negate != b.out_negate;
  return c;
}

NpnTransform npn_inverse(const NpnTransform& t, unsigned n) {
  NpnTransform inv;
  for (unsigned i = 0; i < n; ++i) {
    inv.perm[t.perm[i]] = static_cast<std::uint8_t>(i);
  }
  for (unsigned j = 0; j < n; ++j) {
    inv.input_phase |= ((t.input_phase >> inv.perm[j]) & 1u) << j;
  }
  inv.out_negate = t.out_negate;
  return inv;
}

namespace {

/// Variable classification for one output-phase candidate: the phase
/// flip chosen by the cofactor-weight rule, whether the rule left the
/// phase ambiguous (equal weights), and the sort key.
struct VarKey {
  unsigned var = 0;
  unsigned weight = 0;      ///< positive-cofactor weight after phase fix
  unsigned other = 0;       ///< negative-cofactor weight after phase fix
  bool phase = false;       ///< flip chosen by the weight rule
  bool phase_ambiguous = false;
};

/// Enumeration state shared by the residual-orbit walk.
struct Best {
  std::uint64_t tt = ~0ull;
  NpnTransform transform;
  bool valid = false;
};

void consider(std::uint64_t tt, unsigned n, const NpnTransform& cand,
              Best& best) {
  const std::uint64_t value = npn_apply(tt, n, cand);
  if (!best.valid || value < best.tt) {
    best.valid = true;
    best.tt = value;
    best.transform = cand;
  }
}

/// Walk every assignment of ambiguous phases and every permutation of
/// tied sort groups; `keys` is already sorted by (weight, other).
void enumerate_residual(std::uint64_t tt, unsigned n, bool out_negate,
                        std::vector<VarKey>& keys, Best& best) {
  // Permutations within tied groups: std::next_permutation over the
  // whole key vector, constrained to stay sorted, walks exactly the
  // product of per-group permutations.
  const auto tied = [](const VarKey& a, const VarKey& b) {
    return a.weight == b.weight && a.other == b.other;
  };
  std::vector<unsigned> ambiguous;
  for (unsigned j = 0; j < n; ++j) {
    if (keys[j].phase_ambiguous) {
      ambiguous.push_back(j);
    }
  }
  // Sort group boundaries for the constrained permutation walk.
  std::vector<unsigned> order(n);
  for (unsigned j = 0; j < n; ++j) {
    order[j] = j;
  }
  const auto emit = [&]() {
    for (std::uint32_t amb = 0; amb < (1u << ambiguous.size()); ++amb) {
      NpnTransform cand;
      cand.out_negate = out_negate;
      cand.input_phase = 0;
      for (unsigned j = 0; j < n; ++j) {
        const VarKey& key = keys[order[j]];
        // Original variable key.var lands at canonical position j:
        // f's input key.var reads canonical var j.
        cand.perm[key.var] = static_cast<std::uint8_t>(j);
        bool phase = key.phase;
        for (std::size_t a = 0; a < ambiguous.size(); ++a) {
          if (ambiguous[a] == order[j] && ((amb >> a) & 1u)) {
            phase = !phase;
          }
        }
        if (phase) {
          cand.input_phase |= 1u << key.var;
        }
      }
      consider(tt, n, cand, best);
    }
  };

  // Walk permutations of `order` that keep tied groups contiguous: for
  // each group, permute its members. Recursive product of group perms.
  std::vector<std::pair<unsigned, unsigned>> groups;  // [begin, end)
  unsigned begin = 0;
  for (unsigned j = 1; j <= n; ++j) {
    if (j == n || !tied(keys[j - 1], keys[j])) {
      groups.push_back({begin, j});
      begin = j;
    }
  }
  const std::size_t num_groups = groups.size();
  // Iterative odometer over per-group permutations.
  std::vector<std::vector<unsigned>> group_orders(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    for (unsigned j = groups[g].first; j < groups[g].second; ++j) {
      group_orders[g].push_back(j);
    }
  }
  for (;;) {
    unsigned pos = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      for (const unsigned j : group_orders[g]) {
        order[pos++] = j;
      }
    }
    emit();
    // Advance: next_permutation on the last group that still has one.
    std::size_t g = num_groups;
    while (g-- > 0) {
      if (std::next_permutation(group_orders[g].begin(),
                                group_orders[g].end())) {
        break;
      }
      // Wrapped: reset (next_permutation leaves it sorted) and carry on.
      if (g == 0) {
        return;
      }
    }
  }
}

}  // namespace

NpnCanon npn_canonicalize(std::uint64_t tt, unsigned n) {
  if (n > 6) {
    throw std::invalid_argument{"npn_canonicalize: at most 6 variables"};
  }
  const std::uint64_t mask = tt6_mask(n);
  tt &= mask;
  if (n == 0) {
    NpnCanon canon;
    canon.signature = 0;
    canon.transform.out_negate = (tt & 1ull) != 0;
    return canon;
  }

  Best best;
  for (const bool out_negate : {false, true}) {
    const std::uint64_t g = out_negate ? (~tt & mask) : tt;
    const unsigned total = static_cast<unsigned>(std::popcount(g));
    std::vector<VarKey> keys(n);
    for (unsigned v = 0; v < n; ++v) {
      const unsigned w1 =
          static_cast<unsigned>(std::popcount(g & kVarTt6[v] & mask));
      const unsigned w0 = total - w1;
      VarKey& key = keys[v];
      key.var = v;
      // Phase rule: make the positive-cofactor weight the smaller one;
      // equal weights leave the phase ambiguous.
      key.phase = w1 > w0;
      key.phase_ambiguous = w1 == w0;
      key.weight = std::min(w1, w0);
      key.other = std::max(w1, w0);
    }
    std::stable_sort(keys.begin(), keys.end(),
                     [](const VarKey& a, const VarKey& b) {
                       return a.weight != b.weight ? a.weight < b.weight
                                                   : a.other < b.other;
                     });
    enumerate_residual(tt, n, out_negate, keys, best);
  }

  NpnCanon canon;
  canon.signature = best.tt;
  canon.transform = best.transform;
  return canon;
}

}  // namespace cryo::logic
