#include "service/protocol.hpp"

#include <cstdio>

#include "cells/characterize.hpp"
#include "device/preset.hpp"
#include "opt/cost.hpp"
#include "spice/backend.hpp"
#include "util/error.hpp"

namespace cryo::service {

namespace {

[[noreturn]] void reject(const std::string& message) {
  throw Error{ErrorKind::kRecipe, "request: " + message};
}

std::string expect_string(const std::string& key, const util::Json& value) {
  if (value.type() != util::Json::Type::kString) {
    reject("field '" + key + "' must be a string");
  }
  return value.as_string();
}

double expect_number(const std::string& key, const util::Json& value) {
  if (!value.is_number()) {
    reject("field '" + key + "' must be a number");
  }
  return value.as_double();
}

}  // namespace

JobRequest parse_request(const util::Json& json) {
  if (!json.is_object()) {
    reject("a request must be a JSON object");
  }
  JobRequest req;
  bool seen_priority = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "op") {
      req.op = expect_string(key, value);
    } else if (key == "id") {
      req.id = expect_string(key, value);
    } else if (key == "bench") {
      req.bench = expect_string(key, value);
    } else if (key == "aiger_path") {
      req.aiger_path = expect_string(key, value);
    } else if (key == "recipe") {
      req.recipe = expect_string(key, value);
    } else if (key == "priority") {
      const std::string p = expect_string(key, value);
      const auto priority = opt::priority_from_string(p);
      if (!priority) {
        reject("unknown priority '" + p + "' (expected baseline | pad | pda)");
      }
      req.flow.priority = *priority;
      seen_priority = true;
    } else if (key == "temp") {
      req.temp = expect_number(key, value);
      if (!(req.temp > 0.0)) {
        reject("'temp' must be a positive temperature in kelvin");
      }
    } else if (key == "vdd") {
      req.vdd = expect_number(key, value);
      if (!(req.vdd > 0.0)) {
        reject("'vdd' must be a positive supply in volts");
      }
    } else if (key == "preset") {
      req.preset = expect_string(key, value);
    } else if (key == "backend") {
      req.backend = expect_string(key, value);
    } else if (key == "deadline_s") {
      req.deadline_s = expect_number(key, value);
      if (req.deadline_s < 0.0) {
        reject("'deadline_s' must be >= 0 (0 disables the deadline)");
      }
    } else if (key == "seed") {
      if (value.type() != util::Json::Type::kInt || value.as_int() < 0) {
        reject("field 'seed' must be a non-negative integer");
      }
      req.flow.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "name") {
      req.plugin_name = expect_string(key, value);
    } else if (key == "script") {
      req.plugin_script = expect_string(key, value);
    } else if (key == "help") {
      req.plugin_help = expect_string(key, value);
    } else {
      reject("unknown field '" + key + "'");
    }
  }
  if (req.op != "synth" && req.op != "ping" && req.op != "stats" &&
      req.op != "shutdown" && req.op != "load_plugin") {
    reject("unknown op '" + req.op +
           "' (expected synth | ping | stats | load_plugin | shutdown)");
  }
  if (req.op == "synth") {
    // The one-shot CLI defaults to pda; jobs do the same.
    if (!seen_priority) {
      req.flow.priority = opt::CostPriority::kPowerDelayArea;
    }
    if (req.bench.empty() == req.aiger_path.empty()) {
      reject("a synth job needs exactly one of 'bench' or 'aiger_path'");
    }
    // Same contract as the one-shot CLI: an unknown preset/engine or a
    // corner outside the preset's declared model envelope is a usage
    // error, rejected before the job costs any characterization.
    const device::Preset& preset = device::resolve_preset(req.preset);
    device::validate_corner(preset, req.temp, req.vdd);
    spice::resolve_backend(req.backend);
    if (!req.plugin_name.empty() || !req.plugin_script.empty() ||
        !req.plugin_help.empty()) {
      reject("a synth job takes no name/script/help fields");
    }
  } else {
    if (!req.bench.empty() || !req.aiger_path.empty() || !req.recipe.empty() ||
        !req.preset.empty() || !req.backend.empty()) {
      reject("'" + req.op +
             "' takes no bench/aiger_path/recipe/preset/backend fields");
    }
    if (req.op == "load_plugin") {
      if (req.plugin_name.empty() || req.plugin_script.empty()) {
        reject("load_plugin needs non-empty 'name' and 'script' fields");
      }
    } else if (!req.plugin_name.empty() || !req.plugin_script.empty() ||
               !req.plugin_help.empty()) {
      reject("'" + req.op + "' takes no name/script/help fields");
    }
  }
  return req;
}

std::string default_lib_path(const std::string& dir, double temperature_k,
                             double vdd) {
  return cells::default_lib_path(dir, device::default_preset(), "builtin",
                                 temperature_k, vdd);
}

util::Json job_report_json(const logic::Aig& design, double temperature_k,
                           double vdd, const std::string& preset,
                           const std::string& backend_identity,
                           const std::string& canonical_recipe,
                           const core::ScenarioResult& result) {
  util::Json report = util::Json::object();
  report["schema"] = util::Json{kJobReportSchema};
  util::Json design_json = util::Json::object();
  design_json["name"] = util::Json{design.name()};
  design_json["pis"] = util::Json{design.num_pis()};
  design_json["pos"] = util::Json{design.num_pos()};
  design_json["ands"] = util::Json{design.num_ands()};
  report["design"] = std::move(design_json);
  report["temp_k"] = util::Json{temperature_k};
  report["vdd"] = util::Json{vdd};
  report["preset"] = util::Json{preset};
  report["backend"] = util::Json{backend_identity};
  report["priority"] = util::Json{opt::short_name(result.priority)};
  report["recipe"] = util::Json{canonical_recipe};
  util::Json figures = util::Json::object();
  figures["total_power_w"] = util::Json{result.total_power};
  figures["leakage_w"] = util::Json{result.power.leakage};
  figures["internal_w"] = util::Json{result.power.internal};
  figures["switching_w"] = util::Json{result.power.switching};
  figures["delay_s"] = util::Json{result.delay};
  figures["area_um2"] = util::Json{result.area};
  figures["gates"] = util::Json{result.gates};
  figures["degraded"] = util::Json{result.degraded};
  report["result"] = std::move(figures);
  return report;
}

util::Json ok_reply(const std::string& id, util::Json report,
                    util::Json cache_stats, bool corner_warm) {
  util::Json reply = util::Json::object();
  reply["id"] = util::Json{id};
  reply["status"] = util::Json{"ok"};
  reply["report"] = std::move(report);
  reply["cache"] = std::move(cache_stats);
  reply["corner_warm"] = util::Json{corner_warm};
  return reply;
}

util::Json error_reply(const std::string& id, ErrorKind kind,
                       const std::string& message) {
  util::Json reply = util::Json::object();
  reply["id"] = util::Json{id};
  reply["status"] = util::Json{"error"};
  reply["error_kind"] = util::Json{std::string{error_kind_name(kind)}};
  reply["exit_code"] = util::Json{error_exit_code(kind)};
  reply["error"] = util::Json{message};
  return reply;
}

}  // namespace cryo::service
