#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cryo::util {

/// Resolve a worker count: `requested` > 0 wins; otherwise the
/// CRYOEDA_THREADS environment variable (if set to a positive integer);
/// otherwise std::thread::hardware_concurrency().
int resolve_threads(int requested = 0);

/// A fixed-size pool of worker threads draining a shared FIFO task
/// queue. Most callers should use `parallel_for`/`parallel_map` instead
/// of submitting tasks directly.
class ThreadPool {
public:
  /// `threads` = 0 resolves via `resolve_threads`.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }
  void submit(std::function<void()> task);

  /// True when called from inside a pool worker thread. Nested
  /// `parallel_for` calls use this to run inline instead of blocking on
  /// the shared queue (which could deadlock).
  static bool in_worker();

  /// Process-wide pool sized to the machine; started on first use.
  static ThreadPool& shared();

private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Run body(0), ..., body(n-1) across up to `threads` workers
/// (0 = resolve from CRYOEDA_THREADS / the machine). Deterministic by
/// construction: each index is executed exactly once and callers that
/// write results by index get output identical to the serial loop,
/// regardless of scheduling. With threads <= 1, n <= 1, or when already
/// inside a pool worker, the loop runs inline on the caller. The first
/// exception thrown by any index is rethrown on the caller after all
/// workers stop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  int threads = 0);

/// Deterministic map: returns {f(0), ..., f(n-1)} in index order,
/// computed in parallel. The result type must be default-constructible
/// (wrap in std::optional otherwise).
template <typename F>
auto parallel_map(std::size_t n, F&& f, int threads = 0) {
  using R = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = f(i); }, threads);
  return out;
}

}  // namespace cryo::util
