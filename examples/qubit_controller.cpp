// Scenario from the paper's introduction: a cryogenic qubit controller
// living at the 10 K stage of a dilution refrigerator must stay inside a
// ~100 mW power envelope or its heat disturbs the qubits.
//
// This example synthesizes the combinational datapath of a toy pulse
// sequencer — phase accumulator increment, amplitude scaling, channel
// decode, and a guard comparator — with the conventional baseline and
// with both proposed cryogenic-aware priority lists, and reports how much
// of the power budget each variant consumes at the target clock.

#include <cstdio>

#include "cells/characterize.hpp"
#include "core/flow.hpp"
#include "epfl/wordlib.hpp"
#include "sta/sta.hpp"

using namespace cryo;

namespace {

logic::Aig build_pulse_sequencer() {
  logic::Aig aig;
  aig.set_name("pulse_sequencer");
  // Phase accumulator: phase' = phase + tuning word.
  const auto phase = epfl::input_word(aig, "phase", 16);
  const auto tune = epfl::input_word(aig, "tune", 16);
  // Amplitude scaling: amp * gain (8x8 multiplier).
  const auto amp = epfl::input_word(aig, "amp", 8);
  const auto gain = epfl::input_word(aig, "gain", 8);
  // Channel select for 16 qubit lines + guard threshold.
  const auto channel = epfl::input_word(aig, "ch", 4);
  const auto guard = epfl::input_word(aig, "guard", 16);

  const auto next_phase = epfl::add(aig, phase, tune);
  const auto scaled = epfl::multiply(aig, amp, gain);
  const auto over =
      logic::lit_not(epfl::less_than(aig, next_phase, guard));

  epfl::output_word(aig, "phase_next", next_phase);
  epfl::output_word(aig, "pulse", scaled);
  // One-hot channel enables, gated by the guard comparator.
  for (unsigned i = 0; i < 16; ++i) {
    epfl::Word match(4);
    for (unsigned b = 0; b < 4; ++b) {
      match[b] = ((i >> b) & 1u) != 0 ? channel[b]
                                      : logic::lit_not(channel[b]);
    }
    const auto sel = epfl::and_reduce(aig, match);
    aig.add_po(aig.land(sel, logic::lit_not(over)),
               "en[" + std::to_string(i) + "]");
  }
  aig.add_po(over, "guard_trip");
  return aig;
}

}  // namespace

int main() {
  std::printf("=== Cryogenic qubit-controller datapath @ 10 K ===\n\n");
  const auto design = build_pulse_sequencer();
  std::printf("datapath: %u AND nodes, %u inputs, %u outputs\n\n",
              design.num_ands(), design.num_pis(), design.num_pos());

  std::printf("characterizing cell library at 10 K (takes a moment)...\n");
  const auto library = cells::characterize(cells::mini_catalog(), 10.0, {});
  const map::CellMatcher matcher{library};

  constexpr double kClock = 1e-9;    // 1 GHz pulse clock
  constexpr double kBudget = 100e-3; // the paper's 100 mW headroom
  // A single sequencer is a tiny slice of a controller; scale to a
  // hypothetical 256-channel controller to compare against the budget.
  constexpr double kInstances = 256.0;

  for (const auto priority :
       {opt::CostPriority::kBaselinePowerAware,
        opt::CostPriority::kPowerAreaDelay,
        opt::CostPriority::kPowerDelayArea}) {
    core::FlowOptions flow;
    flow.priority = priority;
    const auto result = core::synthesize(design, matcher, flow);
    sta::StaOptions sta_options;
    sta_options.clock_period = kClock;
    const auto signoff = sta::analyze(result.netlist, sta_options);
    const double controller_power = signoff.power.total() * kInstances;
    std::printf(
        "%-22s: %4zu gates, %7.2f um^2, crit %6.1f ps, "
        "P=%8.2f uW  -> controller %6.2f mW (%5.1f %% of budget)%s\n",
        opt::to_string(priority).c_str(), result.netlist.gate_count(),
        result.netlist.total_area(), signoff.critical_delay * 1e12,
        signoff.power.total() * 1e6, controller_power * 1e3,
        100.0 * controller_power / kBudget,
        signoff.critical_delay < kClock ? "" : "  [TIMING VIOLATION]");
  }
  std::printf(
      "\nEvery microwatt of dissipation at the 10 K stage is heat the "
      "refrigerator must pump; power-first synthesis buys headroom.\n");
  return 0;
}
