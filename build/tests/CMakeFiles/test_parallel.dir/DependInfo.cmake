
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cryo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/epfl/CMakeFiles/cryo_epfl.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/cryo_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/cryo_map.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/cryo_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cryo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cryo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/cryo_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/cryo_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/cryo_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cryo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
