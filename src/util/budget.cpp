#include "util/budget.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace cryo::util {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Budget::set_deadline_in(double seconds) {
  deadline_ns_.store(steady_now_ns() +
                         static_cast<std::int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  has_deadline_.store(true, std::memory_order_relaxed);
}

void Budget::clear_deadline() {
  has_deadline_.store(false, std::memory_order_relaxed);
}

void Budget::set_sat_conflict_ceiling(std::int64_t conflicts) {
  sat_ceiling_.store(conflicts < 0 ? -1 : conflicts,
                     std::memory_order_relaxed);
}

void Budget::set_node_growth_limit(double factor) {
  node_growth_.store(factor > 0.0 ? factor : 0.0, std::memory_order_relaxed);
}

void Budget::cancel() { cancelled_.store(true, std::memory_order_relaxed); }

void Budget::reset() {
  cancelled_.store(false, std::memory_order_relaxed);
  has_deadline_.store(false, std::memory_order_relaxed);
  sat_ceiling_.store(-1, std::memory_order_relaxed);
  sat_spent_.store(0, std::memory_order_relaxed);
  node_growth_.store(0.0, std::memory_order_relaxed);
}

bool Budget::active() const {
  return cancelled_.load(std::memory_order_relaxed) ||
         has_deadline_.load(std::memory_order_relaxed) ||
         sat_ceiling_.load(std::memory_order_relaxed) >= 0 ||
         node_growth_.load(std::memory_order_relaxed) > 0.0;
}

bool Budget::deadline_exceeded() const {
  return has_deadline_.load(std::memory_order_relaxed) &&
         steady_now_ns() >= deadline_ns_.load(std::memory_order_relaxed);
}

void Budget::check_cancelled(std::string_view where) const {
  if (cancelled()) {
    throw Error{ErrorKind::kBudget, "cancelled in " + std::string{where}};
  }
}

std::int64_t Budget::sat_call_limit(std::int64_t requested) const {
  const std::int64_t ceiling = sat_ceiling_.load(std::memory_order_relaxed);
  if (ceiling < 0) {
    return requested;
  }
  const std::int64_t spent = sat_spent_.load(std::memory_order_relaxed);
  const std::int64_t remaining = ceiling > spent ? ceiling - spent : 0;
  return requested < 0 ? remaining : std::min(requested, remaining);
}

Budget& Budget::global() {
  static Budget budget;
  static const bool configured = [] {
    if (const char* env = std::getenv("CRYOEDA_DEADLINE")) {
      char* end = nullptr;
      const double seconds = std::strtod(env, &end);
      if (end != env && seconds > 0.0) {
        budget.set_deadline_in(seconds);
      }
    }
    if (const char* env = std::getenv("CRYOEDA_SAT_BUDGET")) {
      char* end = nullptr;
      const long long conflicts = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && conflicts >= 0) {
        budget.set_sat_conflict_ceiling(conflicts);
      }
    }
    if (const char* env = std::getenv("CRYOEDA_NODE_GROWTH")) {
      char* end = nullptr;
      const double factor = std::strtod(env, &end);
      if (end != env && factor > 0.0) {
        budget.set_node_growth_limit(factor);
      }
    }
    return true;
  }();
  (void)configured;
  return budget;
}

}  // namespace cryo::util
