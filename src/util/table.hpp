#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cryo::util {

/// Text table builder used by the bench harnesses to print paper-style
/// result rows, with an optional CSV dump so figures can be re-plotted.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 3);
  /// Format a value as a signed percentage, e.g. "-6.21 %".
  static std::string pct(double fraction, int precision = 2);
  /// Engineering notation with SI suffix (e.g. 1.2e-9 s -> "1.2 ns").
  static std::string si(double value, const std::string& unit, int precision = 3);

  /// Render with aligned columns.
  std::string render() const;

  /// Write as CSV to `path`. Throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cryo::util
