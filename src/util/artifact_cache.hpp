#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/json.hpp"

namespace cryo::util {

/// Version of the cache key schema. Bump whenever a cached stage changes
/// the *semantics* of its outputs (a characterization bugfix, a new cost
/// model, a different optimizer) without a corresponding change to the
/// serialized inputs: entries are addressed purely by their inputs, so a
/// semantic change with the same inputs would otherwise replay stale
/// results forever. CI mixes this constant into its cache key as well.
inline constexpr int kCacheSchemaVersion = 2;

/// Persistent, content-addressed, on-disk artifact cache.
///
/// Every expensive stage of the flow (SPICE cell characterization,
/// device calibration, per-benchmark synthesis + STA) memoizes its
/// result here, keyed by a stable 64-bit FNV-1a hash of a canonical JSON
/// serialization of *all* stage inputs plus `kCacheSchemaVersion`.
/// Values are JSON blobs — exact, because `Json::dump` emits doubles in
/// shortest-round-trip form — so a warm rerun reproduces the cold run's
/// outputs byte for byte.
///
/// Durability and concurrency:
///  * stores write a uniquely named temp file and atomically rename it
///    into place, so concurrent writers (threads or processes) racing on
///    one key leave exactly one valid entry and readers never observe a
///    partial write;
///  * raw reads and writes distinguish *transient* failures (EINTR,
///    EAGAIN, short writes, injected `cache.read` / `cache.write`
///    faults) from *hard* ones: transients retry up to 3 times with
///    bounded exponential backoff (1/2/4 ms, `cache.retries` counter);
///    exhausted or hard failures degrade to a miss / dropped store and
///    bump `cache.errors` — the cache never fails the flow;
///  * every entry carries a one-line header with a checksum and payload
///    size; truncated or bit-flipped entries are detected on load,
///    quarantined into `<root>/quarantine/<stage>-<key>.json` for
///    post-mortem (`cache.quarantined`), counted in `cache.corrupt`,
///    and treated as misses;
///  * a size-capped LRU eviction pass (by mtime, refreshed on hits) runs
///    after stores once the cache outgrows `max_bytes`.
///
/// Environment configuration of the process-wide instance:
///  * CRYOEDA_CACHE=0      — disable entirely (loads miss, stores no-op);
///  * CRYOEDA_CACHE_DIR    — cache root (default `cryoeda_cache/`);
///  * CRYOEDA_CACHE_MAX_MB — LRU size cap (default 512 MiB).
///
/// Observability: `cache.hits` / `cache.misses` / `cache.stores` /
/// `cache.evictions` / `cache.corrupt` / `cache.retries` /
/// `cache.quarantined` / `cache.errors` counters, plus per-stage
/// `cache.<stage>.hits` / `cache.<stage>.misses`, all in `util::obs`.
class ArtifactCache {
public:
  struct Config {
    bool enabled = true;
    std::filesystem::path root = "cryoeda_cache";
    std::uint64_t max_bytes = 512ull << 20;
  };

  ArtifactCache() : ArtifactCache(Config{}) {}
  explicit ArtifactCache(Config config);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The process-wide cache, configured from the environment on first
  /// use. All flow stages share it.
  static ArtifactCache& global();

  /// Read CRYOEDA_CACHE / CRYOEDA_CACHE_DIR / CRYOEDA_CACHE_MAX_MB.
  static Config env_config();

  /// Swap the configuration at runtime (tests point the global cache at
  /// a temp dir or disable it). Not meant for concurrent use with
  /// in-flight loads/stores.
  void configure(Config config);

  bool enabled() const { return config_.enabled; }
  const std::filesystem::path& root() const { return config_.root; }

  /// Content address of a stage invocation: 16 hex digits of
  /// FNV-1a(schema version, stage, canonical single-line dump of
  /// `inputs`). Any input that can change the stage's output must be in
  /// `inputs`; anything that cannot (thread counts, verbosity) must not.
  static std::string key(std::string_view stage, const Json& inputs);

  /// On-disk location of one entry (exposed so tests can corrupt it).
  std::filesystem::path entry_path(std::string_view stage,
                                   const std::string& key) const;

  /// Fetch an entry. Absent, corrupted, unreadable, or disabled-cache
  /// lookups return nullopt (corruption also quarantines the entry and
  /// bumps `cache.corrupt`; transient read failures retry with backoff
  /// first). A hit refreshes the entry's LRU timestamp.
  std::optional<Json> load(std::string_view stage, const std::string& key);

  /// Persist an entry (atomic rename; last writer wins), then run the
  /// eviction pass if the cache outgrew its cap. No-op when disabled.
  void store(std::string_view stage, const std::string& key,
             const Json& value);

  /// `load` or compute-and-`store` in one step. The computed value is
  /// returned as-is (not re-read), so cold and warm paths agree exactly
  /// as long as `Json` round-trips — which it does.
  template <typename ComputeFn>
  Json get_or_compute(std::string_view stage, const Json& inputs,
                      ComputeFn&& compute) {
    const std::string k = key(stage, inputs);
    if (auto hit = load(stage, k)) {
      return std::move(*hit);
    }
    Json value = std::forward<ComputeFn>(compute)();
    store(stage, k, value);
    return value;
  }

  /// LRU eviction pass: while the cache exceeds `max_bytes`, delete
  /// oldest-used entries (down to ~3/4 of the cap to avoid thrashing).
  /// Returns the number of entries evicted.
  std::size_t evict_to_cap();

private:
  std::uint64_t scan_bytes() const;

  Config config_;
  std::mutex evict_mutex_;
  /// Approximate resident bytes (exact after construction / eviction,
  /// incremented per store; other processes' writes are picked up on the
  /// next eviction rescan).
  std::uint64_t approx_bytes_ = 0;
  std::mutex bytes_mutex_;
};

}  // namespace cryo::util
