
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/cell.cpp" "src/liberty/CMakeFiles/cryo_liberty.dir/cell.cpp.o" "gcc" "src/liberty/CMakeFiles/cryo_liberty.dir/cell.cpp.o.d"
  "/root/repo/src/liberty/function.cpp" "src/liberty/CMakeFiles/cryo_liberty.dir/function.cpp.o" "gcc" "src/liberty/CMakeFiles/cryo_liberty.dir/function.cpp.o.d"
  "/root/repo/src/liberty/nldm.cpp" "src/liberty/CMakeFiles/cryo_liberty.dir/nldm.cpp.o" "gcc" "src/liberty/CMakeFiles/cryo_liberty.dir/nldm.cpp.o.d"
  "/root/repo/src/liberty/parser.cpp" "src/liberty/CMakeFiles/cryo_liberty.dir/parser.cpp.o" "gcc" "src/liberty/CMakeFiles/cryo_liberty.dir/parser.cpp.o.d"
  "/root/repo/src/liberty/writer.cpp" "src/liberty/CMakeFiles/cryo_liberty.dir/writer.cpp.o" "gcc" "src/liberty/CMakeFiles/cryo_liberty.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
