#pragma once

#include <functional>
#include <vector>

namespace cryo::util {

/// Result of a derivative-free minimization.
struct OptimizeResult {
  std::vector<double> x;       ///< best point found
  double value = 0.0;          ///< objective at `x`
  int evaluations = 0;         ///< number of objective evaluations
  bool converged = false;      ///< simplex collapsed below tolerance
};

/// Options for Nelder–Mead.
struct NelderMeadOptions {
  int max_evaluations = 4000;
  double f_tolerance = 1e-10;   ///< stop when simplex f-spread below this
  double initial_step = 0.1;    ///< relative perturbation to build simplex
};

/// Nelder–Mead downhill-simplex minimization.
///
/// Used for compact-model parameter extraction (fitting the cryogenic
/// FinFET model against measured I-V data), where the objective is smooth
/// but derivatives w.r.t. model parameters are unavailable analytically.
OptimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace cryo::util
