#include "sat/sweep.hpp"

#include <unordered_map>

#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"
#include "util/rng.hpp"

namespace cryo::sat {
namespace {

using logic::Aig;
using logic::NodeIdx;

/// Incremental Tseitin encoding of a growing AIG.
class IncrementalCnf {
public:
  explicit IncrementalCnf(Solver& solver) : solver_{solver} {}

  void sync(const Aig& aig) {
    while (vars_.size() < aig.num_nodes()) {
      const auto v = static_cast<NodeIdx>(vars_.size());
      vars_.push_back(solver_.new_var());
      if (v == 0) {
        solver_.add_clause(mk_lit(vars_[0], true));
      } else if (aig.is_and(v)) {
        const Lit n = mk_lit(vars_[v]);
        const Lit a = lit_of(aig.fanin0(v));
        const Lit b = lit_of(aig.fanin1(v));
        solver_.add_clause(lit_neg(n), a);
        solver_.add_clause(lit_neg(n), b);
        solver_.add_clause(n, lit_neg(a), lit_neg(b));
      }
    }
  }

  Lit lit_of(logic::Lit l) const {
    return mk_lit(vars_[logic::lit_var(l)], logic::lit_compl(l));
  }

private:
  Solver& solver_;
  std::vector<Var> vars_;
};

/// Hash of a signature vector.
std::uint64_t hash_sig(const std::vector<std::uint64_t>& sig) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t w : sig) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

SweepResult sat_sweep(const Aig& input, const SweepOptions& options) {
  const util::obs::ScopedSpan span{"sat.sweep"};
  SweepResult result;
  Aig& out = result.aig;
  out.set_name(input.name());

  // --- simulation state on the *input* AIG -----------------------------
  // Signatures grow as counterexamples come in; they always describe the
  // input nodes (old indices), which is what candidate bucketing needs.
  util::Rng rng{options.seed};
  const unsigned base_words = options.sim_words;
  std::vector<std::vector<std::uint64_t>> pi_patterns(input.num_pis());
  for (auto& p : pi_patterns) {
    p.resize(base_words);
    for (auto& w : p) {
      w = rng.next_u64();
    }
  }
  std::vector<std::vector<std::uint64_t>> sig(input.num_nodes());

  auto resimulate = [&]() {
    const std::size_t words = pi_patterns.empty() ? 0 : pi_patterns[0].size();
    sig[0].assign(words, 0);
    for (NodeIdx i = 0; i < input.num_pis(); ++i) {
      sig[logic::lit_var(input.pi(i))] = pi_patterns[i];
    }
    for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
      if (!input.is_and(v)) {
        continue;
      }
      const logic::Lit f0 = input.fanin0(v);
      const logic::Lit f1 = input.fanin1(v);
      const auto& a = sig[logic::lit_var(f0)];
      const auto& b = sig[logic::lit_var(f1)];
      const std::uint64_t i0 = logic::lit_compl(f0) ? ~0ull : 0ull;
      const std::uint64_t i1 = logic::lit_compl(f1) ? ~0ull : 0ull;
      auto& s = sig[v];
      s.resize(words);
      for (std::size_t k = 0; k < words; ++k) {
        s[k] = (a[k] ^ i0) & (b[k] ^ i1);
      }
    }
  };
  resimulate();

  // Canonical signature: complemented so the first bit is 0 — makes the
  // bucket key invariant under output phase.
  auto canon = [&](NodeIdx v, bool& phase) {
    std::vector<std::uint64_t> s = sig[v];
    phase = (s[0] & 1ull) != 0;
    if (phase) {
      for (auto& w : s) {
        w = ~w;
      }
    }
    return s;
  };

  // Buckets over *already processed* input nodes.
  struct Entry {
    NodeIdx old_node;
    bool phase;  // canonical phase of old node's signature
  };
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets;
  auto rebuild_buckets = [&](NodeIdx processed_up_to) {
    buckets.clear();
    for (NodeIdx v = 1; v < processed_up_to; ++v) {
      if (!input.is_and(v) && !input.is_pi(v)) {
        continue;
      }
      bool phase = false;
      const auto key = hash_sig(canon(v, phase));
      buckets[key].push_back({v, phase});
    }
  };

  // --- rebuild with merging --------------------------------------------
  Solver solver{options.solver};
  util::Budget& budget =
      options.budget != nullptr ? *options.budget : util::Budget::global();
  solver.set_budget(&budget);
  IncrementalCnf cnf{solver};
  std::vector<logic::Lit> repr(input.num_nodes(), logic::kConst0);
  result.choices.assign(1, {});  // grown alongside `out`

  for (NodeIdx i = 0; i < input.num_pis(); ++i) {
    repr[logic::lit_var(input.pi(i))] = out.add_pi(input.pi_name(i));
  }
  result.choices.resize(out.num_nodes());

  std::vector<std::vector<bool>> pending_cex;
  auto flush_cex = [&](NodeIdx next_node) {
    if (pending_cex.empty()) {
      return;
    }
    // Pack counterexamples into one extra simulation word per 64.
    const std::size_t extra_words = (pending_cex.size() + 63) / 64;
    for (NodeIdx i = 0; i < input.num_pis(); ++i) {
      for (std::size_t w = 0; w < extra_words; ++w) {
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < 64 && w * 64 + b < pending_cex.size();
             ++b) {
          if (pending_cex[w * 64 + b][i]) {
            word |= 1ull << b;
          }
        }
        pi_patterns[i].push_back(word);
      }
    }
    pending_cex.clear();
    resimulate();
    rebuild_buckets(next_node);
  };

  for (NodeIdx v = 1; v < input.num_nodes(); ++v) {
    if (input.is_pi(v)) {
      bool phase = false;
      buckets[hash_sig(canon(v, phase))].push_back({v, phase});
      continue;
    }
    if (!input.is_and(v)) {
      continue;
    }
    if (pending_cex.size() >= 64) {
      flush_cex(v);
    }
    const logic::Lit f0 = input.fanin0(v);
    const logic::Lit f1 = input.fanin1(v);
    const logic::Lit n0 =
        logic::lit_notif(repr[logic::lit_var(f0)], logic::lit_compl(f0));
    const logic::Lit n1 =
        logic::lit_notif(repr[logic::lit_var(f1)], logic::lit_compl(f1));
    const NodeIdx before = out.num_nodes();
    const logic::Lit cand = out.land(n0, n1);
    result.choices.resize(out.num_nodes());
    if (out.num_nodes() == before) {
      // Structural or trivial merge — nothing to prove.
      repr[v] = cand;
      bool phase = false;
      buckets[hash_sig(canon(v, phase))].push_back({v, phase});
      continue;
    }
    cnf.sync(out);

    bool merged = false;
    bool v_phase = false;
    const auto key = hash_sig(canon(v, v_phase));
    auto& bucket = buckets[key];
    for (const Entry& entry : bucket) {
      // An exhausted budget degrades the sweep instead of failing it:
      // this class stays unmerged and the rebuild continues structurally.
      if (budget.exhausted()) {
        ++result.unresolved;
        break;
      }
      // Candidate: v == entry (up to phases).
      const logic::Lit other = repr[entry.old_node];
      if (other == logic::kConst0 && entry.old_node != 0) {
        continue;
      }
      const bool complemented = v_phase != entry.phase;
      if (logic::lit_var(other) == logic::lit_var(cand)) {
        continue;
      }
      // Prove cand == other ^ complemented via two SAT calls.
      const Lit sc = cnf.lit_of(cand);
      const Lit so = complemented ? lit_neg(cnf.lit_of(other))
                                  : cnf.lit_of(other);
      const Status s1 = solver.solve({sc, lit_neg(so)}, options.conflict_limit);
      if (s1 == Status::kSat) {
        std::vector<bool> cex(input.num_pis());
        for (NodeIdx i = 0; i < input.num_pis(); ++i) {
          cex[i] = solver.model_value_lit(cnf.lit_of(out.pi(i)));
        }
        pending_cex.push_back(std::move(cex));
        continue;
      }
      if (s1 == Status::kUnknown) {
        ++result.unresolved;
        continue;
      }
      const Status s2 = solver.solve({lit_neg(sc), so}, options.conflict_limit);
      if (s2 == Status::kSat) {
        std::vector<bool> cex(input.num_pis());
        for (NodeIdx i = 0; i < input.num_pis(); ++i) {
          cex[i] = solver.model_value_lit(cnf.lit_of(out.pi(i)));
        }
        pending_cex.push_back(std::move(cex));
        continue;
      }
      if (s2 == Status::kUnknown) {
        ++result.unresolved;
        continue;
      }
      // Equivalent: use the established representative; keep the freshly
      // built structure as a choice.
      repr[v] = logic::lit_notif(other, complemented);
      result.choices[logic::lit_var(other)].push_back(
          logic::lit_notif(cand, complemented));
      ++result.merged;
      merged = true;
      break;
    }
    if (!merged) {
      repr[v] = cand;
    }
    bucket.push_back({v, v_phase});
  }

  for (NodeIdx i = 0; i < input.num_pos(); ++i) {
    const logic::Lit po = input.po(i);
    out.add_po(
        logic::lit_notif(repr[logic::lit_var(po)], logic::lit_compl(po)),
        input.po_name(i));
  }
  result.choices.resize(out.num_nodes());
  util::obs::counter("sat.sweep_runs").add();
  util::obs::counter("sat.sweep_merged").add(result.merged);
  util::obs::counter("sat.sweep_unresolved").add(result.unresolved);
  return result;
}

}  // namespace cryo::sat
