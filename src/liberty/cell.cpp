#include "liberty/cell.hpp"

#include <algorithm>

namespace cryo::liberty {

const Pin* Cell::output_pin() const {
  for (const auto& pin : pins) {
    if (pin.is_output) {
      return &pin;
    }
  }
  return nullptr;
}

const Pin* Cell::find_pin(const std::string& pin_name) const {
  for (const auto& pin : pins) {
    if (pin.name == pin_name) {
      return &pin;
    }
  }
  return nullptr;
}

std::vector<std::string> Cell::input_names() const {
  std::vector<std::string> names;
  for (const auto& pin : pins) {
    if (!pin.is_output) {
      names.push_back(pin.name);
    }
  }
  return names;
}

const TimingArc* Cell::arc_from(const std::string& input) const {
  for (const auto& arc : arcs) {
    if (arc.related_pin == input) {
      return &arc;
    }
  }
  return nullptr;
}

const PowerArc* Cell::power_arc_from(const std::string& input) const {
  for (const auto& arc : power_arcs) {
    if (arc.related_pin == input) {
      return &arc;
    }
  }
  return nullptr;
}

double Cell::typical_delay(double slew, double load) const {
  double worst = 0.0;
  for (const auto& arc : arcs) {
    worst = std::max({worst, arc.cell_rise.lookup(slew, load),
                      arc.cell_fall.lookup(slew, load)});
  }
  return worst;
}

double Cell::typical_energy(double slew, double load) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& arc : power_arcs) {
    sum += arc.rise_power.lookup(slew, load) +
           arc.fall_power.lookup(slew, load);
    count += 2;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace cryo::liberty
