#pragma once

#include <cstdint>
#include <vector>

#include "device/finfet.hpp"

namespace cryo::device {

/// One measured I-V sample point.
struct MeasurementPoint {
  double temperature_k = 300.0;
  double vgs = 0.0;
  double vds = 0.0;
  double ids = 0.0;  ///< measured drain current [A] (per device, all fins)
};

/// A set of transfer-curve measurements of one device.
struct MeasurementSet {
  Polarity polarity = Polarity::kN;
  int nfins = 1;
  std::vector<MeasurementPoint> points;
};

/// Configuration of the synthetic measurement campaign.
///
/// Mirrors the paper's lab setup (Lakeshore CRX-VF probe station driven by
/// a Keysight B1500A): transfer curves I_DS(V_GS) at low and high V_DS for
/// a ladder of temperatures from 300 K down to 10 K. 10 K is the paper's
/// lowest stable temperature (probe heat flux causes 3.5-8.5 K
/// fluctuations below that), so it is our floor too.
struct MeasurementPlan {
  std::vector<double> temperatures_k = {300.0, 200.0, 77.0, 10.0};
  std::vector<double> vds_values = {0.05, 0.75};  ///< paper: 50 mV & 750 mV
  double vgs_start = 0.0;
  double vgs_stop = 0.75;
  int vgs_steps = 31;
  int nfins = 4;  ///< paper: multi-fin, multi-finger test structures
  /// Relative instrument noise (log-normal sigma on each current sample).
  double relative_noise = 0.01;
  /// Additive noise floor of the SMU [A].
  double noise_floor = 5e-15;
  std::uint64_t seed = 7;
};

/// The "golden" device standing in for the physical 5 nm FinFET.
///
/// Substitution note (see DESIGN.md §1): we have no cryogenic probe
/// station, so the physical transistor is replaced by a hidden reference
/// parameter set — *different* from the nominal model card — sampled with
/// realistic instrument noise. The calibration code path (ingest
/// measurements, extract parameters, report residuals) is identical to the
/// paper's BSIM-CMG calibration against lab data.
class ReferenceDevice {
public:
  explicit ReferenceDevice(Polarity polarity);

  /// True underlying parameters (hidden from the calibration flow; used
  /// only by tests to check the extractor recovers them approximately).
  const FinFetParams& true_params() const { return params_; }

  /// Run the synthetic measurement campaign.
  MeasurementSet measure(const MeasurementPlan& plan) const;

private:
  FinFetParams params_;
};

}  // namespace cryo::device
