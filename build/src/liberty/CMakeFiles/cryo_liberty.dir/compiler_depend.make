# Empty compiler generated dependencies file for cryo_liberty.
# This may be replaced when dependencies are built.
