file(REMOVE_RECURSE
  "libcryo_sat.a"
)
