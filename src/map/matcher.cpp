#include "map/matcher.hpp"

#include <algorithm>
#include <numeric>

#include "liberty/function.hpp"
#include "logic/tt.hpp"
#include "util/strings.hpp"

namespace cryo::map {

CellMatcher::CellMatcher(const liberty::Library& library, unsigned max_inputs,
                         unsigned max_matches_per_key)
    : library_{&library},
      max_inputs_{max_inputs},
      max_matches_per_key_{max_matches_per_key} {
  for (const auto& cell : library.cells) {
    if (cell.is_sequential) {
      continue;
    }
    if (util::starts_with(cell.name, "TIE")) {
      if (cell.name == "TIEHI") {
        tiehi_ = &cell;
      } else if (cell.name == "TIELO") {
        tielo_ = &cell;
      }
      continue;
    }
    const auto inputs = cell.input_names();
    const auto n = static_cast<unsigned>(inputs.size());
    if (n == 0 || n > max_inputs) {
      continue;
    }
    const auto* out = cell.output_pin();
    if (out == nullptr || out->function.empty()) {
      continue;
    }
    const std::uint64_t f =
        liberty::function_truth_table(out->function, inputs);

    // Track the cheapest inverter/buffer for phase fixups.
    if (n == 1) {
      const bool inverts = (f & 1ull) != 0;
      if (inverts && (inverter_ == nullptr || cell.area < inverter_->area)) {
        inverter_ = &cell;
      }
      if (!inverts && (buffer_ == nullptr || cell.area < buffer_->area)) {
        buffer_ = &cell;
      }
    }

    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    do {
      for (unsigned phase = 0; phase < (1u << n); ++phase) {
        for (const bool out_inv : {false, true}) {
          const std::uint64_t g =
              logic::tt6_transform(f, n, perm, phase, out_inv);
          auto& bucket = tables_[n][g];
          if (bucket.size() >= max_matches_per_key) {
            continue;
          }
          // One match per cell per key is enough (symmetries create
          // duplicates).
          if (std::any_of(bucket.begin(), bucket.end(),
                          [&](const Match& m) { return m.cell == &cell; })) {
            continue;
          }
          Match m;
          m.cell = &cell;
          m.perm = perm;
          m.input_phase = phase;
          m.out_invert = out_inv;
          bucket.push_back(std::move(m));
        }
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

const std::vector<Match>* CellMatcher::find(std::uint64_t tt,
                                            unsigned n) const {
  if (n >= tables_.size()) {
    return nullptr;
  }
  const auto it = tables_[n].find(tt);
  return it == tables_[n].end() ? nullptr : &it->second;
}

}  // namespace cryo::map
