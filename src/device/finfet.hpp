#pragma once

#include <string>

#include "device/physics.hpp"

namespace cryo::device {

/// Transistor polarity.
enum class Polarity { kN, kP };

/// Compact-model parameters of one FinFET flavour.
///
/// This is a deliberately small, physics-transparent parameter set in the
/// spirit of BSIM-CMG's core: enough to reproduce I_DS(V_GS, V_DS, T) with
/// correct cryogenic trends (band-tail subthreshold floor, Vth rise,
/// mobility improvement, leakage collapse) while staying cheap enough to
/// evaluate millions of times inside the characterization loop.
struct FinFetParams {
  Polarity polarity = Polarity::kN;
  std::string name = "nfet";

  // --- geometry (per fin) ---
  double l_eff = 20e-9;    ///< effective channel length [m]
  double w_fin = 106e-9;   ///< effective per-fin width (2*Hfin + Tfin) [m]

  // --- electrostatics ---
  double vth300 = 0.185;   ///< threshold voltage at 300 K [V]
  double ideality = 1.12;  ///< subthreshold ideality factor n
  double band_tail_v = 5.5e-3;  ///< band-tail width Wt [V] (sets cryo SS floor)
  double kvt = 0.55e-3;    ///< linear Vth tempco [V/K]
  double beta_vth = 0.35;  ///< Vth(T) saturation coefficient

  // --- transport ---
  double mu0 = 0.01626;    ///< phonon-limited mobility scale [m^2/Vs]
  double mu_r_inf = 0.5857;  ///< low-T mobility saturation ratio
  double theta = 3.0;      ///< mobility degradation / vsat lumped [1/V]
  double vsat_gain = 0.15; ///< cryogenic saturation-velocity gain
  double lambda = 0.05;    ///< channel-length modulation [1/V]

  // --- parasitics ---
  double cox = 0.04;          ///< gate-oxide capacitance [F/m^2]
  double cov_per_fin = 5e-17; ///< overlap/fringe gate capacitance [F]
  double cj_per_fin = 3e-17;  ///< drain/source junction capacitance [F]
  double i_floor_per_fin = 2.5e-13;  ///< T-independent leakage floor [A]
  double cap_coeff = 0.06;    ///< cryogenic gate-capacitance reduction
};

/// Calibrated default parameter sets for the 5 nm-class technology.
FinFetParams nominal_nfet_5nm();
FinFetParams nominal_pfet_5nm();

/// Operating-point evaluation result (all in the positive n-convention).
struct FinFetOp {
  double ids = 0.0;  ///< drain current [A]
  double gm = 0.0;   ///< dIds/dVgs [S]
  double gds = 0.0;  ///< dIds/dVds [S]
};

/// The cryogenic-aware FinFET compact model.
///
/// Works in the positive ("electron") convention: for p-type devices the
/// caller passes source-referred magnitudes (V_SG, V_SD). Temperature is
/// bound at construction so per-temperature derived quantities are
/// precomputed once and the hot `evaluate` path stays branch-light.
class FinFetModel {
public:
  FinFetModel(const FinFetParams& params, double temperature_k);

  /// Drain current and small-signal derivatives at (vgs, vds).
  /// `nfins` scales current linearly. Smooth (C^1) in both voltages,
  /// defined for all real inputs — required by the Newton solver.
  FinFetOp evaluate(double vgs, double vds, int nfins = 1) const;

  /// Drain current only.
  double ids(double vgs, double vds, int nfins = 1) const {
    return evaluate(vgs, vds, nfins).ids;
  }

  /// OFF-state leakage current at Vgs = 0, Vds = vdd [A].
  double ioff(double vdd, int nfins = 1) const { return ids(0.0, vdd, nfins); }

  /// ON current at Vgs = Vds = vdd [A].
  double ion(double vdd, int nfins = 1) const { return ids(vdd, vdd, nfins); }

  /// Total lumped gate capacitance [F].
  double cgg(int nfins = 1) const;

  /// Lumped drain (or source) junction capacitance [F].
  double cjunction(int nfins = 1) const;

  /// Threshold voltage at this temperature [V].
  double vth() const { return vth_; }

  /// n * v_eff(T): the thermal-plus-band-tail voltage scale [V].
  double vte() const { return vte_; }

  /// Specific current per fin at this temperature [A].
  double specific_current() const { return is_; }

  /// Mobility-degradation coefficient adjusted for cryo vsat gain [1/V].
  double theta_t() const { return theta_t_; }

  /// Subthreshold slope at this temperature [V/decade].
  double subthreshold_slope() const;

  /// Extract Vth by the constant-current method: the Vgs at which
  /// Ids(Vgs, vds) per fin crosses `icrit` (bisection on the smooth model).
  double extract_vth_constant_current(double vds, double icrit) const;

  double temperature() const { return temperature_; }
  const FinFetParams& params() const { return params_; }

private:
  FinFetParams params_;
  double temperature_;
  // Derived, fixed per temperature:
  double vth_;       ///< Vth(T)
  double vte_;       ///< n * v_eff(T)
  double is_;        ///< specific current per fin
  double theta_t_;   ///< theta adjusted for cryo vsat gain
  double cap_mult_;  ///< gate-capacitance multiplier
};

}  // namespace cryo::device
