#include <gtest/gtest.h>

#include "epfl/benchmarks.hpp"
#include "logic/simulate.hpp"
#include "opt/cost.hpp"
#include "opt/lut_map.hpp"
#include "opt/passes.hpp"
#include "sat/cnf.hpp"
#include "sat/sweep.hpp"
#include "util/rng.hpp"

namespace {

using cryo::logic::Aig;
using namespace cryo::opt;

Aig random_aig(std::uint64_t seed, int pis, int nodes, int pos) {
  cryo::util::Rng rng{seed};
  Aig aig;
  std::vector<cryo::logic::Lit> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(aig.add_pi());
  }
  for (int i = 0; i < nodes; ++i) {
    const auto a = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                          rng.next_bool());
    const auto b = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                          rng.next_bool());
    pool.push_back(aig.land(a, b));
  }
  for (int i = 0; i < pos; ++i) {
    aig.add_po(cryo::logic::lit_notif(
        pool[pool.size() - 1 - rng.next_below(pool.size() / 2)],
        rng.next_bool()));
  }
  return aig;
}

// Each pass must preserve functionality on randomized networks (checked
// by simulation) and on structured circuits (checked by SAT-based CEC).
using PassFn = Aig (*)(const Aig&);

struct NamedPass {
  const char* name;
  PassFn fn;
};

class PassEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {
public:
  static constexpr NamedPass kPasses[] = {
      {"balance", +[](const Aig& a) { return balance(a); }},
      {"rewrite", +[](const Aig& a) { return rewrite(a, 4); }},
      {"refactor", +[](const Aig& a) { return refactor(a, 10); }},
      {"resub", +[](const Aig& a) { return resub(a, 8); }},
      {"compress2rs", +[](const Aig& a) { return compress2rs(a); }},
  };
};

TEST_P(PassEquivalence, RandomNetworksStayEquivalent) {
  const auto [pass_index, seed] = GetParam();
  const NamedPass& pass = kPasses[pass_index];
  const Aig input = random_aig(static_cast<std::uint64_t>(seed), 8, 150, 6);
  const Aig output = pass.fn(input);
  EXPECT_TRUE(cryo::logic::simulate_equal(input, output, 32))
      << pass.name << " seed " << seed;
  // Pass results never grow the PO/PI interface.
  EXPECT_EQ(output.num_pis(), input.num_pis());
  EXPECT_EQ(output.num_pos(), input.num_pos());
}

INSTANTIATE_TEST_SUITE_P(AllPassesManySeeds, PassEquivalence,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(1, 6)));

TEST(Passes, SatProofOnStructuredCircuit) {
  const Aig adder = cryo::epfl::make_adder(8);
  const Aig optimized = compress2rs(adder);
  const auto cec = cryo::sat::check_equivalence(adder, optimized, 500000);
  ASSERT_TRUE(cec.proven());
  EXPECT_TRUE(cec.equivalent());
}

TEST(Passes, BalanceReducesDepthOfChains) {
  Aig aig;
  cryo::logic::Lit acc = aig.add_pi();
  std::vector<cryo::logic::Lit> pis{acc};
  for (int i = 0; i < 15; ++i) {
    const auto p = aig.add_pi();
    pis.push_back(p);
  }
  for (int i = 1; i <= 15; ++i) {
    acc = aig.land(acc, pis[static_cast<std::size_t>(i)]);
  }
  aig.add_po(acc);
  EXPECT_EQ(aig.depth(), 15u);
  const Aig balanced = balance(aig);
  EXPECT_EQ(balanced.depth(), 4u);
  EXPECT_TRUE(cryo::logic::simulate_equal(aig, balanced));
}

TEST(Passes, RewriteShrinksRedundantLogic) {
  // Build mux via a wasteful expansion; rewriting should shrink it.
  Aig aig;
  const auto s = aig.add_pi();
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  // f = (s&a&a) | (!s&b) | (s&a&b&!b)  — redundant terms.
  const auto t1 = aig.land(aig.land(s, a), a);
  const auto t2 = aig.land(cryo::logic::lit_not(s), b);
  const auto t3 =
      aig.land(aig.land(s, a), aig.land(b, cryo::logic::lit_not(b)));
  aig.add_po(aig.lor(aig.lor(t1, t2), t3));
  const Aig out = rewrite(aig);
  EXPECT_LE(out.num_ands(), aig.num_ands());
  EXPECT_TRUE(cryo::logic::simulate_equal(aig, out));
}

TEST(Cost, PriorityOrdering) {
  const Cost cheap_power{1.0, 10.0, 10.0};
  const Cost cheap_area{10.0, 1.0, 10.0};
  const Cost cheap_delay{10.0, 10.0, 1.0};
  EXPECT_TRUE(better(cheap_power, cheap_area, CostPriority::kPowerAreaDelay));
  EXPECT_TRUE(better(cheap_power, cheap_delay, CostPriority::kPowerDelayArea));
  EXPECT_TRUE(
      better(cheap_area, cheap_power, CostPriority::kBaselinePowerAware));
  // Within-epsilon ties fall through to the next criterion.
  const Cost a{1.0, 5.0, 9.0};
  const Cost b{1.005, 5.0, 2.0};
  EXPECT_TRUE(better(b, a, CostPriority::kPowerDelayArea, 0.02));
}

TEST(Cost, ToString) {
  EXPECT_EQ(to_string(CostPriority::kPowerAreaDelay), "p->a->d");
  EXPECT_EQ(to_string(CostPriority::kPowerDelayArea), "p->d->a");
}

class LutMapSuite : public ::testing::TestWithParam<int> {};

TEST_P(LutMapSuite, CoverIsFunctionallyCorrect) {
  const Aig input = random_aig(static_cast<std::uint64_t>(GetParam()) + 400,
                               10, 200, 8);
  LutMapOptions options;
  const LutMapping mapping = lut_map(input, options);
  EXPECT_GT(mapping.lut_count, 0u);
  const Aig back = luts_to_aig(mapping);
  EXPECT_TRUE(cryo::logic::simulate_equal(input, back, 32));
  // LUT mapping into k-feasible cuts compresses node count vs AND2.
  EXPECT_LE(mapping.lut_count, input.num_ands());
}

TEST_P(LutMapSuite, MfsKeepsEquivalenceWhileFindingDontCares) {
  const Aig input = random_aig(static_cast<std::uint64_t>(GetParam()) + 900,
                               8, 150, 4);
  LutMapOptions options;
  LutMapping mapping = lut_map(input, options);
  MfsOptions mfs_options;
  mfs_options.sat_call_budget = 2000;
  (void)mfs(mapping, mfs_options);
  const Aig back = luts_to_aig(mapping);
  EXPECT_TRUE(cryo::logic::simulate_equal(input, back, 32))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutMapSuite, ::testing::Range(1, 6));

TEST(LutMap, ChoicesImproveOrMatchQuality) {
  const Aig voter = cryo::epfl::make_voter(15);
  const Aig compact = compress2rs(voter);
  LutMapOptions options;
  const auto plain = lut_map(compact, options);

  const auto sweep = cryo::sat::sat_sweep(compact);
  const auto with_choices = lut_map(sweep.aig, options, &sweep.choices);
  const Aig back = luts_to_aig(with_choices);
  EXPECT_TRUE(cryo::logic::simulate_equal(voter, back, 32));
  // Choices can only expand the candidate space; allow small noise.
  EXPECT_LE(with_choices.lut_count, plain.lut_count + 2);
}

TEST(LutMap, PowerPriorityReducesSwitchedEstimate) {
  const Aig input = random_aig(777, 10, 300, 8);
  LutMapOptions base;
  base.priority = CostPriority::kBaselinePowerAware;
  LutMapOptions power;
  power.priority = CostPriority::kPowerAreaDelay;
  const auto m_base = lut_map(input, base);
  const auto m_power = lut_map(input, power);
  // The power-first mapping should not be substantially worse on its own
  // objective.
  EXPECT_LE(m_power.switched_estimate(),
            m_base.switched_estimate() * 1.10);
}

}  // namespace
