
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cost.cpp" "src/opt/CMakeFiles/cryo_opt.dir/cost.cpp.o" "gcc" "src/opt/CMakeFiles/cryo_opt.dir/cost.cpp.o.d"
  "/root/repo/src/opt/lut_map.cpp" "src/opt/CMakeFiles/cryo_opt.dir/lut_map.cpp.o" "gcc" "src/opt/CMakeFiles/cryo_opt.dir/lut_map.cpp.o.d"
  "/root/repo/src/opt/passes.cpp" "src/opt/CMakeFiles/cryo_opt.dir/passes.cpp.o" "gcc" "src/opt/CMakeFiles/cryo_opt.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/cryo_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cryo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
