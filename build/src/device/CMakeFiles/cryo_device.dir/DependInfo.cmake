
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cpp" "src/device/CMakeFiles/cryo_device.dir/calibration.cpp.o" "gcc" "src/device/CMakeFiles/cryo_device.dir/calibration.cpp.o.d"
  "/root/repo/src/device/finfet.cpp" "src/device/CMakeFiles/cryo_device.dir/finfet.cpp.o" "gcc" "src/device/CMakeFiles/cryo_device.dir/finfet.cpp.o.d"
  "/root/repo/src/device/measurement.cpp" "src/device/CMakeFiles/cryo_device.dir/measurement.cpp.o" "gcc" "src/device/CMakeFiles/cryo_device.dir/measurement.cpp.o.d"
  "/root/repo/src/device/physics.cpp" "src/device/CMakeFiles/cryo_device.dir/physics.cpp.o" "gcc" "src/device/CMakeFiles/cryo_device.dir/physics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
