file(REMOVE_RECURSE
  "libcryo_opt.a"
)
