#include "util/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cryo::util {

OptimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> start, const NelderMeadOptions& options) {
  const std::size_t n = start.size();
  if (n == 0) {
    throw std::invalid_argument{"nelder_mead: empty start point"};
  }

  OptimizeResult result;
  int evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    const double f = objective(x);
    return std::isfinite(f) ? f : 1e300;
  };

  // Build initial simplex around the start point.
  std::vector<std::vector<double>> simplex(n + 1, start);
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    double& coord = simplex[i + 1][i];
    coord += coord != 0.0 ? options.initial_step * coord
                          : options.initial_step;
  }
  for (std::size_t i = 0; i <= n; ++i) {
    fvals[i] = eval(simplex[i]);
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  std::vector<std::size_t> order(n + 1);
  while (evals < options.max_evaluations) {
    for (std::size_t i = 0; i <= n; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    if (fvals[worst] - fvals[best] < options.f_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) {
        continue;
      }
      for (std::size_t d = 0; d < n; ++d) {
        centroid[d] += simplex[i][d];
      }
    }
    for (double& c : centroid) {
      c /= static_cast<double>(n);
    }

    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
      }
      return x;
    };

    const auto reflected = blend(kAlpha);
    const double f_reflected = eval(reflected);
    if (f_reflected < fvals[best]) {
      const auto expanded = blend(kGamma);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        fvals[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        fvals[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < fvals[second_worst]) {
      simplex[worst] = reflected;
      fvals[worst] = f_reflected;
      continue;
    }
    const auto contracted = blend(-kRho);
    const double f_contracted = eval(contracted);
    if (f_contracted < fvals[worst]) {
      simplex[worst] = contracted;
      fvals[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) {
        continue;
      }
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] =
            simplex[best][d] + kSigma * (simplex[i][d] - simplex[best][d]);
      }
      fvals[i] = eval(simplex[i]);
    }
  }

  const auto best_it = std::min_element(fvals.begin(), fvals.end());
  result.x = simplex[static_cast<std::size_t>(best_it - fvals.begin())];
  result.value = *best_it;
  result.evaluations = evals;
  return result;
}

}  // namespace cryo::util
