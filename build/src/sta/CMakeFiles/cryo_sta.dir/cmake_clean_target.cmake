file(REMOVE_RECURSE
  "libcryo_sta.a"
)
