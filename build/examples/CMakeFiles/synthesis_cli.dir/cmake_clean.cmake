file(REMOVE_RECURSE
  "CMakeFiles/synthesis_cli.dir/synthesis_cli.cpp.o"
  "CMakeFiles/synthesis_cli.dir/synthesis_cli.cpp.o.d"
  "synthesis_cli"
  "synthesis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
