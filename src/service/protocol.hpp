#pragma once

#include <cstddef>
#include <string>

#include "core/experiment.hpp"
#include "core/flow.hpp"
#include "logic/aig.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace cryo::service {

/// Wire protocol of `cryoeda serve`: newline-delimited JSON, one request
/// object per line on the way in, one reply object per line on the way
/// out, in request order.
///
/// Request schema (all fields optional unless noted):
///
///   {"op": "synth",            // default; also ping | stats |
///                              //   load_plugin | shutdown
///    "id": "job-1",            // echoed verbatim in the reply
///    "bench": "dec4",          // built-in benchmark ...
///    "aiger_path": "f.aig",    // ... or an AIGER file (exactly one)
///    "recipe": "c2rs; ...",    // default: the canonical recipe
///    "priority": "pda",        // baseline | pad | pda (default pda)
///    "temp": 10,               // corner temperature [K]
///    "vdd": 0.7,               // corner supply [V]
///    "preset": "finfet5",      // device preset (default finfet5); the
///                              //   corner must sit inside its envelope
///    "backend": "builtin",     // SPICE engine (default: the
///                              //   CRYOEDA_SPICE_BACKEND env var)
///    "deadline_s": 5.0,        // per-job wall-clock budget (0 = none)
///    "seed": 29}               // flow seed
///
///   load_plugin: {"op": "load_plugin", "name": "p", "script": "...",
///                 "help": "..."} — registers `name` as a composite pass
///   running the compiled script (see Server::load_plugin).
///
/// Reply schema:
///
///   ok:    {"id", "status": "ok", "report": {...}, "cache": {...},
///           "corner_warm": bool}
///   error: {"id", "status": "error", "error_kind": "budget",
///           "exit_code": 4, "error": "<message>"}
///
/// Validation is strict: unknown fields, wrong types, and out-of-range
/// values are rejected with cryo::Error{kRecipe} (a structured error
/// reply; the daemon keeps serving).

/// Longest accepted request line in bytes; longer lines get a kRecipe
/// error reply and the line is discarded.
inline constexpr std::size_t kMaxRequestLine = 1u << 20;

/// Deterministic job-report schema tag (also used by `cryoeda
/// --job-report` so one-shot and daemon reports are byte-comparable).
inline constexpr const char* kJobReportSchema = "cryoeda-job-v1";

/// A parsed, validated job request.
struct JobRequest {
  std::string op = "synth";
  std::string id;
  std::string bench;
  std::string aiger_path;
  std::string recipe;  ///< empty = canonical recipe for `flow`
  double temp = 10.0;
  double vdd = 0.7;
  std::string preset;   ///< device preset name; "" = the default
  std::string backend;  ///< SPICE engine; "" = env / builtin
  double deadline_s = 0.0;
  core::FlowOptions flow;  ///< priority/seed applied from the request
  // load_plugin fields.
  std::string plugin_name;
  std::string plugin_script;
  std::string plugin_help;
};

/// Parse and validate one request object. Throws cryo::Error{kRecipe}
/// with an actionable message on unknown fields / types / values.
JobRequest parse_request(const util::Json& json);

/// The liberty cache path the one-shot CLI and the daemon share for a
/// corner of the *default* platform: `<dir>/cryoeda_lib_<int(T)>K.lib`,
/// with a `_<vdd>V` tag when the supply is not the 0.7 V default (keeps
/// historical paths stable). Non-default presets/engines resolve via
/// `cells::default_lib_path`, which this delegates to.
std::string default_lib_path(const std::string& dir, double temperature_k,
                             double vdd);

/// The deterministic per-job report both `cryoeda --job-report` and the
/// daemon emit: schema tag, design interface, corner, canonical recipe,
/// and the scenario signoff figures. Contains no wall-clock data, so a
/// daemon reply is byte-identical to the one-shot run of the same job.
util::Json job_report_json(const logic::Aig& design, double temperature_k,
                           double vdd, const std::string& preset,
                           const std::string& backend_identity,
                           const std::string& canonical_recipe,
                           const core::ScenarioResult& result);

/// Reply constructors (key order is part of the wire format).
util::Json ok_reply(const std::string& id, util::Json report,
                    util::Json cache_stats, bool corner_warm);
util::Json error_reply(const std::string& id, ErrorKind kind,
                       const std::string& message);

}  // namespace cryo::service
