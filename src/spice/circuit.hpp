#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "device/finfet.hpp"
#include "spice/pwl.hpp"

namespace cryo::spice {

/// Node handle. Node 0 is always ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// A transistor instance in the netlist.
struct FetInstance {
  device::FinFetParams params;
  NodeId gate = kGround;
  NodeId drain = kGround;
  NodeId source = kGround;
  int nfins = 1;
};

/// Linear capacitor between two nodes.
struct CapInstance {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 0.0;
};

/// Linear resistor between two nodes.
struct ResInstance {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 0.0;
};

/// Ideal grounded voltage source with a PWL waveform.
struct SourceInstance {
  NodeId node = kGround;
  Pwl waveform;
};

/// Transistor-level circuit description (the "SPICE deck").
///
/// Voltage sources are ideal and grounded, which covers digital cell
/// characterization (VDD rail + input stimuli) and lets the simulator
/// treat driven nodes as knowns instead of adding branch currents to the
/// MNA system.
class Circuit {
public:
  Circuit() { node_names_.push_back("0"); }

  /// Create (or look up) a named node.
  NodeId add_node(const std::string& name);

  /// Look up an existing node; throws std::out_of_range if unknown.
  NodeId node(const std::string& name) const;

  const std::string& node_name(NodeId id) const { return node_names_.at(id); }
  int num_nodes() const { return static_cast<int>(node_names_.size()); }

  void add_fet(const device::FinFetParams& params, NodeId gate, NodeId drain,
               NodeId source, int nfins = 1);
  void add_cap(NodeId a, NodeId b, double farads);
  void add_res(NodeId a, NodeId b, double ohms);

  /// Drive `node` with the given waveform; re-driving replaces it.
  void set_source(NodeId node, Pwl waveform);

  const std::vector<FetInstance>& fets() const { return fets_; }
  const std::vector<CapInstance>& caps() const { return caps_; }
  const std::vector<ResInstance>& resistors() const { return resistors_; }
  const std::vector<SourceInstance>& sources() const { return sources_; }

  bool is_driven(NodeId node) const;

private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> by_name_{{"0", kGround}};
  std::vector<FetInstance> fets_;
  std::vector<CapInstance> caps_;
  std::vector<ResInstance> resistors_;
  std::vector<SourceInstance> sources_;
};

}  // namespace cryo::spice
