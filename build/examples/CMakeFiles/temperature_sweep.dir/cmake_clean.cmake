file(REMOVE_RECURSE
  "CMakeFiles/temperature_sweep.dir/temperature_sweep.cpp.o"
  "CMakeFiles/temperature_sweep.dir/temperature_sweep.cpp.o.d"
  "temperature_sweep"
  "temperature_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
