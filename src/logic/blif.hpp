#pragma once

#include <string>

#include "logic/aig.hpp"

namespace cryo::logic {

/// BLIF interchange (Berkeley Logic Interchange Format) for combinational
/// networks — the second lingua franca next to AIGER (SIS/ABC/mockturtle
/// all speak it). The writer emits one `.names` table per AND node; the
/// reader accepts arbitrary single-output `.names` tables (up to 16
/// inputs) and builds an AIG via ISOP-free direct cube construction.
/// Latches (`.latch`) are rejected.

std::string write_blif(const Aig& aig);

/// Parse a combinational BLIF model into an AIG.
/// Throws std::runtime_error on malformed input or `.latch` lines.
Aig read_blif(const std::string& contents);

void write_blif_file(const Aig& aig, const std::string& path);
Aig read_blif_file(const std::string& path);

}  // namespace cryo::logic
