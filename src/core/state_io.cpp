#include "core/state_io.hpp"

#include <stdexcept>
#include <utility>

#include "util/hash.hpp"

namespace cryo::core {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error{"state snapshot: " + detail};
}

std::uint32_t as_u32(const util::Json& json, const char* what) {
  const std::int64_t v = json.as_int();
  if (v < 0 || v > 0xffffffffll) {
    malformed(std::string{what} + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

bool snapshotable(const FlowState& state) {
  return !state.luts.has_value() && !state.has_netlist;
}

std::uint64_t state_fingerprint(const FlowState& state) {
  util::Fnv1a h;
  h.u64(logic::fingerprint(state.aig));
  h.u64(state.has_choices ? 1 : 0);
  if (state.has_choices) {
    h.u64(state.choices.size());
    for (const auto& cls : state.choices) {
      h.u64(cls.size());
      for (const logic::Lit lit : cls) {
        h.u64(lit);
      }
    }
  }
  h.u64(state.stage_checkpoint.has_value() ? 1 : 0);
  if (state.stage_checkpoint.has_value()) {
    h.u64(logic::fingerprint(*state.stage_checkpoint));
  }
  return h.value();
}

util::Json aig_to_json(const logic::Aig& aig) {
  util::Json json = util::Json::object();
  json["name"] = util::Json{aig.name()};
  util::Json pis = util::Json::array();
  for (logic::NodeIdx i = 0; i < aig.num_pis(); ++i) {
    pis.push_back(util::Json{aig.pi_name(i)});
  }
  json["pis"] = std::move(pis);
  // AND fanins, flat, in node order: nodes are [const0, PIs..., ANDs...]
  // contiguously, and `land` stored each pair already normalized, so
  // replaying `land` in this order rebuilds identical node indices.
  util::Json ands = util::Json::array();
  for (logic::NodeIdx v = aig.num_pis() + 1; v < aig.num_nodes(); ++v) {
    ands.push_back(util::Json{aig.fanin0(v)});
    ands.push_back(util::Json{aig.fanin1(v)});
  }
  json["ands"] = std::move(ands);
  util::Json pos = util::Json::array();
  util::Json po_names = util::Json::array();
  for (logic::NodeIdx i = 0; i < aig.num_pos(); ++i) {
    pos.push_back(util::Json{aig.po(i)});
    po_names.push_back(util::Json{aig.po_name(i)});
  }
  json["pos"] = std::move(pos);
  json["po_names"] = std::move(po_names);
  return json;
}

logic::Aig aig_from_json(const util::Json& json) {
  logic::Aig aig;
  aig.set_name(json.at("name").as_string());
  const util::Json& pis = json.at("pis");
  for (std::size_t i = 0; i < pis.size(); ++i) {
    aig.add_pi(pis.at(i).as_string());
  }
  const util::Json& ands = json.at("ands");
  if (ands.size() % 2 != 0) {
    malformed("odd AND fanin array");
  }
  for (std::size_t i = 0; i < ands.size(); i += 2) {
    const logic::Lit f0 = as_u32(ands.at(i), "AND fanin");
    const logic::Lit f1 = as_u32(ands.at(i + 1), "AND fanin");
    if (logic::lit_var(f0) >= aig.num_nodes() ||
        logic::lit_var(f1) >= aig.num_nodes()) {
      malformed("AND fanin references a later node");
    }
    const logic::Lit got = aig.land(f0, f1);
    // Stored pairs came out of `land`, so replay must mint exactly the
    // next node; anything else means the document is not a canonical
    // AIG dump (treated as corruption by the caller).
    if (got != logic::make_lit(aig.num_nodes() - 1)) {
      malformed("non-canonical AND node");
    }
  }
  const util::Json& pos = json.at("pos");
  const util::Json& po_names = json.at("po_names");
  if (pos.size() != po_names.size()) {
    malformed("PO literal/name arrays disagree");
  }
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const logic::Lit driver = as_u32(pos.at(i), "PO literal");
    if (logic::lit_var(driver) >= aig.num_nodes()) {
      malformed("PO literal out of range");
    }
    aig.add_po(driver, po_names.at(i).as_string());
  }
  return aig;
}

util::Json snapshot_to_json(const FlowState& state) {
  if (!snapshotable(state)) {
    throw std::logic_error{
        "snapshot_to_json: state holds a pending LUT cover or a netlist"};
  }
  util::Json json = util::Json::object();
  json["fingerprint"] = util::Json{util::hex64(state_fingerprint(state))};
  json["aig"] = aig_to_json(state.aig);
  json["has_choices"] = util::Json{state.has_choices};
  util::Json choices = util::Json::array();
  for (const auto& cls : state.choices) {
    util::Json lits = util::Json::array();
    for (const logic::Lit lit : cls) {
      lits.push_back(util::Json{lit});
    }
    choices.push_back(std::move(lits));
  }
  json["choices"] = std::move(choices);
  json["checkpoint"] = state.stage_checkpoint.has_value()
                           ? aig_to_json(*state.stage_checkpoint)
                           : util::Json{};
  json["after_c2rs"] = util::Json{state.after_c2rs};
  json["after_power_stage"] = util::Json{state.after_power_stage};
  json["saw_strash"] = util::Json{state.saw_strash};
  return json;
}

void snapshot_from_json(const util::Json& json, FlowState& state) {
  // Parse into locals first; `state` is only touched after the whole
  // document (including the fingerprint) checked out.
  logic::Aig aig = aig_from_json(json.at("aig"));
  const bool has_choices = json.at("has_choices").as_bool();
  std::vector<std::vector<logic::Lit>> choices;
  const util::Json& choice_json = json.at("choices");
  choices.reserve(choice_json.size());
  for (std::size_t i = 0; i < choice_json.size(); ++i) {
    const util::Json& cls = choice_json.at(i);
    std::vector<logic::Lit> lits;
    lits.reserve(cls.size());
    for (std::size_t k = 0; k < cls.size(); ++k) {
      const logic::Lit lit = as_u32(cls.at(k), "choice literal");
      if (logic::lit_var(lit) >= aig.num_nodes()) {
        malformed("choice literal out of range");
      }
      lits.push_back(lit);
    }
    choices.push_back(std::move(lits));
  }
  std::optional<logic::Aig> checkpoint;
  if (!json.at("checkpoint").is_null()) {
    checkpoint = aig_from_json(json.at("checkpoint"));
  }
  const std::uint32_t after_c2rs = as_u32(json.at("after_c2rs"), "counter");
  const std::uint32_t after_power_stage =
      as_u32(json.at("after_power_stage"), "counter");
  const bool saw_strash = json.at("saw_strash").as_bool();

  FlowState restored;
  restored.aig = std::move(aig);
  restored.choices = std::move(choices);
  restored.has_choices = has_choices;
  restored.stage_checkpoint = std::move(checkpoint);
  if (json.at("fingerprint").as_string() !=
      util::hex64(state_fingerprint(restored))) {
    malformed("fingerprint mismatch (stale or corrupt entry)");
  }

  state.aig = std::move(restored.aig);
  state.choices = std::move(restored.choices);
  state.has_choices = restored.has_choices;
  state.stage_checkpoint = std::move(restored.stage_checkpoint);
  state.luts.reset();
  state.netlist = map::Netlist{};
  state.has_netlist = false;
  state.after_c2rs = after_c2rs;
  state.after_power_stage = after_power_stage;
  state.saw_strash = saw_strash;
}

}  // namespace cryo::core
