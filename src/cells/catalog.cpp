#include "cells/catalog.hpp"

#include <algorithm>
#include <stdexcept>

#include "liberty/function.hpp"
#include "logic/tt.hpp"

namespace cryo::cells {

PdnExpr PdnExpr::in(int index) {
  PdnExpr e;
  e.kind = Kind::kInput;
  e.input = index;
  return e;
}

PdnExpr PdnExpr::series(std::vector<PdnExpr> parts) {
  PdnExpr e;
  e.kind = Kind::kSeries;
  e.children = std::move(parts);
  return e;
}

PdnExpr PdnExpr::parallel(std::vector<PdnExpr> parts) {
  PdnExpr e;
  e.kind = Kind::kParallel;
  e.children = std::move(parts);
  return e;
}

unsigned PdnExpr::depth() const {
  switch (kind) {
    case Kind::kInput:
      return 1;
    case Kind::kSeries: {
      unsigned d = 0;
      for (const auto& c : children) {
        d += c.depth();
      }
      return d;
    }
    case Kind::kParallel: {
      unsigned d = 0;
      for (const auto& c : children) {
        d = std::max(d, c.depth());
      }
      return d;
    }
  }
  return 1;
}

unsigned PdnExpr::num_devices() const {
  if (kind == Kind::kInput) {
    return 1;
  }
  unsigned n = 0;
  for (const auto& c : children) {
    n += c.num_devices();
  }
  return n;
}

bool PdnExpr::conducts(unsigned minterm) const {
  switch (kind) {
    case Kind::kInput:
      return ((minterm >> input) & 1u) != 0;
    case Kind::kSeries:
      for (const auto& c : children) {
        if (!c.conducts(minterm)) {
          return false;
        }
      }
      return true;
    case Kind::kParallel:
      for (const auto& c : children) {
        if (c.conducts(minterm)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

std::uint64_t CellSpec::truth_table() const {
  if (inputs.size() > 6) {
    throw std::logic_error{"CellSpec::truth_table: too many inputs"};
  }
  // Evaluate stages in order over every input minterm.
  std::uint64_t out_tt = 0;
  for (unsigned m = 0; m < (1u << inputs.size()); ++m) {
    // Node values: cell inputs then internal stage outputs.
    std::vector<std::pair<std::string, bool>> values;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      values.emplace_back(inputs[i], ((m >> i) & 1u) != 0);
    }
    auto value_of = [&](const std::string& name) {
      for (const auto& [n, v] : values) {
        if (n == name) {
          return v;
        }
      }
      throw std::logic_error{"CellSpec: undefined stage input " + name};
    };
    bool out_value = false;
    for (const auto& stage : stages) {
      unsigned stage_minterm = 0;
      for (std::size_t i = 0; i < stage.inputs.size(); ++i) {
        if (value_of(stage.inputs[i])) {
          stage_minterm |= 1u << i;
        }
      }
      // Static CMOS stage: PDN conducting pulls the output low.
      out_value = !stage.pdn.conducts(stage_minterm);
      values.emplace_back(stage.out, out_value);
    }
    if (out_value) {
      out_tt |= 1ull << m;
    }
  }
  return out_tt;
}

std::string CellSpec::function_string() const {
  const std::uint64_t tt = truth_table();
  const auto n = static_cast<unsigned>(inputs.size());
  if (tt == 0) {
    return "0";
  }
  if (tt == logic::tt6_mask(n)) {
    return "1";
  }
  const auto cubes =
      logic::isop(logic::TtVec::from_tt6(tt, n), logic::TtVec::zeros(n));
  std::string expr;
  for (std::size_t ci = 0; ci < cubes.size(); ++ci) {
    if (ci != 0) {
      expr += " | ";
    }
    std::string term;
    for (unsigned v = 0; v < n; ++v) {
      if ((cubes[ci].pos >> v) & 1u) {
        term += (term.empty() ? "" : "&") + inputs[v];
      } else if ((cubes[ci].neg >> v) & 1u) {
        term += (term.empty() ? "" : "&") + ("!" + inputs[v]);
      }
    }
    expr += "(" + term + ")";
  }
  return expr;
}

unsigned CellSpec::total_fins() const {
  unsigned fins = 0;
  for (const auto& stage : stages) {
    fins += stage.pdn.num_devices() *
            static_cast<unsigned>(stage.nfins_n + stage.nfins_p);
  }
  return fins;
}

namespace {

using K = PdnExpr;

/// Finish a cell: compute area from fin count.
CellSpec finalize(CellSpec spec) {
  spec.area = 0.012 * static_cast<double>(spec.total_fins());
  return spec;
}

/// Single-stage cell (inverting function).
CellSpec single_stage(std::string name, std::vector<std::string> inputs,
                      PdnExpr pdn, int drive) {
  CellSpec spec;
  spec.name = std::move(name);
  spec.inputs = inputs;
  StageSpec stage;
  stage.out = "Y";
  stage.inputs = std::move(inputs);
  const unsigned stack = pdn.depth();
  stage.pdn = std::move(pdn);
  stage.nfins_n = static_cast<int>((stack >= 3 ? 3 : 2) * drive);
  stage.nfins_p = 3 * drive;
  spec.stages.push_back(std::move(stage));
  return finalize(std::move(spec));
}

/// Two-stage cell: an inverting first stage followed by an output
/// inverter (how AND/OR/AO/OA/BUF cells are built).
CellSpec two_stage(std::string name, std::vector<std::string> inputs,
                   PdnExpr pdn, int drive) {
  CellSpec spec;
  spec.name = std::move(name);
  spec.inputs = inputs;
  StageSpec first;
  first.out = "n1";
  first.inputs = std::move(inputs);
  const unsigned stack = pdn.depth();
  first.pdn = std::move(pdn);
  first.nfins_n = stack >= 3 ? 3 : 2;
  first.nfins_p = 3;
  StageSpec out;
  out.out = "Y";
  out.inputs = {"n1"};
  out.pdn = K::in(0);
  out.nfins_n = 2 * drive;
  out.nfins_p = 3 * drive;
  spec.stages.push_back(std::move(first));
  spec.stages.push_back(std::move(out));
  return finalize(std::move(spec));
}

/// Input-inverter helper: adds INV stages for selected inputs feeding a
/// core stage (XOR/XNOR/MUX/MAJ compound structures).
struct CompoundBuilder {
  CellSpec spec;
  int next_internal = 0;

  explicit CompoundBuilder(std::string name, std::vector<std::string> inputs) {
    spec.name = std::move(name);
    spec.inputs = std::move(inputs);
  }

  std::string invert(const std::string& node) {
    const std::string out = "n" + std::to_string(next_internal++);
    StageSpec stage;
    stage.out = out;
    stage.inputs = {node};
    stage.pdn = K::in(0);
    stage.nfins_n = 2;
    stage.nfins_p = 3;
    spec.stages.push_back(std::move(stage));
    return out;
  }

  void stage(const std::string& out, std::vector<std::string> inputs,
             PdnExpr pdn, int drive) {
    StageSpec stage;
    stage.out = out;
    stage.inputs = std::move(inputs);
    const unsigned stack = pdn.depth();
    stage.pdn = std::move(pdn);
    stage.nfins_n = static_cast<int>((stack >= 3 ? 3 : 2) * drive);
    stage.nfins_p = 3 * drive;
    spec.stages.push_back(std::move(stage));
  }

  CellSpec build() { return finalize(std::move(spec)); }
};

std::string drive_suffix(int drive) { return "_X" + std::to_string(drive); }

CellSpec make_inv(int drive) {
  return single_stage("INV" + drive_suffix(drive), {"A"}, K::in(0), drive);
}

CellSpec make_buf(int drive) {
  return two_stage("BUF" + drive_suffix(drive), {"A"}, K::in(0), drive);
}

CellSpec make_nand(unsigned n, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> parts;
  for (unsigned i = 0; i < n; ++i) {
    inputs.push_back(std::string(1, static_cast<char>('A' + i)));
    parts.push_back(K::in(static_cast<int>(i)));
  }
  return single_stage("NAND" + std::to_string(n) + drive_suffix(drive),
                      std::move(inputs), K::series(std::move(parts)), drive);
}

CellSpec make_nor(unsigned n, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> parts;
  for (unsigned i = 0; i < n; ++i) {
    inputs.push_back(std::string(1, static_cast<char>('A' + i)));
    parts.push_back(K::in(static_cast<int>(i)));
  }
  return single_stage("NOR" + std::to_string(n) + drive_suffix(drive),
                      std::move(inputs), K::parallel(std::move(parts)), drive);
}

CellSpec make_and(unsigned n, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> parts;
  for (unsigned i = 0; i < n; ++i) {
    inputs.push_back(std::string(1, static_cast<char>('A' + i)));
    parts.push_back(K::in(static_cast<int>(i)));
  }
  return two_stage("AND" + std::to_string(n) + drive_suffix(drive),
                   std::move(inputs), K::series(std::move(parts)), drive);
}

CellSpec make_or(unsigned n, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> parts;
  for (unsigned i = 0; i < n; ++i) {
    inputs.push_back(std::string(1, static_cast<char>('A' + i)));
    parts.push_back(K::in(static_cast<int>(i)));
  }
  return two_stage("OR" + std::to_string(n) + drive_suffix(drive),
                   std::move(inputs), K::parallel(std::move(parts)), drive);
}

/// AOI/OAI family. groups = sizes of the AND (or OR) groups,
/// e.g. AOI221 -> {2, 2, 1}.
CellSpec make_aoi(const std::vector<unsigned>& groups, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> branches;
  std::string digits;
  int idx = 0;
  int group_idx = 0;
  for (unsigned g : groups) {
    digits += std::to_string(g);
    std::vector<PdnExpr> serial;
    for (unsigned i = 0; i < g; ++i) {
      inputs.push_back(std::string(1, static_cast<char>('A' + group_idx)) +
                       std::to_string(i + 1));
      serial.push_back(K::in(idx));
      ++idx;
    }
    ++group_idx;
    branches.push_back(g == 1 ? serial.front() : K::series(std::move(serial)));
  }
  return single_stage("AOI" + digits + drive_suffix(drive), std::move(inputs),
                      K::parallel(std::move(branches)), drive);
}

CellSpec make_oai(const std::vector<unsigned>& groups, int drive) {
  std::vector<std::string> inputs;
  std::vector<PdnExpr> stacks;
  std::string digits;
  int idx = 0;
  int group_idx = 0;
  for (unsigned g : groups) {
    digits += std::to_string(g);
    std::vector<PdnExpr> par;
    for (unsigned i = 0; i < g; ++i) {
      inputs.push_back(std::string(1, static_cast<char>('A' + group_idx)) +
                       std::to_string(i + 1));
      par.push_back(K::in(idx));
      ++idx;
    }
    ++group_idx;
    stacks.push_back(g == 1 ? par.front() : K::parallel(std::move(par)));
  }
  return single_stage("OAI" + digits + drive_suffix(drive), std::move(inputs),
                      K::series(std::move(stacks)), drive);
}

/// Non-inverting AO/OA variants (AOI/OAI + output inverter).
CellSpec make_ao(const std::vector<unsigned>& groups, int drive) {
  CellSpec base = make_aoi(groups, 1);
  CompoundBuilder b{"AO", base.inputs};
  std::string digits;
  for (unsigned g : groups) {
    digits += std::to_string(g);
  }
  b.spec.name = "AO" + digits + drive_suffix(drive);
  b.stage("n9", base.inputs, base.stages[0].pdn, 1);
  b.stage("Y", {"n9"}, K::in(0), drive);
  return b.build();
}

CellSpec make_oa(const std::vector<unsigned>& groups, int drive) {
  CellSpec base = make_oai(groups, 1);
  CompoundBuilder b{"OA", base.inputs};
  std::string digits;
  for (unsigned g : groups) {
    digits += std::to_string(g);
  }
  b.spec.name = "OA" + digits + drive_suffix(drive);
  b.stage("n9", base.inputs, base.stages[0].pdn, 1);
  b.stage("Y", {"n9"}, K::in(0), drive);
  return b.build();
}

/// XOR2 as AOI structure with input inverters:
/// Y = A^B = !(A&B | !A&!B).
CellSpec make_xor2(int drive) {
  CompoundBuilder b{"XOR2" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  const std::string nb = b.invert("B");
  b.stage("Y", {"A", "B", na, nb},
          K::parallel({K::series({K::in(0), K::in(1)}),
                       K::series({K::in(2), K::in(3)})}),
          drive);
  return b.build();
}

CellSpec make_xnor2(int drive) {
  CompoundBuilder b{"XNOR2" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  const std::string nb = b.invert("B");
  b.stage("Y", {"A", "B", na, nb},
          K::parallel({K::series({K::in(0), K::in(3)}),
                       K::series({K::in(2), K::in(1)})}),
          drive);
  return b.build();
}

/// XOR3 / XNOR3 as two cascaded XOR structures.
CellSpec make_xor3(int drive, bool negate) {
  CompoundBuilder b{(negate ? std::string{"XNOR3"} : std::string{"XOR3"}) +
                        drive_suffix(drive),
                    {"A", "B", "C"}};
  const std::string na = b.invert("A");
  const std::string nb = b.invert("B");
  // x = !(A^B)
  b.stage("x", {"A", "B", na, nb},
          K::parallel({K::series({K::in(0), K::in(1)}),
                       K::series({K::in(2), K::in(3)})}),
          1);
  // Here x = A^B (the stage above inverts its own PDN), nx = !(A^B).
  const std::string nx = b.invert("x");
  const std::string nc = b.invert("C");
  if (negate) {
    // XNOR3 = !(x ^ C): PDN must conduct exactly on x ^ C.
    b.stage("Y", {"x", nc, nx, "C"},
            K::parallel({K::series({K::in(0), K::in(1)}),
                         K::series({K::in(2), K::in(3)})}),
            drive);
  } else {
    // XOR3 = x ^ C = !(PDN) with PDN conducting on !(x ^ C).
    b.stage("Y", {"x", "C", nx, nc},
            K::parallel({K::series({K::in(0), K::in(1)}),
                         K::series({K::in(2), K::in(3)})}),
            drive);
  }
  return b.build();
}

/// MUX2: Y = S ? B : A, built as !(S&!B | !S&!A) ... via AOI over
/// inverted data inputs.
CellSpec make_mux2(int drive) {
  CompoundBuilder b{"MUX2" + drive_suffix(drive), {"A", "B", "S"}};
  const std::string na = b.invert("A");
  const std::string nb = b.invert("B");
  const std::string ns = b.invert("S");
  b.stage("Y", {"S", nb, ns, na},
          K::parallel({K::series({K::in(0), K::in(1)}),
                       K::series({K::in(2), K::in(3)})}),
          drive);
  return b.build();
}

/// MAJ3 (carry): Y = AB | AC | BC, as inverted-majority AOI + INV.
CellSpec make_maj3(int drive) {
  CompoundBuilder b{"MAJ3" + drive_suffix(drive), {"A", "B", "C"}};
  b.stage("nmaj", {"A", "B", "C"},
          K::parallel({K::series({K::in(0), K::in(1)}),
                       K::series({K::in(0), K::in(2)}),
                       K::series({K::in(1), K::in(2)})}),
          1);
  b.stage("Y", {"nmaj"}, K::in(0), drive);
  return b.build();
}

/// B-variants: one inverted input.
CellSpec make_nand2b(int drive) {  // Y = !(!A & B)
  CompoundBuilder b{"NAND2B" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  b.stage("Y", {na, "B"}, K::series({K::in(0), K::in(1)}), drive);
  return b.build();
}

CellSpec make_nor2b(int drive) {  // Y = !(!A | B)
  CompoundBuilder b{"NOR2B" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  b.stage("Y", {na, "B"}, K::parallel({K::in(0), K::in(1)}), drive);
  return b.build();
}

CellSpec make_tie(bool high) {
  // TIE cells are modelled with an internally tied input pin A (held at
  // ground): TIEHI is an inverter of it (Y = !A -> 1), TIELO a buffer
  // (Y = A -> 0). The netlister instantiates them with no fanins and the
  // evaluators read the function's minterm 0, which yields the right
  // constant for both.
  CellSpec spec;
  spec.name = high ? "TIEHI" : "TIELO";
  spec.inputs = {"A"};
  StageSpec s;
  s.out = high ? "Y" : "n1";
  s.inputs = {"A"};
  s.pdn = K::in(0);
  spec.stages.push_back(std::move(s));
  if (!high) {
    StageSpec s2;
    s2.out = "Y";
    s2.inputs = {"n1"};
    s2.pdn = K::in(0);
    spec.stages.push_back(std::move(s2));
  }
  return finalize(std::move(spec));
}

/// D flip-flop family (master-slave, transmission-gate based). The
/// schematic is assembled directly by the characterizer; the spec here
/// carries the interface and sizing only.
CellSpec make_dff(const std::string& name, int drive, bool latch) {
  CellSpec spec;
  spec.name = name + drive_suffix(drive);
  spec.inputs = {"D", "CK"};
  spec.output = "Q";
  spec.sequential = true;
  spec.level_sensitive = latch;
  // Output driver sizing recorded via a nominal stage (used for area and
  // input-cap bookkeeping; the schematic is built by the characterizer).
  StageSpec out;
  out.out = "Q";
  out.inputs = {"D"};
  out.pdn = K::in(0);
  out.nfins_n = 2 * drive;
  out.nfins_p = 3 * drive;
  spec.stages.push_back(std::move(out));
  spec.area = 0.012 * (20.0 + 5.0 * drive);
  return spec;
}

}  // namespace

namespace {

/// Clock buffer: same topology as BUF, balanced sizing, own name.
CellSpec make_clkbuf(int drive) {
  CellSpec spec = make_buf(drive);
  spec.name = "CLKBUF" + drive_suffix(drive);
  return spec;
}

/// Delay cell: four weak inverter stages.
CellSpec make_delay(int taps) {
  CompoundBuilder b{"DLY" + std::to_string(taps), {"A"}};
  std::string node = "A";
  for (int i = 0; i < 2 * taps - 1; ++i) {
    node = b.invert(node);
  }
  b.stage("Y", {node}, K::in(0), 1);
  return b.build();
}

/// Non-inverting B-variants: AND2B = !A & B, OR2B = !A | B.
CellSpec make_and2b(int drive) {
  CompoundBuilder b{"AND2B" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  b.stage("n5", {na, "B"}, K::series({K::in(0), K::in(1)}), 1);
  b.stage("Y", {"n5"}, K::in(0), drive);
  return b.build();
}

CellSpec make_or2b(int drive) {
  CompoundBuilder b{"OR2B" + drive_suffix(drive), {"A", "B"}};
  const std::string na = b.invert("A");
  b.stage("n5", {na, "B"}, K::parallel({K::in(0), K::in(1)}), 1);
  b.stage("Y", {"n5"}, K::in(0), drive);
  return b.build();
}

/// Three-input B-variants: NAND3B = !(!A & B & C), NOR3B = !(!A | B | C).
CellSpec make_nand3b(int drive) {
  CompoundBuilder b{"NAND3B" + drive_suffix(drive), {"A", "B", "C"}};
  const std::string na = b.invert("A");
  b.stage("Y", {na, "B", "C"},
          K::series({K::in(0), K::in(1), K::in(2)}), drive);
  return b.build();
}

CellSpec make_nor3b(int drive) {
  CompoundBuilder b{"NOR3B" + drive_suffix(drive), {"A", "B", "C"}};
  const std::string na = b.invert("A");
  b.stage("Y", {na, "B", "C"},
          K::parallel({K::in(0), K::in(1), K::in(2)}), drive);
  return b.build();
}

/// Inverted-output 2:1 mux.
CellSpec make_mux2n(int drive) {
  CellSpec base = make_mux2(1);
  base.name = "MUX2N" + drive_suffix(drive);
  StageSpec out;
  out.out = "YN";
  out.inputs = {"Y"};
  out.pdn = K::in(0);
  out.nfins_n = 2 * drive;
  out.nfins_p = 3 * drive;
  base.stages.push_back(std::move(out));
  base.output = "YN";
  return finalize(std::move(base));
}

}  // namespace

std::vector<CellSpec> standard_catalog() {
  std::vector<CellSpec> cells;

  for (int drive : {1, 2, 3, 4, 6, 8, 12, 16}) {
    cells.push_back(make_inv(drive));
  }
  for (int drive : {1, 2, 3, 4, 6, 8, 12, 16}) {
    cells.push_back(make_buf(drive));
  }
  for (int drive : {2, 4, 8, 16}) {
    cells.push_back(make_clkbuf(drive));
  }
  for (int taps : {1, 2, 3, 4}) {
    cells.push_back(make_delay(taps));
  }
  for (unsigned n : {2u, 3u, 4u}) {
    for (int drive : {1, 2, 3, 4}) {
      cells.push_back(make_nand(n, drive));
      cells.push_back(make_nor(n, drive));
    }
    for (int drive : {1, 2, 4}) {
      cells.push_back(make_and(n, drive));
      cells.push_back(make_or(n, drive));
    }
  }
  // 5-input simple gates.
  for (int drive : {1, 2}) {
    cells.push_back(make_nand(5, drive));
    cells.push_back(make_nor(5, drive));
    cells.push_back(make_and(5, drive));
    cells.push_back(make_or(5, drive));
  }

  const std::vector<std::vector<unsigned>> aoi_groups = {
      {2, 1}, {2, 2}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}, {3, 1}, {3, 2}, {3, 3}};
  for (const auto& groups : aoi_groups) {
    for (int drive : {1, 2, 4}) {
      cells.push_back(make_aoi(groups, drive));
      cells.push_back(make_oai(groups, drive));
    }
  }
  for (const auto& groups : std::vector<std::vector<unsigned>>{
           {2, 1}, {2, 2}, {2, 2, 2}, {3, 1}}) {
    for (int drive : {1, 2}) {
      cells.push_back(make_ao(groups, drive));
      cells.push_back(make_oa(groups, drive));
    }
  }

  for (int drive : {1, 2, 4}) {
    cells.push_back(make_xor2(drive));
    cells.push_back(make_xnor2(drive));
  }
  for (int drive : {1, 2, 4}) {
    cells.push_back(make_xor3(drive, false));
    cells.push_back(make_xor3(drive, true));
    cells.push_back(make_mux2(drive));
    cells.push_back(make_maj3(drive));
  }
  for (int drive : {1, 2}) {
    cells.push_back(make_mux2n(drive));
    cells.push_back(make_nand2b(drive));
    cells.push_back(make_nor2b(drive));
    cells.push_back(make_and2b(drive));
    cells.push_back(make_or2b(drive));
    cells.push_back(make_nand3b(drive));
    cells.push_back(make_nor3b(drive));
  }

  cells.push_back(make_tie(true));
  cells.push_back(make_tie(false));

  for (int drive : {1, 2, 4, 8}) {
    cells.push_back(make_dff("DFF", drive, false));
  }
  for (int drive : {1, 2, 4}) {
    cells.push_back(make_dff("DLATCH", drive, true));
  }
  return cells;
}

std::vector<CellSpec> mini_catalog() {
  return {
      make_inv(1),    make_inv(2),   make_buf(1),         make_nand(2, 1),
      make_nor(2, 1), make_and(2, 1), make_aoi({2, 1}, 1), make_oai({2, 1}, 1),
      make_xor2(1),   make_mux2(1),  make_maj3(1),        make_nand(3, 1),
  };
}

namespace {

util::Json pdn_to_json(const PdnExpr& expr) {
  util::Json json = util::Json::object();
  switch (expr.kind) {
    case PdnExpr::Kind::kInput:
      json["in"] = util::Json{expr.input};
      return json;
    case PdnExpr::Kind::kSeries:
      json["series"] = util::Json::array();
      break;
    case PdnExpr::Kind::kParallel:
      json["parallel"] = util::Json::array();
      break;
  }
  util::Json& children = json[expr.kind == PdnExpr::Kind::kSeries
                                  ? "series"
                                  : "parallel"];
  for (const PdnExpr& child : expr.children) {
    children.push_back(pdn_to_json(child));
  }
  return json;
}

}  // namespace

util::Json to_json(const CellSpec& spec) {
  util::Json json = util::Json::object();
  json["name"] = util::Json{spec.name};
  util::Json inputs = util::Json::array();
  for (const std::string& input : spec.inputs) {
    inputs.push_back(util::Json{input});
  }
  json["inputs"] = std::move(inputs);
  json["output"] = util::Json{spec.output};
  util::Json stages = util::Json::array();
  for (const StageSpec& stage : spec.stages) {
    util::Json s = util::Json::object();
    s["out"] = util::Json{stage.out};
    util::Json stage_inputs = util::Json::array();
    for (const std::string& input : stage.inputs) {
      stage_inputs.push_back(util::Json{input});
    }
    s["inputs"] = std::move(stage_inputs);
    s["pdn"] = pdn_to_json(stage.pdn);
    s["nfins_n"] = util::Json{stage.nfins_n};
    s["nfins_p"] = util::Json{stage.nfins_p};
    stages.push_back(std::move(s));
  }
  json["stages"] = std::move(stages);
  json["sequential"] = util::Json{spec.sequential};
  json["level_sensitive"] = util::Json{spec.level_sensitive};
  json["area"] = util::Json{spec.area};
  return json;
}

}  // namespace cryo::cells
