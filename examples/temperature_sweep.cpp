// Device-physics exploration: sweep the cryogenic-aware FinFET compact
// model over the full 300 K -> 4 K range and print the figure-of-merit
// trends (Vth, subthreshold slope, mobility, I_ON, I_OFF, gate cap) that
// drive everything else in the flow. Also demonstrates the synthetic
// measurement + calibration loop on a "fresh" device.

#include <cstdio>

#include "device/calibration.hpp"
#include "device/measurement.hpp"
#include "device/physics.hpp"

using namespace cryo::device;

int main() {
  std::printf("=== Cryogenic FinFET trends, 300 K -> 4 K ===\n\n");
  const auto params = nominal_nfet_5nm();
  std::printf("%6s %8s %12s %10s %12s %14s %10s\n", "T[K]", "Vth[V]",
              "SS[mV/dec]", "mu/mu300", "Ion[uA/fin]", "Ioff[A/fin]",
              "Cgg[aF]");
  const FinFetModel room{params, 300.0};
  const double mu300 = mobility_factor(300.0, params.mu_r_inf);
  for (const double t : {300.0, 250.0, 200.0, 150.0, 100.0, 77.0, 50.0, 25.0,
                         10.0, 4.0}) {
    const FinFetModel model{params, t};
    std::printf("%6.0f %8.3f %12.1f %10.2f %12.1f %14.3g %10.1f\n", t,
                model.vth(), model.subthreshold_slope() * 1e3,
                mobility_factor(t, params.mu_r_inf) / mu300,
                model.ion(0.7) * 1e6, model.ioff(0.7), model.cgg() * 1e18);
  }

  std::printf("\n=== Parameter extraction demo ===\n");
  const ReferenceDevice dut{Polarity::kN};
  MeasurementPlan plan;
  const auto data = dut.measure(plan);
  std::printf("measured %zu I-V points across %zu temperatures\n",
              data.points.size(), plan.temperatures_k.size());
  const auto fit = calibrate(data, params);
  std::printf("calibrated in %d evaluations; RMS log10(I) error %.4f\n",
              fit.evaluations, fit.rms_log_error);
  std::printf("  extracted Vth300 = %.4f V (hidden truth: %.4f V)\n",
              fit.params.vth300, dut.true_params().vth300);
  std::printf("  extracted Wt     = %.2f mV (hidden truth: %.2f mV)\n",
              fit.params.band_tail_v * 1e3,
              dut.true_params().band_tail_v * 1e3);
  return 0;
}
