#pragma once

#include <cstdint>

#include "liberty/library.hpp"
#include "util/json.hpp"

namespace cryo::liberty {

/// Exact JSON serialization of characterized cells — the value format of
/// the artifact cache's `cells.characterize` stage. Unlike the liberty
/// text writer (which formats for EDA-tool interchange), these
/// round-trip every double bit-for-bit via `util::Json`'s
/// shortest-round-trip formatting, so a cache hit reproduces the cold
/// characterization exactly.
util::Json to_json(const NldmTable& table);
util::Json to_json(const Cell& cell);

/// Inverse of `to_json`; throws std::runtime_error on a malformed or
/// incompatible document.
NldmTable nldm_from_json(const util::Json& json);
Cell cell_from_json(const util::Json& json);

/// Stable FNV-1a fingerprint of a full library (corner, every cell's
/// interface, tables, leakage, area). Two libraries with the same
/// fingerprint produce the same mapping and signoff results, so this is
/// the library component of synthesis-stage cache keys.
std::uint64_t fingerprint(const Library& library);

}  // namespace cryo::liberty
