#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/budget.hpp"
#include "util/faultinject.hpp"
#include "util/obs.hpp"

namespace cryo::sat {

Solver::Solver() : Solver(SolverConfig{}) {}

Solver::Solver(const SolverConfig& config)
    : config_{config}, reduce_threshold_{config.reduce_base} {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(kUndef);
  model_.push_back(kUndef);
  polarity_.push_back(kFalse);
  reason_.push_back(-1);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void Solver::attach(std::int32_t ci) {
  const auto& c = clauses_[ci].lits;
  watches_[lit_neg(c[0])].push_back({ci, c[1]});
  watches_[lit_neg(c[1])].push_back({ci, c[0]});
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) {
    return false;
  }
  // Root-level simplification: remove duplicates, false literals,
  // detect tautologies and satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = -2;
  for (Lit l : lits) {
    if (l == prev) {
      continue;
    }
    if (l == lit_neg(prev) && lit_var(l) == lit_var(prev)) {
      return true;  // tautology
    }
    if (value(l) == kTrue && level_[lit_var(l)] == 0) {
      return true;  // already satisfied
    }
    if (value(l) == kFalse && level_[lit_var(l)] == 0) {
      prev = l;
      continue;  // drop root-false literal
    }
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    if (value(out[0]) == kUndef) {
      enqueue(out[0], -1);
      ok_ = propagate() < 0;
      return ok_;
    }
    ok_ = value(out[0]) == kTrue;
    return ok_;
  }
  const auto ci = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back({std::move(out), false, 0.0});
  attach(ci);
  return true;
}

void Solver::enqueue(Lit l, std::int32_t reason) {
  const Var v = lit_var(l);
  assigns_[v] = lit_sign(l) ? kFalse : kTrue;
  reason_[v] = reason;
  level_[v] = static_cast<std::int32_t>(trail_lim_.size());
  trail_.push_back(l);
}

std::int32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    auto& ws = watches_[p];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      const Watcher w = ws[wi];
      if (value(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      auto& lits = clauses_[w.clause].lits;
      // Normalize: the false literal (~p) goes to position 1.
      const Lit false_lit = lit_neg(p);
      if (lits[0] == false_lit) {
        std::swap(lits[0], lits[1]);
      }
      if (value(lits[0]) == kTrue) {
        ws[keep++] = {w.clause, lits[0]};
        continue;
      }
      // Look for a new watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[lit_neg(lits[1])].push_back({w.clause, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;
      }
      // Unit or conflict.
      if (value(lits[0]) == kFalse) {
        // Conflict: restore remaining watchers and return.
        for (std::size_t rest = wi; rest < ws.size(); ++rest) {
          ws[keep++] = ws[rest];
        }
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      ws[keep++] = w;
      enqueue(lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) {
      a *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
}

void Solver::bump_clause(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (auto ci : learnt_indices_) {
      clauses_[ci].activity *= 1e-20;
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::analyze(std::int32_t conflict, std::vector<Lit>& learnt,
                     int& backtrack_level) {
  learnt.clear();
  learnt.push_back(-1);  // placeholder for the asserting literal
  int counter = 0;
  Lit p = -1;
  std::size_t index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  std::int32_t reason = conflict;
  do {
    Clause& c = clauses_[reason];
    if (c.learnt) {
      bump_clause(c);
    }
    for (std::size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = lit_var(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        bump_var(v);
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Pick the next trail literal to resolve on.
    do {
      --index;
      p = trail_[index];
    } while (seen_[lit_var(p)] == 0);
    seen_[lit_var(p)] = 0;
    --counter;
    reason = reason_[lit_var(p)];
  } while (counter > 0);
  learnt[0] = lit_neg(p);

  // Cheap clause minimization: drop literals implied by others' reasons.
  const std::vector<Lit> to_clear(learnt.begin() + 1, learnt.end());
  std::size_t keep = 1;
  for (std::size_t k = 1; k < learnt.size(); ++k) {
    const Var v = lit_var(learnt[k]);
    const std::int32_t r = reason_[v];
    bool redundant = false;
    if (r >= 0) {
      redundant = true;
      for (const Lit q : clauses_[r].lits) {
        if (lit_var(q) == v) {
          continue;
        }
        if (seen_[lit_var(q)] == 0 && level_[lit_var(q)] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) {
      learnt[keep++] = learnt[k];
    }
  }
  // seen_ flags were needed during minimization; clear them all now
  // (from the pre-compaction copy so dropped literals get cleared too).
  for (const Lit l : to_clear) {
    seen_[lit_var(l)] = 0;
  }
  learnt.resize(keep);

  // Re-mark (cleared above) is unnecessary; compute backtrack level.
  backtrack_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k) {
      if (level_[lit_var(learnt[k])] > level_[lit_var(learnt[max_i])]) {
        max_i = k;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[lit_var(learnt[1])];
  }
}

void Solver::backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) {
    return;
  }
  const std::int32_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(bound);) {
    const Var v = lit_var(trail_[i]);
    polarity_[v] = assigns_[v];
    assigns_[v] = kUndef;
    reason_[v] = -1;
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  Var best = -1;
  double best_act = -1.0;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == kUndef && activity_[v] > best_act) {
      best_act = activity_[v];
      best = v;
    }
  }
  if (best < 0) {
    return -1;
  }
  return mk_lit(best, polarity_[best] == kFalse);
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  lbd_levels_.clear();
  for (const Lit l : lits) {
    lbd_levels_.push_back(level_[lit_var(l)]);
  }
  std::sort(lbd_levels_.begin(), lbd_levels_.end());
  lbd_levels_.erase(std::unique(lbd_levels_.begin(), lbd_levels_.end()),
                    lbd_levels_.end());
  return static_cast<std::uint32_t>(lbd_levels_.size());
}

void Solver::reduce_learnts(SolveStats& st) {
  if (learnt_indices_.size() < reduce_threshold_) {
    return;
  }
  ++st.reduce_dbs;
  reduce_threshold_ += config_.reduce_inc;
  // Keep the more valuable half: low LBD first, then high activity.
  // "Glue" clauses (LBD <= glue_lbd) and clauses currently locked as a
  // propagation reason are never dropped regardless of rank. Watches
  // are rebuilt wholesale, which is simple and still cheap at this
  // cadence.
  std::sort(learnt_indices_.begin(), learnt_indices_.end(),
            [&](std::int32_t a, std::int32_t b) {
              if (clauses_[a].lbd != clauses_[b].lbd) {
                return clauses_[a].lbd < clauses_[b].lbd;
              }
              return clauses_[a].activity > clauses_[b].activity;
            });
  std::vector<std::int32_t> kept;
  const std::size_t target = learnt_indices_.size() / 2;
  std::vector<bool> drop(clauses_.size(), false);
  for (std::size_t i = 0; i < learnt_indices_.size(); ++i) {
    const std::int32_t ci = learnt_indices_[i];
    if (i < target || clauses_[ci].lbd <= config_.glue_lbd) {
      kept.push_back(ci);
      continue;
    }
    bool is_locked = false;
    for (const Lit l : clauses_[ci].lits) {
      if (reason_[lit_var(l)] == ci) {
        is_locked = true;
        break;
      }
    }
    if (is_locked) {
      kept.push_back(ci);
    } else {
      drop[ci] = true;
      clauses_[ci].lits.clear();
      ++st.learnts_dropped;
    }
  }
  learnt_indices_ = std::move(kept);
  for (auto& ws : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : ws) {
      if (!drop[w.clause]) {
        ws[keep++] = w;
      }
    }
    ws.resize(keep);
  }
}

std::int64_t Solver::luby(std::int64_t x) {
  // MiniSat's finite-subsequence formulation of the Luby sequence.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1ll << seq;
}

Status Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t conflict_limit) {
  // Per-call SAT stats, finalized into `last_stats_` and flushed to the
  // observability registry on every exit path (the synthesis flow issues
  // thousands of short calls, so counting locally and flushing once
  // keeps the solver loop clean).
  last_stats_ = SolveStats{};
  SolveStats& st = last_stats_;
  struct StatsFlush {
    SolveStats& out;
    std::int64_t& conflicts_total;
    std::int64_t conflicts_before;
    ~StatsFlush() {
      out.conflicts = conflicts_total - conflicts_before;
      namespace obs = util::obs;
      if (!obs::enabled()) {
        return;
      }
      // Registry lookups take a shared_mutex; cache the references once
      // so the thousands of short solve calls (often from parallel
      // synthesis workers) don't contend on the registry.
      static obs::Counter& calls = obs::counter("sat.solve_calls");
      static obs::Counter& conflicts = obs::counter("sat.conflicts");
      static obs::Counter& decision_count = obs::counter("sat.decisions");
      static obs::Counter& restart_count = obs::counter("sat.restarts");
      static obs::Counter& results_sat = obs::counter("sat.results_sat");
      static obs::Counter& results_unsat = obs::counter("sat.results_unsat");
      static obs::Counter& results_unknown =
          obs::counter("sat.results_unknown");
      static obs::Counter& reduce_dbs = obs::counter("sat.reduce_dbs");
      static obs::Counter& learnts_dropped =
          obs::counter("sat.learnts_dropped");
      calls.add();
      conflicts.add(static_cast<std::uint64_t>(out.conflicts));
      decision_count.add(out.decisions);
      restart_count.add(out.restarts);
      reduce_dbs.add(out.reduce_dbs);
      learnts_dropped.add(out.learnts_dropped);
      (out.status == Status::kSat     ? results_sat
       : out.status == Status::kUnsat ? results_unsat
                                      : results_unknown)
          .add();
    }
  } stats{st, conflicts_total_, conflicts_total_};
  (void)stats;

  if (util::faultinject::should_fail("sat.solve")) {
    return Status::kUnknown;
  }
  if (budget_ != nullptr && budget_->exhausted()) {
    st.budget_exhausted = true;
    return Status::kUnknown;
  }

  if (!ok_) {
    st.status = Status::kUnsat;
    return Status::kUnsat;
  }
  backtrack(0);
  if (propagate() >= 0) {
    ok_ = false;
    st.status = Status::kUnsat;
    return Status::kUnsat;
  }

  std::int64_t conflicts_this_call = 0;
  std::int64_t restart_count = 0;
  std::int64_t restart_budget = config_.restart_base * luby(restart_count);
  std::int64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++conflicts_total_;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        st.status = Status::kUnsat;
        return Status::kUnsat;
      }
      int back_level = 0;
      analyze(conflict, learnt, back_level);
      // Never undo assumption-level decisions beyond their level; the
      // conflict clause will re-propagate correctly anyway.
      backtrack(back_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        const auto ci = static_cast<std::int32_t>(clauses_.size());
        clauses_.push_back({learnt, true, 0.0, compute_lbd(learnt)});
        learnt_indices_.push_back(ci);
        attach(ci);
        bump_clause(clauses_[ci]);
        enqueue(learnt[0], ci);
      }
      decay_var_activity();
      cla_inc_ /= 0.999;
      if (budget_ != nullptr) {
        budget_->charge_sat_conflicts(1);
        // The SAT ceiling is checked on every conflict (it is what this
        // loop spends); the full exhaustion check — which may consult a
        // clock — only every 256 conflicts.
        if (budget_->sat_exhausted() ||
            ((conflicts_this_call & 0xFF) == 0 && budget_->exhausted())) {
          backtrack(0);
          st.budget_exhausted = true;
          return Status::kUnknown;
        }
      }
      if (conflict_limit >= 0 && conflicts_this_call >= conflict_limit) {
        backtrack(0);
        st.hit_conflict_limit = true;
        return Status::kUnknown;
      }
      if (conflicts_since_restart >= restart_budget) {
        conflicts_since_restart = 0;
        ++st.restarts;
        restart_budget = config_.restart_base * luby(++restart_count);
        backtrack(0);
        reduce_learnts(st);
      }
      continue;
    }

    // Assumption decisions first.
    if (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      if (value(a) == kTrue) {
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        continue;
      }
      if (value(a) == kFalse) {
        backtrack(0);
        st.status = Status::kUnsat;
        return Status::kUnsat;  // conflicting assumptions
      }
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(a, -1);
      continue;
    }

    const Lit decision = pick_branch();
    if (decision < 0) {
      // Full model.
      model_ = assigns_;
      backtrack(0);
      st.status = Status::kSat;
      return Status::kSat;
    }
    ++st.decisions;
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
    enqueue(decision, -1);
  }
}

}  // namespace cryo::sat
