// Micro-benchmarks (google-benchmark) of the synthesis kernels: AIG
// construction/strashing, bit-parallel simulation, cut enumeration, SAT
// solving, the optimization passes, the compact-model evaluation that
// dominates characterization, and the thread-count scaling of the
// parallel characterization/synthesis drivers (Arg = worker count).

#include <benchmark/benchmark.h>

#include <vector>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "device/finfet.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/cuts.hpp"
#include "logic/simulate.hpp"
#include "map/mapper.hpp"
#include "opt/passes.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

void BM_FinFetEvaluate(benchmark::State& state) {
  const cryo::device::FinFetModel model{cryo::device::nominal_nfet_5nm(),
                                        10.0};
  double vgs = 0.31;
  for (auto _ : state) {
    vgs = vgs > 0.7 ? 0.1 : vgs + 1e-4;
    benchmark::DoNotOptimize(model.evaluate(vgs, 0.7, 2));
  }
}
BENCHMARK(BM_FinFetEvaluate);

void BM_AigStrash(benchmark::State& state) {
  for (auto _ : state) {
    auto aig = cryo::epfl::make_multiplier(12);
    benchmark::DoNotOptimize(aig.num_ands());
  }
}
BENCHMARK(BM_AigStrash);

void BM_Simulation64Words(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  cryo::logic::Simulation sim{aig, 64};
  cryo::util::Rng rng{1};
  sim.randomize_pis(rng);
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.node_bits(aig.num_nodes() - 1));
  }
}
BENCHMARK(BM_Simulation64Words);

void BM_CutEnumerationK6(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  for (auto _ : state) {
    cryo::logic::CutEnumerator cuts{aig, 6, 8};
    cuts.run();
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
}
BENCHMARK(BM_CutEnumerationK6);

void BM_RewritePass(benchmark::State& state) {
  const auto aig = cryo::epfl::make_adder(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::opt::rewrite(aig).num_ands());
  }
}
BENCHMARK(BM_RewritePass);

void BM_SatCecAdder(benchmark::State& state) {
  const auto a = cryo::epfl::make_adder(12);
  const auto b = cryo::opt::compress2rs(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::sat::check_equivalence(a, b).equivalent());
  }
}
BENCHMARK(BM_SatCecAdder);

// --- thread-count scaling of the parallel drivers (Arg = workers) ---

void BM_ParallelForOverhead(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<double> out(4096);
  for (auto _ : state) {
    cryo::util::parallel_for(
        out.size(), [&](std::size_t i) { out[i] = 1.5 * double(i); },
        threads);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->UseRealTime();

// SPICE characterization of the mini catalog on a reduced grid: the
// workload behind the `>= 2x at 4 threads` acceptance criterion.
void BM_CharacterizeCells(benchmark::State& state) {
  cryo::cells::CharOptions options;
  options.slews = {4e-12, 16e-12, 64e-12};
  options.loads = {2e-16, 8e-16, 3.2e-15};
  options.include_sequential = false;
  options.threads = static_cast<int>(state.range(0));
  const auto catalog = cryo::cells::mini_catalog();
  for (auto _ : state) {
    const auto lib = cryo::cells::characterize(catalog, 10.0, options);
    benchmark::DoNotOptimize(lib.cells.size());
  }
}
BENCHMARK(BM_CharacterizeCells)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Per-benchmark synthesis+STA fleet over a small suite.
void BM_SynthesisFleet(benchmark::State& state) {
  static const auto lib = [] {
    cryo::cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 64e-12};
    options.loads = {2e-16, 8e-16, 3.2e-15};
    return cryo::cells::characterize(cryo::cells::mini_catalog(), 10.0,
                                     options);
  }();
  static const cryo::map::CellMatcher matcher{lib};
  static const auto suite = [] {
    auto full = cryo::epfl::epfl_suite();
    full.resize(4);
    return full;
  }();
  cryo::core::ExperimentOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto rows =
        cryo::core::run_synthesis_comparison(suite, matcher, options);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_SynthesisFleet)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
