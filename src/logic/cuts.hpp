#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "logic/aig.hpp"
#include "logic/tt.hpp"

namespace cryo::logic {

/// A k-feasible cut of an AIG node: a set of leaf nodes such that every
/// path from a PI to the node passes through a leaf. The cut's local
/// function over its (sorted, positive-polarity) leaves is kept as a
/// packed truth table.
struct Cut {
  static constexpr unsigned kMaxLeaves = 6;
  std::array<NodeIdx, kMaxLeaves> leaves{};
  std::uint8_t size = 0;
  std::uint64_t tt = 0;          ///< function over the leaves
  std::uint64_t signature = 0;   ///< leaf-membership bloom filter

  bool contains_all_of(const Cut& other) const;
};

/// How CutEnumerator orders merged candidates before the bound applies.
enum class CutOrder {
  /// Legacy order: smallest cuts first, first-come within a size. Used
  /// by the AIG optimization passes (rewrite, LUT covering), which want
  /// maximum structural diversity among the survivors.
  kSizeFirst,
  /// Priority cuts: rank by area flow (leaf flows shared across
  /// fanout), then depth, then size; dominated cuts are pruned in both
  /// directions. Used by the standard-cell mapper, whose own cost
  /// function the flow rank approximates.
  kAreaFlow,
};

/// Per-node bounded cut sets ("priority cuts", Mishchenko et al.).
///
/// At most `max_cuts` non-dominated cuts survive per node, plus the
/// trivial cut (and, under kAreaFlow, the structural fanin-pair cut).
/// Work totals are flushed to the `cuts.merged_candidates` /
/// `cuts.kept_cuts` counters per run.
class CutEnumerator {
public:
  /// k = max leaves per cut (<= 6), max_cuts = cuts stored per node
  /// (the trivial cut {v} is stored in addition).
  CutEnumerator(const Aig& aig, unsigned k, unsigned max_cuts,
                CutOrder order = CutOrder::kSizeFirst);

  /// Enumerate cuts for all AND nodes (PIs get their trivial cut only).
  void run();

  const std::vector<Cut>& cuts(NodeIdx v) const { return cuts_[v]; }
  unsigned k() const { return k_; }

private:
  void merge_node(NodeIdx v);
  void merge_ranked(NodeIdx v, std::vector<Cut>& candidates);
  static bool merge_leaves(const Cut& a, const Cut& b, unsigned k, Cut& out);
  std::uint64_t cut_function(const Cut& merged, const Cut& sub,
                             std::uint64_t sub_tt) const;

  const Aig& aig_;
  unsigned k_;
  unsigned max_cuts_;
  CutOrder order_;
  std::vector<std::vector<Cut>> cuts_;
  /// Priority-rank state: per-node area flow / depth of the best cut,
  /// and fanout reference counts for flow sharing.
  std::vector<double> flow_;
  std::vector<unsigned> depth_;
  std::vector<double> refs_;
  /// Batched counter tallies (flushed once per run()).
  std::uint64_t merged_tally_ = 0;
  std::uint64_t kept_tally_ = 0;
};

/// Expand a truth table over `sub_leaves` (subset, sorted) to one over
/// `super_leaves` (sorted superset).
std::uint64_t tt6_expand(std::uint64_t tt, const NodeIdx* sub_leaves,
                         unsigned sub_size, const NodeIdx* super_leaves,
                         unsigned super_size);

}  // namespace cryo::logic
