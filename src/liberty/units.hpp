#pragma once

namespace cryo::liberty {

/// Unit conventions of the generated liberty files. The in-memory library
/// is always SI; these factors apply only at (de)serialization.
inline constexpr double kTimeUnit = 1e-12;     ///< 1 ps
inline constexpr double kCapUnit = 1e-15;      ///< 1 fF
inline constexpr double kEnergyUnit = 1e-15;   ///< 1 fJ (internal power)
inline constexpr double kLeakageUnit = 1e-12;  ///< 1 pW

}  // namespace cryo::liberty
