file(REMOVE_RECURSE
  "CMakeFiles/fig2a_delay_distribution.dir/fig2a_delay_distribution.cpp.o"
  "CMakeFiles/fig2a_delay_distribution.dir/fig2a_delay_distribution.cpp.o.d"
  "fig2a_delay_distribution"
  "fig2a_delay_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_delay_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
