// Reproduction of paper Fig. 1(b, c): measured transfer characteristics
// of n-/p-FinFETs from 300 K down to 10 K (dots) against the calibrated
// cryogenic-aware compact model (lines), at V_DS = 50 mV and 750 mV.
//
// The physical 5 nm device is replaced by a hidden reference parameter
// set sampled with instrument noise (see DESIGN.md §1); the calibration
// code path is the same parameter extraction the paper performs against
// lab data. The figure-of-merit table shows the cryogenic trends the
// model must capture: Vth up, subthreshold slope floored by band tails,
// I_ON roughly constant, I_OFF collapsed.

#include <cstdio>

#include "bench_common.hpp"
#include "device/calibration.hpp"
#include "device/measurement.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cryo;

int main() {
  std::printf("=== Fig. 1(b,c): cryogenic FinFET model validation ===\n\n");

  for (const auto polarity : {device::Polarity::kN, device::Polarity::kP}) {
    const bool is_n = polarity == device::Polarity::kN;
    std::printf("--- %s-FinFET ---\n", is_n ? "n" : "p");

    const device::ReferenceDevice dut{polarity};
    device::MeasurementPlan plan;
    const auto measurements = dut.measure(plan);

    const auto start = is_n ? device::nominal_nfet_5nm()
                            : device::nominal_pfet_5nm();
    util::ScopedTimer calib_timer{"fig1 calibrate", /*log=*/false};
    const auto calib = device::calibrate(measurements, start);
    std::fprintf(stderr, "[time] fig1 calibrate %s: %.3f s\n",
                 is_n ? "nfet" : "pfet", calib_timer.elapsed_s());
    std::printf(
        "calibration: %d objective evaluations, RMS log10(I) error %.4f "
        "(max %.4f)\n\n",
        calib.evaluations, calib.rms_log_error, calib.max_log_error);

    // Per-curve agreement (the "lines vs dots" of the figure).
    util::Table agreement{{"T [K]", "Vds [V]", "RMS log10 err",
                           "mean rel err"}};
    for (const auto& err : device::curve_errors(calib.params, measurements)) {
      agreement.add_row({util::Table::num(err.temperature_k, 0),
                         util::Table::num(err.vds, 2),
                         util::Table::num(err.rms_log_error, 4),
                         util::Table::pct(err.mean_rel_error, 2)});
    }
    std::printf("%s\n", agreement.render().c_str());

    // Figure-of-merit trends over temperature.
    util::Table fom{{"T [K]", "Vth [V]", "SS [mV/dec]", "Ion [uA/fin]",
                     "Ioff [A/fin]"}};
    for (const double temp : plan.temperatures_k) {
      const device::FinFetModel model{calib.params, temp};
      fom.add_row({util::Table::num(temp, 0),
                   util::Table::num(model.vth(), 3),
                   util::Table::num(model.subthreshold_slope() * 1e3, 1),
                   util::Table::num(model.ion(0.7) * 1e6, 1),
                   util::Table::si(model.ioff(0.7), "A", 2)});
    }
    std::printf("%s\n", fom.render().c_str());

    // Full I-V data dump for re-plotting the figure.
    util::Table curves{{"T", "vds", "vgs", "ids_measured", "ids_model"}};
    for (const auto& pt : measurements.points) {
      const device::FinFetModel model{calib.params, pt.temperature_k};
      curves.add_row({util::Table::num(pt.temperature_k, 0),
                      util::Table::num(pt.vds, 2),
                      util::Table::num(pt.vgs, 3),
                      util::Table::si(pt.ids, "A", 4),
                      util::Table::si(
                          model.ids(pt.vgs, pt.vds, measurements.nfins), "A",
                          4)});
    }
    const std::string csv = bench::csv_path(
        std::string{"fig1_"} + (is_n ? "nfet" : "pfet") + ".csv");
    curves.write_csv(csv);
    std::printf("full I-V data written to %s\n\n", csv.c_str());
  }
  bench::write_bench_report("fig1_model_validation");
  return 0;
}
