#include "logic/aiger.hpp"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace cryo::logic {
namespace {

/// AIGER literal of an internal Lit: identical encoding (2*var + compl),
/// with AIGER variable indices assigned 1..I for PIs then ANDs — exactly
/// our node indexing, so the mapping is the identity.
std::string header(const Aig& aig, bool binary) {
  std::ostringstream out;
  out << (binary ? "aig" : "aag") << ' '
      << aig.num_pis() + aig.num_ands() << ' ' << aig.num_pis() << " 0 "
      << aig.num_pos() << ' ' << aig.num_ands() << '\n';
  return out.str();
}

std::string symbols_and_comment(const Aig& aig) {
  std::ostringstream out;
  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    out << 'i' << i << ' ' << aig.pi_name(i) << '\n';
  }
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    out << 'o' << i << ' ' << aig.po_name(i) << '\n';
  }
  out << "c\ncryoeda";
  if (!aig.name().empty()) {
    out << ' ' << aig.name();
  }
  out << '\n';
  return out.str();
}

void push_delta(std::string& out, std::uint32_t delta) {
  while (delta >= 0x80) {
    out += static_cast<char>(0x80 | (delta & 0x7f));
    delta >>= 7;
  }
  out += static_cast<char>(delta);
}

}  // namespace

std::string write_aiger_ascii(const Aig& aig) {
  std::string out = header(aig, false);
  std::ostringstream body;
  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    body << aig.pi(i) << '\n';
  }
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    body << aig.po(i) << '\n';
  }
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) {
      body << make_lit(v) << ' ' << aig.fanin0(v) << ' ' << aig.fanin1(v)
           << '\n';
    }
  }
  return out + body.str() + symbols_and_comment(aig);
}

std::string write_aiger_binary(const Aig& aig) {
  std::string out = header(aig, true);
  std::ostringstream body;
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    body << aig.po(i) << '\n';
  }
  out += body.str();
  // Binary AND section: per node (ascending), two deltas
  // lhs - rhs0 and rhs0 - rhs1 with rhs0 >= rhs1.
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    const Lit lhs = make_lit(v);
    Lit rhs0 = aig.fanin0(v);
    Lit rhs1 = aig.fanin1(v);
    if (rhs0 < rhs1) {
      std::swap(rhs0, rhs1);
    }
    push_delta(out, lhs - rhs0);
    push_delta(out, rhs0 - rhs1);
  }
  return out + symbols_and_comment(aig);
}

Aig read_aiger(const std::string& contents) {
  std::istringstream in{contents};
  std::string magic;
  std::uint32_t m = 0;
  std::uint32_t i = 0;
  std::uint32_t l = 0;
  std::uint32_t o = 0;
  std::uint32_t a = 0;
  in >> magic >> m >> i >> l >> o >> a;
  if ((magic != "aag" && magic != "aig") || !in) {
    throw Error{ErrorKind::kIo, "read_aiger: bad header"};
  }
  if (l != 0) {
    throw Error{ErrorKind::kIo, "read_aiger: latches are not supported"};
  }
  if (m != i + a) {
    throw Error{ErrorKind::kIo, "read_aiger: non-contiguous variable indexing"};
  }
  if (m > 100'000'000u || o > 100'000'000u) {
    throw Error{ErrorKind::kIo, "read_aiger: implausible header sizes"};
  }
  const bool binary = magic == "aig";

  Aig aig;
  std::vector<Lit> lit_of(m + 1, kConst0);  // aiger var -> our literal
  for (std::uint32_t k = 1; k <= i; ++k) {
    lit_of[k] = aig.add_pi();
  }

  std::vector<Lit> po_lits(o);
  auto translate = [&](std::uint32_t aiger_lit) {
    const std::uint32_t var = aiger_lit >> 1;
    if (var > m) {
      throw Error{ErrorKind::kIo, "read_aiger: literal out of range"};
    }
    return lit_notif(lit_of[var], (aiger_lit & 1u) != 0);
  };

  if (!binary) {
    for (std::uint32_t k = 0; k < i; ++k) {
      std::uint32_t lit = 0;
      if (!(in >> lit) || lit != 2 * (k + 1)) {
        throw Error{ErrorKind::kIo, "read_aiger: unexpected input literal"};
      }
    }
    std::vector<std::uint32_t> raw_pos(o);
    for (auto& po : raw_pos) {
      in >> po;
    }
    std::vector<std::array<std::uint32_t, 3>> ands(a);
    for (auto& row : ands) {
      in >> row[0] >> row[1] >> row[2];
    }
    if (!in) {
      throw Error{ErrorKind::kIo, "read_aiger: truncated body"};
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    for (const auto& row : ands) {
      const std::uint32_t var = row[0] >> 1;
      lit_of[var] = aig.land(translate(row[1]), translate(row[2]));
    }
    for (std::uint32_t k = 0; k < o; ++k) {
      po_lits[k] = translate(raw_pos[k]);
    }
  } else {
    std::vector<std::uint32_t> raw_pos(o);
    for (auto& po : raw_pos) {
      in >> po;
    }
    in.get();  // the newline before the binary section
    auto read_delta = [&]() {
      std::uint32_t delta = 0;
      unsigned shift = 0;
      for (;;) {
        const int ch = in.get();
        if (ch == EOF) {
          throw Error{ErrorKind::kIo, "read_aiger: truncated binary section"};
        }
        delta |= static_cast<std::uint32_t>(ch & 0x7f) << shift;
        if ((ch & 0x80) == 0) {
          break;
        }
        shift += 7;
      }
      return delta;
    };
    for (std::uint32_t k = 0; k < a; ++k) {
      const std::uint32_t lhs = 2 * (i + 1 + k);
      const std::uint32_t rhs0 = lhs - read_delta();
      const std::uint32_t rhs1 = rhs0 - read_delta();
      lit_of[lhs >> 1] = aig.land(translate(rhs0), translate(rhs1));
    }
    for (std::uint32_t k = 0; k < o; ++k) {
      po_lits[k] = translate(raw_pos[k]);
    }
  }

  // Optional symbol table. (The ASCII branch already consumed its final
  // newline; the binary AND section ends exactly at the last delta byte.)
  std::vector<std::string> po_names(o);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == 'c') {
      break;
    }
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      continue;
    }
    const std::string name = line.substr(space + 1);
    const char kind = line[0];
    // Strict symbol validation: a raw std::stoul here used to escape as
    // std::invalid_argument / std::out_of_range on corrupt tables (e.g.
    // "oxyz name" or an astronomically large index) — an uncaught crash
    // with no pointer at the offending line instead of an I/O diagnostic.
    if (kind != 'i' && kind != 'l' && kind != 'o') {
      throw Error{ErrorKind::kIo,
                  "read_aiger: bad symbol-table entry '" + line +
                      "' (expected i<N>/l<N>/o<N> followed by a name)"};
    }
    const std::string digits = line.substr(1, space - 1);
    const bool all_digits =
        !digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos;
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed =
        all_digits ? std::strtoull(digits.c_str(), &end, 10) : 0;
    if (!all_digits || errno == ERANGE ||
        parsed > std::numeric_limits<std::uint32_t>::max()) {
      throw Error{ErrorKind::kIo,
                  "read_aiger: bad symbol index in entry '" + line +
                      "' (expected a decimal index after '" +
                      std::string(1, kind) + "')"};
    }
    const auto index = static_cast<std::uint32_t>(parsed);
    if ((kind == 'i' && index >= i) || (kind == 'o' && index >= o)) {
      throw Error{ErrorKind::kIo,
                  "read_aiger: symbol index out of range in entry '" + line +
                      "' (the header declares " + std::to_string(i) +
                      " inputs and " + std::to_string(o) + " outputs)"};
    }
    if (kind == 'o') {
      po_names[index] = name;
    }
    // PI names would require rebuilding; accepted and ignored (PIs were
    // created before the symbol table is seen).
  }
  for (std::uint32_t k = 0; k < o; ++k) {
    aig.add_po(po_lits[k], po_names[k]);
  }
  return aig;
}

void write_aiger_file(const Aig& aig, const std::string& path, bool binary) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw Error{ErrorKind::kIo, "write_aiger_file: cannot open " + path};
  }
  out << (binary ? write_aiger_binary(aig) : write_aiger_ascii(aig));
  out.flush();
  if (!out) {
    throw Error{ErrorKind::kIo, "write_aiger_file: write failed for " + path};
  }
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw Error{ErrorKind::kIo, "read_aiger_file: cannot open " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_aiger(buf.str());
}

}  // namespace cryo::logic
