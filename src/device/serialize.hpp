#pragma once

#include "device/calibration.hpp"
#include "device/measurement.hpp"
#include "util/json.hpp"

namespace cryo::device {

/// Exact JSON round-trip of the compact-model parameter set (cache value
/// of the calibration stage; also part of its key as the initial guess).
util::Json to_json(const FinFetParams& params);
FinFetParams finfet_params_from_json(const util::Json& json);

/// Canonical JSON of a measurement set — the data component of the
/// calibration cache key. Points are serialized in order with full
/// double precision, so any change to the campaign (plan, noise seed,
/// reference device) changes the key.
util::Json to_json(const MeasurementSet& measurements);

/// Cache value of `device::calibrate`.
util::Json to_json(const CalibrationResult& result);
CalibrationResult calibration_result_from_json(const util::Json& json);

}  // namespace cryo::device
