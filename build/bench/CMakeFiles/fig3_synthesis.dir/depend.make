# Empty dependencies file for fig3_synthesis.
# This may be replaced when dependencies are built.
