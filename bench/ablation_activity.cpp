// Ablation (DESIGN.md §5): the assumed primary-input activation rate.
//
// The power-aware flow simulates switching activity "assuming a certain
// activation rate for each primary input" (paper §IV-B). This sweep
// quantifies how sensitive the cryogenic-aware savings are to that
// assumption — both the rate used inside the cost functions and the rate
// used at signoff.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cryo;

int main() {
  std::printf("=== Ablation: primary-input activation rate ===\n\n");
  const auto lib = bench::corner_library(10.0);
  const map::CellMatcher matcher{lib};

  std::vector<epfl::Benchmark> subset;
  subset.push_back({"adder", true, epfl::make_adder()});
  subset.push_back({"max", true, epfl::make_max()});
  subset.push_back({"dec", false, epfl::make_dec()});
  subset.push_back({"router", false, epfl::make_router()});

  const std::vector<double> rates{0.05, 0.1, 0.2, 0.35, 0.5};

  // Independent (rate, circuit) experiments: fan out across the pool,
  // then assemble the table rows in rate-major order.
  util::ScopedTimer timer{"ablation_activity grid"};
  const auto rows = util::parallel_map(
      rates.size() * subset.size(), [&](std::size_t k) {
        core::ExperimentOptions options;
        options.flow.input_activity = rates[k / subset.size()];
        options.sta.input_activity = rates[k / subset.size()];
        return core::compare_circuit(subset[k % subset.size()], matcher,
                                     options);
      });

  util::Table table{
      {"activity", "circuit", "base P [uW]", "power saving", "delay overhead"}};
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    table.add_row({util::Table::num(rates[k / subset.size()], 2),
                   subset[k % subset.size()].name,
                   util::Table::num(row.baseline.total_power * 1e6, 2),
                   util::Table::pct(row.power_saving_pad()),
                   util::Table::pct(row.delay_overhead_pad())});
  }
  table.write_csv(bench::csv_path("ablation_activity.csv"));
  std::printf("%s\n", table.render().c_str());
  bench::write_bench_report("ablation_activity");
  return 0;
}
