#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "liberty/json_io.hpp"
#include "util/artifact_cache.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/hash.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace cryo::core {

namespace obs = util::obs;

double CircuitComparison::power_saving_pad() const {
  if (!pad.ok || !baseline.ok || !(baseline.total_power > 0.0)) {
    return 0.0;
  }
  return 1.0 - pad.total_power / baseline.total_power;
}
double CircuitComparison::power_saving_pda() const {
  if (!pda.ok || !baseline.ok || !(baseline.total_power > 0.0)) {
    return 0.0;
  }
  return 1.0 - pda.total_power / baseline.total_power;
}
double CircuitComparison::delay_overhead_pad() const {
  if (!pad.ok || !baseline.ok || !(baseline.delay > 0.0)) {
    return 0.0;
  }
  return pad.delay / baseline.delay - 1.0;
}
double CircuitComparison::delay_overhead_pda() const {
  if (!pda.ok || !baseline.ok || !(baseline.delay > 0.0)) {
    return 0.0;
  }
  return pda.delay / baseline.delay - 1.0;
}

std::vector<ScenarioSpec> fig3_scenarios(const FlowOptions& flow) {
  std::vector<ScenarioSpec> specs;
  for (const auto priority :
       {opt::CostPriority::kBaselinePowerAware,
        opt::CostPriority::kPowerAreaDelay,
        opt::CostPriority::kPowerDelayArea}) {
    FlowOptions f = flow;
    f.priority = priority;
    specs.push_back(
        {opt::short_name(priority), priority, canonical_recipe(f)});
  }
  return specs;
}

void validate(const ExperimentOptions& options) {
  validate(options.flow);
  if (options.threads < 0) {
    throw std::invalid_argument{
        "ExperimentOptions.threads = " + std::to_string(options.threads) +
        " is unusable: use 0 for the CRYOEDA_THREADS default, 1 for "
        "serial, or a positive worker count"};
  }
  if (!(options.sta.clock_period > 0.0)) {
    throw std::invalid_argument{
        "ExperimentOptions.sta.clock_period must be a positive time in "
        "seconds"};
  }
  if (!(options.sta.input_slew > 0.0)) {
    throw std::invalid_argument{
        "ExperimentOptions.sta.input_slew must be a positive time in "
        "seconds"};
  }
}

namespace {

/// Artifact-cache stage of one synthesis + STA scenario (one benchmark,
/// one recipe). The key covers the circuit structure, the characterized
/// library (via fingerprint), the matcher bounds, the *canonical printed
/// recipe*, and the shared flow/STA knobs that steer the result; the
/// value is the scalar signoff figures — small enough to persist per
/// (circuit, recipe, corner) forever.
constexpr std::string_view kScenarioStage = "core.scenario";

util::Json scenario_cache_inputs(const logic::Aig& aig,
                                 const map::CellMatcher& matcher,
                                 const ExperimentOptions& options,
                                 const std::string& canonical) {
  util::Json inputs = util::Json::object();
  inputs["aig_fingerprint"] = util::Json{util::hex64(logic::fingerprint(aig))};
  inputs["library_fingerprint"] =
      util::Json{util::hex64(liberty::fingerprint(matcher.library()))};
  inputs["matcher_max_inputs"] = util::Json{matcher.max_inputs()};
  inputs["matcher_max_matches"] = util::Json{matcher.max_matches_per_key()};
  // The recipe replaces the old ad-hoc option tuple (priority,
  // use_choices, use_mfs, lut_k): those knobs are spelled out by the
  // canonical pipeline print, so two option sets compiling to the same
  // recipe share an entry.
  inputs["recipe"] = util::Json{canonical};

  const FlowOptions& flow = options.flow;
  util::Json f = util::Json::object();
  f["epsilon"] = util::Json{flow.epsilon};
  f["input_activity"] = util::Json{flow.input_activity};
  f["clock_estimate"] = util::Json{flow.clock_estimate};
  f["seed"] = util::Json{flow.seed};
  inputs["flow"] = std::move(f);

  const sta::StaOptions& sta = options.sta;
  util::Json s = util::Json::object();
  s["input_slew"] = util::Json{sta.input_slew};
  s["output_load"] = util::Json{sta.output_load};
  s["clock_period"] = util::Json{sta.clock_period};
  s["input_activity"] = util::Json{sta.input_activity};
  s["wire_cap_base"] = util::Json{sta.wire_cap_base};
  s["wire_cap_per_fanout"] = util::Json{sta.wire_cap_per_fanout};
  s["sim_words"] = util::Json{sta.sim_words};
  s["seed"] = util::Json{sta.seed};
  s["clamp_tables"] = util::Json{sta.clamp_tables};
  inputs["sta"] = std::move(s);
  return inputs;
}

util::Json scenario_to_json(const ScenarioResult& result) {
  util::Json json = util::Json::object();
  json["leakage_w"] = util::Json{result.power.leakage};
  json["internal_w"] = util::Json{result.power.internal};
  json["switching_w"] = util::Json{result.power.switching};
  json["delay_s"] = util::Json{result.delay};
  json["area_um2"] = util::Json{result.area};
  json["gates"] = util::Json{result.gates};
  return json;
}

ScenarioResult scenario_from_json(const util::Json& json,
                                  const ScenarioSpec& spec) {
  ScenarioResult result;
  result.scenario = spec.name;
  result.recipe = spec.recipe;
  result.priority = spec.priority;
  result.power.leakage = json.at("leakage_w").as_double();
  result.power.internal = json.at("internal_w").as_double();
  result.power.switching = json.at("switching_w").as_double();
  // Same sum the cold path computes from sta::PowerReport::total().
  result.total_power = result.power.total();
  result.delay = json.at("delay_s").as_double();
  result.area = json.at("area_um2").as_double();
  result.gates = static_cast<std::size_t>(json.at("gates").as_int());
  return result;
}

/// Rescale the dynamic power categories of a scenario from the analysis
/// clock to the normalized clock (dynamic power is proportional to the
/// clock frequency; leakage is clock-independent).
void renormalize(ScenarioResult& s, double analysis_clock,
                 double normalized_clock) {
  const double scale = analysis_clock / normalized_clock;
  s.power.internal *= scale;
  s.power.switching *= scale;
  s.total_power = s.power.total();
}

}  // namespace

ScenarioResult run_scenario(const logic::Aig& aig,
                            const map::CellMatcher& matcher,
                            const ExperimentOptions& options,
                            const ScenarioSpec& spec, util::Budget* budget,
                            const PassRegistry* registry) {
  const obs::ScopedSpan span{std::string{"core.scenario:"} + aig.name() + ":" +
                             spec.name};
  // A cached scenario would otherwise return before reaching any pass
  // boundary, so honor cancellation here too — on *this* scenario's
  // budget, not the global one (service jobs each carry their own).
  util::Budget& active = budget ? *budget : util::Budget::global();
  active.check_cancelled("core.scenario");
  util::faultinject::maybe_fail("core.scenario", ErrorKind::kInternal);
  // Cache under the canonical (parsed-and-printed) recipe, so spelling
  // variants of the same pipeline share an entry.
  const Pipeline pipeline = Pipeline::parse(
      spec.recipe, registry ? *registry : PassRegistry::global());
  const std::string canonical = pipeline.to_string();
  // A recipe that touches any pass outside the builtin registry (a
  // service plugin, flagged `cacheable = false`) must bypass the
  // scenario cache: the entry would be keyed on the pass *name* while
  // the body lives only in one daemon. Builtin passes resolved through a
  // *copy* of the registry share the builtin bodies, so they stay
  // cacheable.
  bool builtin_only = true;
  for (const PassInvocation& invocation : pipeline.sequence()) {
    if (!invocation.pass->cacheable ||
        PassRegistry::global().find(invocation.pass->name) == nullptr) {
      builtin_only = false;
      break;
    }
  }
  if (!builtin_only) {
    obs::counter("cache.plugin_skips").add();
  }
  auto& cache = util::ArtifactCache::global();
  std::string cache_key;
  if (cache.enabled() && builtin_only) {
    cache_key = util::ArtifactCache::key(
        kScenarioStage,
        scenario_cache_inputs(aig, matcher, options, canonical));
    if (auto hit = cache.load(kScenarioStage, cache_key)) {
      try {
        return scenario_from_json(*hit, spec);
      } catch (const std::exception&) {
        obs::counter("cache.corrupt").add();
      }
    }
  }
  obs::counter("core.scenarios_run").add();
  const FlowResult result = synthesize_with_recipe(
      aig, matcher, options.flow, spec.recipe, budget, registry);
  const sta::StaResult signoff = sta::analyze(result.netlist, options.sta);
  ScenarioResult out;
  out.scenario = spec.name;
  out.recipe = spec.recipe;
  out.priority = spec.priority;
  out.power = signoff.power;
  out.total_power = signoff.power.total();
  out.delay = signoff.critical_delay;
  out.area = result.netlist.total_area();
  out.gates = result.netlist.gate_count();
  out.degraded = result.degraded;
  // Never cache a degraded run: the key covers inputs only (not the
  // budget state), so a budget-starved result would later be served to
  // unbudgeted runs as the authoritative figures for this scenario.
  if (cache.enabled() && builtin_only && !result.degraded) {
    cache.store(kScenarioStage, cache_key, scenario_to_json(out));
  } else if (result.degraded) {
    obs::counter("cache.degraded_skips").add();
  }
  return out;
}

CircuitComparison compare_circuit(const epfl::Benchmark& benchmark,
                                  const map::CellMatcher& matcher,
                                  const ExperimentOptions& options) {
  validate(options);
  CircuitComparison cmp;
  cmp.circuit = benchmark.name;
  // The three rows are three recipe strings (no per-scenario branches):
  // independent synthesis runs that, when this is the outermost parallel
  // level (e.g. a single-circuit ablation), run concurrently, otherwise
  // inline on the per-benchmark worker.
  const std::vector<ScenarioSpec> specs = fig3_scenarios(options.flow);
  const auto scenarios = util::parallel_map(
      specs.size(),
      [&](std::size_t i) {
        // Per-scenario fault isolation: a failing scenario records a
        // structured error in its row and lets its siblings complete.
        // Budget cancellation is the one exception — it must stop the
        // whole fleet, so it propagates.
        try {
          return run_scenario(benchmark.aig, matcher, options, specs[i]);
        } catch (const Error& e) {
          if (e.kind() == ErrorKind::kBudget) {
            throw;
          }
          ScenarioResult failed;
          failed.scenario = specs[i].name;
          failed.recipe = specs[i].recipe;
          failed.priority = specs[i].priority;
          failed.ok = false;
          failed.error = e.what();
          failed.error_kind = std::string{error_kind_name(e.kind())};
          obs::counter("fleet.scenario_errors").add();
          return failed;
        } catch (const std::exception& e) {
          ScenarioResult failed;
          failed.scenario = specs[i].name;
          failed.recipe = specs[i].recipe;
          failed.priority = specs[i].priority;
          failed.ok = false;
          failed.error = e.what();
          failed.error_kind = "internal";
          obs::counter("fleet.scenario_errors").add();
          return failed;
        }
      },
      options.threads);
  cmp.baseline = scenarios[0];
  cmp.pad = scenarios[1];
  cmp.pda = scenarios[2];

  // Footnote 1: every variant's power is reported at the clock period of
  // the slowest variant of the same circuit, so faster variants are not
  // penalized with proportionally higher clock power. Failed scenarios
  // (zero figures) are excluded from the normalization and the gauges.
  cmp.clock_period = 0.0;
  for (const ScenarioResult* s : {&cmp.baseline, &cmp.pad, &cmp.pda}) {
    if (s->ok) {
      cmp.clock_period = std::max(cmp.clock_period, s->delay);
    }
  }
  for (ScenarioResult* s : {&cmp.baseline, &cmp.pad, &cmp.pda}) {
    if (s->ok && cmp.clock_period > 0.0) {
      renormalize(*s, options.sta.clock_period, cmp.clock_period);
    }
  }

  // Per-scenario signoff roll-up: these gauges are the quality surface
  // the CI regression gate (scripts/check_regression.py) compares, so
  // they use the *normalized* figures that the paper tables report.
  for (const ScenarioResult* s : {&cmp.baseline, &cmp.pad, &cmp.pda}) {
    if (!s->ok) {
      continue;
    }
    const std::string prefix =
        "experiment." + cmp.circuit + "." + s->scenario + ".";
    obs::gauge(prefix + "power_w").set(s->total_power);
    obs::gauge(prefix + "delay_s", obs::Unit::kSeconds).set(s->delay);
    obs::gauge(prefix + "area_um2").set(s->area);
    obs::gauge(prefix + "gates").set(static_cast<double>(s->gates));
  }
  return cmp;
}

std::vector<CircuitComparison> run_synthesis_comparison(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const ExperimentOptions& options) {
  validate(options);
  const obs::ScopedSpan span{"core.synthesis_comparison"};
  // One synthesis+STA pipeline per benchmark; rows are written by suite
  // index, so the table ordering (and every value in it) matches the
  // serial run for any thread count.
  return util::parallel_map(
      suite.size(),
      [&](std::size_t i) {
        const auto& benchmark = suite[i];
        if (options.verbose) {
          std::fprintf(stderr, "synthesizing %s (%u ANDs)...\n",
                       benchmark.name.c_str(), benchmark.aig.num_ands());
        }
        return compare_circuit(benchmark, matcher, options);
      },
      options.threads);
}

}  // namespace cryo::core
