# Empty dependencies file for test_epfl.
# This may be replaced when dependencies are built.
