#pragma once

#include <vector>

#include "logic/aig.hpp"
#include "logic/tt.hpp"

namespace cryo::logic {

/// Resynthesis of small functions back into AIG structure — the engine
/// behind rewriting, refactoring, and LUT decomposition.

/// Build a (balanced) AND of the given literals.
Lit build_and_balanced(Aig& aig, std::vector<Lit> lits);

/// Build a (balanced) OR of the given literals.
Lit build_or_balanced(Aig& aig, std::vector<Lit> lits);

/// Build an SOP as a two-level network over the leaf literals.
Lit build_sop(Aig& aig, const std::vector<Cube>& cubes,
              const std::vector<Lit>& leaves);

/// Algebraic "quick factoring" of an SOP: repeatedly divides by the most
/// frequent literal, producing a multi-level structure that is usually
/// much smaller than the flat SOP.
Lit build_factored(Aig& aig, std::vector<Cube> cubes,
                   const std::vector<Lit>& leaves);

/// Resynthesize an arbitrary function from its truth table: computes
/// ISOPs of both polarities, factors each, and returns the smaller
/// implementation (ties broken toward the positive phase).
Lit build_from_tt(Aig& aig, const TtVec& tt, const std::vector<Lit>& leaves);

/// Same, for packed (<= 6 input) tables.
Lit build_from_tt6(Aig& aig, std::uint64_t tt, unsigned num_vars,
                   const std::vector<Lit>& leaves);

}  // namespace cryo::logic
