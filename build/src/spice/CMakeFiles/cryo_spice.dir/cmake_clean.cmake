file(REMOVE_RECURSE
  "CMakeFiles/cryo_spice.dir/circuit.cpp.o"
  "CMakeFiles/cryo_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/cryo_spice.dir/linear.cpp.o"
  "CMakeFiles/cryo_spice.dir/linear.cpp.o.d"
  "CMakeFiles/cryo_spice.dir/measure.cpp.o"
  "CMakeFiles/cryo_spice.dir/measure.cpp.o.d"
  "CMakeFiles/cryo_spice.dir/simulator.cpp.o"
  "CMakeFiles/cryo_spice.dir/simulator.cpp.o.d"
  "libcryo_spice.a"
  "libcryo_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
