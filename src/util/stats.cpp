#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cryo::util {

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) {
    return s;
  }
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.median = percentile_sorted(values, 0.5);
  s.p5 = percentile_sorted(values, 0.05);
  s.p95 = percentile_sorted(values, 0.95);
  return s;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument{"geomean requires positive values"};
    }
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument{"Histogram requires hi > lo and bins > 0"};
  }
}

void Histogram::add(double value) {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) {
    add(v);
  }
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%10.4g, %10.4g) %6zu |", bin_low(i),
                  bin_high(i), counts_[i]);
    out << buf << std::string(bar, '#') << '\n';
  }
  return out.str();
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument{"fit_linear requires two equally sized samples"};
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  fit.slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace cryo::util
