#include "device/preset.hpp"

#include <sstream>

#include "device/serialize.hpp"
#include "util/error.hpp"

namespace cryo::device {
namespace {

Preset make_finfet5() {
  Preset p;
  p.name = "finfet5";
  p.description =
      "paper platform: 5 nm-class FinFET calibrated 300 K -> 10 K";
  p.technology = "finfet-5nm";
  p.nfet = nominal_nfet_5nm();
  p.pfet = nominal_pfet_5nm();
  p.temp_min_k = 4.0;
  p.temp_max_k = 400.0;
  p.vdd_min = 0.3;
  p.vdd_max = 1.0;
  p.default_temp_k = 300.0;
  p.default_vdd = 0.7;
  p.corner_temps = {300.0, 10.0};
  return p;
}

Preset make_soi4k() {
  Preset p;
  p.name = "soi4k";
  p.description =
      "deep-cryo SOI platform in the spirit of 4 K SOI CMOS "
      "(arXiv:1001.3353): longer channel, higher Vth, wider band tail";
  p.technology = "soi-40nm";

  FinFetParams n = nominal_nfet_5nm();
  n.name = "nfet_soi4k";
  n.l_eff = 40e-9;
  n.w_fin = 120e-9;
  n.vth300 = 0.300;
  n.ideality = 1.25;
  n.band_tail_v = 8.0e-3;
  n.kvt = 0.65e-3;
  n.mu0 = 0.0120;
  n.theta = 2.4;
  n.cox = 0.030;
  n.cov_per_fin = 7e-17;
  n.cj_per_fin = 4e-17;
  n.i_floor_per_fin = 8.0e-14;  // SOI: junction leakage collapses
  p.nfet = n;

  FinFetParams pf = nominal_pfet_5nm();
  pf.name = "pfet_soi4k";
  pf.l_eff = 40e-9;
  pf.w_fin = 120e-9;
  pf.vth300 = 0.320;
  pf.ideality = 1.30;
  pf.band_tail_v = 8.5e-3;
  pf.kvt = 0.70e-3;
  pf.mu0 = 0.0090;
  pf.theta = 2.1;
  pf.cox = 0.030;
  pf.cov_per_fin = 7.5e-17;
  pf.cj_per_fin = 4e-17;
  pf.i_floor_per_fin = 6.0e-14;
  p.pfet = pf;

  p.temp_min_k = 2.0;
  p.temp_max_k = 350.0;
  p.vdd_min = 0.4;
  p.vdd_max = 1.2;
  p.default_temp_k = 4.0;
  p.default_vdd = 0.8;
  p.corner_temps = {300.0, 4.0};
  return p;
}

Preset make_sky130_77k() {
  Preset p;
  p.name = "sky130_77k";
  p.description =
      "LN2-temperature 130 nm bulk platform in the spirit of 77 K "
      "SkyWater BSIM4 modeling (arXiv:2604.21625)";
  p.technology = "sky130";

  FinFetParams n = nominal_nfet_5nm();
  n.name = "nfet_sky130_77k";
  n.l_eff = 150e-9;
  n.w_fin = 420e-9;
  n.vth300 = 0.420;
  n.ideality = 1.35;
  n.band_tail_v = 7.0e-3;
  n.kvt = 0.70e-3;
  n.mu0 = 0.0400;
  n.theta = 1.2;
  n.cox = 0.0086;
  n.cov_per_fin = 2.0e-16;
  n.cj_per_fin = 1.5e-16;
  n.i_floor_per_fin = 1.0e-12;
  p.nfet = n;

  FinFetParams pf = nominal_pfet_5nm();
  pf.name = "pfet_sky130_77k";
  pf.l_eff = 150e-9;
  pf.w_fin = 420e-9;
  pf.vth300 = 0.450;
  pf.ideality = 1.40;
  pf.band_tail_v = 7.5e-3;
  pf.kvt = 0.75e-3;
  pf.mu0 = 0.0160;
  pf.theta = 1.0;
  pf.cox = 0.0086;
  pf.cov_per_fin = 2.2e-16;
  pf.cj_per_fin = 1.5e-16;
  pf.i_floor_per_fin = 8.0e-13;
  p.pfet = pf;

  p.temp_min_k = 50.0;
  p.temp_max_k = 400.0;
  p.vdd_min = 1.2;
  p.vdd_max = 2.0;
  p.default_temp_k = 77.0;
  p.default_vdd = 1.8;
  p.corner_temps = {300.0, 77.0};
  return p;
}

}  // namespace

const std::vector<Preset>& preset_registry() {
  static const std::vector<Preset> registry = {
      make_finfet5(),
      make_soi4k(),
      make_sky130_77k(),
  };
  return registry;
}

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& preset : preset_registry()) {
    names.push_back(preset.name);
  }
  return names;
}

const Preset* find_preset(const std::string& name) {
  for (const auto& preset : preset_registry()) {
    if (preset.name == name) {
      return &preset;
    }
  }
  return nullptr;
}

const Preset& default_preset() { return preset_registry().front(); }

const Preset& resolve_preset(const std::string& name) {
  if (name.empty()) {
    return default_preset();
  }
  const Preset* preset = find_preset(name);
  if (preset == nullptr) {
    std::string known;
    for (const auto& n : preset_names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw Error{ErrorKind::kRecipe,
                "unknown device preset '" + name + "' (known: " + known + ")"};
  }
  return *preset;
}

void validate_corner(const Preset& preset, double temperature_k, double vdd) {
  auto fmt = [](double value) {
    std::ostringstream out;
    out << value;
    return out.str();
  };
  if (!(temperature_k >= preset.temp_min_k &&
        temperature_k <= preset.temp_max_k)) {
    throw Error{ErrorKind::kRecipe,
                "temperature " + fmt(temperature_k) +
                    " K is outside device preset '" + preset.name +
                    "' valid range [" + fmt(preset.temp_min_k) + ", " +
                    fmt(preset.temp_max_k) +
                    "] K — refusing to extrapolate the compact model"};
  }
  if (!(vdd >= preset.vdd_min && vdd <= preset.vdd_max)) {
    throw Error{ErrorKind::kRecipe,
                "Vdd " + fmt(vdd) + " V is outside device preset '" +
                    preset.name + "' valid range [" + fmt(preset.vdd_min) +
                    ", " + fmt(preset.vdd_max) +
                    "] V — refusing to extrapolate the compact model"};
  }
}

util::Json preset_device_json(const Preset& preset) {
  util::Json json = util::Json::object();
  json["name"] = util::Json{preset.name};
  json["nfet"] = to_json(preset.nfet);
  json["pfet"] = to_json(preset.pfet);
  return json;
}

}  // namespace cryo::device
