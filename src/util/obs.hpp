#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace cryo::util::obs {

/// Flow-wide observability: named counters / gauges / histograms plus
/// scoped span tracing, all registered in a process-wide `Registry` and
/// serialized to a JSON run report (`cryoeda_out/report.json`,
/// `BENCH_*.json`). Design constraints, in order:
///
///  * thread-safe — instruments are lock-free atomics; hot paths (SPICE
///    Newton loops, mapper inner loops) touch only relaxed RMW ops;
///  * near-zero cost when disabled — every instrument first checks one
///    relaxed atomic bool (`CRYOEDA_OBS=0` or `set_enabled(false)`);
///  * deterministic reports — instrument names are sorted at dump time
///    and doubles use shortest-round-trip formatting. Counters, gauges,
///    bucket counts, and histogram min/max from a deterministic
///    workload are exactly thread-count independent; histogram sums are
///    accumulated in arrival order, so they are rounded to nine
///    significant digits at dump time to strip scheduling noise from
///    the low bits (spans and wall-clock metrics carry real timings and
///    are excluded via `ReportOptions` where determinism matters).
///
/// Hot-path usage caches the reference once (registry entries are never
/// invalidated, `reset()` only zeroes values):
///
///   static obs::Counter& runs = obs::counter("spice.transient_runs");
///   runs.add();

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global instrumentation switch (initialized from CRYOEDA_OBS; any
/// value other than "0" — including unset — enables).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// What a metric measures. Wall-clock metrics vary run to run and are
/// excluded from deterministic reports; everything else (event counts,
/// circuit-time figures like delays/slacks) is workload-determined.
/// `kNodes` marks network-size *diagnostics* (per-pass AND/LUT/gate
/// counts): deterministic, but they measure work shape — which
/// legitimately differs between recipes and between cold and warm
/// artifact-cache runs — so the signoff profile excludes them like it
/// excludes counters.
enum class Unit { kCount, kSeconds, kWallSeconds, kBytes, kNodes };

/// Monotonic event counter.
class Counter {
public:
  void add(std::uint64_t n = 1) {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double value (set) with an atomic max variant.
class Gauge {
public:
  void set(double v) {
    if (enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  /// Keep the maximum of all observed values.
  void max(double v);
  double get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram of positive doubles, with exact
/// count and CAS-maintained sum / min / max. Covers 2^-44 (~6e-14, well
/// under a picosecond) through 2^50 (~1e15); out-of-range and
/// non-positive values land in the edge buckets. Bucket upper bounds are
/// exact powers of two, so bucket assignment never depends on rounding.
class Histogram {
public:
  static constexpr int kBuckets = 96;
  static constexpr int kMinExponent = -44;  ///< bucket 1 is v <= 2^-44

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `i` (bucket 0 holds v <= 0).
  static double bucket_le(int i);

  void reset();

private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One finished span: [start_ns, end_ns] on the registry's monotonic
/// clock, with the lexical parent span (same thread) and a small
/// sequential thread id. Spans that cross a `parallel_for` boundary get
/// parent 0 on the worker threads — parentage is per-thread lexical
/// scope, not task lineage.
struct SpanRecord {
  std::string name;
  std::uint32_t id = 0;      ///< 1-based; 0 means "no span"
  std::uint32_t parent = 0;
  std::uint32_t thread = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// RAII span: records start/stop timestamps, nesting, and the thread it
/// ran on. A disabled registry makes construction/destruction a couple
/// of branches.
class ScopedSpan {
public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
  bool active_ = false;
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  std::string name_;
};

/// Look up (or create) an instrument by name. References stay valid for
/// the process lifetime; `reset()` zeroes values without invalidating
/// them. Units are fixed by the first registration.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name, Unit unit = Unit::kCount);
Histogram& histogram(std::string_view name, Unit unit = Unit::kCount);

/// Zero every instrument and drop recorded spans (also restarts the
/// span clock). Call between independent runs sharing a process (tests).
void reset();

/// Report serialization knobs. The default includes everything; the
/// deterministic subset (`include_spans = include_wallclock =
/// include_meta = false`) is byte-identical across thread counts for a
/// deterministic workload.
struct ReportOptions {
  std::string flow;               ///< meta.flow tag (bench/binary name)
  bool include_spans = true;
  bool include_wallclock = true;  ///< Unit::kWallSeconds metrics + wall_s
  bool include_meta = true;
  bool include_counters = true;
  bool include_histograms = true;
  bool include_diagnostics = true;  ///< Unit::kNodes work-shape gauges
  /// `degradation` section: the nonzero robustness counters
  /// (`pass.*.degraded`, `cache.retries`, `cache.quarantined`,
  /// `fleet.scenario_errors`) collected in one place, so a degraded run
  /// is visible at a glance. Omitted entirely when all are zero.
  bool include_degradation = true;

  /// The signoff profile: only the quality gauges (schema + non-wall
  /// gauges). This is what the canonical `report.json` uses — counters
  /// and histograms measure *work done*, which legitimately differs
  /// between a cold run and a warm `util::ArtifactCache` run, while the
  /// signoff gauges describe the *result* and must not. A warm rerun's
  /// signoff report is byte-identical to the cold run's.
  static ReportOptions signoff() {
    ReportOptions options;
    options.include_spans = false;
    options.include_wallclock = false;
    options.include_meta = false;
    options.include_counters = false;
    options.include_histograms = false;
    options.include_diagnostics = false;
    // Degradation counters measure *work shape* (a degraded run differs
    // from a clean one by construction), so they would break the warm ==
    // cold byte-identity contract of the signoff report.
    options.include_degradation = false;
    return options;
  }
};

/// Build the run report: {schema, meta?, counters, gauges, histograms,
/// spans?} with instrument names sorted lexicographically.
Json report_json(const ReportOptions& options = {});

/// Serialize `report_json` (pretty-printed) to `path`; creates parent
/// directories. Throws std::runtime_error when the file cannot be
/// written.
void write_report(const std::string& path, const ReportOptions& options = {});

}  // namespace cryo::util::obs
