# Empty dependencies file for ablation_activity.
# This may be replaced when dependencies are built.
