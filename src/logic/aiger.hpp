#pragma once

#include <iosfwd>
#include <string>

#include "logic/aig.hpp"

namespace cryo::logic {

/// AIGER interchange (Biere's format) for combinational AIGs — lets the
/// flow consume real-world benchmark files (e.g. the original EPFL suite)
/// and export optimized networks to other tools (ABC, mockturtle, ...).
///
/// Supported: the ASCII ("aag") and binary ("aig") variants, MILOA
/// headers with L = 0 (combinational), input/output symbol tables, and
/// comments. Latches are rejected with an error.

/// Serialize to ASCII AIGER ("aag").
std::string write_aiger_ascii(const Aig& aig);

/// Serialize to binary AIGER ("aig").
std::string write_aiger_binary(const Aig& aig);

/// Parse either AIGER variant (auto-detected from the header).
/// Throws cryo::Error{ErrorKind::kIo} on malformed input or latches, so
/// bad benchmark files surface through the exit-code taxonomy (exit 3)
/// instead of as an unclassified failure.
Aig read_aiger(const std::string& contents);

/// File helpers. Open and write failures throw cryo::Error{kIo}.
void write_aiger_file(const Aig& aig, const std::string& path,
                      bool binary = true);
Aig read_aiger_file(const std::string& path);

}  // namespace cryo::logic
