#pragma once

#include <array>
#include <cstdint>

#include "logic/tt.hpp"

namespace cryo::logic {

/// NPN canonicalization of packed (<= 6 variable) truth tables.
///
/// Two functions are NPN-equivalent when one can be obtained from the
/// other by permuting inputs, complementing inputs, and/or complementing
/// the output. `npn_canonicalize` maps every member of an NPN class to
/// the same representative table (the class *signature*) and returns the
/// transform that achieves it, so cut-to-cell matching reduces to one
/// hash lookup of the signature plus a transform composition — instead
/// of expanding the full n!·2^(n+1) orbit of every library cell.
///
/// The procedure is semi-canonical in spirit (cheap cofactor-weight
/// normalization prunes almost the whole orbit) but exact in result:
/// the small residual ambiguity left by weight ties is enumerated and
/// resolved by lexicographic minimum, so the signature is a *complete*
/// NPN invariant — equal signatures iff NPN-equivalent (verified
/// exhaustively over all 2^16 4-input functions in test_npn.cpp).

/// An NPN transform in the `tt6_transform` convention:
/// (T f)(x) = f(u) ^ out_negate, where f's input i reads
/// u_i = x[perm[i]] ^ ((input_phase >> i) & 1).
struct NpnTransform {
  std::array<std::uint8_t, 6> perm{{0, 1, 2, 3, 4, 5}};
  unsigned input_phase = 0;
  bool out_negate = false;

  bool operator==(const NpnTransform& o) const {
    return perm == o.perm && input_phase == o.input_phase &&
           out_negate == o.out_negate;
  }
};

/// Result of canonicalizing one function.
struct NpnCanon {
  std::uint64_t signature = 0;  ///< canonical representative table
  NpnTransform transform;       ///< signature == npn_apply(tt, n, transform)
};

/// Apply a transform (array-based twin of `tt6_transform`; no
/// allocation, hot-path safe).
std::uint64_t npn_apply(std::uint64_t tt, unsigned n, const NpnTransform& t);

/// Compose: npn_apply(f, n, compose(a, b)) == npn_apply(npn_apply(f, n, b),
/// n, a) — apply `b` first, then `a`.
NpnTransform npn_compose(const NpnTransform& a, const NpnTransform& b,
                         unsigned n);

/// Inverse: npn_apply(npn_apply(f, n, t), n, npn_inverse(t, n)) == f.
NpnTransform npn_inverse(const NpnTransform& t, unsigned n);

/// Canonicalize a function over exactly n variables (n <= 6). The
/// signature is invariant over the whole NPN class; the transform maps
/// the input table onto the signature.
NpnCanon npn_canonicalize(std::uint64_t tt, unsigned n);

/// Signature only (convenience for hashing / tests).
inline std::uint64_t npn_signature(std::uint64_t tt, unsigned n) {
  return npn_canonicalize(tt, n).signature;
}

}  // namespace cryo::logic
