// Tests of the concurrency layer (util::ThreadPool / parallel_for) and
// of the edge-case fixes that ride along with it: determinism of the
// parallel characterization and synthesis fleets, NLDM clamped lookups,
// characterization-cache validation, waveform-plateau crossing times,
// and STA option validation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "epfl/benchmarks.hpp"
#include "liberty/library.hpp"
#include "liberty/nldm.hpp"
#include "map/matcher.hpp"
#include "spice/measure.hpp"
#include "sta/sta.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace cryo;

// ------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, InWorkerIsFalseOnCaller) {
  EXPECT_FALSE(util::ThreadPool::in_worker());
}

TEST(ThreadPool, ResolveThreadsPrefersRequestThenEnvThenHardware) {
  EXPECT_EQ(util::resolve_threads(3), 3);
  ::setenv("CRYOEDA_THREADS", "5", 1);
  EXPECT_EQ(util::resolve_threads(0), 5);
  EXPECT_EQ(util::resolve_threads(2), 2);  // explicit request wins
  ::setenv("CRYOEDA_THREADS", "not-a-number", 1);
  EXPECT_GE(util::resolve_threads(0), 1);  // falls back to hardware
  ::unsetenv("CRYOEDA_THREADS");
  EXPECT_GE(util::resolve_threads(0), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  util::parallel_for(
      kN, [&](std::size_t i) { ++hits[i]; }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ParallelFor, ResultsWrittenByIndexMatchSerial) {
  constexpr std::size_t kN = 513;
  auto f = [](std::size_t i) { return static_cast<double>(i * i) + 0.5; };
  std::vector<double> serial(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    serial[i] = f(i);
  }
  const auto parallel = util::parallel_map(kN, f, 7);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> total{0};
  util::parallel_for(
      4,
      [&](std::size_t) {
        // The nested loop must complete inline without deadlocking on
        // the shared pool.
        util::parallel_for(
            8, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      util::parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) {
              throw std::runtime_error{"boom"};
            }
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, HandlesEmptyAndSingleElementRanges) {
  int calls = 0;
  util::parallel_for(
      0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  util::parallel_for(
      1, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ScopedTimer, MeasuresElapsedTime) {
  util::ScopedTimer timer{"test-phase", /*log=*/false};
  EXPECT_GE(timer.elapsed_s(), 0.0);
}

// ------------------------------------------------------ nldm clamping ---

TEST(NldmClamp, ClampReturnsEdgeValuesOffGrid) {
  const liberty::NldmTable t{{0.0, 1.0}, {0.0, 2.0}, {0.0, 20.0, 1.0, 21.0}};
  // Inside the grid both modes agree.
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 1.0, liberty::LookupMode::kClamp),
                   t.lookup(0.5, 1.0));
  // Off-grid, raw lookup extrapolates linearly (and can go negative)...
  EXPECT_NEAR(t.lookup(-1.0, 0.0), -1.0, 1e-12);
  EXPECT_NEAR(t.lookup(2.0, 0.0), 2.0, 1e-12);
  // ...while clamp pins the query to the grid edge.
  EXPECT_DOUBLE_EQ(t.lookup(-1.0, 0.0, liberty::LookupMode::kClamp), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(2.0, 0.0, liberty::LookupMode::kClamp), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 100.0, liberty::LookupMode::kClamp), 20.0);
  EXPECT_DOUBLE_EQ(t.lookup(5.0, 100.0, liberty::LookupMode::kClamp), 21.0);
}

TEST(NldmClamp, ClampNeverProducesValuesOutsideTheTableRange) {
  // A decreasing-then-flat delay table whose linear extrapolation below
  // the first slew would dive negative.
  const liberty::NldmTable t{{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0, 3.0, 4.0}};
  for (const double x1 : {-10.0, 0.0, 1.5, 3.0, 50.0}) {
    for (const double x2 : {-10.0, 0.0, 1.5, 3.0, 50.0}) {
      const double v = t.lookup(x1, x2, liberty::LookupMode::kClamp);
      EXPECT_GE(v, 1.0) << x1 << "," << x2;
      EXPECT_LE(v, 4.0) << x1 << "," << x2;
    }
  }
  // The legacy mode is still available and does extrapolate.
  EXPECT_LT(t.lookup(-10.0, -10.0), 0.0);
}

// ------------------------------------------------ waveform plateaus -----

TEST(CrossingTime, PlateauSittingOnThresholdIsFiniteNotNaN) {
  const std::vector<double> times{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> flat{0.5, 0.5, 0.5, 0.5};
  const auto t = spice::crossing_time(times, flat, 0.5, /*rising=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(std::isfinite(*t));
  EXPECT_DOUBLE_EQ(*t, 0.0);
}

TEST(CrossingTime, WaveformStartingAtThresholdIsDetected) {
  // Starts exactly at the threshold, then rises: the strict-inequality
  // detection alone would miss the crossing entirely.
  const std::vector<double> times{0.0, 1.0, 2.0};
  const std::vector<double> values{0.5, 0.5, 1.0};
  const auto t = spice::crossing_time(times, values, 0.5, /*rising=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.0);
}

TEST(CrossingTime, NormalCrossingsAreUnchanged) {
  const std::vector<double> times{0.0, 1.0, 2.0};
  const std::vector<double> values{0.0, 1.0, 1.0};
  const auto t = spice::crossing_time(times, values, 0.5, /*rising=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.5);
  EXPECT_FALSE(
      spice::crossing_time(times, values, 0.5, /*rising=*/false).has_value());
}

// ------------------------------------------------- sta validation -------

TEST(StaValidation, RejectsNonPositiveClockPeriod) {
  const map::Netlist netlist;
  sta::StaOptions options;
  options.clock_period = 0.0;
  EXPECT_THROW(sta::analyze(netlist, options), std::invalid_argument);
  options.clock_period = -1e-9;
  EXPECT_THROW(sta::analyze(netlist, options), std::invalid_argument);
}

TEST(StaValidation, RejectsBadSlewAndLoad) {
  const map::Netlist netlist;
  sta::StaOptions options;
  options.input_slew = 0.0;
  EXPECT_THROW(sta::analyze(netlist, options), std::invalid_argument);
  options.input_slew = 10e-12;
  options.output_load = -1e-15;
  EXPECT_THROW(sta::analyze(netlist, options), std::invalid_argument);
}

// --------------------------------------- characterization determinism ---

cells::CharOptions fast_char_options() {
  cells::CharOptions options;
  options.slews = {4e-12, 16e-12, 48e-12};
  options.loads = {2e-16, 1e-15, 4e-15};
  options.include_sequential = false;
  return options;
}

TEST(ParallelCharacterize, LibertyOutputIsIdenticalForAnyThreadCount) {
  auto serial_options = fast_char_options();
  serial_options.threads = 1;
  auto parallel_options = fast_char_options();
  parallel_options.threads = 4;
  const auto catalog = cells::mini_catalog();
  const auto serial = cells::characterize(catalog, 10.0, serial_options);
  const auto parallel = cells::characterize(catalog, 10.0, parallel_options);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(liberty::to_liberty(serial), liberty::to_liberty(parallel));
}

TEST(ParallelFlow, ComparisonRowsAreIdenticalForAnyThreadCount) {
  auto char_options = fast_char_options();
  char_options.threads = 0;  // characterize at full speed; STA input fixed
  const auto lib = cells::characterize(cells::mini_catalog(), 10.0,
                                       char_options);
  const map::CellMatcher matcher{lib};
  auto suite = epfl::mini_suite();
  suite.resize(3);

  core::ExperimentOptions serial;
  serial.threads = 1;
  core::ExperimentOptions parallel;
  parallel.threads = 4;
  const auto rows_serial =
      core::run_synthesis_comparison(suite, matcher, serial);
  const auto rows_parallel =
      core::run_synthesis_comparison(suite, matcher, parallel);

  ASSERT_EQ(rows_serial.size(), rows_parallel.size());
  for (std::size_t i = 0; i < rows_serial.size(); ++i) {
    const auto& a = rows_serial[i];
    const auto& b = rows_parallel[i];
    EXPECT_EQ(a.circuit, b.circuit);
    EXPECT_EQ(a.clock_period, b.clock_period);
    for (const auto& [sa, sb] :
         {std::pair{&a.baseline, &b.baseline}, std::pair{&a.pad, &b.pad},
          std::pair{&a.pda, &b.pda}}) {
      EXPECT_EQ(sa->total_power, sb->total_power) << a.circuit;
      EXPECT_EQ(sa->delay, sb->delay) << a.circuit;
      EXPECT_EQ(sa->area, sb->area) << a.circuit;
      EXPECT_EQ(sa->gates, sb->gates) << a.circuit;
      EXPECT_EQ(sa->power.leakage, sb->power.leakage) << a.circuit;
      EXPECT_EQ(sa->power.internal, sb->power.internal) << a.circuit;
      EXPECT_EQ(sa->power.switching, sb->power.switching) << a.circuit;
    }
  }
}

// ------------------------------------------------- cache validation -----

class CacheValidation : public ::testing::Test {
protected:
  static std::vector<cells::CellSpec> tiny_catalog() {
    std::vector<cells::CellSpec> catalog;
    for (const auto& spec : cells::mini_catalog()) {
      if (spec.name == "INV_X1" || spec.name == "NAND2_X1") {
        catalog.push_back(spec);
      }
    }
    return catalog;
  }

  static cells::CharOptions tiny_options() {
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12};
    options.loads = {2e-16, 1e-15};
    options.include_sequential = false;
    return options;
  }

  std::string cache_path_ =
      ::testing::TempDir() + "/cryoeda_cache_test.lib";

  void TearDown() override { std::remove(cache_path_.c_str()); }
};

TEST_F(CacheValidation, MatchingCacheIsReusedVerbatim) {
  const auto catalog = tiny_catalog();
  ASSERT_EQ(catalog.size(), 2u);
  const auto options = tiny_options();
  const auto first =
      cells::load_or_characterize(cache_path_, catalog, 10.0, options);
  const auto second =
      cells::load_or_characterize(cache_path_, catalog, 10.0, options);
  EXPECT_EQ(second.cells.size(), first.cells.size());
  EXPECT_NEAR(second.temperature_k, 10.0, 1e-6);
}

TEST_F(CacheValidation, TemperatureMismatchForcesRecharacterization) {
  const auto catalog = tiny_catalog();
  const auto options = tiny_options();
  // Seed the cache at 300 K, then request 10 K from the same path.
  cells::load_or_characterize(cache_path_, catalog, 300.0, options);
  const auto lib =
      cells::load_or_characterize(cache_path_, catalog, 10.0, options);
  EXPECT_NEAR(lib.temperature_k, 10.0, 1e-6);
  // The cache must have been overwritten with the new corner.
  const auto reloaded = liberty::read_liberty(cache_path_);
  EXPECT_NEAR(reloaded.temperature_k, 10.0, 1e-6);
}

TEST_F(CacheValidation, VoltageMismatchForcesRecharacterization) {
  const auto catalog = tiny_catalog();
  auto low_vdd = tiny_options();
  low_vdd.vdd = 0.55;
  cells::load_or_characterize(cache_path_, catalog, 10.0, low_vdd);
  const auto lib = cells::load_or_characterize(cache_path_, catalog, 10.0,
                                               tiny_options());
  EXPECT_NEAR(lib.voltage, 0.7, 1e-9);
}

TEST_F(CacheValidation, MissingCellsForceRecharacterization) {
  const auto catalog = tiny_catalog();
  const auto options = tiny_options();
  // Cache characterized for a subset (INV only) must not satisfy a
  // request for the full tiny catalog.
  std::vector<cells::CellSpec> subset{catalog[0]};
  cells::load_or_characterize(cache_path_, subset, 10.0, options);
  const auto lib =
      cells::load_or_characterize(cache_path_, catalog, 10.0, options);
  EXPECT_EQ(lib.cells.size(), catalog.size());
  for (const auto& spec : catalog) {
    EXPECT_NE(lib.find(spec.name), nullptr) << spec.name;
  }
}

TEST_F(CacheValidation, CorruptCacheIsRegeneratedNotTrusted) {
  {
    std::ofstream out{cache_path_};
    out << "library (garbage) { this is not : valid liberty ";
  }
  const auto catalog = tiny_catalog();
  const auto lib = cells::load_or_characterize(cache_path_, catalog, 10.0,
                                               tiny_options());
  EXPECT_EQ(lib.cells.size(), catalog.size());
  // And the rewritten cache now parses.
  EXPECT_NO_THROW(liberty::read_liberty(cache_path_));
}

}  // namespace
