#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cryo::liberty {

/// Evaluate a liberty boolean function string (operators ! & | ^, postfix
/// ', parentheses, juxtaposition as AND, constants 0/1) into a truth table
/// over the given ordered variable names (at most 6 variables; bit i of
/// the result is the function value when input j equals bit j of i).
///
/// Throws std::runtime_error on syntax errors or unknown variables.
std::uint64_t function_truth_table(const std::string& expression,
                                   const std::vector<std::string>& inputs);

/// The input names referenced by a function string, in first-use order.
std::vector<std::string> function_inputs(const std::string& expression);

}  // namespace cryo::liberty
