#include "logic/factor.hpp"

#include <algorithm>
#include <stdexcept>

namespace cryo::logic {
namespace {

/// Count of a node-building recipe without committing nodes: we build
/// into a scratch AIG and count, since structural hashing makes node
/// counts context-dependent anyway.
struct LitCount {
  Lit lit;
  NodeIdx added;
};

}  // namespace

Lit build_and_balanced(Aig& aig, std::vector<Lit> lits) {
  if (lits.empty()) {
    return kConst1;
  }
  while (lits.size() > 1) {
    std::vector<Lit> next;
    next.reserve(lits.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(aig.land(lits[i], lits[i + 1]));
    }
    if (lits.size() % 2 != 0) {
      next.push_back(lits.back());
    }
    lits = std::move(next);
  }
  return lits.front();
}

Lit build_or_balanced(Aig& aig, std::vector<Lit> lits) {
  for (Lit& l : lits) {
    l = lit_not(l);
  }
  return lit_not(build_and_balanced(aig, std::move(lits)));
}

namespace {

Lit build_cube(Aig& aig, const Cube& cube, const std::vector<Lit>& leaves) {
  std::vector<Lit> lits;
  for (unsigned v = 0; v < leaves.size(); ++v) {
    if ((cube.pos >> v) & 1u) {
      lits.push_back(leaves[v]);
    } else if ((cube.neg >> v) & 1u) {
      lits.push_back(lit_not(leaves[v]));
    }
  }
  return build_and_balanced(aig, std::move(lits));
}

}  // namespace

Lit build_sop(Aig& aig, const std::vector<Cube>& cubes,
              const std::vector<Lit>& leaves) {
  if (cubes.empty()) {
    return kConst0;
  }
  std::vector<Lit> terms;
  terms.reserve(cubes.size());
  for (const Cube& cube : cubes) {
    terms.push_back(build_cube(aig, cube, leaves));
  }
  return build_or_balanced(aig, std::move(terms));
}

Lit build_factored(Aig& aig, std::vector<Cube> cubes,
                   const std::vector<Lit>& leaves) {
  if (cubes.empty()) {
    return kConst0;
  }
  if (cubes.size() == 1) {
    return build_cube(aig, cubes.front(), leaves);
  }
  // Most frequent literal across cubes.
  const unsigned n = static_cast<unsigned>(leaves.size());
  unsigned best_var = 0;
  bool best_phase = false;
  unsigned best_count = 0;
  for (unsigned v = 0; v < n; ++v) {
    unsigned pos_count = 0;
    unsigned neg_count = 0;
    for (const Cube& c : cubes) {
      pos_count += (c.pos >> v) & 1u;
      neg_count += (c.neg >> v) & 1u;
    }
    if (pos_count > best_count) {
      best_count = pos_count;
      best_var = v;
      best_phase = true;
    }
    if (neg_count > best_count) {
      best_count = neg_count;
      best_var = v;
      best_phase = false;
    }
  }
  if (best_count <= 1) {
    return build_sop(aig, cubes, leaves);
  }
  // Divide: cubes containing the literal form the quotient.
  std::vector<Cube> quotient;
  std::vector<Cube> remainder;
  const std::uint32_t bit = 1u << best_var;
  for (Cube c : cubes) {
    const bool has =
        best_phase ? (c.pos & bit) != 0 : (c.neg & bit) != 0;
    if (has) {
      if (best_phase) {
        c.pos &= ~bit;
      } else {
        c.neg &= ~bit;
      }
      quotient.push_back(c);
    } else {
      remainder.push_back(c);
    }
  }
  const Lit lit = best_phase ? leaves[best_var] : lit_not(leaves[best_var]);
  const Lit q = build_factored(aig, std::move(quotient), leaves);
  const Lit factored = aig.land(lit, q);
  if (remainder.empty()) {
    return factored;
  }
  const Lit r = build_factored(aig, std::move(remainder), leaves);
  return aig.lor(factored, r);
}

Lit build_from_tt(Aig& aig, const TtVec& tt, const std::vector<Lit>& leaves) {
  if (tt.num_vars() != leaves.size()) {
    throw std::invalid_argument{"build_from_tt: leaf count mismatch"};
  }
  if (tt.is_zero()) {
    return kConst0;
  }
  if (tt.is_ones()) {
    return kConst1;
  }
  const TtVec dc = TtVec::zeros(tt.num_vars());
  const auto pos_cubes = isop(tt, dc);
  const auto neg_cubes = isop(~tt, dc);

  // Estimate literal counts and factor the cheaper polarity first; commit
  // whichever implementation is structurally smaller in this AIG.
  auto literal_count = [](const std::vector<Cube>& cubes) {
    unsigned total = 0;
    for (const Cube& c : cubes) {
      total += c.num_literals();
    }
    return total + static_cast<unsigned>(cubes.size());
  };
  const NodeIdx before = aig.num_nodes();
  if (literal_count(pos_cubes) <= literal_count(neg_cubes)) {
    const Lit l = build_factored(aig, pos_cubes, leaves);
    (void)before;
    return l;
  }
  return lit_not(build_factored(aig, neg_cubes, leaves));
}

Lit build_from_tt6(Aig& aig, std::uint64_t tt, unsigned num_vars,
                   const std::vector<Lit>& leaves) {
  return build_from_tt(aig, TtVec::from_tt6(tt, num_vars), leaves);
}

}  // namespace cryo::logic
