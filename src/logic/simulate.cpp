#include "logic/simulate.hpp"

#include <bit>
#include <stdexcept>

namespace cryo::logic {

Simulation::Simulation(const Aig& aig, unsigned words)
    : aig_{aig}, words_{words} {
  if (words == 0) {
    throw std::invalid_argument{"Simulation: need at least one word"};
  }
  bits_.assign(static_cast<std::size_t>(aig.num_nodes()) * words, 0);
}

void Simulation::randomize_pis(util::Rng& rng) {
  for (NodeIdx i = 0; i < aig_.num_pis(); ++i) {
    auto* w = &bits_[static_cast<std::size_t>(lit_var(aig_.pi(i))) * words_];
    for (unsigned k = 0; k < words_; ++k) {
      w[k] = rng.next_u64();
    }
  }
}

void Simulation::randomize_pis_markov(util::Rng& rng, double toggle_rate) {
  for (NodeIdx i = 0; i < aig_.num_pis(); ++i) {
    auto* w = &bits_[static_cast<std::size_t>(lit_var(aig_.pi(i))) * words_];
    bool state = rng.next_bool();
    for (unsigned k = 0; k < words_; ++k) {
      std::uint64_t word = 0;
      for (unsigned b = 0; b < 64; ++b) {
        if (rng.next_bool(toggle_rate)) {
          state = !state;
        }
        if (state) {
          word |= 1ull << b;
        }
      }
      w[k] = word;
    }
  }
}

void Simulation::set_pi_word(NodeIdx pi_index, unsigned word,
                             std::uint64_t value) {
  bits_[static_cast<std::size_t>(lit_var(aig_.pi(pi_index))) * words_ + word] =
      value;
}

void Simulation::run() {
  for (NodeIdx v = 1; v < aig_.num_nodes(); ++v) {
    if (!aig_.is_and(v)) {
      continue;
    }
    const Lit f0 = aig_.fanin0(v);
    const Lit f1 = aig_.fanin1(v);
    const auto* a = node_bits(lit_var(f0));
    const auto* b = node_bits(lit_var(f1));
    auto* out = &bits_[static_cast<std::size_t>(v) * words_];
    const std::uint64_t inv0 = lit_compl(f0) ? ~0ull : 0ull;
    const std::uint64_t inv1 = lit_compl(f1) ? ~0ull : 0ull;
    for (unsigned k = 0; k < words_; ++k) {
      out[k] = (a[k] ^ inv0) & (b[k] ^ inv1);
    }
  }
}

double Simulation::probability(NodeIdx v) const {
  const auto* w = node_bits(v);
  unsigned ones = 0;
  for (unsigned k = 0; k < words_; ++k) {
    ones += static_cast<unsigned>(std::popcount(w[k]));
  }
  return static_cast<double>(ones) / (64.0 * words_);
}

double Simulation::activity(NodeIdx v) const {
  const auto* w = node_bits(v);
  unsigned toggles = 0;
  for (unsigned k = 0; k < words_; ++k) {
    // Toggles within the word: bits i vs i+1.
    const std::uint64_t x = w[k] ^ (w[k] >> 1);
    toggles += static_cast<unsigned>(std::popcount(x & ~(1ull << 63)));
    // Word boundary.
    if (k + 1 < words_) {
      toggles += ((w[k] >> 63) ^ (w[k + 1] & 1ull)) != 0 ? 1u : 0u;
    }
  }
  const unsigned total = 64 * words_ - 1;
  return static_cast<double>(toggles) / static_cast<double>(total);
}

double Simulation::po_activity(unsigned po_index) const {
  return activity(lit_var(aig_.po(po_index)));
}

std::uint64_t Simulation::signature(Lit l) const {
  const std::uint64_t w = node_bits(lit_var(l))[0];
  return lit_compl(l) ? ~w : w;
}

bool simulate_equal(const Aig& a, const Aig& b, unsigned words,
                    std::uint64_t seed) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return false;
  }
  Simulation sa{a, words};
  Simulation sb{b, words};
  util::Rng rng{seed};
  sa.randomize_pis(rng);
  for (NodeIdx i = 0; i < a.num_pis(); ++i) {
    for (unsigned k = 0; k < words; ++k) {
      sb.set_pi_word(i, k, sa.node_bits(lit_var(a.pi(i)))[k]);
    }
  }
  sa.run();
  sb.run();
  for (NodeIdx i = 0; i < a.num_pos(); ++i) {
    const Lit pa = a.po(i);
    const Lit pb = b.po(i);
    const auto* wa = sa.node_bits(lit_var(pa));
    const auto* wb = sb.node_bits(lit_var(pb));
    const std::uint64_t ia = lit_compl(pa) ? ~0ull : 0ull;
    const std::uint64_t ib = lit_compl(pb) ? ~0ull : 0ull;
    for (unsigned k = 0; k < words; ++k) {
      if ((wa[k] ^ ia) != (wb[k] ^ ib)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cryo::logic
