// Reproduction of paper Fig. 2(a): the distribution of propagation delay
// of all library cells at 300 K vs 10 K. The paper's observation: the two
// distributions largely overlap — cryogenic operation barely moves cell
// delay, because I_ON is nearly temperature-independent (Fig. 1).

#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cryo;

int main() {
  std::printf("=== Fig. 2(a): cell delay distribution, 300 K vs 10 K ===\n\n");
  const auto warm = bench::corner_library(300.0);
  const auto cold = bench::corner_library(10.0);

  constexpr double kSlew = 10e-12;
  constexpr double kLoad = 1e-15;

  util::Table rows{{"cell", "delay_300K [ps]", "delay_10K [ps]", "ratio"}};
  std::vector<double> d_warm;
  std::vector<double> d_cold;
  for (const auto& cell : warm.cells) {
    const auto* cold_cell = cold.find(cell.name);
    if (cold_cell == nullptr || cell.arcs.empty() || cell.is_sequential) {
      continue;
    }
    const double dw = cell.typical_delay(kSlew, kLoad);
    const double dc = cold_cell->typical_delay(kSlew, kLoad);
    d_warm.push_back(dw * 1e12);
    d_cold.push_back(dc * 1e12);
    rows.add_row({cell.name, util::Table::num(dw * 1e12, 2),
                  util::Table::num(dc * 1e12, 2),
                  util::Table::num(dc / dw, 3)});
  }
  rows.write_csv(bench::csv_path("fig2a_delays.csv"));

  const auto s_warm = util::summarize(d_warm);
  const auto s_cold = util::summarize(d_cold);
  util::Table summary{{"corner", "cells", "mean [ps]", "median [ps]",
                       "p5 [ps]", "p95 [ps]"}};
  summary.add_row({"300 K", std::to_string(s_warm.count),
                   util::Table::num(s_warm.mean, 2),
                   util::Table::num(s_warm.median, 2),
                   util::Table::num(s_warm.p5, 2),
                   util::Table::num(s_warm.p95, 2)});
  summary.add_row({"10 K", std::to_string(s_cold.count),
                   util::Table::num(s_cold.mean, 2),
                   util::Table::num(s_cold.median, 2),
                   util::Table::num(s_cold.p5, 2),
                   util::Table::num(s_cold.p95, 2)});
  std::printf("%s\n", summary.render().c_str());

  const double hi = std::max(s_warm.p95, s_cold.p95) * 1.2;
  util::Histogram h_warm{0.0, hi, 16};
  util::Histogram h_cold{0.0, hi, 16};
  h_warm.add_all(d_warm);
  h_cold.add_all(d_cold);
  std::printf("300 K delay distribution:\n%s\n",
              h_warm.render().c_str());
  std::printf("10 K delay distribution:\n%s\n", h_cold.render().c_str());
  std::printf(
      "paper check: distributions largely overlap (mean shift %+.1f %%)\n",
      (s_cold.mean / s_warm.mean - 1.0) * 100.0);
  std::printf("per-cell data: %s\n",
              bench::csv_path("fig2a_delays.csv").c_str());
  bench::write_bench_report("fig2a_delay_distribution");
  return 0;
}
