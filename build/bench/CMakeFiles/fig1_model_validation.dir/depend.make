# Empty dependencies file for fig1_model_validation.
# This may be replaced when dependencies are built.
