file(REMOVE_RECURSE
  "libcryo_util.a"
)
