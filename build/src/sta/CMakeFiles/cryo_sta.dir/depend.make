# Empty dependencies file for cryo_sta.
# This may be replaced when dependencies are built.
