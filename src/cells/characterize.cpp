#include "cells/characterize.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "device/preset.hpp"
#include "liberty/json_io.hpp"
#include "logic/tt.hpp"
#include "spice/backend.hpp"
#include "spice/measure.hpp"
#include "spice/simulator.hpp"
#include "util/artifact_cache.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cryo::cells {

namespace obs = util::obs;

namespace {

using spice::Circuit;
using spice::NodeId;

constexpr double kRampStart = 30e-12;

/// Emit the transistors of a PDN/PUN expression between two nodes.
/// `pull_down` selects NMOS (series stays series) vs the dual PUN (PMOS,
/// series<->parallel swapped).
void emit_network(Circuit& ckt, const PdnExpr& expr,
                  const std::vector<NodeId>& stage_inputs, NodeId from,
                  NodeId to, bool pull_down, int nfins,
                  const device::FinFetParams& params, int& scratch) {
  using Kind = PdnExpr::Kind;
  const Kind series_kind = pull_down ? Kind::kSeries : Kind::kParallel;
  if (expr.kind == Kind::kInput) {
    // drain = `from` (output side), source = `to` (rail side).
    ckt.add_fet(params, stage_inputs[static_cast<std::size_t>(expr.input)],
                from, to, nfins);
    return;
  }
  if (expr.kind == series_kind) {
    NodeId prev = from;
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      const bool last = i + 1 == expr.children.size();
      const NodeId next =
          last ? to
               : ckt.add_node("x" + std::to_string(scratch++));
      if (!last) {
        // Diffusion parasitic of the stack-intermediate node.
        const device::FinFetModel model{params, 300.0};
        ckt.add_cap(next, spice::kGround, model.cjunction(nfins));
      }
      emit_network(ckt, expr.children[i], stage_inputs, prev, next, pull_down,
                   nfins, params, scratch);
      prev = next;
    }
    return;
  }
  for (const auto& child : expr.children) {
    emit_network(ckt, child, stage_inputs, from, to, pull_down, nfins, params,
                 scratch);
  }
}

/// Netlist of a combinational cell. Returns the output node.
NodeId build_cell_circuit(Circuit& ckt, const CellSpec& spec, NodeId vdd,
                          double temperature_k,
                          const device::Preset& preset) {
  const auto& nparams = preset.nfet;
  const auto& pparams = preset.pfet;
  const device::FinFetModel nmodel{nparams, temperature_k};
  const device::FinFetModel pmodel{pparams, temperature_k};

  int scratch = 0;
  NodeId out = spice::kGround;
  for (const auto& stage : spec.stages) {
    std::vector<NodeId> stage_inputs;
    for (const auto& name : stage.inputs) {
      stage_inputs.push_back(ckt.add_node(name));
    }
    const NodeId stage_out = ckt.add_node(stage.out);
    emit_network(ckt, stage.pdn, stage_inputs, stage_out, spice::kGround,
                 true, stage.nfins_n, nparams, scratch);
    emit_network(ckt, stage.pdn, stage_inputs, stage_out, vdd, false,
                 stage.nfins_p, pparams, scratch);
    // Lumped parasitics: gate caps on the stage inputs, junction caps on
    // the stage output (drain diffusions of both networks).
    const unsigned devices = stage.pdn.num_devices();
    for (const NodeId in : stage_inputs) {
      ckt.add_cap(in, spice::kGround,
                  (nmodel.cgg(stage.nfins_n) + pmodel.cgg(stage.nfins_p)));
    }
    ckt.add_cap(stage_out, spice::kGround,
                static_cast<double>(devices) *
                    (nmodel.cjunction(stage.nfins_n) +
                     pmodel.cjunction(stage.nfins_p)));
    out = stage_out;
  }
  return out;
}

/// Input capacitance of a pin: sum of gate caps of devices it drives.
double pin_capacitance(const CellSpec& spec, const std::string& pin,
                       double temperature_k, const device::Preset& preset) {
  const device::FinFetModel nmodel{preset.nfet, temperature_k};
  const device::FinFetModel pmodel{preset.pfet, temperature_k};
  double cap = 0.0;
  for (const auto& stage : spec.stages) {
    // Count how many devices in the PDN are driven by this pin; PUN has
    // the same count.
    struct Counter {
      static unsigned count(const PdnExpr& e, int idx) {
        if (e.kind == PdnExpr::Kind::kInput) {
          return e.input == idx ? 1u : 0u;
        }
        unsigned n = 0;
        for (const auto& c : e.children) {
          n += count(c, idx);
        }
        return n;
      }
    };
    for (std::size_t i = 0; i < stage.inputs.size(); ++i) {
      if (stage.inputs[i] == pin) {
        const unsigned n = Counter::count(stage.pdn, static_cast<int>(i));
        cap += n * (nmodel.cgg(stage.nfins_n) + pmodel.cgg(stage.nfins_p));
      }
    }
  }
  return cap;
}

/// Find an assignment of the other inputs that sensitizes `pin` (output
/// differs between pin=0 and pin=1). Returns the full minterm with pin=0,
/// or nullopt if the pin is not observable.
std::optional<unsigned> sensitize(std::uint64_t tt, unsigned n, unsigned pin) {
  for (unsigned others = 0; others < (1u << n); ++others) {
    if ((others >> pin) & 1u) {
      continue;
    }
    const unsigned with_pin = others | (1u << pin);
    if (logic::tt6_bit(tt, others) != logic::tt6_bit(tt, with_pin)) {
      return others;
    }
  }
  return std::nullopt;
}

struct ArcPoint {
  double delay = 0.0;
  double out_slew = 0.0;
  double energy = 0.0;
};

/// One transient: toggle `pin` with the given slew while the others hold
/// `others`; measure delay/slew/energy at the output.
ArcPoint measure_point(const CellSpec& spec, double temperature_k,
                       const CharOptions& options,
                       const spice::Backend& backend, unsigned pin,
                       unsigned others, bool input_rising, double slew,
                       double load, double leakage_power) {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("VDD");
  // Ensure input pins exist before the cell body references them.
  std::vector<NodeId> pins;
  for (const auto& name : spec.inputs) {
    pins.push_back(ckt.add_node(name));
  }
  const NodeId out =
      build_cell_circuit(ckt, spec, vdd, temperature_k, options.preset);
  ckt.add_cap(out, spice::kGround, load);

  ckt.set_source(vdd, spice::Pwl::constant(options.vdd));
  const double ramp = slew / 0.8;  // slew is 10-90% of the full swing
  for (unsigned i = 0; i < spec.inputs.size(); ++i) {
    if (i == pin) {
      const double v0 = input_rising ? 0.0 : options.vdd;
      const double v1 = options.vdd - v0;
      ckt.set_source(pins[i], spice::Pwl::ramp(v0, v1, kRampStart, ramp));
    } else {
      const bool high = ((others >> i) & 1u) != 0;
      ckt.set_source(pins[i],
                     spice::Pwl::constant(high ? options.vdd : 0.0));
    }
  }

  spice::TransientOptions topt;
  topt.steps = options.transient_steps;
  topt.t_stop = kRampStart + ramp + 250e-12;

  const double v_half = options.vdd / 2.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto res =
        backend.transient(ckt, temperature_k, topt, {pins[pin], out});
    const auto& tout = res.trace(out).values;
    const double v_final = tout.back();
    const bool out_rising = v_final > v_half;
    const auto t_in = spice::crossing_time(res.times, res.trace(pins[pin]).values,
                                           v_half, input_rising);
    const auto t_out =
        spice::crossing_time(res.times, tout, v_half, out_rising);
    const auto oslew = spice::transition_time(
        res.times, tout, out_rising ? 0.0 : options.vdd,
        out_rising ? options.vdd : 0.0);
    const bool is_settled = spice::settled(
        tout, out_rising ? options.vdd : 0.0, 0.02 * options.vdd);
    if (!t_out || !oslew || !is_settled) {
      topt.t_stop *= 2.0;
      topt.steps *= 2;
      continue;
    }
    obs::counter("cells.arc_points").add();
    ArcPoint point;
    point.delay = *t_out - *t_in;
    point.out_slew = *oslew;
    double energy = res.source_energy.at(vdd);
    // Remove the leakage baseline over the run.
    energy -= leakage_power * topt.t_stop;
    if (out_rising) {
      // Exclude the external-load energy (PrimeTime adds net switching
      // power separately).
      energy -= load * options.vdd * options.vdd;
    }
    point.energy = std::max(energy, 0.0);
    return point;
  }
  throw std::runtime_error{"characterize: output never settled for cell " +
                           spec.name};
}

/// Average leakage over all input states.
double measure_leakage(const CellSpec& spec, double temperature_k,
                       const CharOptions& options,
                       const spice::Backend& backend) {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("VDD");
  std::vector<NodeId> pins;
  for (const auto& name : spec.inputs) {
    pins.push_back(ckt.add_node(name));
  }
  build_cell_circuit(ckt, spec, vdd, temperature_k, options.preset);
  ckt.set_source(vdd, spice::Pwl::constant(options.vdd));
  const auto n = static_cast<unsigned>(spec.inputs.size());
  double total = 0.0;
  for (unsigned m = 0; m < (1u << n); ++m) {
    for (unsigned i = 0; i < n; ++i) {
      ckt.set_source(pins[i], spice::Pwl::constant(
                                  ((m >> i) & 1u) != 0 ? options.vdd : 0.0));
    }
    const auto op = backend.dc(ckt, temperature_k);
    total += op.source_current(vdd) * options.vdd;
  }
  return total / static_cast<double>(1u << n);
}

liberty::NldmTable make_table(const CharOptions& options,
                              const std::vector<double>& values) {
  return liberty::NldmTable{options.slews, options.loads, values};
}

/// Characterize one combinational cell.
liberty::Cell characterize_cell(const CellSpec& spec, double temperature_k,
                                const CharOptions& options,
                                const spice::Backend& backend) {
  liberty::Cell cell;
  cell.name = spec.name;
  cell.area = spec.area;
  cell.leakage_power = measure_leakage(spec, temperature_k, options, backend);

  const auto n = static_cast<unsigned>(spec.inputs.size());
  const std::uint64_t tt = spec.truth_table();

  for (const auto& pin_name : spec.inputs) {
    liberty::Pin pin;
    pin.name = pin_name;
    pin.capacitance =
        pin_capacitance(spec, pin_name, temperature_k, options.preset);
    cell.pins.push_back(pin);
  }
  liberty::Pin out;
  out.name = spec.output;
  out.is_output = true;
  out.function = spec.function_string();
  cell.pins.push_back(out);

  for (unsigned pin = 0; pin < n; ++pin) {
    const auto others = sensitize(tt, n, pin);
    if (!others) {
      continue;  // unobservable pin (e.g. TIE cells)
    }
    // Determine unateness at this sensitization.
    const bool out_at_pin1 = logic::tt6_bit(tt, *others | (1u << pin));
    const bool positive = out_at_pin1;  // pin=1 -> out=1 means positive

    liberty::TimingArc arc;
    arc.related_pin = spec.inputs[pin];
    // A pin may be positive in one assignment and negative in another
    // (XOR): report non-unate in that case.
    bool pos_seen = false;
    bool neg_seen = false;
    for (unsigned m = 0; m < (1u << n); ++m) {
      if ((m >> pin) & 1u) {
        continue;
      }
      const bool f0 = logic::tt6_bit(tt, m);
      const bool f1 = logic::tt6_bit(tt, m | (1u << pin));
      if (f0 != f1) {
        (f1 ? pos_seen : neg_seen) = true;
      }
    }
    arc.sense = pos_seen && neg_seen
                    ? liberty::ArcSense::kNonUnate
                    : (pos_seen ? liberty::ArcSense::kPositive
                                : liberty::ArcSense::kNegative);

    liberty::PowerArc parc;
    parc.related_pin = arc.related_pin;

    std::vector<double> rise_delay;
    std::vector<double> fall_delay;
    std::vector<double> rise_slew;
    std::vector<double> fall_slew;
    std::vector<double> rise_energy;
    std::vector<double> fall_energy;
    // Grid points are independent transients: measure them in parallel
    // and assemble in index order, so the tables are identical to the
    // serial slew-major/load-minor loop.
    struct PointPair {
      ArcPoint rise;
      ArcPoint fall;
    };
    const std::size_t nloads = options.loads.size();
    const auto points = util::parallel_map(
        options.slews.size() * nloads,
        [&](std::size_t k) {
          const double slew = options.slews[k / nloads];
          const double load = options.loads[k % nloads];
          // Input edge that makes the output rise:
          const bool in_rising_for_rise = positive;
          PointPair point;
          point.rise = measure_point(spec, temperature_k, options, backend,
                                     pin, *others, in_rising_for_rise, slew,
                                     load, cell.leakage_power);
          point.fall = measure_point(spec, temperature_k, options, backend,
                                     pin, *others, !in_rising_for_rise, slew,
                                     load, cell.leakage_power);
          return point;
        },
        options.threads);
    for (const auto& point : points) {
      rise_delay.push_back(point.rise.delay);
      rise_slew.push_back(point.rise.out_slew);
      rise_energy.push_back(point.rise.energy);
      fall_delay.push_back(point.fall.delay);
      fall_slew.push_back(point.fall.out_slew);
      fall_energy.push_back(point.fall.energy);
    }
    arc.cell_rise = make_table(options, rise_delay);
    arc.cell_fall = make_table(options, fall_delay);
    arc.rise_transition = make_table(options, rise_slew);
    arc.fall_transition = make_table(options, fall_slew);
    parc.rise_power = make_table(options, rise_energy);
    parc.fall_power = make_table(options, fall_energy);
    cell.arcs.push_back(std::move(arc));
    cell.power_arcs.push_back(std::move(parc));
  }
  return cell;
}

// ------------------------------------------------------- sequential -----

/// Master-slave DFF schematic (transmission-gate based). Returns Q.
NodeId build_dff_circuit(Circuit& ckt, const CellSpec& /*spec*/, NodeId vdd,
                         double temperature_k, bool latch,
                         const device::Preset& preset) {
  const auto& np = preset.nfet;
  const auto& pp = preset.pfet;
  const device::FinFetModel nmodel{np, temperature_k};
  const device::FinFetModel pmodel{pp, temperature_k};

  const NodeId d = ckt.add_node("D");
  const NodeId ck = ckt.add_node("CK");

  auto inverter = [&](NodeId in, const std::string& out_name, int drive) {
    const NodeId out = ckt.add_node(out_name);
    ckt.add_fet(np, in, out, spice::kGround, 2 * drive);
    ckt.add_fet(pp, in, out, vdd, 3 * drive);
    ckt.add_cap(out, spice::kGround,
                nmodel.cjunction(2 * drive) + pmodel.cjunction(3 * drive));
    ckt.add_cap(in, spice::kGround,
                nmodel.cgg(2 * drive) + pmodel.cgg(3 * drive));
    return out;
  };
  auto tgate = [&](NodeId in, NodeId out, NodeId en_n, NodeId en_p) {
    // NMOS gated by en_n, PMOS gated by en_p (complement).
    ckt.add_fet(np, en_n, out, in, 2);
    ckt.add_fet(pp, en_p, out, in, 2);
    ckt.add_cap(out, spice::kGround,
                nmodel.cjunction(2) + pmodel.cjunction(2));
  };

  const NodeId ckb = inverter(ck, "ckb", 1);
  const NodeId ckbb = inverter(ckb, "ckbb", 1);

  // Master: transparent while CK = 0 (or while CK = 1 for a latch).
  const NodeId m1 = ckt.add_node("m1");
  if (latch) {
    tgate(d, m1, ckbb, ckb);  // transparent when CK = 1
  } else {
    tgate(d, m1, ckb, ckbb);  // transparent when CK = 0
  }
  const NodeId m2 = inverter(m1, "m2", 1);
  const NodeId m3 = inverter(m2, "m3", 1);
  if (latch) {
    tgate(m3, m1, ckb, ckbb);  // hold when CK = 0
  } else {
    tgate(m3, m1, ckbb, ckb);  // hold when CK = 1
  }

  if (latch) {
    return inverter(m2, "Q", 2);
  }

  // Slave: transparent while CK = 1.
  const NodeId s1 = ckt.add_node("s1");
  tgate(m2, s1, ckbb, ckb);
  const NodeId s2 = inverter(s1, "s2", 1);
  const NodeId s3 = inverter(s2, "s3", 1);
  tgate(s3, s1, ckb, ckbb);
  return inverter(s2, "Q", 2);
}

liberty::Cell characterize_sequential(const CellSpec& spec,
                                      double temperature_k,
                                      const CharOptions& options,
                                      const spice::Backend& backend) {
  liberty::Cell cell;
  cell.name = spec.name;
  cell.area = spec.area;
  cell.is_sequential = true;
  cell.next_state = "D";
  cell.clocked_on = spec.level_sensitive ? "CK" : "CK";

  // Leakage: average over the four (D, CK) static states.
  {
    double total = 0.0;
    for (unsigned m = 0; m < 4; ++m) {
      Circuit ckt;
      const NodeId vdd = ckt.add_node("VDD");
      build_dff_circuit(ckt, spec, vdd, temperature_k, spec.level_sensitive,
                        options.preset);
      ckt.set_source(vdd, spice::Pwl::constant(options.vdd));
      ckt.set_source(ckt.node("D"),
                     spice::Pwl::constant((m & 1u) != 0 ? options.vdd : 0.0));
      ckt.set_source(ckt.node("CK"),
                     spice::Pwl::constant((m & 2u) != 0 ? options.vdd : 0.0));
      const auto op = backend.dc(ckt, temperature_k);
      total += op.source_current(vdd) * options.vdd;
    }
    cell.leakage_power = total / 4.0;
  }

  // Pins: D and CK input caps from the first transmission gate / clock
  // inverter gate loads.
  {
    const device::FinFetModel nmodel{options.preset.nfet, temperature_k};
    const device::FinFetModel pmodel{options.preset.pfet, temperature_k};
    liberty::Pin dpin;
    dpin.name = "D";
    dpin.capacitance = nmodel.cgg(2) + pmodel.cgg(2);
    liberty::Pin ckpin;
    ckpin.name = "CK";
    ckpin.capacitance = nmodel.cgg(2) + pmodel.cgg(3);
    liberty::Pin q;
    q.name = "Q";
    q.is_output = true;
    q.function = "IQ";
    cell.pins = {dpin, ckpin, q};
  }

  // CK -> Q arc over the slew/load grid (D held at 1 for rise, 0 for
  // fall; the D value is latched while CK is low, then CK rises).
  liberty::TimingArc arc;
  arc.related_pin = "CK";
  arc.sense = liberty::ArcSense::kNonUnate;
  liberty::PowerArc parc;
  parc.related_pin = "CK";
  std::vector<double> rise_delay;
  std::vector<double> fall_delay;
  std::vector<double> rise_slew;
  std::vector<double> fall_slew;
  std::vector<double> rise_energy;
  std::vector<double> fall_energy;
  struct SeqPoint {
    double delay = 0.0;
    double out_slew = 0.0;
    double energy = 0.0;
  };
  auto measure_ckq = [&](double slew, double load, bool d_high) {
    Circuit ckt;
    const NodeId vdd = ckt.add_node("VDD");
    const NodeId q = build_dff_circuit(ckt, spec, vdd, temperature_k,
                                       spec.level_sensitive, options.preset);
    ckt.add_cap(q, spice::kGround, load);
    ckt.set_source(vdd, spice::Pwl::constant(options.vdd));
    ckt.set_source(ckt.node("D"),
                   spice::Pwl::constant(d_high ? options.vdd : 0.0));
    const double ramp = slew / 0.8;
    ckt.set_source(ckt.node("CK"),
                   spice::Pwl::ramp(0.0, options.vdd, kRampStart, ramp));
    spice::TransientOptions topt;
    topt.steps = options.transient_steps;
    topt.t_stop = kRampStart + ramp + 400e-12;
    const auto res =
        backend.transient(ckt, temperature_k, topt, {ckt.node("CK"), q});
    const double v_half = options.vdd / 2.0;
    const auto t_ck = spice::crossing_time(
        res.times, res.trace(ckt.node("CK")).values, v_half, true);
    const auto t_q = spice::crossing_time(res.times, res.trace(q).values,
                                          v_half, d_high);
    SeqPoint point;
    point.delay = (t_ck && t_q) ? *t_q - *t_ck : 100e-12;
    const auto oslew = spice::transition_time(
        res.times, res.trace(q).values, d_high ? 0.0 : options.vdd,
        d_high ? options.vdd : 0.0);
    point.out_slew = oslew.value_or(20e-12);
    double energy =
        res.source_energy.at(vdd) - cell.leakage_power * topt.t_stop;
    if (d_high) {
      energy -= load * options.vdd * options.vdd;
    }
    point.energy = std::max(energy, 0.0);
    return point;
  };
  // As in the combinational case, the grid points are independent and
  // assembled in index order (rise measured before fall per point).
  struct SeqPointPair {
    SeqPoint rise;
    SeqPoint fall;
  };
  const std::size_t nloads = options.loads.size();
  const auto points = util::parallel_map(
      options.slews.size() * nloads,
      [&](std::size_t k) {
        const double slew = options.slews[k / nloads];
        const double load = options.loads[k % nloads];
        SeqPointPair point;
        point.rise = measure_ckq(slew, load, /*d_high=*/true);
        point.fall = measure_ckq(slew, load, /*d_high=*/false);
        return point;
      },
      options.threads);
  for (const auto& point : points) {
    rise_delay.push_back(point.rise.delay);
    rise_slew.push_back(point.rise.out_slew);
    rise_energy.push_back(point.rise.energy);
    fall_delay.push_back(point.fall.delay);
    fall_slew.push_back(point.fall.out_slew);
    fall_energy.push_back(point.fall.energy);
  }
  arc.cell_rise = make_table(options, rise_delay);
  arc.cell_fall = make_table(options, fall_delay);
  arc.rise_transition = make_table(options, rise_slew);
  arc.fall_transition = make_table(options, fall_slew);
  parc.rise_power = make_table(options, rise_energy);
  parc.fall_power = make_table(options, fall_energy);
  cell.arcs.push_back(std::move(arc));
  cell.power_arcs.push_back(std::move(parc));
  return cell;
}

/// Artifact-cache stage name of per-cell characterization.
constexpr std::string_view kCharStage = "cells.characterize";

/// Everything that determines one cell's characterized tables: the full
/// schematic spec, the corner, the device platform (full parameter sets,
/// not just the preset name), the simulation engine identity, and the
/// measurement grid. Worker counts and verbosity deliberately stay out —
/// they cannot change the result.
util::Json char_cache_inputs(const CellSpec& spec, double temperature_k,
                             const CharOptions& options,
                             const spice::Backend& backend) {
  util::Json inputs = util::Json::object();
  inputs["spec"] = to_json(spec);
  inputs["temperature_k"] = util::Json{temperature_k};
  inputs["vdd"] = util::Json{options.vdd};
  inputs["device"] = device::preset_device_json(options.preset);
  inputs["backend"] = util::Json{backend.identity()};
  util::Json slews = util::Json::array();
  for (const double s : options.slews) {
    slews.push_back(util::Json{s});
  }
  inputs["slews"] = std::move(slews);
  util::Json loads = util::Json::array();
  for (const double l : options.loads) {
    loads.push_back(util::Json{l});
  }
  inputs["loads"] = std::move(loads);
  inputs["transient_steps"] = util::Json{options.transient_steps};
  return inputs;
}

/// Characterize one cell through the artifact cache: a hit deserializes
/// the exact tables of a previous run (ours or another process's); a
/// miss runs the SPICE grid and persists the result.
liberty::Cell characterize_cell_cached(const CellSpec& spec,
                                       double temperature_k,
                                       const CharOptions& options,
                                       const spice::Backend& backend) {
  auto& cache = util::ArtifactCache::global();
  if (!cache.enabled()) {
    return spec.sequential
               ? characterize_sequential(spec, temperature_k, options, backend)
               : characterize_cell(spec, temperature_k, options, backend);
  }
  const util::Json inputs =
      char_cache_inputs(spec, temperature_k, options, backend);
  const std::string key = util::ArtifactCache::key(kCharStage, inputs);
  if (auto hit = cache.load(kCharStage, key)) {
    try {
      return liberty::cell_from_json(*hit);
    } catch (const std::exception&) {
      // Schema drift inside a checksum-valid entry (e.g. hand-edited):
      // recompute below and overwrite.
      obs::counter("cache.corrupt").add();
    }
  }
  liberty::Cell cell =
      spec.sequential
          ? characterize_sequential(spec, temperature_k, options, backend)
          : characterize_cell(spec, temperature_k, options, backend);
  cache.store(kCharStage, key, liberty::to_json(cell));
  return cell;
}

/// A cached library is only reusable when it was characterized for the
/// same corner (temperature, Vdd), the same device platform and engine
/// (via the canonical library name — two presets at the same corner must
/// never alias), and contains every requested cell — a stale cache from
/// a different run must not poison downstream figures.
bool cache_matches(const liberty::Library& lib,
                   const std::vector<CellSpec>& catalog, double temperature_k,
                   const CharOptions& options,
                   const std::string& backend_identity) {
  if (lib.name != library_name(options.preset, backend_identity,
                               temperature_k)) {
    return false;
  }
  if (std::fabs(lib.temperature_k - temperature_k) > 1e-6) {
    return false;
  }
  if (std::fabs(lib.voltage - options.vdd) > 1e-9) {
    return false;
  }
  for (const auto& spec : catalog) {
    if (spec.sequential && !options.include_sequential) {
      continue;
    }
    if (lib.find(spec.name) == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string library_name(const device::Preset& preset,
                         const std::string& backend_identity,
                         double temperature_k) {
  std::string name{"cryoeda_"};
  const bool default_platform =
      preset.name == device::default_preset().name &&
      backend_identity == spice::builtin_backend().identity();
  if (!default_platform) {
    name += preset.name;
    name += '_';
    for (const char c : backend_identity) {
      // Liberty-safe identifier: the engine identity may contain '/',
      // '.' etc. ("ngspice/42.1").
      name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    name += '_';
  }
  name += std::to_string(static_cast<int>(temperature_k));
  name += 'K';
  return name;
}

std::string default_lib_path(const std::string& dir,
                             const device::Preset& preset,
                             const std::string& backend_name,
                             double temperature_k, double vdd) {
  std::string path = dir.empty() ? std::string{} : dir + "/";
  path += "cryoeda_lib_";
  const bool default_platform =
      preset.name == device::default_preset().name &&
      (backend_name.empty() || backend_name == "builtin");
  if (!default_platform) {
    path += preset.name;
    path += '_';
    path += backend_name.empty() ? std::string{"builtin"} : backend_name;
    path += '_';
  }
  path += std::to_string(static_cast<int>(temperature_k));
  path += 'K';
  if (vdd != 0.7) {
    char tag[32];
    std::snprintf(tag, sizeof(tag), "_%gV", vdd);
    path += tag;
  }
  return path + ".lib";
}

liberty::Library characterize(const std::vector<CellSpec>& catalog,
                              double temperature_k,
                              const CharOptions& options) {
  const obs::ScopedSpan span{
      "cells.characterize_library:" +
      std::to_string(static_cast<int>(temperature_k)) + "K"};
  const spice::Backend& backend = spice::resolve_backend(options.backend);
  liberty::Library lib;
  lib.name = library_name(options.preset, backend.identity(), temperature_k);
  lib.temperature_k = temperature_k;
  lib.voltage = options.vdd;
  // Cells are characterized in parallel but assembled in catalog order,
  // so the library is identical to the serial run for any thread count.
  std::atomic<std::size_t> progress{0};
  util::Budget& budget =
      options.budget != nullptr ? *options.budget : util::Budget::global();
  auto cells = util::parallel_map(
      catalog.size(),
      [&](std::size_t i) -> std::optional<liberty::Cell> {
        const auto& spec = catalog[i];
        // A partially characterized library would poison every
        // downstream figure, so both cancellation and a blown deadline
        // abort the characterization outright.
        budget.check_cancelled("cells.characterize");
        if (budget.deadline_exceeded()) {
          throw Error{ErrorKind::kBudget,
                      "wall-clock deadline exceeded in cells.characterize"};
        }
        util::faultinject::maybe_fail("cells.characterize",
                                      ErrorKind::kInternal);
        const obs::ScopedSpan span{"cells.characterize:" + spec.name};
        const util::ScopedTimer cell_timer{spec.name, /*log=*/false};
        std::optional<liberty::Cell> cell;
        if (!spec.sequential || options.include_sequential) {
          cell = characterize_cell_cached(spec, temperature_k, options,
                                          backend);
        }
        if (cell) {
          obs::counter("cells.characterized").add();
          obs::histogram("cells.cell_wall_s", obs::Unit::kWallSeconds)
              .record(cell_timer.elapsed_s());
        }
        if (cell && options.verbose) {
          std::fprintf(stderr, "characterized %s (%zu/%zu)\n",
                       spec.name.c_str(), progress.fetch_add(1) + 1,
                       catalog.size());
        }
        return cell;
      },
      options.threads);
  for (auto& cell : cells) {
    if (cell) {
      lib.cells.push_back(std::move(*cell));
    }
  }
  return lib;
}

liberty::Library load_or_characterize(const std::string& cache_path,
                                      const std::vector<CellSpec>& catalog,
                                      double temperature_k,
                                      const CharOptions& options) {
  // Resolving up front also validates the requested engine (unknown or
  // unavailable backends fail with kRecipe even on a warm .lib cache —
  // a cached file must not mask a bad request).
  const std::string backend_identity =
      spice::resolve_backend(options.backend).identity();
  if (std::filesystem::exists(cache_path)) {
    try {
      liberty::Library lib = liberty::read_liberty(cache_path);
      if (cache_matches(lib, catalog, temperature_k, options,
                        backend_identity)) {
        obs::counter("cells.cache_hits").add();
        return lib;
      }
    } catch (const std::exception&) {
      // Unparseable cache: fall through and re-characterize.
    }
  }
  obs::counter("cells.cache_misses").add();
  liberty::Library lib = characterize(catalog, temperature_k, options);
  liberty::write_liberty(lib, cache_path);
  // Return the *re-read* library, not the in-memory one: the writer's
  // unit conversions can perturb values by an ulp, and a cold run must
  // see bit-identical tables to every later warm run that loads this
  // file, or downstream signoff reports lose byte-identity across runs.
  try {
    liberty::Library reread = liberty::read_liberty(cache_path);
    if (cache_matches(reread, catalog, temperature_k, options,
                      backend_identity)) {
      return reread;
    }
  } catch (const std::exception&) {
    // A just-written file that does not read back is a transient disk
    // problem at worst; the in-memory library is still good.
  }
  obs::counter("cells.cache_readback_misses").add();
  return lib;
}

}  // namespace cryo::cells
