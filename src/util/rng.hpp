#pragma once

#include <cmath>
#include <cstdint>

namespace cryo::util {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
///
/// Used everywhere randomness is needed (simulation patterns, synthetic
/// measurement noise, property-test inputs) so that every experiment in the
/// repository is reproducible from a seed.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Standard normal deviate (Marsaglia polar method).
  double next_gaussian() {
    for (;;) {
      const double u = next_double(-1.0, 1.0);
      const double v = next_double(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cryo::util
