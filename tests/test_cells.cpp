#include <gtest/gtest.h>

#include <filesystem>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "liberty/function.hpp"
#include "liberty/json_io.hpp"

namespace {

using namespace cryo::cells;

const CellSpec* find_spec(const std::vector<CellSpec>& catalog,
                          const std::string& name) {
  for (const auto& spec : catalog) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

TEST(Catalog, SizeIsPaperScale) {
  const auto catalog = standard_catalog();
  // Paper: "a whole standard cell library, which consists of 200
  // combinational and sequential logic gates".
  EXPECT_GE(catalog.size(), 150u);
  EXPECT_LE(catalog.size(), 260u);
}

TEST(Catalog, NamesAreUnique) {
  const auto catalog = standard_catalog();
  std::set<std::string> names;
  for (const auto& spec : catalog) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

struct ExpectedFunction {
  const char* cell;
  std::uint64_t tt;
  unsigned inputs;
};

class KnownFunctions : public ::testing::TestWithParam<ExpectedFunction> {};

TEST_P(KnownFunctions, TruthTableMatches) {
  const auto catalog = standard_catalog();
  const auto& expected = GetParam();
  const CellSpec* spec = find_spec(catalog, expected.cell);
  ASSERT_NE(spec, nullptr) << expected.cell;
  ASSERT_EQ(spec->inputs.size(), expected.inputs);
  EXPECT_EQ(spec->truth_table(), expected.tt) << expected.cell;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, KnownFunctions,
    ::testing::Values(
        ExpectedFunction{"INV_X1", 0x1, 1},
        ExpectedFunction{"BUF_X2", 0x2, 1},
        ExpectedFunction{"NAND2_X1", 0x7, 2},
        ExpectedFunction{"NOR2_X1", 0x1, 2},
        ExpectedFunction{"AND3_X1", 0x80, 3},
        ExpectedFunction{"OR4_X1", 0xFFFE, 4},
        ExpectedFunction{"XOR2_X1", 0x6, 2},
        ExpectedFunction{"XNOR2_X1", 0x9, 2},
        ExpectedFunction{"XOR3_X1", 0x96, 3},
        ExpectedFunction{"XNOR3_X1", 0x69, 3},
        ExpectedFunction{"MUX2_X1", 0xCA, 3},
        ExpectedFunction{"MAJ3_X1", 0xE8, 3},
        // AOI21: !(A1&A2 | B1) over (A1, A2, B1).
        ExpectedFunction{"AOI21_X1", 0x07, 3},
        ExpectedFunction{"OAI21_X1", 0x1F, 3},
        ExpectedFunction{"AOI22_X1", 0x0777, 4},
        ExpectedFunction{"NAND2B_X1", 0xB, 2},
        ExpectedFunction{"NOR2B_X1", 0x2, 2}));

TEST(Catalog, FunctionStringsMatchTruthTables) {
  for (const auto& spec : standard_catalog()) {
    if (spec.sequential || spec.inputs.size() > 6) {
      continue;
    }
    const std::uint64_t via_string = cryo::liberty::function_truth_table(
        spec.function_string(), spec.inputs);
    EXPECT_EQ(via_string, spec.truth_table()) << spec.name;
  }
}

TEST(Catalog, AreasGrowWithDriveStrength) {
  const auto catalog = standard_catalog();
  const auto* x1 = find_spec(catalog, "INV_X1");
  const auto* x4 = find_spec(catalog, "INV_X4");
  ASSERT_NE(x1, nullptr);
  ASSERT_NE(x4, nullptr);
  EXPECT_GT(x4->area, x1->area);
}

TEST(Pdn, DepthAndDeviceCount) {
  const auto catalog = standard_catalog();
  const auto* nand4 = find_spec(catalog, "NAND4_X1");
  ASSERT_NE(nand4, nullptr);
  EXPECT_EQ(nand4->stages[0].pdn.depth(), 4u);
  EXPECT_EQ(nand4->stages[0].pdn.num_devices(), 4u);
  const auto* nor4 = find_spec(catalog, "NOR4_X1");
  ASSERT_NE(nor4, nullptr);
  EXPECT_EQ(nor4->stages[0].pdn.depth(), 1u);
}

// ---------------------------------------------------- characterization ---

class CharacterizedMini : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    CharOptions options;
    // Smaller grid for speed; still exercises the full pipeline.
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    warm_ = new cryo::liberty::Library(
        characterize(mini_catalog(), 300.0, options));
    cold_ = new cryo::liberty::Library(
        characterize(mini_catalog(), 10.0, options));
  }
  static void TearDownTestSuite() {
    delete warm_;
    delete cold_;
    warm_ = nullptr;
    cold_ = nullptr;
  }
  static cryo::liberty::Library* warm_;
  static cryo::liberty::Library* cold_;
};

cryo::liberty::Library* CharacterizedMini::warm_ = nullptr;
cryo::liberty::Library* CharacterizedMini::cold_ = nullptr;

TEST_F(CharacterizedMini, AllCellsPresentWithArcs) {
  ASSERT_EQ(warm_->cells.size(), mini_catalog().size());
  for (const auto& cell : warm_->cells) {
    EXPECT_FALSE(cell.arcs.empty()) << cell.name;
    EXPECT_FALSE(cell.power_arcs.empty()) << cell.name;
    EXPECT_GT(cell.leakage_power, 0.0) << cell.name;
    ASSERT_NE(cell.output_pin(), nullptr) << cell.name;
    EXPECT_FALSE(cell.output_pin()->function.empty()) << cell.name;
  }
}

TEST_F(CharacterizedMini, DelayIncreasesWithLoadAndSlew) {
  for (const auto& cell : warm_->cells) {
    for (const auto& arc : cell.arcs) {
      const double fast = arc.cell_rise.lookup(4e-12, 2e-16);
      const double loaded = arc.cell_rise.lookup(4e-12, 4e-15);
      EXPECT_GT(loaded, fast) << cell.name;
      const double slow_in = arc.cell_rise.lookup(48e-12, 2e-16);
      EXPECT_GT(slow_in, fast * 0.8) << cell.name;
    }
  }
}

TEST_F(CharacterizedMini, CryoLeakageCollapses) {
  // Paper Fig. 2(c): leakage becomes negligible at 10 K.
  for (std::size_t i = 0; i < warm_->cells.size(); ++i) {
    EXPECT_LT(cold_->cells[i].leakage_power,
              warm_->cells[i].leakage_power * 1e-2)
        << warm_->cells[i].name;
  }
}

TEST_F(CharacterizedMini, CryoDelayMarginallyImpacted) {
  // Paper Fig. 2(a): the delay distributions largely overlap.
  for (std::size_t i = 0; i < warm_->cells.size(); ++i) {
    const double dw = warm_->cells[i].typical_delay(10e-12, 1e-15);
    const double dc = cold_->cells[i].typical_delay(10e-12, 1e-15);
    EXPECT_LT(std::abs(dc / dw - 1.0), 0.30) << warm_->cells[i].name;
  }
}

TEST_F(CharacterizedMini, CryoSwitchingEnergySlightlyLower) {
  // Paper Fig. 2(b): slightly less energy at 10 K (on average).
  double warm_total = 0.0;
  double cold_total = 0.0;
  for (std::size_t i = 0; i < warm_->cells.size(); ++i) {
    warm_total += warm_->cells[i].typical_energy(10e-12, 1e-15);
    cold_total += cold_->cells[i].typical_energy(10e-12, 1e-15);
  }
  EXPECT_LT(cold_total, warm_total);
  EXPECT_GT(cold_total, warm_total * 0.5);
}

TEST_F(CharacterizedMini, InputCapsArePhysical) {
  for (const auto& cell : warm_->cells) {
    for (const auto& pin : cell.pins) {
      if (!pin.is_output) {
        EXPECT_GT(pin.capacitance, 1e-17) << cell.name << "/" << pin.name;
        EXPECT_LT(pin.capacitance, 1e-13) << cell.name << "/" << pin.name;
      }
    }
  }
}

TEST(Characterize, CacheRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cryo_cache_test.lib")
          .string();
  std::filesystem::remove(path);
  CharOptions options;
  options.slews = {4e-12, 16e-12};
  options.loads = {2e-16, 2e-15};
  options.include_sequential = false;
  const auto catalog = mini_catalog();
  const auto fresh = load_or_characterize(path, catalog, 10.0, options);
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto cached = load_or_characterize(path, catalog, 10.0, options);
  ASSERT_EQ(cached.cells.size(), fresh.cells.size());
  for (std::size_t i = 0; i < fresh.cells.size(); ++i) {
    EXPECT_EQ(cached.cells[i].name, fresh.cells[i].name);
    EXPECT_NEAR(cached.cells[i].leakage_power, fresh.cells[i].leakage_power,
                std::abs(fresh.cells[i].leakage_power) * 1e-3 + 1e-18);
  }
  // Cold/warm coherence: the cold call returns the *re-read* library, so
  // a warm load must be bit-identical — same fingerprint, same scenario
  // cache keys, byte-identical signoff reports regardless of cache state.
  EXPECT_EQ(cryo::liberty::fingerprint(cached),
            cryo::liberty::fingerprint(fresh));
  std::filesystem::remove(path);
}

/// Satellite guarantee of the preset/backend refactor: a cached library
/// characterized for one device preset must never be returned for a
/// request naming a different preset at the same (temperature, Vdd) —
/// the canonical library name embeds the platform, and
/// load_or_characterize re-characterizes on mismatch.
TEST(Characterize, CacheRejectsADifferentPresetAtTheSameCorner) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "cryo_cache_preset_alias_test.lib")
                        .string();
  std::filesystem::remove(path);
  CharOptions options;
  options.vdd = 0.8;
  options.slews = {4e-12, 16e-12};
  options.loads = {2e-16, 2e-15};
  options.include_sequential = false;
  const auto catalog = mini_catalog();
  const auto finfet = load_or_characterize(path, catalog, 300.0, options);
  EXPECT_EQ(finfet.name, "cryoeda_300K");

  CharOptions soi_options = options;
  soi_options.preset = cryo::device::resolve_preset("soi4k");
  const auto soi = load_or_characterize(path, catalog, 300.0, soi_options);
  EXPECT_EQ(soi.name, "cryoeda_soi4k_builtin_1_300K");
  // Different physics, not a replay of the cached finfet5 file.
  EXPECT_NE(cryo::liberty::fingerprint(soi),
            cryo::liberty::fingerprint(finfet));
  std::filesystem::remove(path);
}

TEST(Characterize, SequentialCellsGetClockArcs) {
  CharOptions options;
  options.slews = {8e-12};
  options.loads = {1e-15};
  std::vector<CellSpec> specs;
  for (const auto& spec : standard_catalog()) {
    if (spec.sequential && spec.name == "DFF_X1") {
      specs.push_back(spec);
    }
  }
  ASSERT_EQ(specs.size(), 1u);
  const auto lib = characterize(specs, 300.0, options);
  ASSERT_EQ(lib.cells.size(), 1u);
  const auto& dff = lib.cells[0];
  EXPECT_TRUE(dff.is_sequential);
  ASSERT_EQ(dff.arcs.size(), 1u);
  EXPECT_EQ(dff.arcs[0].related_pin, "CK");
  // clk->q delay positive and sane.
  const double d = dff.arcs[0].cell_rise.lookup(8e-12, 1e-15);
  EXPECT_GT(d, 1e-12);
  EXPECT_LT(d, 300e-12);
}

}  // namespace
