#pragma once

#include <filesystem>
#include <string>

#include "cells/characterize.hpp"
#include "liberty/library.hpp"
#include "util/obs.hpp"
#include "util/timer.hpp"

namespace cryo::bench {

/// Directory for characterization caches and CSV outputs, created next to
/// the current working directory so repeated bench runs are fast.
inline std::filesystem::path output_dir() {
  const std::filesystem::path dir{"cryoeda_out"};
  std::filesystem::create_directories(dir);
  return dir;
}

/// Characterized full-catalog library at a corner, cached as a liberty
/// file under `cryoeda_out/` (the first run costs SPICE time per corner,
/// spread across CRYOEDA_THREADS workers; subsequent runs parse the
/// .lib — stale/corrupt caches are detected and re-characterized).
inline liberty::Library corner_library(double temperature_k) {
  const auto path =
      output_dir() /
      ("cryoeda_lib_" + std::to_string(static_cast<int>(temperature_k)) +
       "K.lib");
  util::ScopedTimer timer{
      "corner_library " +
      std::to_string(static_cast<int>(temperature_k)) + " K"};
  return cells::load_or_characterize(path.string(), cells::standard_catalog(),
                                     temperature_k);
}

inline std::string csv_path(const std::string& name) {
  return (output_dir() / name).string();
}

/// Serialize the run's observability registry to
/// `cryoeda_out/BENCH_<name>.json` (everything: meta, counters,
/// histograms, spans — the full diagnostic record). When `canonical` is
/// set, the deterministic *signoff* report (schema + quality gauges
/// only) is also written to `cryoeda_out/report.json` — the file
/// scripts/check_regression.py gates against — so only the headline
/// experiment (fig3_synthesis) should pass it. The signoff profile is
/// byte-identical between a cold run and a warm `util::ArtifactCache`
/// run (and across thread counts); wall-clock figures stay in the
/// BENCH_*.json file, which the CI wall-time advisory reads.
inline void write_bench_report(const std::string& name,
                               bool canonical = false) {
  util::obs::ReportOptions options;
  options.flow = name;
  util::obs::write_report(
      (output_dir() / ("BENCH_" + name + ".json")).string(), options);
  if (canonical) {
    util::obs::write_report((output_dir() / "report.json").string(),
                            util::obs::ReportOptions::signoff());
  }
}

}  // namespace cryo::bench
