#include "device/finfet.hpp"

#include <cmath>
#include <stdexcept>

namespace cryo::device {
namespace {

/// Numerically safe softplus: ln(1 + e^x).
double softplus(double x) {
  if (x > 30.0) {
    return x;
  }
  if (x < -30.0) {
    return std::exp(x);
  }
  return std::log1p(std::exp(x));
}

/// Logistic sigmoid, the derivative of softplus.
double sigmoid(double x) {
  if (x > 30.0) {
    return 1.0;
  }
  if (x < -30.0) {
    return std::exp(x);
  }
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

FinFetParams nominal_nfet_5nm() {
  FinFetParams p;
  p.polarity = Polarity::kN;
  p.name = "nfet_5nm";
  return p;  // struct defaults are the calibrated n-FET values
}

FinFetParams nominal_pfet_5nm() {
  FinFetParams p;
  p.polarity = Polarity::kP;
  p.name = "pfet_5nm";
  p.vth300 = 0.205;
  p.ideality = 1.16;
  p.band_tail_v = 6.0e-3;
  p.kvt = 0.60e-3;
  p.mu0 = 0.01220;  // weaker hole transport
  p.theta = 2.6;
  p.cov_per_fin = 5.5e-17;
  p.i_floor_per_fin = 1.8e-13;
  return p;
}

FinFetModel::FinFetModel(const FinFetParams& params, double temperature_k)
    : params_{params}, temperature_{temperature_k} {
  if (temperature_k <= 0.0 || temperature_k > 500.0) {
    throw std::invalid_argument{"FinFetModel: temperature out of range"};
  }
  vth_ = params_.vth300 +
         vth_shift(temperature_k, params_.kvt, params_.beta_vth);
  const double veff =
      effective_thermal_voltage(temperature_k, params_.band_tail_v);
  vte_ = params_.ideality * veff;
  const double mu =
      params_.mu0 * mobility_factor(temperature_k, params_.mu_r_inf);
  is_ = 2.0 * params_.ideality * mu * params_.cox *
        (params_.w_fin / params_.l_eff) * vte_ * vte_;
  theta_t_ = params_.theta / vsat_factor(temperature_k, params_.vsat_gain);
  cap_mult_ = cap_factor(temperature_k, params_.cap_coeff);
}

FinFetOp FinFetModel::evaluate(double vgs, double vds, int nfins) const {
  // EKV-flavoured unified charge-control model:
  //   F  = qf^2 - qr^2,  qf/qr = softplus of forward/reverse pinch-off
  //   I  = Is * F / (1 + theta * Vov) * (1 + lambda * Vds) + floor
  const double inv2vte = 1.0 / (2.0 * vte_);
  const double xf = (vgs - vth_) * inv2vte;
  const double xr = (vgs - vth_ - params_.ideality * vds) * inv2vte;
  const double qf = softplus(xf);
  const double qr = softplus(xr);
  const double sf = sigmoid(xf);
  const double sr = sigmoid(xr);

  const double f = qf * qf - qr * qr;
  const double df_dvgs = (qf * sf - qr * sr) / vte_;
  const double df_dvds = qr * sr * params_.ideality / vte_;

  const double denom = 1.0 + theta_t_ * 2.0 * vte_ * qf;
  const double ddenom_dvgs = theta_t_ * sf;

  const double clm = 1.0 + params_.lambda * vds;

  const double scale = is_ * static_cast<double>(nfins);
  FinFetOp op;
  op.ids = scale * f / denom * clm;
  op.gm = scale * clm * (df_dvgs * denom - f * ddenom_dvgs) / (denom * denom);
  op.gds = scale * (df_dvds * clm + f * params_.lambda) / denom;

  // Temperature-independent leakage floor (gate tunnelling + junction),
  // smooth and odd in Vds so it vanishes at Vds = 0.
  const double floor_scale =
      params_.i_floor_per_fin * static_cast<double>(nfins);
  const double vref = 0.05;
  const double t = std::tanh(vds / vref);
  op.ids += floor_scale * t;
  op.gds += floor_scale * (1.0 - t * t) / vref;
  return op;
}

double FinFetModel::cgg(int nfins) const {
  const double intrinsic = params_.cox * params_.w_fin * params_.l_eff;
  return (intrinsic + params_.cov_per_fin) * cap_mult_ *
         static_cast<double>(nfins);
}

double FinFetModel::cjunction(int nfins) const {
  return params_.cj_per_fin * static_cast<double>(nfins);
}

double FinFetModel::subthreshold_slope() const {
  return device::subthreshold_slope(temperature_, params_.ideality,
                                    params_.band_tail_v);
}

double FinFetModel::extract_vth_constant_current(double vds,
                                                 double icrit) const {
  double lo = -0.2;
  double hi = 1.2;
  if (ids(lo, vds) > icrit || ids(hi, vds) < icrit) {
    throw std::invalid_argument{
        "extract_vth_constant_current: icrit outside sweep range"};
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (ids(mid, vds) < icrit ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace cryo::device
