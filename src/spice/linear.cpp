#include "spice/linear.hpp"

#include <algorithm>
#include <cmath>

namespace cryo::spice {

void DenseMatrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

bool solve_in_place(DenseMatrix& a, std::vector<double>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    return false;
  }
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a.at(perm[col], col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a.at(perm[r], col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return false;
    }
    std::swap(perm[col], perm[pivot]);

    const double diag = a.at(perm[col], col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(perm[r], col) / diag;
      if (factor == 0.0) {
        continue;
      }
      a.at(perm[r], col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a.at(perm[r], c) -= factor * a.at(perm[col], c);
      }
      b[perm[r]] -= factor * b[perm[col]];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[perm[i]];
    for (std::size_t c = i + 1; c < n; ++c) {
      acc -= a.at(perm[i], c) * x[c];
    }
    x[i] = acc / a.at(perm[i], i);
  }
  b = std::move(x);
  return true;
}

}  // namespace cryo::spice
