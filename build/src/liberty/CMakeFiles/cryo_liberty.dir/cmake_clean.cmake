file(REMOVE_RECURSE
  "CMakeFiles/cryo_liberty.dir/cell.cpp.o"
  "CMakeFiles/cryo_liberty.dir/cell.cpp.o.d"
  "CMakeFiles/cryo_liberty.dir/function.cpp.o"
  "CMakeFiles/cryo_liberty.dir/function.cpp.o.d"
  "CMakeFiles/cryo_liberty.dir/nldm.cpp.o"
  "CMakeFiles/cryo_liberty.dir/nldm.cpp.o.d"
  "CMakeFiles/cryo_liberty.dir/parser.cpp.o"
  "CMakeFiles/cryo_liberty.dir/parser.cpp.o.d"
  "CMakeFiles/cryo_liberty.dir/writer.cpp.o"
  "CMakeFiles/cryo_liberty.dir/writer.cpp.o.d"
  "libcryo_liberty.a"
  "libcryo_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
