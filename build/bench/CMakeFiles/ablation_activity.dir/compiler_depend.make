# Empty compiler generated dependencies file for ablation_activity.
# This may be replaced when dependencies are built.
