#include "service/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <filesystem>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

#include "core/experiment.hpp"
#include "device/preset.hpp"
#include "epfl/benchmarks.hpp"
#include "spice/backend.hpp"
#include "logic/aiger.hpp"
#include "opt/cost.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"

namespace cryo::service {

namespace obs = util::obs;

namespace {

/// Cache-counter snapshot taken around one job; the reply carries the
/// delta, so a client can see whether its job was served warm. Exact
/// with a single worker; an approximation (other jobs' traffic bleeds
/// in) under concurrency — documented in the README.
struct CacheSnapshot {
  std::uint64_t hits, misses, stores;
  std::uint64_t scenario_hits, scenario_misses;
  std::uint64_t pass_hits, pass_misses;

  static CacheSnapshot take() {
    return {obs::counter("cache.hits").get(),
            obs::counter("cache.misses").get(),
            obs::counter("cache.stores").get(),
            obs::counter("cache.core.scenario.hits").get(),
            obs::counter("cache.core.scenario.misses").get(),
            obs::counter("cache.pass_hits").get(),
            obs::counter("cache.pass_misses").get()};
  }

  util::Json delta_since(const CacheSnapshot& before) const {
    util::Json json = util::Json::object();
    json["hits"] = util::Json{hits - before.hits};
    json["misses"] = util::Json{misses - before.misses};
    json["stores"] = util::Json{stores - before.stores};
    json["scenario_hits"] = util::Json{scenario_hits - before.scenario_hits};
    json["scenario_misses"] =
        util::Json{scenario_misses - before.scenario_misses};
    json["pass_hits"] = util::Json{pass_hits - before.pass_hits};
    json["pass_misses"] = util::Json{pass_misses - before.pass_misses};
    return json;
  }
};

util::Json op_ok_reply(const std::string& id, const std::string& op) {
  util::Json reply = util::Json::object();
  reply["id"] = util::Json{id};
  reply["status"] = util::Json{"ok"};
  reply["op"] = util::Json{op};
  return reply;
}

/// Best-effort "id" extraction for error replies to requests that fail
/// validation (the id itself may be the malformed part).
std::string id_of(const util::Json& json) {
  if (!json.is_object()) {
    return {};
  }
  const util::Json* id = json.find("id");
  if (id == nullptr || id->type() != util::Json::Type::kString) {
    return {};
  }
  return id->as_string();
}

/// Minimal read/write streambufs over raw file descriptors, so socket
/// clients go through the exact same serve() loop as stdin/stdout.
class FdInBuf : public std::streambuf {
public:
  explicit FdInBuf(int fd) : fd_{fd} {}

protected:
  int_type underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, buf_, sizeof(buf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(buf_[0]);
  }

private:
  int fd_;
  char buf_[4096];
};

class FdOutBuf : public std::streambuf {
public:
  explicit FdOutBuf(int fd) : fd_{fd} {}

protected:
  int_type overflow(int_type ch) override {
    if (ch == traits_type::eof()) {
      return traits_type::not_eof(ch);
    }
    const char c = traits_type::to_char_type(ch);
    ssize_t n;
    do {
      n = ::write(fd_, &c, 1);
    } while (n < 0 && errno == EINTR);
    // A half-closed peer (EPIPE) surfaces as a failed stream; serve()
    // keeps draining requests and simply cannot deliver the replies.
    return n == 1 ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    std::streamsize written = 0;
    while (written < count) {
      const ssize_t n = ::write(fd_, data + written, count - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      written += n;
    }
    return written;
  }

private:
  int fd_;
};

}  // namespace

Server::Server(ServeOptions options)
    : options_{std::move(options)},
      registry_{core::PassRegistry::global()},
      queue_{options_.threads} {
  if (options_.catalog.empty()) {
    options_.catalog = cells::standard_catalog();
  }
}

int Server::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_ && std::getline(in, line)) {
    dispatch(line, out);
    flush(queue_.drain_ready(), out);
  }
  flush(queue_.drain_all(), out);
  return 0;
}

int Server::serve_fd(int in_fd, int out_fd) {
  // A fully closed peer must surface as a failed write, not SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  FdInBuf inbuf{in_fd};
  FdOutBuf outbuf{out_fd};
  std::istream in{&inbuf};
  std::ostream out{&outbuf};
  return serve(in, out);
}

int Server::serve_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error{ErrorKind::kIo, "socket path '" + path +
                                    "' is empty or too long for AF_UNIX"};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw Error{ErrorKind::kIo,
                std::string{"cannot create AF_UNIX socket: "} +
                    std::strerror(errno)};
  }
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error{ErrorKind::kIo,
                "cannot bind/listen on '" + path + "': " + reason};
  }
  while (!shutdown_) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(listener);
      throw Error{ErrorKind::kIo,
                  std::string{"accept failed: "} + std::strerror(errno)};
    }
    serve_fd(conn, conn);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

void Server::flush(std::vector<util::Json> replies, std::ostream& out) {
  for (const util::Json& reply : replies) {
    out << reply.dump() << '\n';
  }
  out.flush();
}

void Server::dispatch(const std::string& line, std::ostream& out) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) {
    return;  // blank keep-alive line
  }
  if (line.size() > options_.max_line) {
    obs::counter("service.protocol_errors").add();
    queue_.submit_ready(error_reply(
        "", ErrorKind::kRecipe,
        "request line of " + std::to_string(line.size()) +
            " bytes exceeds the " + std::to_string(options_.max_line) +
            "-byte limit"));
    return;
  }
  util::Json json;
  try {
    json = util::Json::parse(line);
  } catch (const std::exception& e) {
    obs::counter("service.protocol_errors").add();
    queue_.submit_ready(error_reply("", ErrorKind::kRecipe,
                                    std::string{"malformed JSON: "} +
                                        e.what()));
    return;
  }
  JobRequest req;
  try {
    req = parse_request(json);
  } catch (const Error& e) {
    obs::counter("service.protocol_errors").add();
    queue_.submit_ready(error_reply(id_of(json), e.kind(), e.what()));
    return;
  }
  if (req.op == "ping") {
    queue_.submit_ready(op_ok_reply(req.id, "ping"));
  } else if (req.op == "stats") {
    // Barrier: the snapshot covers every previously-submitted job.
    flush(queue_.drain_all(), out);
    queue_.submit_ready(stats_reply(req.id));
  } else if (req.op == "shutdown") {
    // Barrier: every pending reply goes out before the acknowledgement.
    flush(queue_.drain_all(), out);
    flush({op_ok_reply(req.id, "shutdown")}, out);
    shutdown_ = true;
  } else if (req.op == "load_plugin") {
    // Barrier: jobs compiled against the old registry must finish
    // before it mutates (compiled pipelines hold Pass pointers).
    flush(queue_.drain_all(), out);
    queue_.submit_ready(load_plugin(req));
  } else {
    queue_.submit([this, req = std::move(req)] { return run_job(req); });
  }
}

util::Json Server::stats_reply(const std::string& id) const {
  util::Json reply = op_ok_reply(id, "stats");
  obs::ReportOptions options;
  options.flow = "cryoeda-serve";
  options.include_spans = false;
  options.include_histograms = false;
  reply["report"] = obs::report_json(options);
  return reply;
}

logic::Aig Server::resolve_design(const JobRequest& req) {
  if (!req.bench.empty()) {
    const std::lock_guard<std::mutex> lock{bench_mutex_};
    auto it = benches_.find(req.bench);
    if (it == benches_.end()) {
      logic::Aig aig;
      if (!epfl::find_benchmark(req.bench, aig)) {
        throw Error{ErrorKind::kRecipe,
                    "unknown benchmark '" + req.bench +
                        "' (see `cryoeda --help` for the built-in names)"};
      }
      it = benches_.emplace(req.bench, std::move(aig)).first;
    }
    return it->second;
  }
  logic::Aig design = logic::read_aiger_file(req.aiger_path);
  if (design.name().empty()) {
    design.set_name("user_design");
  }
  return design;
}

Server::CornerPtr Server::build_corner(const JobRequest& req,
                                       util::Budget* budget) {
  const obs::ScopedSpan span{"service.corner"};
  obs::counter("service.corners_built").add();
  const std::string lib_path = cells::default_lib_path(
      options_.lib_dir, device::resolve_preset(req.preset),
      spice::resolve_backend(req.backend).name(), req.temp, req.vdd);
  const auto dir = std::filesystem::path{lib_path}.parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  cells::CharOptions char_options = options_.char_options;
  char_options.vdd = req.vdd;
  char_options.preset = device::resolve_preset(req.preset);
  char_options.backend = req.backend;
  char_options.budget = budget;
  auto corner = std::make_shared<Corner>();
  corner->library =
      cells::load_or_characterize(lib_path, options_.catalog, req.temp,
                                  char_options);
  corner->matcher.emplace(corner->library);
  return corner;
}

Server::CornerPtr Server::corner(const JobRequest& req,
                                 util::Budget* budget, bool& warm) {
  const std::string key = cells::default_lib_path(
      options_.lib_dir, device::resolve_preset(req.preset),
      spice::resolve_backend(req.backend).name(), req.temp, req.vdd);
  // Bounded retry: a waiter that inherited another job's failure (e.g.
  // that job's budget expired mid-characterization) re-enters and may
  // become the builder itself.
  for (int attempt = 0;; ++attempt) {
    std::promise<CornerPtr> promise;
    std::shared_future<CornerPtr> future;
    bool builder = false;
    {
      const std::lock_guard<std::mutex> lock{corner_mutex_};
      auto it = corners_.find(key);
      if (it == corners_.end()) {
        future = promise.get_future().share();
        corners_.emplace(key, future);
        builder = true;
        warm = false;
      } else {
        future = it->second;
        warm = future.wait_for(std::chrono::seconds{0}) ==
               std::future_status::ready;
      }
    }
    if (builder) {
      try {
        CornerPtr corner = build_corner(req, budget);
        promise.set_value(corner);
        return corner;
      } catch (...) {
        // Evict the failed entry so the next job retries, then hand the
        // failure to any waiters already parked on the future.
        {
          const std::lock_guard<std::mutex> lock{corner_mutex_};
          corners_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
      }
    }
    try {
      return future.get();
    } catch (...) {
      if (attempt >= 2) {
        throw;
      }
    }
  }
}

util::Json Server::run_job(const JobRequest& req) {
  const obs::ScopedSpan span{"service.job:" +
                             (req.id.empty() ? req.bench + req.aiger_path
                                             : req.id)};
  obs::counter("service.jobs").add();
  try {
    core::validate(req.flow);
    util::Budget budget;
    if (req.deadline_s > 0.0) {
      budget.set_deadline_in(req.deadline_s);
    }
    const std::string recipe = req.recipe.empty()
                                   ? core::canonical_recipe(req.flow)
                                   : req.recipe;
    // Compile first (against this daemon's registry, which may carry
    // plugins): a typo must not cost a characterization.
    const std::string canonical =
        core::Pipeline::parse(recipe, registry_).to_string();
    const logic::Aig design = resolve_design(req);
    bool corner_warm = false;
    const CornerPtr corner_ptr = corner(req, &budget, corner_warm);

    core::ExperimentOptions experiment;
    experiment.flow = req.flow;
    core::ScenarioSpec spec{opt::short_name(req.flow.priority),
                            req.flow.priority, recipe};
    const CacheSnapshot before = CacheSnapshot::take();
    const core::ScenarioResult result =
        core::run_scenario(design, *corner_ptr->matcher, experiment, spec,
                           &budget, &registry_);
    const CacheSnapshot after = CacheSnapshot::take();
    return ok_reply(req.id,
                    job_report_json(design, req.temp, req.vdd,
                                    device::resolve_preset(req.preset).name,
                                    spice::resolve_backend(req.backend)
                                        .identity(),
                                    canonical, result),
                    after.delta_since(before), corner_warm);
  } catch (const core::RecipeError& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, ErrorKind::kRecipe, e.what());
  } catch (const Error& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, e.kind(), e.what());
  } catch (const std::exception& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, ErrorKind::kInternal, e.what());
  }
}

util::Json Server::load_plugin(const JobRequest& req) {
  try {
    if (registry_.find(req.plugin_name) != nullptr) {
      throw Error{ErrorKind::kRecipe,
                  "pass '" + req.plugin_name +
                      "' already exists; plugins may not redefine passes "
                      "(compiled pipelines hold pointers to them)"};
    }
    if (req.plugin_name.find_first_of(" \t;-") != std::string::npos) {
      throw Error{ErrorKind::kRecipe,
                  "plugin name '" + req.plugin_name +
                      "' must not contain whitespace, ';', or '-'"};
    }
    const core::Pipeline compiled =
        core::Pipeline::parse(req.plugin_script, registry_);
    core::Pass pass;
    pass.name = req.plugin_name;
    for (const core::PassInvocation& step : compiled.sequence()) {
      if (!step.pass->aig_transform || step.pass->needs_luts ||
          step.pass->makes_luts) {
        throw Error{ErrorKind::kRecipe,
                    "load_plugin scripts compose AIG-transform passes "
                    "only; '" +
                        step.pass->name + "' is not one"};
      }
      pass.uses_sat = pass.uses_sat || step.pass->uses_sat;
      pass.budget_aware = pass.budget_aware || step.pass->budget_aware;
    }
    const std::string canonical = compiled.to_string();
    pass.help = req.plugin_help.empty() ? "plugin: " + canonical
                                        : req.plugin_help;
    pass.aig_transform = true;
    pass.cacheable = false;  // body is daemon-local, not keyable state
    // The captured invocations point into this server's registry map;
    // node-based std::map keeps them stable, and redefinition is
    // rejected above, so they stay valid for the daemon's lifetime.
    pass.run = [sequence = compiled.sequence()](
                   core::FlowState& state, const core::PassArgs&) {
      for (const core::PassInvocation& step : sequence) {
        util::Budget& budget =
            state.budget != nullptr ? *state.budget : util::Budget::global();
        budget.check_cancelled("service.plugin");
        const obs::ScopedSpan step_span{"pass." + step.pass->name};
        step.pass->run(state, step.args);
      }
    };
    registry_.add(std::move(pass));
    obs::counter("service.plugins_loaded").add();
    util::Json reply = op_ok_reply(req.id, "load_plugin");
    reply["pass"] = util::Json{req.plugin_name};
    reply["expands_to"] = util::Json{canonical};
    return reply;
  } catch (const core::RecipeError& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, ErrorKind::kRecipe, e.what());
  } catch (const Error& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, e.kind(), e.what());
  } catch (const std::exception& e) {
    obs::counter("service.job_errors").add();
    return error_reply(req.id, ErrorKind::kInternal, e.what());
  }
}

}  // namespace cryo::service
