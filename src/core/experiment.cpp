#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace cryo::core {

namespace obs = util::obs;

double CircuitComparison::power_saving_pad() const {
  return 1.0 - pad.total_power / baseline.total_power;
}
double CircuitComparison::power_saving_pda() const {
  return 1.0 - pda.total_power / baseline.total_power;
}
double CircuitComparison::delay_overhead_pad() const {
  return pad.delay / baseline.delay - 1.0;
}
double CircuitComparison::delay_overhead_pda() const {
  return pda.delay / baseline.delay - 1.0;
}

namespace {

const char* scenario_name(opt::CostPriority priority) {
  switch (priority) {
    case opt::CostPriority::kPowerAreaDelay: return "pad";
    case opt::CostPriority::kPowerDelayArea: return "pda";
    default: return "baseline";
  }
}

ScenarioResult run_scenario(const logic::Aig& aig,
                            const map::CellMatcher& matcher,
                            const ExperimentOptions& options,
                            opt::CostPriority priority) {
  const obs::ScopedSpan span{std::string{"core.scenario:"} + aig.name() + ":" +
                             scenario_name(priority)};
  obs::counter("core.scenarios_run").add();
  FlowOptions flow = options.flow;
  flow.priority = priority;
  const FlowResult result = synthesize(aig, matcher, flow);
  const sta::StaResult signoff = sta::analyze(result.netlist, options.sta);
  ScenarioResult out;
  out.priority = priority;
  out.power = signoff.power;
  out.total_power = signoff.power.total();
  out.delay = signoff.critical_delay;
  out.area = result.netlist.total_area();
  out.gates = result.netlist.gate_count();
  return out;
}

/// Rescale the dynamic power categories of a scenario from the analysis
/// clock to the normalized clock (dynamic power is proportional to the
/// clock frequency; leakage is clock-independent).
void renormalize(ScenarioResult& s, double analysis_clock,
                 double normalized_clock) {
  const double scale = analysis_clock / normalized_clock;
  s.power.internal *= scale;
  s.power.switching *= scale;
  s.total_power = s.power.total();
}

}  // namespace

CircuitComparison compare_circuit(const epfl::Benchmark& benchmark,
                                  const map::CellMatcher& matcher,
                                  const ExperimentOptions& options) {
  CircuitComparison cmp;
  cmp.circuit = benchmark.name;
  // The three scenarios are independent synthesis runs; when this is the
  // outermost parallel level (e.g. a single-circuit ablation) they run
  // concurrently, otherwise inline on the per-benchmark worker.
  const opt::CostPriority priorities[] = {
      opt::CostPriority::kBaselinePowerAware,
      opt::CostPriority::kPowerAreaDelay,
      opt::CostPriority::kPowerDelayArea};
  const auto scenarios = util::parallel_map(
      3,
      [&](std::size_t i) {
        return run_scenario(benchmark.aig, matcher, options, priorities[i]);
      },
      options.threads);
  cmp.baseline = scenarios[0];
  cmp.pad = scenarios[1];
  cmp.pda = scenarios[2];

  // Footnote 1: every variant's power is reported at the clock period of
  // the slowest variant of the same circuit, so faster variants are not
  // penalized with proportionally higher clock power.
  cmp.clock_period =
      std::max({cmp.baseline.delay, cmp.pad.delay, cmp.pda.delay});
  renormalize(cmp.baseline, options.sta.clock_period, cmp.clock_period);
  renormalize(cmp.pad, options.sta.clock_period, cmp.clock_period);
  renormalize(cmp.pda, options.sta.clock_period, cmp.clock_period);

  // Per-scenario signoff roll-up: these gauges are the quality surface
  // the CI regression gate (scripts/check_regression.py) compares, so
  // they use the *normalized* figures that the paper tables report.
  for (const ScenarioResult* s : {&cmp.baseline, &cmp.pad, &cmp.pda}) {
    const std::string prefix =
        "experiment." + cmp.circuit + "." + scenario_name(s->priority) + ".";
    obs::gauge(prefix + "power_w").set(s->total_power);
    obs::gauge(prefix + "delay_s", obs::Unit::kSeconds).set(s->delay);
    obs::gauge(prefix + "area_um2").set(s->area);
    obs::gauge(prefix + "gates").set(static_cast<double>(s->gates));
  }
  return cmp;
}

std::vector<CircuitComparison> run_synthesis_comparison(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const ExperimentOptions& options) {
  const obs::ScopedSpan span{"core.synthesis_comparison"};
  // One synthesis+STA pipeline per benchmark; rows are written by suite
  // index, so the table ordering (and every value in it) matches the
  // serial run for any thread count.
  return util::parallel_map(
      suite.size(),
      [&](std::size_t i) {
        const auto& benchmark = suite[i];
        if (options.verbose) {
          std::fprintf(stderr, "synthesizing %s (%u ANDs)...\n",
                       benchmark.name.c_str(), benchmark.aig.num_ands());
        }
        return compare_circuit(benchmark, matcher, options);
      },
      options.threads);
}

}  // namespace cryo::core
