#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cryo::util {

/// Streaming 64-bit FNV-1a hash. Deterministic across platforms and
/// process runs (unlike std::hash), so it is safe to persist — the
/// artifact cache uses it both for content addresses and for entry
/// checksums, and several layers use it to fingerprint large inputs
/// (AIGs, characterized libraries) without serializing them.
class Fnv1a {
public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Fnv1a& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ = (state_ ^ p[i]) * kPrime;
    }
    return *this;
  }

  Fnv1a& str(std::string_view s) {
    bytes(s.data(), s.size());
    // Length separator so {"ab","c"} and {"a","bc"} differ.
    return u64(s.size());
  }

  Fnv1a& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  Fnv1a& i64(std::int64_t v) { return bytes(&v, sizeof v); }

  /// Hashes the IEEE-754 bit pattern: exact, no formatting involved.
  /// Normalizes -0.0 to +0.0 so equal values hash equally.
  Fnv1a& f64(double v) {
    std::uint64_t bits = 0;
    const double normalized = v == 0.0 ? 0.0 : v;
    std::memcpy(&bits, &normalized, sizeof bits);
    return u64(bits);
  }

  std::uint64_t value() const { return state_; }

  /// 16-digit lower-case hex of the current state.
  std::string hex() const;

  static std::uint64_t of(std::string_view s) {
    return Fnv1a{}.str(s).value();
  }

private:
  std::uint64_t state_ = kOffset;
};

/// 16-digit lower-case hex of an arbitrary 64-bit value.
inline std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

inline std::string Fnv1a::hex() const { return hex64(state_); }

}  // namespace cryo::util
