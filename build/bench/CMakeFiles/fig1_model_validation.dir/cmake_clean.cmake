file(REMOVE_RECURSE
  "CMakeFiles/fig1_model_validation.dir/fig1_model_validation.cpp.o"
  "CMakeFiles/fig1_model_validation.dir/fig1_model_validation.cpp.o.d"
  "fig1_model_validation"
  "fig1_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
