#pragma once

#include <stdexcept>
#include <vector>

namespace cryo::spice {

/// Piecewise-linear waveform v(t), the stimulus format of the voltage
/// sources (matches SPICE's PWL sources used by characterization decks).
class Pwl {
public:
  Pwl() = default;

  /// Constant waveform.
  static Pwl constant(double value) {
    Pwl w;
    w.points_.push_back({0.0, value});
    return w;
  }

  /// A single ramp from v0 to v1 starting at t_start over t_ramp seconds.
  static Pwl ramp(double v0, double v1, double t_start, double t_ramp) {
    Pwl w;
    if (t_ramp <= 0.0) {
      throw std::invalid_argument{"Pwl::ramp: ramp time must be positive"};
    }
    w.points_.push_back({0.0, v0});
    w.points_.push_back({t_start, v0});
    w.points_.push_back({t_start + t_ramp, v1});
    return w;
  }

  void add_point(double t, double v) {
    if (!points_.empty() && t < points_.back().t) {
      throw std::invalid_argument{"Pwl: points must be time-ordered"};
    }
    points_.push_back({t, v});
  }

  /// Evaluate at time t (clamped to first/last value outside the range).
  double at(double t) const {
    if (points_.empty()) {
      return 0.0;
    }
    if (t <= points_.front().t) {
      return points_.front().v;
    }
    if (t >= points_.back().t) {
      return points_.back().v;
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (t <= points_[i].t) {
        const auto& lo = points_[i - 1];
        const auto& hi = points_[i];
        const double frac = (t - lo.t) / (hi.t - lo.t);
        return lo.v + frac * (hi.v - lo.v);
      }
    }
    return points_.back().v;
  }

  bool empty() const { return points_.empty(); }

private:
  struct Point {
    double t;
    double v;
  };
  std::vector<Point> points_;
};

}  // namespace cryo::spice
