#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace cryo::util {
namespace {

thread_local bool tl_in_worker = false;

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("CRYOEDA_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, resolve_threads(threads));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::in_worker() { return tl_in_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{
      static_cast<int>(std::thread::hardware_concurrency())};
  return pool;
}

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and no work left
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  int threads) {
  if (n == 0) {
    return;
  }
  const int k = resolve_threads(threads);
  if (k <= 1 || n == 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  ThreadPool& pool = ThreadPool::shared();
  // The caller participates, so cap helper tasks at (threads - 1) and at
  // the remaining indices; concurrency never exceeds `k` regardless of
  // how large the shared pool is.
  const std::size_t want =
      std::min(n, static_cast<std::size_t>(
                      std::min(k, pool.size() + 1)));
  const int helpers = static_cast<int>(want) - 1;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mutex};
        if (!error) {
          error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::mutex done_mutex;
  std::condition_variable done_cv;
  int remaining = helpers;
  for (int h = 0; h < helpers; ++h) {
    pool.submit([&] {
      drain();
      std::lock_guard<std::mutex> lock{done_mutex};
      if (--remaining == 0) {
        done_cv.notify_one();
      }
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock{done_mutex};
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace cryo::util
