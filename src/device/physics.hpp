#pragma once

/// Cryogenic semiconductor physics used by the FinFET compact model.
///
/// The temperature dependences implemented here follow the modelling
/// approach of Pahwa et al., "Compact modeling of temperature effects in
/// FDSOI and FinFET devices down to cryogenic temperatures" (TED 2021),
/// which the paper uses to extend BSIM-CMG:
///
///  * the Boltzmann thermal voltage kT/q no longer sets the subthreshold
///    slope at deep-cryogenic temperatures — exponential band tails in the
///    density of states impose a floor, modelled as an *effective* thermal
///    voltage that saturates at the band-tail width;
///  * the threshold voltage increases as the Fermi level moves with
///    temperature (≈ +0.1 V from 300 K to 10 K, saturating at low T);
///  * carrier mobility improves as phonon scattering freezes out, but
///    saturates at low temperature where Coulomb/surface-roughness
///    scattering dominates (≈ +58 % at 10 K, per cold-FinFET measurements);
///  * saturation velocity rises mildly;
///  * the effective gate capacitance drops slightly (band-tail shift of the
///    surface potential).

namespace cryo::device {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Reference (room) temperature [K].
inline constexpr double kRoomTemperature = 300.0;

/// Boltzmann thermal voltage kT/q [V].
double thermal_voltage(double temperature_k);

/// Band-tail–limited effective thermal voltage [V].
///
/// v_eff = Wt / tanh(Wt / (kT/q)). For kT/q >> Wt this reduces to the
/// Boltzmann value; for T -> 0 it saturates at the band-tail width Wt.
/// This is what makes the subthreshold slope floor out near ~15 mV/dec at
/// 10 K instead of collapsing to the (unphysical) 2 mV/dec Boltzmann limit.
double effective_thermal_voltage(double temperature_k, double band_tail_v);

/// Threshold-voltage shift relative to 300 K [V] (positive at cryo).
///
/// dVth = kvt * (300 - T) * (1 - beta * (300 - T) / 600), a linear rise
/// with mild saturation toward the lowest temperatures.
double vth_shift(double temperature_k, double kvt, double beta);

/// Mobility multiplier relative to the phonon-limited scale.
///
/// Matthiessen combination of phonon-limited mobility (∝ T^-1.5) and a
/// temperature-independent term (surface roughness / Coulomb):
///   mu(T) = mu0 / ((T/300)^1.5 + 1/r_inf)
/// `r_inf` sets the low-temperature saturation level.
double mobility_factor(double temperature_k, double r_inf);

/// Saturation-velocity multiplier relative to 300 K (mild increase at cryo).
double vsat_factor(double temperature_k, double vsat_gain);

/// Gate-capacitance multiplier relative to 300 K (slightly < 1 at cryo).
double cap_factor(double temperature_k, double cap_coeff);

/// Subthreshold slope [V/decade] for ideality n at temperature T.
double subthreshold_slope(double temperature_k, double ideality,
                          double band_tail_v);

}  // namespace cryo::device
