file(REMOVE_RECURSE
  "CMakeFiles/qubit_controller.dir/qubit_controller.cpp.o"
  "CMakeFiles/qubit_controller.dir/qubit_controller.cpp.o.d"
  "qubit_controller"
  "qubit_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubit_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
