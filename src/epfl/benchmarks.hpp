#pragma once

#include <string>
#include <vector>

#include "logic/aig.hpp"

namespace cryo::epfl {

/// One benchmark circuit.
struct Benchmark {
  std::string name;
  bool arithmetic = false;  ///< EPFL arithmetic vs random/control class
  logic::Aig aig;
};

/// Substitution note (DESIGN.md §1): the original EPFL suite files are
/// not redistributable inside this repository's offline build, so each
/// circuit is regenerated structurally: same name, same functional
/// archetype (adder, barrel shifter, divider, …, arbiter, voter, …), at
/// sizes that keep the full three-scenario synthesis evaluation tractable
/// on one core. The generators below are deterministic.

// --- arithmetic class ---
logic::Aig make_adder(unsigned bits = 64);
logic::Aig make_bar(unsigned bits = 64);          ///< barrel shifter
logic::Aig make_div(unsigned bits = 16);          ///< restoring divider
logic::Aig make_hyp(unsigned iterations = 8);     ///< hyperbolic CORDIC (lite)
logic::Aig make_log2(unsigned bits = 32);
logic::Aig make_max(unsigned bits = 64, unsigned words = 4);
logic::Aig make_multiplier(unsigned bits = 16);
logic::Aig make_sin(unsigned bits = 12);          ///< circular CORDIC
logic::Aig make_sqrt(unsigned bits = 24);
logic::Aig make_square(unsigned bits = 20);

// --- random/control class ---
logic::Aig make_arbiter(unsigned requesters = 32);
logic::Aig make_cavlc();
logic::Aig make_ctrl();
logic::Aig make_dec(unsigned bits = 7);           ///< bits -> 2^bits decoder
logic::Aig make_i2c();
logic::Aig make_int2float(unsigned bits = 16);
logic::Aig make_mem_ctrl();
logic::Aig make_priority(unsigned bits = 64);
logic::Aig make_router(unsigned ports = 8);
logic::Aig make_voter(unsigned inputs = 63);

/// The complete suite (10 arithmetic + 10 control), in the paper's order.
std::vector<Benchmark> epfl_suite();

/// A reduced suite for fast tests (a few small circuits).
std::vector<Benchmark> mini_suite();

/// All benchmark names resolvable by find_benchmark(), mini suite first.
std::vector<std::string> benchmark_names();

/// Construct a single named benchmark (mini or full suite) without
/// building the rest of the suite. Returns false if the name is unknown.
bool find_benchmark(const std::string& name, logic::Aig& out);

}  // namespace cryo::epfl
