#include "util/artifact_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "util/faultinject.hpp"
#include "util/hash.hpp"
#include "util/obs.hpp"

namespace cryo::util {

namespace fs = std::filesystem;

namespace {

/// On-disk entry format version (independent of kCacheSchemaVersion,
/// which governs key semantics): a one-line header
///   cryoeda-cache-v1 <16-hex fnv1a of payload> <payload bytes>\n
/// followed by exactly the payload and one trailing newline.
constexpr std::string_view kMagic = "cryoeda-cache-v1";

void count(std::string_view stage, const char* what) {
  obs::counter(std::string{"cache."} + std::string{what}).add();
  obs::counter("cache." + std::string{stage} + "." + what).add();
}

std::string unique_temp_name(const std::string& key) {
  static std::atomic<std::uint64_t> sequence{0};
  std::ostringstream name;
  name << ".tmp-" << key << "-" << ::getpid() << "-"
       << sequence.fetch_add(1, std::memory_order_relaxed);
  return name.str();
}

/// Outcome of one raw I/O attempt. Transient failures (EINTR/EAGAIN,
/// short writes, injected faults) are worth retrying; hard failures
/// (ENOSPC, EACCES, ...) are not.
enum class IoStatus { kOk, kAbsent, kTransient, kHard };

constexpr int kMaxIoRetries = 3;

/// Run `attempt` until it stops reporting kTransient, retrying up to
/// kMaxIoRetries times with bounded exponential backoff (1/2/4 ms).
/// Each retry bumps `cache.retries`.
template <typename AttemptFn>
IoStatus with_retries(AttemptFn&& attempt) {
  IoStatus status = attempt();
  for (int retry = 0; status == IoStatus::kTransient && retry < kMaxIoRetries;
       ++retry) {
    obs::counter("cache.retries").add();
    std::this_thread::sleep_for(std::chrono::milliseconds{1 << retry});
    status = attempt();
  }
  return status;
}

IoStatus read_once(const fs::path& path, std::string& out) {
  if (faultinject::should_fail("cache.read")) {
    return IoStatus::kTransient;
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return IoStatus::kAbsent;
    }
    return errno == EINTR || errno == EAGAIN ? IoStatus::kTransient
                                             : IoStatus::kHard;
  }
  out.clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n > 0) {
      out.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      ::close(fd);
      return IoStatus::kOk;
    }
    if (errno == EINTR) {
      continue;
    }
    const bool transient = errno == EAGAIN;
    ::close(fd);
    return transient ? IoStatus::kTransient : IoStatus::kHard;
  }
}

IoStatus write_once(const fs::path& path, std::string_view data) {
  if (faultinject::should_fail("cache.write")) {
    return IoStatus::kTransient;
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return errno == EINTR || errno == EAGAIN ? IoStatus::kTransient
                                             : IoStatus::kHard;
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // A short write (n == 0) or EAGAIN is transient; anything else
    // (ENOSPC, EIO, ...) is hard.
    const bool transient = n == 0 || errno == EAGAIN;
    ::close(fd);
    return transient ? IoStatus::kTransient : IoStatus::kHard;
  }
  return ::close(fd) == 0 ? IoStatus::kOk : IoStatus::kHard;
}

/// Move a corrupt entry aside for post-mortem instead of deleting it:
/// rename into `<root>/quarantine/<stage>-<key>.json` (remove as a
/// fallback if the rename itself fails) and bump `cache.quarantined`.
void quarantine_entry(const fs::path& root, std::string_view stage,
                      const std::string& key, const fs::path& path) {
  std::error_code ec;
  const fs::path dir = root / "quarantine";
  fs::create_directories(dir, ec);
  const fs::path dest = dir / (std::string{stage} + "-" + key + ".json");
  fs::rename(path, dest, ec);
  if (ec) {
    fs::remove(path, ec);
  }
  obs::counter("cache.quarantined").add();
}

}  // namespace

ArtifactCache::ArtifactCache(Config config) : config_{std::move(config)} {
  approx_bytes_ = scan_bytes();
}

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache{env_config()};
  return cache;
}

ArtifactCache::Config ArtifactCache::env_config() {
  Config config;
  if (const char* env = std::getenv("CRYOEDA_CACHE")) {
    config.enabled = std::string_view{env} != "0";
  }
  if (const char* env = std::getenv("CRYOEDA_CACHE_DIR")) {
    if (*env != '\0') {
      config.root = env;
    }
  }
  if (const char* env = std::getenv("CRYOEDA_CACHE_MAX_MB")) {
    char* end = nullptr;
    const long long mb = std::strtoll(env, &end, 10);
    if (end != env && mb > 0) {
      config.max_bytes = static_cast<std::uint64_t>(mb) << 20;
    }
  }
  return config;
}

void ArtifactCache::configure(Config config) {
  const std::lock_guard<std::mutex> evict_lock{evict_mutex_};
  const std::lock_guard<std::mutex> bytes_lock{bytes_mutex_};
  config_ = std::move(config);
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it{config_.root, ec}, end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  approx_bytes_ = total;
}

std::string ArtifactCache::key(std::string_view stage, const Json& inputs) {
  Fnv1a hash;
  hash.i64(kCacheSchemaVersion);
  hash.str(stage);
  hash.str(inputs.dump(0));
  return hash.hex();
}

fs::path ArtifactCache::entry_path(std::string_view stage,
                                   const std::string& key) const {
  return config_.root / fs::path{std::string{stage}} / (key + ".json");
}

std::optional<Json> ArtifactCache::load(std::string_view stage,
                                        const std::string& key) {
  if (!config_.enabled) {
    return std::nullopt;
  }
  const fs::path path = entry_path(stage, key);
  std::string raw;
  const IoStatus status = with_retries([&] { return read_once(path, raw); });
  if (status != IoStatus::kOk) {
    // Absent is the ordinary cold-cache miss; a read that stayed
    // transient through all retries or failed hard also degrades to a
    // miss (the stage recomputes) but is counted as an error.
    if (status != IoStatus::kAbsent) {
      obs::counter("cache.errors").add();
    }
    count(stage, "misses");
    return std::nullopt;
  }
  if (!raw.empty() && faultinject::should_fail("cache.corrupt")) {
    raw[raw.size() / 2] ^= 0x20;  // deterministic single-byte bit flip
  }

  auto corrupt = [&]() -> std::optional<Json> {
    obs::counter("cache.corrupt").add();
    quarantine_entry(config_.root, stage, key, path);
    count(stage, "misses");
    return std::nullopt;
  };

  const std::size_t header_end = raw.find('\n');
  if (header_end == std::string::npos) {
    return corrupt();
  }
  std::istringstream header{raw.substr(0, header_end)};
  std::string magic;
  std::string checksum;
  std::size_t payload_size = 0;
  if (!(header >> magic >> checksum >> payload_size) || magic != kMagic) {
    return corrupt();
  }
  // Strict framing: exactly the declared payload plus one trailing
  // newline, so both truncation and appended garbage are caught even
  // when the checksum of the prefix happens to survive.
  if (raw.size() != header_end + 1 + payload_size + 1 ||
      raw.back() != '\n') {
    return corrupt();
  }
  const std::string_view payload{raw.data() + header_end + 1, payload_size};
  if (Fnv1a{}.bytes(payload.data(), payload.size()).hex() != checksum) {
    return corrupt();
  }
  Json value;
  try {
    value = Json::parse(std::string{payload});
  } catch (const std::exception&) {
    return corrupt();
  }

  // Refresh the LRU timestamp; best effort (a concurrent evictor may
  // have removed the file already).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  count(stage, "hits");
  return value;
}

void ArtifactCache::store(std::string_view stage, const std::string& key,
                          const Json& value) {
  if (!config_.enabled) {
    return;
  }
  const fs::path path = entry_path(stage, key);
  const std::string payload = value.dump(0);

  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  const fs::path temp = path.parent_path() / unique_temp_name(key);
  std::ostringstream framed;
  framed << kMagic << ' '
         << Fnv1a{}.bytes(payload.data(), payload.size()).hex() << ' '
         << payload.size() << '\n'
         << payload << '\n';
  const std::string content = framed.str();
  const IoStatus status =
      with_retries([&] { return write_once(temp, content); });
  if (status != IoStatus::kOk) {
    obs::counter("cache.errors").add();
    fs::remove(temp, ec);
    return;
  }
  fs::rename(temp, path, ec);
  if (ec) {
    obs::counter("cache.errors").add();
    fs::remove(temp, ec);
    return;
  }
  count(stage, "stores");

  bool over_cap = false;
  {
    const std::lock_guard<std::mutex> lock{bytes_mutex_};
    approx_bytes_ += payload.size() + 64;  // header + payload
    over_cap = approx_bytes_ > config_.max_bytes;
  }
  if (over_cap) {
    evict_to_cap();
  }
}

std::uint64_t ArtifactCache::scan_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it{config_.root, ec}, end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  return total;
}

std::size_t ArtifactCache::evict_to_cap() {
  if (!config_.enabled) {
    return 0;
  }
  const std::lock_guard<std::mutex> lock{evict_mutex_};

  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it{config_.root, ec}, end;
       !ec && it != end; it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec)) {
      continue;
    }
    Entry entry;
    entry.path = it->path();
    entry.mtime = fs::last_write_time(entry.path, fec);
    entry.size = fs::file_size(entry.path, fec);
    if (!fec) {
      total += entry.size;
      entries.push_back(std::move(entry));
    }
  }

  std::size_t evicted = 0;
  if (total > config_.max_bytes) {
    // Oldest-used first; path as tie-break keeps the pass deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    const std::uint64_t target = config_.max_bytes - config_.max_bytes / 4;
    for (const Entry& entry : entries) {
      if (total <= target) {
        break;
      }
      std::error_code rec;
      if (fs::remove(entry.path, rec) && !rec) {
        total -= std::min(total, entry.size);
        ++evicted;
      }
    }
    obs::counter("cache.evictions").add(evicted);
  }

  const std::lock_guard<std::mutex> bytes_lock{bytes_mutex_};
  approx_bytes_ = total;
  return evicted;
}

}  // namespace cryo::util
