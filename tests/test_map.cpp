#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "epfl/benchmarks.hpp"
#include "liberty/function.hpp"
#include "logic/simulate.hpp"
#include "logic/tt.hpp"
#include "map/mapper.hpp"
#include "sat/sweep.hpp"
#include "util/rng.hpp"

namespace {

using cryo::logic::Aig;
using namespace cryo::map;

/// Shared characterized mini-library (built once for the whole file).
class MapTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cryo::cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    lib_ = new cryo::liberty::Library(
        cryo::cells::characterize(cryo::cells::mini_catalog(), 10.0, options));
    matcher_ = new CellMatcher(*lib_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete lib_;
    matcher_ = nullptr;
    lib_ = nullptr;
  }
  static cryo::liberty::Library* lib_;
  static CellMatcher* matcher_;
};

cryo::liberty::Library* MapTest::lib_ = nullptr;
CellMatcher* MapTest::matcher_ = nullptr;

TEST_F(MapTest, MatcherFindsBasicFunctions) {
  // AND2 (tt 0x8 over 2 vars) must be implementable.
  EXPECT_FALSE(matcher_->matches(0x8, 2).empty());
  // NAND2 directly.
  EXPECT_FALSE(matcher_->matches(0x7, 2).empty());
  // XOR2.
  EXPECT_FALSE(matcher_->matches(0x6, 2).empty());
  // MUX (tt 0xCA over (A,B,S)).
  EXPECT_FALSE(matcher_->matches(0xCA, 3).empty());
  EXPECT_NE(matcher_->inverter(), nullptr);
  EXPECT_NE(matcher_->buffer(), nullptr);
}

TEST_F(MapTest, MatcherHandlesPermutedAndPhasedVariants) {
  // !(A) & B (tt over (A,B): minterm A=0,B=1 -> bit 2): 0x4.
  // NAND/NOR/AOI with phases can realize it.
  EXPECT_FALSE(matcher_->matches(0x4, 2).empty());
}

TEST_F(MapTest, MatcherBindingsRealizeTheTargetFunction) {
  // Every match returned for a function must, when the cell's own truth
  // table is transformed through the match's pin binding, reproduce the
  // target exactly — this exercises the canonicalize + compose path end
  // to end against the library.
  cryo::util::Rng rng{91};
  unsigned matched = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(3));
    const std::uint64_t tt = rng.next_u64() & cryo::logic::tt6_mask(n);
    for (const Match& m : matcher_->matches(tt, n)) {
      ++matched;
      const auto inputs = m.cell->input_names();
      ASSERT_EQ(inputs.size(), n);
      const std::uint64_t f =
          cryo::liberty::function_truth_table(m.cell->output_pin()->function,
                                              inputs);
      EXPECT_EQ(cryo::logic::tt6_transform(f, n, m.perm, m.input_phase,
                                           m.out_invert),
                tt)
          << "cell " << m.cell->name << " tt 0x" << std::hex << tt;
    }
  }
  EXPECT_GT(matched, 0u);
}

TEST_F(MapTest, MatcherAgreesAcrossNpnOrbit) {
  // NPN-equivalent functions must see the same match count (the class
  // table is keyed by the invariant signature).
  cryo::util::Rng rng{93};
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(3));
    const std::uint64_t tt = rng.next_u64() & cryo::logic::tt6_mask(n);
    std::vector<unsigned> perm(n);
    for (unsigned i = 0; i < n; ++i) {
      perm[i] = i;
    }
    for (unsigned i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
    const unsigned phase =
        static_cast<unsigned>(rng.next_u64()) & ((1u << n) - 1u);
    const bool out = rng.next_bool();
    const std::uint64_t other =
        cryo::logic::tt6_transform(tt, n, perm, phase, out);
    EXPECT_EQ(matcher_->matches(tt, n).size(),
              matcher_->matches(other, n).size());
  }
}

Aig random_aig(std::uint64_t seed, int pis, int nodes, int pos) {
  cryo::util::Rng rng{seed};
  Aig aig;
  std::vector<cryo::logic::Lit> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(aig.add_pi());
  }
  for (int i = 0; i < nodes; ++i) {
    const auto a = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                          rng.next_bool());
    const auto b = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                          rng.next_bool());
    pool.push_back(aig.land(a, b));
  }
  for (int i = 0; i < pos; ++i) {
    aig.add_po(cryo::logic::lit_notif(
        pool[pool.size() - 1 - rng.next_below(pool.size() / 2)],
        rng.next_bool()));
  }
  return aig;
}

/// The mapped netlist must compute exactly the AIG's function.
void expect_netlist_equals_aig(const Netlist& net, const Aig& aig,
                               std::uint64_t seed) {
  cryo::util::Rng rng{seed};
  ASSERT_EQ(net.pis.size(), aig.num_pis());
  ASSERT_EQ(net.pos.size(), aig.num_pos());
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<bool> inputs(net.pis.size());
    for (auto&& b : inputs) {
      b = rng.next_bool();
    }
    const auto got = net.evaluate(inputs);
    // Reference via AIG simulation.
    cryo::logic::Simulation sim{aig, 1};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      sim.set_pi_word(static_cast<cryo::logic::NodeIdx>(i), 0,
                      inputs[i] ? ~0ull : 0ull);
    }
    sim.run();
    for (cryo::logic::NodeIdx o = 0; o < aig.num_pos(); ++o) {
      const bool want = (sim.signature(aig.po(o)) & 1ull) != 0;
      ASSERT_EQ(got[o], want) << "output " << o << " trial " << trial;
    }
  }
}

class MapRandom : public MapTest,
                  public ::testing::WithParamInterface<int> {};

TEST_P(MapRandom, MappedNetlistIsEquivalent) {
  const Aig aig = random_aig(static_cast<std::uint64_t>(GetParam()) * 13 + 1,
                             8, 120, 6);
  TechMapOptions options;
  const Netlist net = tech_map(aig, *matcher_, options);
  EXPECT_GT(net.gate_count(), 0u);
  expect_netlist_equals_aig(net, aig, 500 + GetParam());
}

TEST_P(MapRandom, AllPrioritiesProduceValidNetlists) {
  const Aig aig = random_aig(static_cast<std::uint64_t>(GetParam()) * 7 + 3,
                             8, 100, 4);
  for (const auto priority :
       {cryo::opt::CostPriority::kBaselinePowerAware,
        cryo::opt::CostPriority::kPowerAreaDelay,
        cryo::opt::CostPriority::kPowerDelayArea}) {
    TechMapOptions options;
    options.priority = priority;
    const Netlist net = tech_map(aig, *matcher_, options);
    expect_netlist_equals_aig(net, aig, 900 + GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapRandom, ::testing::Range(1, 7));

TEST_F(MapTest, StructuredCircuitsMapCorrectly) {
  for (const auto& bench : cryo::epfl::mini_suite()) {
    TechMapOptions options;
    const Netlist net = tech_map(bench.aig, *matcher_, options);
    expect_netlist_equals_aig(net, bench.aig, 77);
  }
}

TEST_F(MapTest, ChoicesPreserveEquivalence) {
  const Aig aig = cryo::epfl::make_voter(15);
  const auto sweep = cryo::sat::sat_sweep(aig);
  TechMapOptions options;
  const Netlist net = tech_map(sweep.aig, *matcher_, options, &sweep.choices);
  expect_netlist_equals_aig(net, aig, 31);
}

TEST_F(MapTest, ConstantOutputsUseTies) {
  Aig aig;
  const auto a = aig.add_pi();
  aig.add_po(aig.land(a, cryo::logic::lit_not(a)), "zero");  // const 0
  aig.add_po(cryo::logic::kConst1, "one");
  TechMapOptions options;
  const Netlist net = tech_map(aig, *matcher_, options);
  const auto out = net.evaluate({true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST_F(MapTest, InverterSharing) {
  // Two POs that both need !a: the inverter must be instantiated once.
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(cryo::logic::lit_not(aig.land(a, b)));
  aig.add_po(cryo::logic::lit_not(aig.land(a, cryo::logic::lit_not(b))));
  TechMapOptions options;
  const Netlist net = tech_map(aig, *matcher_, options);
  expect_netlist_equals_aig(net, aig, 5);
}

TEST_F(MapTest, AreaPriorityGivesSmallestArea) {
  const Aig aig = random_aig(4242, 10, 250, 8);
  TechMapOptions base;
  base.priority = cryo::opt::CostPriority::kBaselinePowerAware;
  TechMapOptions pad;
  pad.priority = cryo::opt::CostPriority::kPowerAreaDelay;
  const Netlist net_base = tech_map(aig, *matcher_, base);
  const Netlist net_pad = tech_map(aig, *matcher_, pad);
  // The area-first baseline should not lose on area by a wide margin.
  EXPECT_LE(net_base.total_area(), net_pad.total_area() * 1.25);
}

TEST(NetlistStandalone, SimulateActivityBounds) {
  cryo::cells::CharOptions options;
  options.slews = {8e-12};
  options.loads = {1e-15};
  options.include_sequential = false;
  const auto lib = cryo::cells::characterize(
      std::vector<cryo::cells::CellSpec>{cryo::cells::mini_catalog()[0],
                                         cryo::cells::mini_catalog()[3]},
      300.0, options);
  CellMatcher matcher{lib};
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(aig.lnand(a, b));
  const Netlist net = tech_map(aig, matcher);
  const auto activity = net.simulate_activity(0.3, 8, 7);
  for (double act : activity) {
    EXPECT_GE(act, 0.0);
    EXPECT_LE(act, 1.0);
  }
}

}  // namespace
