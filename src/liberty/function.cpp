#include "liberty/function.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace cryo::liberty {
namespace {

/// Recursive-descent parser over liberty boolean syntax, evaluating
/// directly to a bit-parallel truth table (one bit per input minterm).
class FunctionParser {
public:
  FunctionParser(const std::string& text,
                 const std::vector<std::string>& inputs)
      : text_{text}, inputs_{inputs} {
    if (inputs.size() > 6) {
      throw std::runtime_error{"function_truth_table: more than 6 inputs"};
    }
    minterms_ = inputs.empty() ? 1u : (1u << (1u << inputs.size())) - 1u;
    // For n inputs the table has 2^n bits; mask of all used bits:
    const unsigned bits = 1u << inputs.size();
    mask_ = bits >= 64 ? ~0ull : ((1ull << bits) - 1ull);
  }

  std::uint64_t parse() {
    const std::uint64_t result = parse_or();
    skip_space();
    if (pos_ != text_.size()) {
      throw std::runtime_error{"function parse: trailing input in '" + text_ +
                               "'"};
    }
    return result & mask_;
  }

private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool peek_is(char c) {
    skip_space();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::uint64_t parse_or() {
    std::uint64_t value = parse_xor();
    while (peek_is('|') || peek_is('+')) {
      ++pos_;
      value |= parse_xor();
    }
    return value;
  }

  std::uint64_t parse_xor() {
    std::uint64_t value = parse_and();
    while (peek_is('^')) {
      ++pos_;
      value ^= parse_and();
    }
    return value;
  }

  bool factor_ahead() {
    skip_space();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    return c == '!' || c == '(' || c == '_' ||
           std::isalnum(static_cast<unsigned char>(c));
  }

  std::uint64_t parse_and() {
    std::uint64_t value = parse_factor();
    for (;;) {
      if (peek_is('&') || peek_is('*')) {
        ++pos_;
        value &= parse_factor();
      } else if (factor_ahead()) {  // juxtaposition
        value &= parse_factor();
      } else {
        break;
      }
    }
    return value;
  }

  std::uint64_t parse_factor() {
    skip_space();
    if (pos_ >= text_.size()) {
      throw std::runtime_error{"function parse: unexpected end in '" + text_ +
                               "'"};
    }
    std::uint64_t value = 0;
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      value = ~parse_factor() & mask_;
    } else if (c == '(') {
      ++pos_;
      value = parse_or();
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw std::runtime_error{"function parse: missing ')' in '" + text_ +
                                 "'"};
      }
      ++pos_;
    } else if (c == '0' || c == '1') {
      ++pos_;
      value = c == '1' ? mask_ : 0ull;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        name += text_[pos_++];
      }
      const auto it = std::find(inputs_.begin(), inputs_.end(), name);
      if (it == inputs_.end()) {
        throw std::runtime_error{"function parse: unknown input '" + name +
                                 "'"};
      }
      const auto var = static_cast<unsigned>(it - inputs_.begin());
      value = variable_mask(var);
    } else {
      throw std::runtime_error{"function parse: unexpected character in '" +
                               text_ + "'"};
    }
    // Postfix negation: A'
    while (peek_is('\'')) {
      ++pos_;
      value = ~value & mask_;
    }
    return value;
  }

  std::uint64_t variable_mask(unsigned var) const {
    // Bit m of the table = value for minterm m; variable `var` is true in
    // minterm m iff bit `var` of m is set.
    std::uint64_t out = 0;
    const unsigned bits = 1u << inputs_.size();
    for (unsigned m = 0; m < bits; ++m) {
      if ((m >> var) & 1u) {
        out |= 1ull << m;
      }
    }
    return out;
  }

  const std::string& text_;
  const std::vector<std::string>& inputs_;
  std::size_t pos_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t minterms_ = 0;
};

}  // namespace

std::uint64_t function_truth_table(const std::string& expression,
                                   const std::vector<std::string>& inputs) {
  FunctionParser parser{expression, inputs};
  return parser.parse();
}

std::vector<std::string> function_inputs(const std::string& expression) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos < expression.size()) {
    const char c = expression[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos < expression.size() &&
             (std::isalnum(static_cast<unsigned char>(expression[pos])) ||
              expression[pos] == '_')) {
        name += expression[pos++];
      }
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    } else {
      ++pos;
    }
  }
  return names;
}

}  // namespace cryo::liberty
