#pragma once

#include <cstddef>
#include <vector>

namespace cryo::spice {

/// Small dense square matrix in row-major order.
///
/// Cell-level circuits have at most a few dozen nodes, so a dense direct
/// solver beats any sparse machinery both in code size and constant factor.
class DenseMatrix {
public:
  explicit DenseMatrix(std::size_t n) : n_{n}, data_(n * n, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  std::size_t size() const { return n_; }
  void clear();

private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Solve A x = b in place by LU with partial pivoting.
/// Returns false if the matrix is numerically singular. A and b are
/// destroyed; on success b holds the solution.
bool solve_in_place(DenseMatrix& a, std::vector<double>& b);

}  // namespace cryo::spice
