#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"
#include "logic/npn.hpp"

namespace cryo::map {

/// One way to realize a target function with a library cell.
struct Match {
  const liberty::Cell* cell = nullptr;
  std::vector<unsigned> perm;  ///< cell input i connects to target var perm[i]
  unsigned input_phase = 0;    ///< bit i set: invert cell input i
  bool out_invert = false;     ///< cell output must be inverted
};

/// A library cell together with the transform that maps its function onto
/// its NPN class signature: signature == npn_apply(f_cell, n, to_canon).
struct CellBinding {
  const liberty::Cell* cell = nullptr;
  logic::NpnTransform to_canon;
};

/// Cut-function to standard-cell matcher.
///
/// At construction, every combinational library cell's function is
/// NPN-canonicalized once and hashed by its class signature — one table
/// entry per cell per class, instead of expanding the full n!·2^(n+1)
/// orbit of every cell. A cut is matched by canonicalizing its
/// (support-minimized) truth table, looking up the signature, and
/// composing the cut-side and cell-side transforms into a concrete
/// pin binding (`bind`). Only canonically-possible matches are ever
/// visited; functions outside the cell's NPN class can no longer reach
/// its bucket.
class CellMatcher {
public:
  explicit CellMatcher(const liberty::Library& library,
                       unsigned max_inputs = 5,
                       unsigned max_matches_per_key = 12);

  /// Bindings for the NPN class with the given canonical signature over
  /// exactly `n` (support) variables; nullptr when no cell realizes the
  /// class. The caller canonicalizes the cut function (and may memoize
  /// that canonicalization — see `tech_map`).
  const std::vector<CellBinding>* find_class(std::uint64_t signature,
                                             unsigned n) const;

  /// Compose a binding with the cut-side transform (`cut_transform`
  /// maps the cut function onto the same signature) into a concrete
  /// match: cut_tt == npn_apply(f_cell, n, M) with
  /// M = cut_transform⁻¹ ∘ binding.to_canon.
  static Match bind(const CellBinding& binding,
                    const logic::NpnTransform& cut_transform, unsigned n);

  /// Convenience (tests, one-off callers): canonicalize + look up +
  /// bind in one step. The mapper hot path uses find_class/bind with a
  /// memoized canonicalization instead.
  std::vector<Match> matches(std::uint64_t tt, unsigned n) const;

  /// Cheapest inverter / buffer in the library.
  const liberty::Cell* inverter() const { return inverter_; }
  const liberty::Cell* buffer() const { return buffer_; }
  const liberty::Cell* tie(bool high) const {
    return high ? tiehi_ : tielo_;
  }

  const liberty::Library& library() const { return *library_; }

  /// Construction knobs (they bound which matches exist, so synthesis
  /// cache keys must include them alongside the library fingerprint).
  unsigned max_inputs() const { return max_inputs_; }
  unsigned max_matches_per_key() const { return max_matches_per_key_; }

private:
  const liberty::Library* library_;
  unsigned max_inputs_ = 5;
  unsigned max_matches_per_key_ = 12;
  /// One class table per input count (0..6), keyed by canonical
  /// signature. Every entry in a bucket is NPN-equivalent to the key.
  std::array<std::unordered_map<std::uint64_t, std::vector<CellBinding>>, 7>
      tables_;
  const liberty::Cell* inverter_ = nullptr;
  const liberty::Cell* buffer_ = nullptr;
  const liberty::Cell* tiehi_ = nullptr;
  const liberty::Cell* tielo_ = nullptr;
};

}  // namespace cryo::map
