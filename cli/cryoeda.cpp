// cryoeda — the unified flow driver.
//
// One binary that wires the whole stack (library characterization,
// matcher, pass pipeline, STA signoff, reporting) the way the bench
// main()s and examples/synthesis_cli used to wire it by hand, and
// exposes the scriptable pass pipeline directly:
//
//   cryoeda input.aig --script "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad"
//   cryoeda --bench dec4 --temp 10 --priority pda --out dec4.v --report run.json
//   cryoeda --list-passes
//
// Exit codes: 0 success, 1 internal failure, 2 usage / recipe error,
// 3 I/O error, 4 budget exhausted / cancelled, 5 numerical failure.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cells/characterize.hpp"
#include "core/pipeline.hpp"
#include "core/search.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/aiger.hpp"
#include "map/verilog.hpp"
#include "sta/sta.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"

using namespace cryo;

namespace {

constexpr const char* kUsage =
    "usage: cryoeda [input.aig|aag] [options]\n"
    "\n"
    "input: an AIGER file, or --bench NAME for a built-in benchmark\n"
    "       (EPFL-style generators: adder, bar, ..., voter; mini-suite\n"
    "       names: adder8, mult4, dec4, priority16, voter15)\n"
    "\n"
    "flow options:\n"
    "  --script RECIPE    pass recipe (default: the canonical recipe for\n"
    "                     the chosen --priority; see --list-passes)\n"
    "  --priority P       baseline | pad | pda       (default pda)\n"
    "  --temp K           corner temperature          (default 10)\n"
    "  --lut-k N          k of the LUT stage, 2..16   (default 6)\n"
    "  --epsilon E        cost tie-break threshold    (default 0.02)\n"
    "  --activity A       PI toggle rate, (0,1]       (default 0.2)\n"
    "  --seed N           flow seed                   (default 29)\n"
    "\n"
    "budget options:\n"
    "  --deadline S       wall-clock budget in seconds; when it runs out\n"
    "                     remaining optimization passes degrade (skip /\n"
    "                     stop early) but 'map' still produces a netlist\n"
    "  --sat-budget N     per-call SAT conflict ceiling of dch sweeping\n"
    "                     (>= 1, or -1 for unlimited; default 500)\n"
    "\n"
    "search options:\n"
    "  --search N         recipe-search mode: evaluate N recipe variants\n"
    "                     (the Fig. 3 seeds plus deterministic mutations)\n"
    "                     and report the best signoff instead of running\n"
    "                     one recipe; prefix-sharing variants reuse the\n"
    "                     per-pass artifact cache\n"
    "  --search-report P  write the search report (JSON) to P\n"
    "                     (default cryoeda_out/search.json)\n"
    "  --search-seed N    variant mutation seed            (default 1)\n"
    "  --search-deadline S  wall budget of one variant in seconds;\n"
    "                     a variant that blows it is excluded from best\n"
    "  --threads N        search workers (0 = CRYOEDA_THREADS env or\n"
    "                     hardware concurrency, 1 = serial; default 0)\n"
    "\n"
    "i/o options:\n"
    "  --lib PATH         liberty cache path (default\n"
    "                     cryoeda_out/cryoeda_lib_<T>K.lib)\n"
    "  --out PATH         write the mapped netlist as structural Verilog\n"
    "  --report PATH      write the observability run report (JSON)\n"
    "  --quiet            suppress progress chatter\n"
    "  --list-passes      print the pass registry and exit\n"
    "  -h, --help         this text\n"
    "\n"
    "exit codes: 0 success, 1 internal failure, 2 usage/recipe error,\n"
    "            3 I/O error, 4 budget exhausted/cancelled, 5 numerical\n"
    "            failure\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "cryoeda: %s\n\n%s", message.c_str(), kUsage);
  std::exit(2);
}

struct Args {
  std::string input_path;
  std::string bench_name;
  std::string script;
  std::string lib_path;
  std::string out_path;
  std::string report_path;
  double temperature = 10.0;
  bool quiet = false;
  core::FlowOptions flow;
  std::size_t search_variants = 0;  ///< 0 = normal single-recipe mode
  std::string search_report_path = "cryoeda_out/search.json";
  std::uint64_t search_seed = 1;
  double search_deadline = 0.0;
  int threads = 0;
};

double parse_double(const std::string& flag, const std::string& raw) {
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    usage_error("bad value for " + flag + ": '" + raw + "'");
  }
  return value;
}

unsigned long parse_uint(const std::string& flag, const std::string& raw) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw.c_str(), &end, 10);
  if (raw.empty() || raw[0] == '-' || end != raw.c_str() + raw.size()) {
    usage_error("bad value for " + flag + ": '" + raw + "'");
  }
  return value;
}

void list_passes() {
  std::printf("passes (compose with ';' in --script):\n\n");
  for (const core::Pass* pass : core::PassRegistry::global().passes()) {
    std::printf("  %-10s %s\n", pass->name.c_str(), pass->help.c_str());
    for (const auto& arg : pass->args) {
      if (arg.kind == core::ArgKind::kUInt) {
        std::printf("      %s <%u..%u>  %s\n", arg.flag.c_str(), arg.min_uint,
                    arg.max_uint, arg.help.c_str());
      } else {
        std::printf("      %s <name>  %s\n", arg.flag.c_str(),
                    arg.help.c_str());
      }
    }
  }
  std::printf("\ncanonical recipe (defaults): %s\n",
              core::canonical_recipe(core::FlowOptions{}).c_str());
}

logic::Aig resolve_benchmark(const std::string& name) {
  for (auto* suite_fn : {epfl::mini_suite, epfl::epfl_suite}) {
    for (auto& benchmark : suite_fn()) {
      if (benchmark.name == name) {
        logic::Aig aig = std::move(benchmark.aig);
        aig.set_name(name);
        return aig;
      }
    }
  }
  std::string known;
  for (auto* suite_fn : {epfl::mini_suite, epfl::epfl_suite}) {
    for (const auto& benchmark : suite_fn()) {
      known += (known.empty() ? "" : ", ") + benchmark.name;
    }
  }
  usage_error("unknown benchmark '" + name + "' (known: " + known + ")");
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.flow.priority = opt::CostPriority::kPowerDelayArea;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--script") {
      args.script = next();
    } else if (arg == "--priority") {
      const std::string p = next();
      const auto priority = opt::priority_from_string(p);
      if (!priority) {
        usage_error("unknown priority '" + p +
                    "' (expected baseline | pad | pda)");
      }
      args.flow.priority = *priority;
    } else if (arg == "--temp") {
      args.temperature = parse_double(arg, next());
      if (!(args.temperature > 0.0)) {
        usage_error("--temp must be a positive temperature in kelvin");
      }
    } else if (arg == "--lut-k") {
      args.flow.lut_k = static_cast<unsigned>(parse_uint(arg, next()));
    } else if (arg == "--epsilon") {
      args.flow.epsilon = parse_double(arg, next());
    } else if (arg == "--activity") {
      args.flow.input_activity = parse_double(arg, next());
    } else if (arg == "--seed") {
      args.flow.seed = parse_uint(arg, next());
    } else if (arg == "--deadline") {
      const double seconds = parse_double(arg, next());
      if (!(seconds > 0.0)) {
        usage_error("--deadline must be a positive time in seconds");
      }
      util::Budget::global().set_deadline_in(seconds);
    } else if (arg == "--sat-budget") {
      const std::string raw = next();
      char* end = nullptr;
      const long long conflicts = std::strtoll(raw.c_str(), &end, 10);
      if (raw.empty() || end != raw.c_str() + raw.size() ||
          (conflicts != -1 && conflicts < 1)) {
        usage_error("bad value for --sat-budget: '" + raw +
                    "' (expected an integer >= 1, or -1 for unlimited)");
      }
      args.flow.sat_conflict_budget = conflicts;
    } else if (arg == "--search") {
      args.search_variants = parse_uint(arg, next());
      if (args.search_variants == 0) {
        usage_error("--search needs at least 1 variant");
      }
    } else if (arg == "--search-report") {
      args.search_report_path = next();
    } else if (arg == "--search-seed") {
      args.search_seed = parse_uint(arg, next());
    } else if (arg == "--search-deadline") {
      args.search_deadline = parse_double(arg, next());
      if (!(args.search_deadline > 0.0)) {
        usage_error("--search-deadline must be a positive time in seconds");
      }
    } else if (arg == "--threads") {
      args.threads = static_cast<int>(parse_uint(arg, next()));
    } else if (arg == "--bench") {
      args.bench_name = next();
    } else if (arg == "--lib") {
      args.lib_path = next();
    } else if (arg == "--out") {
      args.out_path = next();
    } else if (arg == "--report") {
      args.report_path = next();
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--list-passes") {
      list_passes();
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (args.input_path.empty()) {
      args.input_path = arg;
    } else {
      usage_error("unexpected extra operand '" + arg + "' (input already '" +
                  args.input_path + "')");
    }
  }
  if (args.input_path.empty() && args.bench_name.empty()) {
    usage_error("no input: give an AIGER file or --bench NAME");
  }
  if (!args.input_path.empty() && !args.bench_name.empty()) {
    usage_error("give either an AIGER file or --bench, not both");
  }
  if (args.search_variants > 0 && !args.script.empty()) {
    usage_error("--search enumerates its own recipes; drop --script");
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // Compile the recipe first: a typo should fail before we spend
  // characterization time.
  const std::string script = args.script.empty()
                                 ? core::canonical_recipe(args.flow)
                                 : args.script;
  core::Pipeline pipeline;
  try {
    core::validate(args.flow);
    pipeline = core::Pipeline::parse(script);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 2;
  }

  try {
    logic::Aig design = args.bench_name.empty()
                            ? logic::read_aiger_file(args.input_path)
                            : resolve_benchmark(args.bench_name);
    if (design.name().empty()) {
      design.set_name("user_design");
    }
    if (!args.quiet) {
      std::printf("design : %s — %u PIs, %u POs, %u AND nodes, depth %u\n",
                  design.name().c_str(), design.num_pis(), design.num_pos(),
                  design.num_ands(), design.depth());
      std::printf("recipe : %s\n", pipeline.to_string().c_str());
    }

    std::string lib_path = args.lib_path;
    if (lib_path.empty()) {
      lib_path = "cryoeda_out/cryoeda_lib_" +
                 std::to_string(static_cast<int>(args.temperature)) + "K.lib";
    }
    if (!args.quiet) {
      std::printf("library: %s @ %g K\n", lib_path.c_str(), args.temperature);
    }
    const auto lib_dir = std::filesystem::path{lib_path}.parent_path();
    if (!lib_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(lib_dir, ec);
    }
    const auto library = cells::load_or_characterize(
        lib_path, cells::standard_catalog(), args.temperature);
    const map::CellMatcher matcher{library};

    if (args.search_variants > 0) {
      core::SearchOptions search;
      search.experiment.flow = args.flow;
      search.experiment.verbose = !args.quiet;
      search.experiment.threads = args.threads;
      search.variants = args.search_variants;
      search.seed = args.search_seed;
      search.per_variant_deadline_s = args.search_deadline;

      std::vector<epfl::Benchmark> suite;
      suite.push_back({design.name(), false, std::move(design)});
      const auto results = core::search_recipes(suite, matcher, search);

      std::printf("\nsearch results (%zu variants):\n", args.search_variants);
      for (const auto& circuit : results) {
        if (circuit.best < 0) {
          std::printf("  %s: no variant produced a clean signoff\n",
                      circuit.circuit.c_str());
          continue;
        }
        const auto& best =
            circuit.trials[static_cast<std::size_t>(circuit.best)];
        std::printf("  %s: %.4g W, %.1f ps, %.2f um^2, %zu gates\n",
                    circuit.circuit.c_str(), best.result.total_power,
                    best.result.delay * 1e12, best.result.area,
                    best.result.gates);
        std::printf("    recipe: %s\n", best.recipe.c_str());
      }

      const auto report_dir =
          std::filesystem::path{args.search_report_path}.parent_path();
      if (!report_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(report_dir, ec);
      }
      std::ofstream out{args.search_report_path};
      if (!out) {
        throw Error{ErrorKind::kIo, "cannot open search report path '" +
                                        args.search_report_path +
                                        "' for writing"};
      }
      out << core::search_report(results, search).dump(2) << '\n';
      std::printf("  search report written to %s\n",
                  args.search_report_path.c_str());

      if (!args.report_path.empty()) {
        util::obs::ReportOptions report;
        report.flow = "cryoeda-search";
        util::obs::write_report(args.report_path, report);
        std::printf("  run report written to %s\n", args.report_path.c_str());
      }
      return 0;
    }

    core::FlowState state;
    state.aig = std::move(design);
    state.matcher = &matcher;
    state.options = args.flow;
    pipeline.run(state);

    std::printf("\nresults:\n");
    std::printf("  AIG          : %u -> %u AND nodes\n", state.initial_ands,
                state.aig.num_ands());
    if (state.has_netlist) {
      std::printf("  netlist      : %zu gates, %.2f um^2\n",
                  state.netlist.gate_count(), state.netlist.total_area());
      const auto signoff = sta::analyze(state.netlist, {});
      std::printf("  critical path: %.1f ps\n",
                  signoff.critical_delay * 1e12);
      std::printf("  power @1GHz  : %.4g W (leakage %.4g, internal %.4g, "
                  "switching %.4g)\n",
                  signoff.power.total(), signoff.power.leakage,
                  signoff.power.internal, signoff.power.switching);
    } else {
      std::printf("  (recipe has no 'map' pass — no netlist/signoff)\n");
    }

    if (!args.out_path.empty()) {
      if (!state.has_netlist) {
        std::fprintf(stderr,
                     "cryoeda: --out needs a mapped netlist; add 'map' to "
                     "the recipe\n");
        return 2;
      }
      map::write_verilog(state.netlist, args.out_path);
      std::printf("  netlist written to %s\n", args.out_path.c_str());
    }
    if (!args.report_path.empty()) {
      util::obs::ReportOptions report;
      report.flow = "cryoeda";
      util::obs::write_report(args.report_path, report);
      std::printf("  run report written to %s\n", args.report_path.c_str());
    }
    return 0;
  } catch (const core::RecipeError& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return error_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cryoeda: %s\n", e.what());
    return 1;
  }
}
