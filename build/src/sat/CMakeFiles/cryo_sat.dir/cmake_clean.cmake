file(REMOVE_RECURSE
  "CMakeFiles/cryo_sat.dir/cnf.cpp.o"
  "CMakeFiles/cryo_sat.dir/cnf.cpp.o.d"
  "CMakeFiles/cryo_sat.dir/solver.cpp.o"
  "CMakeFiles/cryo_sat.dir/solver.cpp.o.d"
  "CMakeFiles/cryo_sat.dir/sweep.cpp.o"
  "CMakeFiles/cryo_sat.dir/sweep.cpp.o.d"
  "libcryo_sat.a"
  "libcryo_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
