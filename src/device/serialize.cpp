#include "device/serialize.hpp"

#include <stdexcept>

namespace cryo::device {

using util::Json;

Json to_json(const FinFetParams& params) {
  Json json = Json::object();
  json["polarity"] = Json{params.polarity == Polarity::kN ? "n" : "p"};
  json["name"] = Json{params.name};
  json["l_eff"] = Json{params.l_eff};
  json["w_fin"] = Json{params.w_fin};
  json["vth300"] = Json{params.vth300};
  json["ideality"] = Json{params.ideality};
  json["band_tail_v"] = Json{params.band_tail_v};
  json["kvt"] = Json{params.kvt};
  json["beta_vth"] = Json{params.beta_vth};
  json["mu0"] = Json{params.mu0};
  json["mu_r_inf"] = Json{params.mu_r_inf};
  json["theta"] = Json{params.theta};
  json["vsat_gain"] = Json{params.vsat_gain};
  json["lambda"] = Json{params.lambda};
  json["cox"] = Json{params.cox};
  json["cov_per_fin"] = Json{params.cov_per_fin};
  json["cj_per_fin"] = Json{params.cj_per_fin};
  json["i_floor_per_fin"] = Json{params.i_floor_per_fin};
  json["cap_coeff"] = Json{params.cap_coeff};
  return json;
}

FinFetParams finfet_params_from_json(const Json& json) {
  FinFetParams params;
  const std::string& polarity = json.at("polarity").as_string();
  if (polarity != "n" && polarity != "p") {
    throw std::runtime_error{"device json: unknown polarity '" + polarity +
                             "'"};
  }
  params.polarity = polarity == "n" ? Polarity::kN : Polarity::kP;
  params.name = json.at("name").as_string();
  params.l_eff = json.at("l_eff").as_double();
  params.w_fin = json.at("w_fin").as_double();
  params.vth300 = json.at("vth300").as_double();
  params.ideality = json.at("ideality").as_double();
  params.band_tail_v = json.at("band_tail_v").as_double();
  params.kvt = json.at("kvt").as_double();
  params.beta_vth = json.at("beta_vth").as_double();
  params.mu0 = json.at("mu0").as_double();
  params.mu_r_inf = json.at("mu_r_inf").as_double();
  params.theta = json.at("theta").as_double();
  params.vsat_gain = json.at("vsat_gain").as_double();
  params.lambda = json.at("lambda").as_double();
  params.cox = json.at("cox").as_double();
  params.cov_per_fin = json.at("cov_per_fin").as_double();
  params.cj_per_fin = json.at("cj_per_fin").as_double();
  params.i_floor_per_fin = json.at("i_floor_per_fin").as_double();
  params.cap_coeff = json.at("cap_coeff").as_double();
  return params;
}

Json to_json(const MeasurementSet& measurements) {
  Json json = Json::object();
  json["polarity"] =
      Json{measurements.polarity == Polarity::kN ? "n" : "p"};
  json["nfins"] = Json{measurements.nfins};
  Json points = Json::array();
  for (const MeasurementPoint& pt : measurements.points) {
    Json p = Json::array();
    p.push_back(Json{pt.temperature_k});
    p.push_back(Json{pt.vgs});
    p.push_back(Json{pt.vds});
    p.push_back(Json{pt.ids});
    points.push_back(std::move(p));
  }
  json["points"] = std::move(points);
  return json;
}

Json to_json(const CalibrationResult& result) {
  Json json = Json::object();
  json["params"] = to_json(result.params);
  json["rms_log_error"] = Json{result.rms_log_error};
  json["max_log_error"] = Json{result.max_log_error};
  json["evaluations"] = Json{result.evaluations};
  return json;
}

CalibrationResult calibration_result_from_json(const Json& json) {
  CalibrationResult result;
  result.params = finfet_params_from_json(json.at("params"));
  result.rms_log_error = json.at("rms_log_error").as_double();
  result.max_log_error = json.at("max_log_error").as_double();
  result.evaluations = static_cast<int>(json.at("evaluations").as_int());
  return result;
}

}  // namespace cryo::device
