#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cryo::opt {

/// Cost-function priority lists (the paper's central knob, §IV-B).
///
/// Conventional synthesis (and ABC's stock power-aware mode) keeps
/// network size as the primary objective, using delay as a tie-breaker
/// and power further down. The proposed cryogenic-aware synthesis makes
/// power the number-one priority, in two flavours.
enum class CostPriority {
  /// State-of-the-art power-aware baseline: area -> delay -> power
  /// (what unmodified ABC's `dch -p; if -p; mfs -pegd; map -p` optimize).
  kBaselinePowerAware,
  /// Proposed cryogenic-aware: power -> area -> delay.
  kPowerAreaDelay,
  /// Proposed cryogenic-aware: power -> delay -> area.
  kPowerDelayArea,
};

std::string to_string(CostPriority priority);

/// Short machine-readable name: "baseline" | "pad" | "pda". These are
/// the spellings recipe strings (`map -p pad`) and CLI flags use.
std::string short_name(CostPriority priority);

/// Parse a priority from its short name (also accepts the long
/// `to_string` forms). Returns nullopt for anything else.
std::optional<CostPriority> priority_from_string(std::string_view text);

/// A cost triple. Which member is compared first depends on the priority
/// list; each comparison uses a relative threshold `epsilon` (ties within
/// epsilon fall through to the next criterion — this mirrors ABC's
/// "equal within a threshold" tie-breaking).
struct Cost {
  double power = 0.0;
  double area = 0.0;
  double delay = 0.0;
};

/// True if `a` is strictly better than `b` under the given priority list.
bool better(const Cost& a, const Cost& b, CostPriority priority,
            double epsilon = 0.02);

}  // namespace cryo::opt
