#include "epfl/benchmarks.hpp"

#include <cmath>
#include <iterator>

#include "epfl/wordlib.hpp"
#include "util/rng.hpp"

namespace cryo::epfl {

using logic::Aig;
using logic::Lit;

Aig make_adder(unsigned bits) {
  Aig aig;
  aig.set_name("adder");
  const Word a = input_word(aig, "a", bits);
  const Word b = input_word(aig, "b", bits);
  Lit carry = logic::kConst0;
  const Word sum = add(aig, a, b, logic::kConst0, &carry);
  output_word(aig, "s", sum);
  aig.add_po(carry, "cout");
  return aig;
}

Aig make_bar(unsigned bits) {
  Aig aig;
  aig.set_name("bar");
  const Word value = input_word(aig, "v", bits);
  unsigned log = 0;
  while ((1u << log) < bits) {
    ++log;
  }
  const Word amount = input_word(aig, "sh", log);
  const Lit dir = aig.add_pi("dir");
  const Word left = shift_left(aig, value, amount);
  const Word right = shift_right(aig, value, amount);
  output_word(aig, "y", mux_word(aig, dir, left, right));
  return aig;
}

Aig make_div(unsigned bits) {
  Aig aig;
  aig.set_name("div");
  const Word dividend = input_word(aig, "n", bits);
  const Word divisor = input_word(aig, "d", bits);
  // Restoring division, bit-serial structure unrolled.
  Word remainder(bits, logic::kConst0);
  Word quotient(bits, logic::kConst0);
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    // remainder = (remainder << 1) | dividend[i]
    Word shifted(bits);
    shifted[0] = dividend[static_cast<std::size_t>(i)];
    for (unsigned j = 1; j < bits; ++j) {
      shifted[j] = remainder[j - 1];
    }
    Lit no_borrow = logic::kConst0;
    const Word diff = sub(aig, shifted, divisor, &no_borrow);
    remainder = mux_word(aig, no_borrow, diff, shifted);
    quotient[static_cast<std::size_t>(i)] = no_borrow;
  }
  output_word(aig, "q", quotient);
  output_word(aig, "r", remainder);
  return aig;
}

namespace {

/// One CORDIC rotation stage (shared by sin and hyp generators).
void cordic_stage(Aig& aig, Word& x, Word& y, Word& z, unsigned shift,
                  unsigned long long angle, bool hyperbolic) {
  const unsigned bits = static_cast<unsigned>(x.size());
  const Word xs = shift_right(aig, x, constant_word(shift, 5));
  const Word ys = shift_right(aig, y, constant_word(shift, 5));
  // Direction: sign of z (MSB).
  const Lit neg = z.back();
  // x' = x -/+ y>>i ; y' = y +/- x>>i ; z' = z -/+ angle
  const Word x_minus = sub(aig, x, ys);
  const Word x_plus = add(aig, x, ys);
  const Word y_plus = add(aig, y, xs);
  const Word y_minus = sub(aig, y, xs);
  const Word z_minus = sub(aig, z, constant_word(angle, bits));
  const Word z_plus = add(aig, z, constant_word(angle, bits));
  if (hyperbolic) {
    x = mux_word(aig, neg, x_minus, x_plus);
  } else {
    x = mux_word(aig, neg, x_plus, x_minus);
  }
  y = mux_word(aig, neg, y_minus, y_plus);
  z = mux_word(aig, neg, z_plus, z_minus);
}

}  // namespace

Aig make_sin(unsigned bits) {
  Aig aig;
  aig.set_name("sin");
  Word z = input_word(aig, "theta", bits);
  Word x = constant_word((1ull << (bits - 2)), bits);
  Word y = constant_word(0, bits);
  for (unsigned i = 0; i < bits - 2; ++i) {
    // atan(2^-i) in fixed point, precomputed at double precision.
    const double angle = std::atan(std::ldexp(1.0, -static_cast<int>(i)));
    const auto fixed = static_cast<unsigned long long>(
        angle * std::ldexp(1.0, static_cast<int>(bits) - 3));
    cordic_stage(aig, x, y, z, i, fixed, false);
  }
  output_word(aig, "sin", y);
  return aig;
}

Aig make_hyp(unsigned iterations) {
  Aig aig;
  aig.set_name("hyp");
  const unsigned bits = 24;
  Word z = input_word(aig, "a", bits);
  Word x = constant_word(1ull << (bits - 3), bits);
  Word y = constant_word(0, bits);
  for (unsigned i = 1; i <= iterations; ++i) {
    const double angle = std::atanh(std::ldexp(1.0, -static_cast<int>(i)));
    const auto fixed = static_cast<unsigned long long>(
        angle * std::ldexp(1.0, static_cast<int>(bits) - 3));
    cordic_stage(aig, x, y, z, i, fixed, true);
  }
  output_word(aig, "cosh", x);
  output_word(aig, "sinh", y);
  return aig;
}

Aig make_log2(unsigned bits) {
  Aig aig;
  aig.set_name("log2");
  const Word v = input_word(aig, "v", bits);
  // Integer part: index of the leading one (priority structure);
  // fraction: the normalized mantissa (barrel shift by the exponent).
  unsigned log = 0;
  while ((1u << log) < bits) {
    ++log;
  }
  Word exponent(log, logic::kConst0);
  Lit found = logic::kConst0;
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    const Lit here = aig.land(logic::lit_not(found), v[static_cast<std::size_t>(i)]);
    for (unsigned b = 0; b < log; ++b) {
      if ((static_cast<unsigned>(i) >> b) & 1u) {
        exponent[b] = aig.lor(exponent[b], here);
      }
    }
    found = aig.lor(found, v[static_cast<std::size_t>(i)]);
  }
  // Normalize: shift left so the leading one lands at the top.
  Word inv_shift(log);
  const Word bits_minus_1 = constant_word(bits - 1, log);
  // shift = (bits-1) - exponent
  Word shift_amount = sub(aig, bits_minus_1, exponent);
  (void)inv_shift;
  const Word mantissa = shift_left(aig, v, shift_amount);
  output_word(aig, "exp", exponent);
  output_word(aig, "frac", Word(mantissa.begin(), mantissa.end() - 1));
  aig.add_po(found, "valid");
  return aig;
}

Aig make_max(unsigned bits, unsigned words) {
  Aig aig;
  aig.set_name("max");
  std::vector<Word> inputs;
  for (unsigned w = 0; w < words; ++w) {
    inputs.push_back(input_word(aig, "w" + std::to_string(w), bits));
  }
  // Tournament of compare-and-select.
  while (inputs.size() > 1) {
    std::vector<Word> next;
    for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
      const Lit lt = less_than(aig, inputs[i], inputs[i + 1]);
      next.push_back(mux_word(aig, lt, inputs[i + 1], inputs[i]));
    }
    if (inputs.size() % 2 != 0) {
      next.push_back(inputs.back());
    }
    inputs = std::move(next);
  }
  output_word(aig, "max", inputs.front());
  return aig;
}

Aig make_multiplier(unsigned bits) {
  Aig aig;
  aig.set_name("multiplier");
  const Word a = input_word(aig, "a", bits);
  const Word b = input_word(aig, "b", bits);
  output_word(aig, "p", multiply(aig, a, b));
  return aig;
}

Aig make_sqrt(unsigned bits) {
  Aig aig;
  aig.set_name("sqrt");
  const Word v = input_word(aig, "v", bits);
  const unsigned half = bits / 2;
  // Non-restoring-ish digit recurrence: build root bit by bit, comparing
  // (root | bit)^2 <= v via incremental remainders.
  Word root(half, logic::kConst0);
  Word remainder(bits + 2, logic::kConst0);
  Word value(bits + 2, logic::kConst0);
  for (unsigned i = 0; i < bits; ++i) {
    value[i] = v[i];
  }
  for (int i = static_cast<int>(half) - 1; i >= 0; --i) {
    // Bring down two bits.
    Word shifted(remainder.size(), logic::kConst0);
    for (std::size_t j = 2; j < remainder.size(); ++j) {
      shifted[j] = remainder[j - 2];
    }
    shifted[1] = value[2 * static_cast<std::size_t>(i) + 1];
    shifted[0] = value[2 * static_cast<std::size_t>(i)];
    // Trial subtrahend: (root << 2) | 01  shifted to position.
    Word trial(remainder.size(), logic::kConst0);
    trial[0] = logic::kConst1;
    for (unsigned j = 0; j < half; ++j) {
      trial[j + 2] = root[j];
    }
    Lit no_borrow = logic::kConst0;
    const Word diff = sub(aig, shifted, trial, &no_borrow);
    remainder = mux_word(aig, no_borrow, diff, shifted);
    // Shift the root left and set the new bit.
    for (int j = static_cast<int>(half) - 1; j > 0; --j) {
      root[static_cast<std::size_t>(j)] = root[static_cast<std::size_t>(j) - 1];
    }
    root[0] = no_borrow;
  }
  output_word(aig, "root", root);
  return aig;
}

Aig make_square(unsigned bits) {
  Aig aig;
  aig.set_name("square");
  const Word a = input_word(aig, "a", bits);
  output_word(aig, "sq", multiply(aig, a, a));
  return aig;
}

// ------------------------------------------------------------ control ----

Aig make_arbiter(unsigned requesters) {
  Aig aig;
  aig.set_name("arbiter");
  const Word req = input_word(aig, "req", requesters);
  unsigned log = 0;
  while ((1u << log) < requesters) {
    ++log;
  }
  const Word pointer = input_word(aig, "ptr", log);  // round-robin pointer
  // Grant the first active request at or after the pointer (wrap).
  // one-hot "position >= pointer" masks via comparators.
  Word grant(requesters, logic::kConst0);
  Lit taken = logic::kConst0;
  // Two sweeps: positions >= ptr first, then positions < ptr.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (unsigned i = 0; i < requesters; ++i) {
      const Word pos = constant_word(i, log);
      Lit in_range;
      {
        Lit no_borrow = logic::kConst0;
        (void)sub(aig, pos, pointer, &no_borrow);  // no_borrow: pos >= ptr
        in_range = sweep == 0 ? no_borrow : logic::lit_not(no_borrow);
      }
      const Lit fire = aig.land(aig.land(req[i], in_range),
                                logic::lit_not(taken));
      grant[i] = aig.lor(grant[i], fire);
      taken = aig.lor(taken, fire);
    }
  }
  output_word(aig, "gnt", grant);
  aig.add_po(taken, "any");
  return aig;
}

Aig make_cavlc() {
  Aig aig;
  aig.set_name("cavlc");
  // Coefficient-token coding lookalike: count nonzero flags and trailing
  // ones of a 16-entry significance map, then produce a code length via
  // nested range comparisons (table-driven control character).
  const Word sig = input_word(aig, "sig", 16);
  const Word ones = input_word(aig, "one", 16);
  const Word total = popcount(aig, sig);
  const Word t1s_raw = popcount(
      aig, Word{aig.land(sig[0], ones[0]), aig.land(sig[1], ones[1]),
                aig.land(sig[2], ones[2]), aig.land(sig[3], ones[3])});
  Word t1s = t1s_raw;
  t1s.resize(total.size(), logic::kConst0);
  // Code length: base table on (total, t1s) through comparisons.
  Word len = constant_word(1, 5);
  for (unsigned threshold : {2u, 4u, 8u, 12u}) {
    const Lit ge = logic::lit_not(
        less_than(aig, total, constant_word(threshold, total.size())));
    len = mux_word(aig, ge,
                   add(aig, len, constant_word(3, 5)), len);
  }
  const Lit has_t1 = or_reduce(aig, Word{t1s[0], t1s[1], t1s[2]});
  len = mux_word(aig, has_t1, sub(aig, len, constant_word(1, 5)), len);
  output_word(aig, "len", len);
  output_word(aig, "tot", total);
  return aig;
}

Aig make_ctrl() {
  Aig aig;
  aig.set_name("ctrl");
  // A small instruction decoder: 7-bit opcode -> control word.
  const Word op = input_word(aig, "op", 7);
  Word ctrl(26, logic::kConst0);
  util::Rng rng{42};
  for (unsigned out = 0; out < ctrl.size(); ++out) {
    // Each control line fires on a few opcode ranges — comparator logic.
    Lit line = logic::kConst0;
    for (int r = 0; r < 3; ++r) {
      const unsigned lo = static_cast<unsigned>(rng.next_below(100));
      const unsigned hi = lo + 1 + static_cast<unsigned>(rng.next_below(16));
      const Lit ge = logic::lit_not(less_than(aig, op, constant_word(lo, 7)));
      const Lit lt = less_than(aig, op, constant_word(hi, 7));
      line = aig.lor(line, aig.land(ge, lt));
    }
    ctrl[out] = line;
  }
  output_word(aig, "ctl", ctrl);
  return aig;
}

Aig make_dec(unsigned bits) {
  Aig aig;
  aig.set_name("dec");
  const Word sel = input_word(aig, "a", bits);
  for (unsigned i = 0; i < (1u << bits); ++i) {
    Word match(bits);
    for (unsigned b = 0; b < bits; ++b) {
      match[b] = ((i >> b) & 1u) != 0 ? sel[b] : logic::lit_not(sel[b]);
    }
    aig.add_po(and_reduce(aig, match), "d[" + std::to_string(i) + "]");
  }
  return aig;
}

Aig make_i2c() {
  Aig aig;
  aig.set_name("i2c");
  // Next-state/output logic of an I2C-style byte controller FSM:
  // 5-bit state, serial inputs, bit counter.
  const Word state = input_word(aig, "st", 5);
  const Lit sda = aig.add_pi("sda");
  const Lit scl = aig.add_pi("scl");
  const Word count = input_word(aig, "cnt", 3);
  const Lit start = aig.land(scl, logic::lit_not(sda));
  const Lit stop = aig.land(scl, sda);
  const Lit byte_done = equals(aig, count, constant_word(7, 3));

  auto in_state = [&](unsigned s) {
    return equals(aig, state, constant_word(s, 5));
  };
  // Transitions: idle(0) -> addr(1..8) -> ack(9) -> data(10..17) ->
  // ack2(18) -> stop(19).
  Word next(5, logic::kConst0);
  auto goto_state = [&](Lit when, unsigned target) {
    for (unsigned b = 0; b < 5; ++b) {
      if ((target >> b) & 1u) {
        next[b] = aig.lor(next[b], when);
      }
    }
  };
  goto_state(aig.land(in_state(0), start), 1);
  const Word inc = add(aig, state, constant_word(1, 5));
  for (unsigned s = 1; s <= 7; ++s) {
    const Lit cond = aig.land(in_state(s), scl);
    for (unsigned b = 0; b < 5; ++b) {
      next[b] = aig.lor(next[b], aig.land(cond, inc[b]));
    }
  }
  goto_state(aig.land(in_state(8), byte_done), 9);
  goto_state(aig.land(in_state(9), sda), 0);               // NACK
  goto_state(aig.land(in_state(9), logic::lit_not(sda)), 10);  // ACK
  for (unsigned s = 10; s <= 17; ++s) {
    const Lit cond = aig.land(in_state(s), scl);
    for (unsigned b = 0; b < 5; ++b) {
      next[b] = aig.lor(next[b], aig.land(cond, inc[b]));
    }
  }
  goto_state(aig.land(in_state(18), stop), 0);
  output_word(aig, "nx", next);
  aig.add_po(aig.lor(in_state(9), in_state(18)), "ack_en");
  aig.add_po(byte_done, "done");
  return aig;
}

Aig make_int2float(unsigned bits) {
  Aig aig;
  aig.set_name("int2float");
  const Word v = input_word(aig, "i", bits);
  // Leading-zero exponent + normalized mantissa (like log2 but packing
  // a float: sign-less minifloat with 5-bit exponent, 8-bit mantissa).
  unsigned log = 0;
  while ((1u << log) < bits) {
    ++log;
  }
  Word exponent(log, logic::kConst0);
  Lit found = logic::kConst0;
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    const Lit here =
        aig.land(logic::lit_not(found), v[static_cast<std::size_t>(i)]);
    for (unsigned b = 0; b < log; ++b) {
      if ((static_cast<unsigned>(i) >> b) & 1u) {
        exponent[b] = aig.lor(exponent[b], here);
      }
    }
    found = aig.lor(found, v[static_cast<std::size_t>(i)]);
  }
  const Word shift_amount =
      sub(aig, constant_word(bits - 1, log), exponent);
  const Word normalized = shift_left(aig, v, shift_amount);
  Word mantissa(8, logic::kConst0);
  for (unsigned i = 0; i < 8 && i + (bits - 8) < bits; ++i) {
    mantissa[i] = normalized[i + (bits - 8)];
  }
  output_word(aig, "exp", exponent);
  output_word(aig, "man", mantissa);
  aig.add_po(found, "nonzero");
  return aig;
}

Aig make_mem_ctrl() {
  Aig aig;
  aig.set_name("mem_ctrl");
  // A memory-controller command path: bank decoder + open-row comparator
  // + refresh urgency + request arbitration, composed like the real one.
  const Word addr = input_word(aig, "addr", 16);
  const Word open_row = input_word(aig, "row", 10);
  const Word refresh_cnt = input_word(aig, "ref", 8);
  const Word req = input_word(aig, "req", 8);
  const Word prio = input_word(aig, "prio", 3);

  // Bank decode (addr[13:11] -> 8 banks).
  Word bank_sel(8, logic::kConst0);
  for (unsigned i = 0; i < 8; ++i) {
    Word m(3);
    for (unsigned b = 0; b < 3; ++b) {
      m[b] = ((i >> b) & 1u) != 0 ? addr[11 + b] : logic::lit_not(addr[11 + b]);
    }
    bank_sel[i] = and_reduce(aig, m);
  }
  // Row hit?
  Word row(10);
  for (unsigned i = 0; i < 10; ++i) {
    row[i] = addr[i];
  }
  const Lit row_hit = equals(aig, row, open_row);
  // Refresh urgent?
  const Lit urgent =
      logic::lit_not(less_than(aig, refresh_cnt, constant_word(200, 8)));
  // Arbitration: highest set request above `prio`, else any.
  Word grant(8, logic::kConst0);
  Lit taken = logic::kConst0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (unsigned i = 0; i < 8; ++i) {
      Lit no_borrow = logic::kConst0;
      (void)sub(aig, constant_word(i, 3), prio, &no_borrow);
      const Lit in_range =
          sweep == 0 ? no_borrow : logic::lit_not(no_borrow);
      const Lit fire =
          aig.land(aig.land(req[i], in_range), logic::lit_not(taken));
      grant[i] = aig.lor(grant[i], fire);
      taken = aig.lor(taken, fire);
    }
  }
  // Command: activate / read / precharge / refresh one-hot.
  const Lit do_refresh = urgent;
  const Lit do_read = aig.land(aig.land(taken, row_hit),
                               logic::lit_not(do_refresh));
  const Lit do_activate =
      aig.land(aig.land(taken, logic::lit_not(row_hit)),
               logic::lit_not(do_refresh));
  output_word(aig, "gnt", grant);
  output_word(aig, "bank", bank_sel);
  aig.add_po(do_refresh, "cmd_ref");
  aig.add_po(do_read, "cmd_rd");
  aig.add_po(do_activate, "cmd_act");
  return aig;
}

Aig make_priority(unsigned bits) {
  Aig aig;
  aig.set_name("priority");
  const Word req = input_word(aig, "r", bits);
  unsigned log = 0;
  while ((1u << log) < bits) {
    ++log;
  }
  Word index(log, logic::kConst0);
  Lit found = logic::kConst0;
  for (unsigned i = 0; i < bits; ++i) {
    const Lit here = aig.land(logic::lit_not(found), req[i]);
    for (unsigned b = 0; b < log; ++b) {
      if ((i >> b) & 1u) {
        index[b] = aig.lor(index[b], here);
      }
    }
    found = aig.lor(found, req[i]);
  }
  output_word(aig, "idx", index);
  aig.add_po(found, "valid");
  return aig;
}

Aig make_router(unsigned ports) {
  Aig aig;
  aig.set_name("router");
  // XY-router lookalike: per-port destination comparison + output-port
  // conflict resolution.
  unsigned log = 0;
  while ((1u << log) < ports) {
    ++log;
  }
  std::vector<Word> dest;
  Word valid = input_word(aig, "v", ports);
  for (unsigned p = 0; p < ports; ++p) {
    dest.push_back(input_word(aig, "d" + std::to_string(p), log));
  }
  for (unsigned out = 0; out < ports; ++out) {
    Lit granted = logic::kConst0;
    Word winner(log, logic::kConst0);
    for (unsigned p = 0; p < ports; ++p) {
      const Lit wants =
          aig.land(valid[p], equals(aig, dest[p], constant_word(out, log)));
      const Lit fire = aig.land(wants, logic::lit_not(granted));
      for (unsigned b = 0; b < log; ++b) {
        if ((p >> b) & 1u) {
          winner[b] = aig.lor(winner[b], fire);
        }
      }
      granted = aig.lor(granted, fire);
    }
    output_word(aig, "src" + std::to_string(out), winner);
    aig.add_po(granted, "busy" + std::to_string(out));
  }
  return aig;
}

Aig make_voter(unsigned inputs) {
  Aig aig;
  aig.set_name("voter");
  const Word votes = input_word(aig, "v", inputs);
  const Word count = popcount(aig, votes);
  const Lit majority = logic::lit_not(
      less_than(aig, count, constant_word(inputs / 2 + 1, count.size())));
  aig.add_po(majority, "maj");
  return aig;
}

std::vector<Benchmark> epfl_suite() {
  std::vector<Benchmark> suite;
  auto arith = [&](Aig aig) {
    suite.push_back({aig.name(), true, std::move(aig)});
  };
  auto control = [&](Aig aig) {
    suite.push_back({aig.name(), false, std::move(aig)});
  };
  arith(make_adder());
  arith(make_bar());
  arith(make_div());
  arith(make_hyp());
  arith(make_log2());
  arith(make_max());
  arith(make_multiplier());
  arith(make_sin());
  arith(make_sqrt());
  arith(make_square());
  control(make_arbiter());
  control(make_cavlc());
  control(make_ctrl());
  control(make_dec());
  control(make_i2c());
  control(make_int2float());
  control(make_mem_ctrl());
  control(make_priority());
  control(make_router());
  control(make_voter());
  return suite;
}

std::vector<Benchmark> mini_suite() {
  std::vector<Benchmark> suite;
  suite.push_back({"adder8", true, make_adder(8)});
  suite.push_back({"mult4", true, make_multiplier(4)});
  suite.push_back({"dec4", false, make_dec(4)});
  suite.push_back({"priority16", false, make_priority(16)});
  suite.push_back({"voter15", false, make_voter(15)});
  return suite;
}

namespace {

struct NamedGenerator {
  const char* name;
  Aig (*make)();
};

// Each entry builds exactly one circuit so lookups by name (the common
// service / CLI path) avoid constructing the whole suite.
constexpr NamedGenerator kGenerators[] = {
    {"adder8", [] { return make_adder(8); }},
    {"mult4", [] { return make_multiplier(4); }},
    {"dec4", [] { return make_dec(4); }},
    {"priority16", [] { return make_priority(16); }},
    {"voter15", [] { return make_voter(15); }},
    {"adder", [] { return make_adder(); }},
    {"bar", [] { return make_bar(); }},
    {"div", [] { return make_div(); }},
    {"hyp", [] { return make_hyp(); }},
    {"log2", [] { return make_log2(); }},
    {"max", [] { return make_max(); }},
    {"multiplier", [] { return make_multiplier(); }},
    {"sin", [] { return make_sin(); }},
    {"sqrt", [] { return make_sqrt(); }},
    {"square", [] { return make_square(); }},
    {"arbiter", [] { return make_arbiter(); }},
    {"cavlc", [] { return make_cavlc(); }},
    {"ctrl", [] { return make_ctrl(); }},
    {"dec", [] { return make_dec(); }},
    {"i2c", [] { return make_i2c(); }},
    {"int2float", [] { return make_int2float(); }},
    {"mem_ctrl", [] { return make_mem_ctrl(); }},
    {"priority", [] { return make_priority(); }},
    {"router", [] { return make_router(); }},
    {"voter", [] { return make_voter(); }},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kGenerators));
  for (const auto& entry : kGenerators) names.emplace_back(entry.name);
  return names;
}

bool find_benchmark(const std::string& name, logic::Aig& out) {
  for (const auto& entry : kGenerators) {
    if (name == entry.name) {
      out = entry.make();
      out.set_name(name);
      return true;
    }
  }
  return false;
}

}  // namespace cryo::epfl
