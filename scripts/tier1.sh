#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite,
# then rebuild the parallel tests under ThreadSanitizer and run them.
#
#   scripts/tier1.sh [build-dir]
#
# CRYOEDA_THREADS is honored by the parallel characterization / flow
# drivers; the suite itself asserts thread-count independence.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# Pin the worker count so results (and runtimes) are reproducible on CI
# runners of any size; the suite itself asserts thread-count
# independence, so any fixed value is equivalent.
export CRYOEDA_THREADS="${CRYOEDA_THREADS:-4}"

echo "== tier-1: build + ctest (CRYOEDA_THREADS=$CRYOEDA_THREADS) =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== tier-1: ThreadSanitizer pass over the concurrent tests =="
cmake -B "$BUILD-tsan" -S . -DCRYOEDA_TSAN=ON >/dev/null
cmake --build "$BUILD-tsan" -j "$(nproc)" --target test_parallel --target test_obs
"$BUILD-tsan"/tests/test_parallel
"$BUILD-tsan"/tests/test_obs

echo "tier-1: OK"
