file(REMOVE_RECURSE
  "CMakeFiles/test_epfl.dir/test_epfl.cpp.o"
  "CMakeFiles/test_epfl.dir/test_epfl.cpp.o.d"
  "test_epfl"
  "test_epfl.pdb"
  "test_epfl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
