file(REMOVE_RECURSE
  "CMakeFiles/cryo_logic.dir/aig.cpp.o"
  "CMakeFiles/cryo_logic.dir/aig.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/aiger.cpp.o"
  "CMakeFiles/cryo_logic.dir/aiger.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/blif.cpp.o"
  "CMakeFiles/cryo_logic.dir/blif.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/cuts.cpp.o"
  "CMakeFiles/cryo_logic.dir/cuts.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/factor.cpp.o"
  "CMakeFiles/cryo_logic.dir/factor.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/simulate.cpp.o"
  "CMakeFiles/cryo_logic.dir/simulate.cpp.o.d"
  "CMakeFiles/cryo_logic.dir/tt.cpp.o"
  "CMakeFiles/cryo_logic.dir/tt.cpp.o.d"
  "libcryo_logic.a"
  "libcryo_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
