file(REMOVE_RECURSE
  "CMakeFiles/cryo_device.dir/calibration.cpp.o"
  "CMakeFiles/cryo_device.dir/calibration.cpp.o.d"
  "CMakeFiles/cryo_device.dir/finfet.cpp.o"
  "CMakeFiles/cryo_device.dir/finfet.cpp.o.d"
  "CMakeFiles/cryo_device.dir/measurement.cpp.o"
  "CMakeFiles/cryo_device.dir/measurement.cpp.o.d"
  "CMakeFiles/cryo_device.dir/physics.cpp.o"
  "CMakeFiles/cryo_device.dir/physics.cpp.o.d"
  "libcryo_device.a"
  "libcryo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
