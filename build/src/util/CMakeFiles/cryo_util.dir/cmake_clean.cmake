file(REMOVE_RECURSE
  "CMakeFiles/cryo_util.dir/optimize.cpp.o"
  "CMakeFiles/cryo_util.dir/optimize.cpp.o.d"
  "CMakeFiles/cryo_util.dir/stats.cpp.o"
  "CMakeFiles/cryo_util.dir/stats.cpp.o.d"
  "CMakeFiles/cryo_util.dir/strings.cpp.o"
  "CMakeFiles/cryo_util.dir/strings.cpp.o.d"
  "CMakeFiles/cryo_util.dir/table.cpp.o"
  "CMakeFiles/cryo_util.dir/table.cpp.o.d"
  "CMakeFiles/cryo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/cryo_util.dir/thread_pool.cpp.o.d"
  "libcryo_util.a"
  "libcryo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
