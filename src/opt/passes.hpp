#pragma once

#include "logic/aig.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::opt {

/// Technology-independent AIG optimization passes (paper §IV-A1).
///
/// All passes are purely functional: they return a new, cleaned-up AIG
/// that is logically equivalent to the input (equivalence is enforced by
/// construction — every local resynthesis realizes exactly the truth
/// table of the replaced cone — and re-checked by the test suite via
/// SAT-based CEC and bit-parallel simulation).

/// AND-tree balancing: collapses maximal single-polarity AND trees and
/// rebuilds them Huffman-style by arrival level, reducing depth.
logic::Aig balance(const logic::Aig& input);

/// DAG-aware cut rewriting: for every node, resynthesizes the function of
/// its k-input cuts (ISOP + algebraic factoring, both polarities) and
/// keeps the implementation that adds the fewest new nodes given the
/// sharing already present.
logic::Aig rewrite(const logic::Aig& input, unsigned k = 4);

/// Refactoring: same resynthesis applied to large reconvergence-driven
/// cones (up to `max_leaves` inputs).
logic::Aig refactor(const logic::Aig& input, unsigned max_leaves = 10);

/// Resubstitution: re-expresses nodes as single gates over existing
/// divisor signals inside a reconvergent window (0- and 1-resub with
/// complement handling), validated exactly on the window function.
/// An exhausted `budget` (nullable; checked periodically) stops the
/// windowed search early — remaining nodes are copied structurally, so
/// the result stays equivalent.
logic::Aig resub(const logic::Aig& input, unsigned max_leaves = 8,
                 const util::Budget* budget = nullptr);

/// The `c2rs` compression script of the paper's stage (1): an alternation
/// of resubstitution, rewriting, refactoring, and balancing, iterated
/// while the network shrinks. An exhausted `budget` (nullable) stops the
/// iteration between rounds.
logic::Aig compress2rs(const logic::Aig& input,
                       const util::Budget* budget = nullptr);

}  // namespace cryo::opt
