#pragma once

#include <vector>

#include "logic/aig.hpp"
#include "sat/solver.hpp"

namespace cryo::sat {

/// Mapping from AIG nodes to SAT variables after Tseitin encoding.
struct CnfMap {
  std::vector<Var> node_var;  ///< indexed by AIG node

  /// SAT literal of an AIG literal.
  Lit lit(logic::Lit l) const {
    return mk_lit(node_var[logic::lit_var(l)], logic::lit_compl(l));
  }
};

/// Tseitin-encode all AND nodes of the AIG into the solver. The constant
/// node gets a variable forced to 0. Fresh variables are created for all
/// nodes; PIs are unconstrained.
CnfMap encode_aig(const logic::Aig& aig, Solver& solver);

/// Combinational equivalence checking result.
struct CecResult {
  Status status = Status::kUnknown;  ///< kUnsat = equivalent
  bool equivalent() const { return status == Status::kUnsat; }
  bool proven() const { return status != Status::kUnknown; }
  /// A distinguishing PI assignment when status == kSat.
  std::vector<bool> counterexample;
};

/// SAT-based CEC of two AIGs with identical PI/PO counts: builds a miter
/// (shared PIs, XOR per PO pair, OR of XORs asserted) and solves.
/// `conflict_limit` < 0 means run to completion.
CecResult check_equivalence(const logic::Aig& a, const logic::Aig& b,
                            std::int64_t conflict_limit = -1);

}  // namespace cryo::sat
