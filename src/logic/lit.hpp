#pragma once

#include <cstdint>

namespace cryo::logic {

/// A literal: AIG node index with a complement flag in the LSB.
/// Literal 0 is constant false, literal 1 constant true (node 0).
using Lit = std::uint32_t;
using NodeIdx = std::uint32_t;

inline constexpr Lit make_lit(NodeIdx var, bool complemented = false) {
  return (var << 1) | static_cast<Lit>(complemented);
}
inline constexpr NodeIdx lit_var(Lit l) { return l >> 1; }
inline constexpr bool lit_compl(Lit l) { return (l & 1u) != 0; }
inline constexpr Lit lit_not(Lit l) { return l ^ 1u; }
inline constexpr Lit lit_notif(Lit l, bool c) {
  return l ^ static_cast<Lit>(c);
}
inline constexpr Lit lit_regular(Lit l) { return l & ~1u; }

inline constexpr Lit kConst0 = 0;
inline constexpr Lit kConst1 = 1;

}  // namespace cryo::logic
