#include "spice/measure.hpp"

#include <cmath>
#include <stdexcept>

namespace cryo::spice {

std::optional<double> crossing_time(const std::vector<double>& times,
                                    const std::vector<double>& values,
                                    double threshold, bool rising,
                                    double t_from) {
  if (times.size() != values.size() || times.size() < 2) {
    throw std::invalid_argument{"crossing_time: malformed waveform"};
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] < t_from) {
      continue;
    }
    const double a = values[i - 1];
    const double b = values[i];
    const bool crossed = rising ? (a < threshold && b >= threshold)
                                : (a > threshold && b <= threshold);
    if (crossed) {
      // Guard the degenerate zero-swing segment: report the segment
      // start instead of dividing by zero.
      const double denom = b - a;
      const double frac = denom != 0.0 ? (threshold - a) / denom : 0.0;
      return times[i - 1] + frac * (times[i] - times[i - 1]);
    }
    if (a == threshold && b == threshold) {
      // Plateau sitting exactly on the threshold (e.g. a waveform that
      // starts at the crossing level): the strict inequalities above
      // never fire, so treat the plateau start as the crossing time.
      return times[i - 1];
    }
  }
  return std::nullopt;
}

std::optional<double> transition_time(const std::vector<double>& times,
                                      const std::vector<double>& values,
                                      double v0, double v1, double lo_frac,
                                      double hi_frac) {
  // "first"/"second" are in transition progress, so they work for both
  // rising and falling swings.
  const double first = v0 + lo_frac * (v1 - v0);
  const double second = v0 + hi_frac * (v1 - v0);
  const bool rising = v1 > v0;
  const auto t_first = crossing_time(times, values, first, rising);
  if (!t_first) {
    return std::nullopt;
  }
  const auto t_second =
      crossing_time(times, values, second, rising, *t_first);
  if (!t_second) {
    return std::nullopt;
  }
  return *t_second - *t_first;
}

bool settled(const std::vector<double>& values, double target, double tol) {
  return !values.empty() && std::fabs(values.back() - target) <= tol;
}

}  // namespace cryo::spice
