#include "service/job_queue.hpp"

#include <utility>

namespace cryo::service {

JobQueue::JobQueue(int threads) : pool_{threads} {}

void JobQueue::submit(std::function<util::Json()> job) {
  auto slot = std::make_shared<Slot>();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    slots_.push_back(slot);
  }
  pool_.submit([this, slot, job = std::move(job)]() {
    util::Json reply = job();
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      slot->reply = std::move(reply);
      slot->ready = true;
    }
    cv_.notify_all();
  });
}

void JobQueue::submit_ready(util::Json reply) {
  auto slot = std::make_shared<Slot>();
  slot->reply = std::move(reply);
  slot->ready = true;
  const std::lock_guard<std::mutex> lock{mutex_};
  slots_.push_back(std::move(slot));
}

std::vector<util::Json> JobQueue::drain_ready() {
  std::vector<util::Json> replies;
  const std::lock_guard<std::mutex> lock{mutex_};
  while (!slots_.empty() && slots_.front()->ready) {
    replies.push_back(std::move(slots_.front()->reply));
    slots_.pop_front();
  }
  return replies;
}

std::vector<util::Json> JobQueue::drain_all() {
  std::vector<util::Json> replies;
  std::unique_lock<std::mutex> lock{mutex_};
  while (!slots_.empty()) {
    cv_.wait(lock, [&] { return slots_.front()->ready; });
    replies.push_back(std::move(slots_.front()->reply));
    slots_.pop_front();
  }
  return replies;
}

}  // namespace cryo::service
