#pragma once

#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "device/preset.hpp"
#include "liberty/library.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::cells {

/// Characterization options. Defaults reproduce the paper's setup: a
/// 7x7 grid of input slews and output loads per arc, at Vdd = 0.7 V on
/// the paper's FinFET platform with the builtin engine.
struct CharOptions {
  double vdd = 0.7;
  /// Device/technology platform supplying the transistor flavours.
  /// The default is the paper's `finfet5` (bit-identical to the legacy
  /// hard-coded `nominal_*_5nm()` path).
  device::Preset preset = device::default_preset();
  /// SPICE engine name; "" resolves via $CRYOEDA_SPICE_BACKEND and
  /// falls back to "builtin" (see spice::resolve_backend).
  std::string backend;
  std::vector<double> slews = {2e-12,  4e-12,  8e-12, 16e-12,
                               24e-12, 40e-12, 64e-12};
  std::vector<double> loads = {1e-16, 2e-16, 4e-16, 8e-16,
                               1.6e-15, 3.2e-15, 6.4e-15};
  int transient_steps = 200;
  bool include_sequential = true;
  bool verbose = false;
  /// SPICE workers for the per-cell / per-grid-point transients:
  /// 0 = CRYOEDA_THREADS env var, falling back to the hardware
  /// concurrency; 1 = the serial path (byte-identical results either
  /// way — outputs are assembled in index order).
  int threads = 0;
  /// Shared resource budget; nullptr means `util::Budget::global()`.
  /// Characterization cannot degrade — a partial library would poison
  /// every downstream figure — so cancellation *and* deadline both abort
  /// with cryo::Error{kBudget}.
  util::Budget* budget = nullptr;
};

/// Characterize a cell catalog at the given temperature into a liberty
/// library: for every timing arc, SPICE transients over the slew/load
/// grid measure propagation delay, output slew, and internal (switching)
/// energy; DC analyses over all input states measure leakage.
liberty::Library characterize(const std::vector<CellSpec>& catalog,
                              double temperature_k,
                              const CharOptions& options = {});

/// The canonical library name of a characterization request. The
/// default platform (finfet5 preset + builtin engine) keeps the
/// historical `cryoeda_<T>K` spelling so existing signoff artifacts stay
/// byte-identical; any other preset/backend combination is tagged with
/// both, which is what lets `load_or_characterize` reject a cached
/// library produced for a different platform at the same (temp, Vdd).
std::string library_name(const device::Preset& preset,
                         const std::string& backend_identity,
                         double temperature_k);

/// The canonical on-disk spelling of a characterized-library cache file
/// for one (preset, engine, temperature, Vdd) corner. The default
/// platform keeps the historical `cryoeda_lib_<T>K[_<Vdd>V].lib`
/// spelling (Vdd untagged at the 0.7 V default); any other
/// preset/engine is tagged with both so two platforms at the same
/// corner land in different files. `backend_name` is the engine's
/// registry name ("" = "builtin"); `dir` may be empty for a bare
/// filename.
std::string default_lib_path(const std::string& dir,
                             const device::Preset& preset,
                             const std::string& backend_name,
                             double temperature_k, double vdd);

/// Cached characterization: parse `cache_path` if it exists and matches
/// the request (temperature, Vdd, device preset + engine via the
/// canonical library name, and every requested catalog cell present),
/// otherwise characterize and overwrite it. A stale or corrupt cache
/// from a different corner or platform is never returned.
liberty::Library load_or_characterize(const std::string& cache_path,
                                      const std::vector<CellSpec>& catalog,
                                      double temperature_k,
                                      const CharOptions& options = {});

}  // namespace cryo::cells
