#include "spice/circuit.hpp"

#include <stdexcept>

namespace cryo::spice {

NodeId Circuit::add_node(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

NodeId Circuit::node(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range{"Circuit: unknown node " + name};
  }
  return it->second;
}

void Circuit::add_fet(const device::FinFetParams& params, NodeId gate,
                      NodeId drain, NodeId source, int nfins) {
  if (nfins <= 0) {
    throw std::invalid_argument{"Circuit::add_fet: nfins must be positive"};
  }
  fets_.push_back({params, gate, drain, source, nfins});
}

void Circuit::add_cap(NodeId a, NodeId b, double farads) {
  if (farads < 0.0) {
    throw std::invalid_argument{"Circuit::add_cap: negative capacitance"};
  }
  caps_.push_back({a, b, farads});
}

void Circuit::add_res(NodeId a, NodeId b, double ohms) {
  if (ohms <= 0.0) {
    throw std::invalid_argument{"Circuit::add_res: resistance must be positive"};
  }
  resistors_.push_back({a, b, ohms});
}

void Circuit::set_source(NodeId node, Pwl waveform) {
  for (auto& src : sources_) {
    if (src.node == node) {
      src.waveform = std::move(waveform);
      return;
    }
  }
  sources_.push_back({node, std::move(waveform)});
}

bool Circuit::is_driven(NodeId node) const {
  if (node == kGround) {
    return true;
  }
  for (const auto& src : sources_) {
    if (src.node == node) {
      return true;
    }
  }
  return false;
}

}  // namespace cryo::spice
