file(REMOVE_RECURSE
  "CMakeFiles/cryo_core.dir/experiment.cpp.o"
  "CMakeFiles/cryo_core.dir/experiment.cpp.o.d"
  "CMakeFiles/cryo_core.dir/flow.cpp.o"
  "CMakeFiles/cryo_core.dir/flow.cpp.o.d"
  "libcryo_core.a"
  "libcryo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
