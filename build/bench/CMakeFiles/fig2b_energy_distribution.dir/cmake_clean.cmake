file(REMOVE_RECURSE
  "CMakeFiles/fig2b_energy_distribution.dir/fig2b_energy_distribution.cpp.o"
  "CMakeFiles/fig2b_energy_distribution.dir/fig2b_energy_distribution.cpp.o.d"
  "fig2b_energy_distribution"
  "fig2b_energy_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_energy_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
