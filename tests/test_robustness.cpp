// Robustness and cross-cutting property tests: parser fuzzing, pass
// idempotence, wire-load sanity, don't-care discovery, suite-wide AIGER
// round-trips.

#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"
#include "liberty/function.hpp"
#include "liberty/library.hpp"
#include "logic/aiger.hpp"
#include "logic/simulate.hpp"
#include "map/mapper.hpp"
#include "opt/lut_map.hpp"
#include "opt/passes.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo;

/// The liberty parser must never crash on mutated input: either it
/// parses, or it throws std::runtime_error / std::exception.
class LibertyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LibertyFuzz, MutatedLibraryNeverCrashes) {
  // A small but structurally complete library as the seed corpus.
  liberty::Library lib;
  lib.name = "fuzz";
  liberty::Cell cell;
  cell.name = "INV";
  cell.area = 1.0;
  liberty::Pin a;
  a.name = "A";
  a.capacitance = 1e-15;
  liberty::Pin y;
  y.name = "Y";
  y.is_output = true;
  y.function = "!A";
  cell.pins = {a, y};
  liberty::TimingArc arc;
  arc.related_pin = "A";
  arc.cell_rise = liberty::NldmTable{{1e-12, 2e-12}, {1e-16, 2e-16},
                                     {1e-12, 2e-12, 3e-12, 4e-12}};
  arc.cell_fall = arc.cell_rise;
  arc.rise_transition = arc.cell_rise;
  arc.fall_transition = arc.cell_rise;
  cell.arcs.push_back(arc);
  lib.cells.push_back(cell);
  std::string text = to_liberty(lib);

  util::Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 7};
  // Apply a handful of random mutations: deletions, flips, truncations.
  for (int m = 0; m < 8; ++m) {
    if (text.empty()) {
      break;
    }
    const auto pos = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text.erase(pos, 1 + rng.next_below(4));
        break;
      case 1:
        text[pos] = static_cast<char>('!' + rng.next_below(90));
        break;
      default:
        text.resize(pos);
        break;
    }
  }
  try {
    const auto parsed = liberty::parse_liberty(text);
    (void)parsed;
  } catch (const std::exception&) {
    // Throwing is the contract; crashing is not.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LibertyFuzz, ::testing::Range(1, 30));

/// The AIGER reader must never crash on mutated files either.
class AigerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AigerFuzz, MutatedAigerNeverCrashes) {
  std::string text = logic::write_aiger_ascii(epfl::make_dec(4));
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) * 17 + 3};
  for (int m = 0; m < 6; ++m) {
    if (text.empty()) {
      break;
    }
    const auto pos = rng.next_below(text.size());
    if (rng.next_bool()) {
      text[pos] = static_cast<char>('0' + rng.next_below(10));
    } else {
      text.erase(pos, 1);
    }
  }
  try {
    const auto parsed = logic::read_aiger(text);
    (void)parsed;
  } catch (const std::exception&) {
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerFuzz, ::testing::Range(1, 30));

TEST(Passes, CompressIsIdempotentEnough) {
  // Running c2rs twice must not grow the network and must preserve the
  // function.
  const auto input = epfl::make_voter(31);
  const auto once = opt::compress2rs(input);
  const auto twice = opt::compress2rs(once);
  EXPECT_LE(twice.num_ands(), once.num_ands());
  EXPECT_TRUE(logic::simulate_equal(input, twice, 32));
}

TEST(Passes, CleanupIsIdempotent) {
  const auto input = epfl::make_priority(32);
  const auto once = input.cleanup();
  const auto twice = once.cleanup();
  EXPECT_EQ(once.num_ands(), twice.num_ands());
  EXPECT_TRUE(logic::simulate_equal(once, twice));
}

TEST(Mfs, FindsDontCaresBehindCorrelatedLeaves) {
  // A network where a LUT's leaves are correlated (x and !x feed the
  // same cut through reconvergence): half the leaf space is unreachable.
  logic::Aig aig;
  const auto x = aig.add_pi();
  const auto y = aig.add_pi();
  const auto z = aig.add_pi();
  const auto a = aig.land(x, y);
  const auto b = aig.land(logic::lit_not(x), z);
  // Root whose cut {a, b} can never see a=b=1 (they conflict on x).
  const auto root = aig.lor(a, b);
  aig.add_po(root);
  opt::LutMapOptions options;
  options.k = 2;
  auto mapping = opt::lut_map(aig, options);
  const std::size_t found = opt::mfs(mapping);
  EXPECT_GT(found, 0u);
  // Equivalence must survive the don't-care minimization.
  const auto back = opt::luts_to_aig(mapping);
  EXPECT_TRUE(logic::simulate_equal(aig, back, 16));
}

TEST(Aiger, WholeSuiteRoundTrips) {
  for (const auto& bench : epfl::mini_suite()) {
    const auto text = logic::write_aiger_binary(bench.aig.cleanup());
    const auto parsed = logic::read_aiger(text);
    EXPECT_TRUE(logic::simulate_equal(bench.aig.cleanup(), parsed, 16))
        << bench.name;
  }
}

TEST(WireLoad, IncreasesDelayAndPower) {
  cells::CharOptions options;
  options.slews = {4e-12, 16e-12, 48e-12};
  options.loads = {2e-16, 1e-15, 4e-15};
  options.include_sequential = false;
  const auto lib = cells::characterize(cells::mini_catalog(), 10.0, options);
  const map::CellMatcher matcher{lib};
  const auto aig = epfl::make_adder(16);
  const auto net = map::tech_map(aig, matcher);

  sta::StaOptions bare;
  sta::StaOptions wired;
  wired.wire_cap_base = 0.1e-15;
  wired.wire_cap_per_fanout = 0.2e-15;
  const auto r_bare = sta::analyze(net, bare);
  const auto r_wired = sta::analyze(net, wired);
  EXPECT_GT(r_wired.critical_delay, r_bare.critical_delay);
  EXPECT_GT(r_wired.power.switching, r_bare.power.switching);
  // Leakage is load-independent.
  EXPECT_NEAR(r_wired.power.leakage, r_bare.power.leakage,
              r_bare.power.leakage * 1e-9);
}

TEST(Library, FullCatalogFunctionsRoundTripThroughLiberty) {
  // Write the full catalog's *interface* (functions, pins) through the
  // liberty writer/parser using scalar tables, and confirm the matcher
  // sees identical functions. Catches unit or quoting regressions on
  // every cell shape in the catalog.
  liberty::Library lib;
  lib.name = "iface";
  lib.temperature_k = 10.0;
  for (const auto& spec : cells::standard_catalog()) {
    if (spec.sequential) {
      continue;
    }
    liberty::Cell cell;
    cell.name = spec.name;
    cell.area = spec.area;
    for (const auto& in : spec.inputs) {
      liberty::Pin p;
      p.name = in;
      p.capacitance = 1e-15;
      cell.pins.push_back(p);
    }
    liberty::Pin out;
    out.name = spec.output;
    out.is_output = true;
    out.function = spec.function_string();
    cell.pins.push_back(out);
    lib.cells.push_back(cell);
  }
  const auto parsed = liberty::parse_liberty(to_liberty(lib));
  ASSERT_EQ(parsed.cells.size(), lib.cells.size());
  for (std::size_t i = 0; i < lib.cells.size(); ++i) {
    const auto inputs = lib.cells[i].input_names();
    EXPECT_EQ(liberty::function_truth_table(
                  parsed.cells[i].output_pin()->function, inputs),
              liberty::function_truth_table(
                  lib.cells[i].output_pin()->function, inputs))
        << lib.cells[i].name;
  }
}

TEST(Determinism, FullFlowIsReproducible) {
  cells::CharOptions options;
  options.slews = {8e-12};
  options.loads = {1e-15};
  options.include_sequential = false;
  const auto lib = cells::characterize(cells::mini_catalog(), 10.0, options);
  const map::CellMatcher matcher{lib};
  const auto aig = epfl::make_router(4);
  core::FlowOptions flow;
  const auto a = core::synthesize(aig, matcher, flow);
  const auto b = core::synthesize(aig, matcher, flow);
  EXPECT_EQ(a.netlist.gate_count(), b.netlist.gate_count());
  EXPECT_EQ(a.netlist.total_area(), b.netlist.total_area());
  const auto sa = sta::analyze(a.netlist, {});
  const auto sb = sta::analyze(b.netlist, {});
  EXPECT_DOUBLE_EQ(sa.critical_delay, sb.critical_delay);
  EXPECT_DOUBLE_EQ(sa.power.total(), sb.power.total());
}

}  // namespace
