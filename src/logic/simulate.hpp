#pragma once

#include <cstdint>
#include <vector>

#include "logic/aig.hpp"
#include "util/rng.hpp"

namespace cryo::logic {

/// Bit-parallel AIG simulator.
///
/// Every node holds `words * 64` simulation bits. Interpreting the bit
/// sequence as consecutive time steps yields per-node switching-activity
/// estimates, the quantity the power-aware cost functions consume
/// (paper §IV-B: "ABC simulates the switching activity of each node …
/// assuming a certain activation rate for each primary input").
class Simulation {
public:
  Simulation(const Aig& aig, unsigned words = 16);

  /// Fill PI streams with i.i.d. uniform bits.
  void randomize_pis(util::Rng& rng);

  /// Fill PI streams as Markov toggle chains: each PI flips between
  /// consecutive bits with probability `toggle_rate` (the "activation
  /// rate" knob of the power-aware flow).
  void randomize_pis_markov(util::Rng& rng, double toggle_rate);

  /// Set one PI's stream explicitly (word-granular).
  void set_pi_word(NodeIdx pi_index, unsigned word, std::uint64_t bits);

  /// Propagate through all AND nodes.
  void run();

  const std::uint64_t* node_bits(NodeIdx v) const {
    return &bits_[static_cast<std::size_t>(v) * words_];
  }

  /// Fraction of 1-bits of a node.
  double probability(NodeIdx v) const;

  /// Toggle rate: fraction of adjacent bit pairs (in time order) that
  /// differ. In [0, 1].
  double activity(NodeIdx v) const;

  /// Toggle rate of a PO (complement bits do not change it).
  double po_activity(unsigned po_index) const;

  /// 64-bit signature of a literal (first word, complemented if needed) —
  /// a cheap semantic fingerprint for equivalence-candidate detection.
  std::uint64_t signature(Lit l) const;

  unsigned words() const { return words_; }
  const Aig& aig() const { return aig_; }

private:
  const Aig& aig_;
  unsigned words_;
  std::vector<std::uint64_t> bits_;
};

/// Convenience: simulate `words*64` random patterns and compare the PO
/// streams of two AIGs with identical PI counts. Returns true if all POs
/// agree on every pattern (a necessary condition for equivalence — use
/// SAT-based CEC for proof).
bool simulate_equal(const Aig& a, const Aig& b, unsigned words = 32,
                    std::uint64_t seed = 1);

}  // namespace cryo::logic
