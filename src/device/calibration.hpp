#pragma once

#include "device/measurement.hpp"

namespace cryo::device {

/// Result of calibrating the compact model against measurements.
struct CalibrationResult {
  FinFetParams params;        ///< extracted parameter set
  double rms_log_error = 0.0; ///< RMS of log10(I) residuals over all points
  double max_log_error = 0.0; ///< worst-case log10(I) residual
  int evaluations = 0;        ///< optimizer objective evaluations
};

/// Figure-of-merit comparison between model and measurement on one curve.
struct CurveError {
  double temperature_k = 0.0;
  double vds = 0.0;
  double rms_log_error = 0.0;
  double mean_rel_error = 0.0;  ///< mean |I_model - I_meas| / I_meas (above floor)
};

/// The cache-key identity of the in-process simulation engine, mirrored
/// here because `device` sits below `spice` in the layer graph and must
/// not include it. A spice-layer test pins this to
/// `spice::builtin_backend().identity()` so the two can never drift.
inline constexpr const char* kBuiltinBackendIdentity = "builtin/1";

/// Fit the cryogenic-aware FinFET model to a measurement set.
///
/// This is the reproduction of the paper's §II-C: parameter extraction of
/// the cryogenic BSIM-CMG against the 5 nm FinFET data over the *entire*
/// temperature range (300 K → 10 K) simultaneously. The objective is the
/// sum of squared log10-current residuals (log scale so subthreshold and
/// ON-current regions carry comparable weight), minimized with
/// Nelder–Mead over {Vth300, n, Wt, mu0, theta, kvt, lambda, Ifloor}.
///
/// `backend_identity` names the simulation engine whose physics the fit
/// feeds (the objective evaluates the compact model in-process, but the
/// extracted parameters are only trusted alongside the engine that will
/// consume them); it participates in the calibration cache key so fits
/// recorded under different engines or engine versions never alias.
CalibrationResult calibrate(
    const MeasurementSet& measurements, const FinFetParams& initial_guess,
    int max_evaluations = 6000,
    const std::string& backend_identity = kBuiltinBackendIdentity);

/// Per-curve (T, Vds) error report for a given parameter set — the data
/// behind the "lines vs dots" agreement of paper Fig. 1(b,c).
std::vector<CurveError> curve_errors(const FinFetParams& params,
                                     const MeasurementSet& measurements);

}  // namespace cryo::device
