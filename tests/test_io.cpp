#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/aiger.hpp"
#include "logic/simulate.hpp"
#include "map/mapper.hpp"
#include "map/verilog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cryo::logic::Aig;

class AigerRoundTrip : public ::testing::TestWithParam<bool> {};

TEST_P(AigerRoundTrip, PreservesFunctionAndNames) {
  const bool binary = GetParam();
  const Aig original = cryo::epfl::make_adder(8);
  const std::string text = binary ? cryo::logic::write_aiger_binary(original)
                                  : cryo::logic::write_aiger_ascii(original);
  const Aig parsed = cryo::logic::read_aiger(text);
  EXPECT_EQ(parsed.num_pis(), original.num_pis());
  EXPECT_EQ(parsed.num_pos(), original.num_pos());
  EXPECT_EQ(parsed.num_ands(), original.num_ands());
  EXPECT_TRUE(cryo::logic::simulate_equal(original, parsed, 32));
  EXPECT_EQ(parsed.po_name(0), original.po_name(0));
}

TEST_P(AigerRoundTrip, RandomNetworks) {
  const bool binary = GetParam();
  cryo::util::Rng rng{17};
  for (int trial = 0; trial < 5; ++trial) {
    Aig aig;
    std::vector<cryo::logic::Lit> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(aig.add_pi());
    }
    for (int i = 0; i < 80; ++i) {
      const auto a = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                            rng.next_bool());
      const auto b = cryo::logic::lit_notif(pool[rng.next_below(pool.size())],
                                            rng.next_bool());
      pool.push_back(aig.land(a, b));
    }
    aig.add_po(pool.back());
    aig.add_po(cryo::logic::lit_not(pool[pool.size() / 2]));
    // Dangling nodes are not valid AIGER (vars must be contiguous &
    // referenced ordering holds anyway); clean up first.
    const Aig clean = aig.cleanup();
    const std::string text = binary
                                 ? cryo::logic::write_aiger_binary(clean)
                                 : cryo::logic::write_aiger_ascii(clean);
    const Aig parsed = cryo::logic::read_aiger(text);
    EXPECT_TRUE(cryo::logic::simulate_equal(clean, parsed, 16));
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, AigerRoundTrip, ::testing::Bool());

TEST(Aiger, CrossFormat) {
  const Aig original = cryo::epfl::make_priority(16);
  const Aig via_ascii =
      cryo::logic::read_aiger(cryo::logic::write_aiger_ascii(original));
  const Aig via_binary =
      cryo::logic::read_aiger(cryo::logic::write_aiger_binary(original));
  EXPECT_TRUE(cryo::logic::simulate_equal(via_ascii, via_binary, 16));
}

TEST(Aiger, RejectsLatchesAndGarbage) {
  EXPECT_THROW(cryo::logic::read_aiger("aag 1 0 1 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(cryo::logic::read_aiger("not aiger"), std::runtime_error);
  EXPECT_THROW(cryo::logic::read_aiger("aag 5 1 0 1 2\n2\n10\n"),
               std::runtime_error);
}

// Malformed benchmark files must flow through the exit-code taxonomy:
// every read_aiger rejection is cryo::Error{kIo} (driver exit code 3),
// not a raw std::runtime_error that the CLI would report as exit 1.
TEST(Aiger, MalformedInputsAreIoErrorsWithExitCode3) {
  const char* malformed[] = {
      "aag 1 0 1 0 0\n",          // latches unsupported
      "not aiger",                // bad header
      "aag 5 1 0 1 2\n2\n10\n",   // truncated body
      "aag 3 1 0 1 1\n2\n10\n",   // non-contiguous indexing (m != i + a)
      "aag 200000001 200000001 0 0 0\n",  // implausible header sizes
      "aig 1 1 0 1 0\n9999\n",    // literal out of range
      "aag 1 1 0 1 0\n4\n2\n",    // unexpected input literal
      "aig 2 1 0 1 1\n2\n\x80",   // truncated binary delta section
  };
  for (const char* text : malformed) {
    try {
      cryo::logic::read_aiger(text);
      FAIL() << "expected Error{kIo} for: " << text;
    } catch (const cryo::Error& e) {
      EXPECT_EQ(e.kind(), cryo::ErrorKind::kIo) << text;
      EXPECT_EQ(cryo::error_exit_code(e.kind()), 3) << text;
    }
  }
  // File-level helpers classify open failures the same way.
  try {
    cryo::logic::read_aiger_file("/nonexistent/cryoeda/x.aig");
    FAIL() << "expected Error{kIo} for a missing file";
  } catch (const cryo::Error& e) {
    EXPECT_EQ(cryo::error_exit_code(e.kind()), 3);
  }
}

// A corrupt symbol table used to reach raw std::stoul, which crashes
// with std::invalid_argument / std::out_of_range carrying no hint of
// the offending line. It must surface as cryo::Error{kIo} quoting the
// entry instead.
void expect_symbol_error(const std::string& symbols,
                         const std::string& needle) {
  // Minimal valid 1-PI/1-PO body; only the symbol table varies.
  const std::string text = "aag 1 1 0 1 0\n2\n2\n" + symbols;
  try {
    cryo::logic::read_aiger(text);
    FAIL() << "expected Error{kIo} for symbols: " << symbols;
  } catch (const cryo::Error& e) {
    EXPECT_EQ(e.kind(), cryo::ErrorKind::kIo);
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message '" << what << "' lacks '" << needle << "'";
  }
}

TEST(Aiger, CorruptSymbolTablesAreIoErrorsNamingTheLine) {
  expect_symbol_error("oxyz out\n", "oxyz out");
  expect_symbol_error("o1x2 out\n", "bad symbol index");
  expect_symbol_error("o- out\n", "o- out");
  expect_symbol_error("x0 name\n", "bad symbol-table entry");
  // An index past 2^32-1 (or past the header's declared counts) names
  // the entry instead of throwing std::out_of_range.
  expect_symbol_error("o99999999999999999999 out\n", "bad symbol index");
  expect_symbol_error("o7 out\n", "out of range");
  expect_symbol_error("i1 in\n", "out of range");
}

TEST(Aiger, ValidSymbolTablesStillRoundTrip) {
  // Valid entries (and the comment section) parse as before; 'l'
  // entries are tolerated and ignored like 'i'.
  const Aig parsed = cryo::logic::read_aiger(
      "aag 1 1 0 1 0\n2\n2\ni0 alpha\no0 result\nc\nnote\n");
  ASSERT_EQ(parsed.num_pos(), 1u);
  EXPECT_EQ(parsed.po_name(0), "result");
}

TEST(Verilog, EmitsStructurallySoundModule) {
  cryo::cells::CharOptions options;
  options.slews = {8e-12};
  options.loads = {1e-15};
  options.include_sequential = false;
  const auto lib =
      cryo::cells::characterize(cryo::cells::mini_catalog(), 10.0, options);
  const cryo::map::CellMatcher matcher{lib};
  const Aig aig = cryo::epfl::make_adder(4);
  const auto net = cryo::map::tech_map(aig, matcher);
  const std::string verilog = cryo::map::to_verilog(net, "adder4");

  EXPECT_NE(verilog.find("module adder4"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
  // One instance per gate.
  std::size_t count = 0;
  for (std::size_t pos = verilog.find(" g"); pos != std::string::npos;
       pos = verilog.find(" g", pos + 1)) {
    if (std::isdigit(static_cast<unsigned char>(verilog[pos + 2]))) {
      ++count;
    }
  }
  EXPECT_EQ(count, net.gate_count());
  // Bracketed port names are escaped.
  EXPECT_NE(verilog.find("\\a[0] "), std::string::npos);
  // Every PO is assigned (bracketed names get the escaped identifier).
  for (const auto& name : net.po_names) {
    const bool found =
        verilog.find("assign \\" + name) != std::string::npos ||
        verilog.find("assign " + name) != std::string::npos;
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace

#include "logic/blif.hpp"

namespace {

TEST(Blif, RoundTripPreservesFunction) {
  const cryo::logic::Aig original = cryo::epfl::make_adder(8).cleanup();
  const std::string text = cryo::logic::write_blif(original);
  const cryo::logic::Aig parsed = cryo::logic::read_blif(text);
  EXPECT_EQ(parsed.num_pis(), original.num_pis());
  EXPECT_EQ(parsed.num_pos(), original.num_pos());
  EXPECT_TRUE(cryo::logic::simulate_equal(original, parsed, 32));
  EXPECT_EQ(parsed.po_name(0), original.po_name(0));
}

TEST(Blif, ReadsHandWrittenSop) {
  const std::string text = R"(
# a 2:1 mux written as a two-cube SOP
.model mux
.inputs a b s
.outputs y
.names s b a y
11- 1
0-1 1
.end
)";
  const auto aig = cryo::logic::read_blif(text);
  ASSERT_EQ(aig.num_pis(), 3u);
  ASSERT_EQ(aig.num_pos(), 1u);
  // y = s ? b : a — exhaustive check.
  cryo::logic::Simulation sim{aig, 1};
  sim.set_pi_word(0, 0, 0xaa);  // a
  sim.set_pi_word(1, 0, 0xcc);  // b
  sim.set_pi_word(2, 0, 0xf0);  // s
  sim.run();
  EXPECT_EQ(sim.signature(aig.po(0)) & 0xff, 0xcaull);
}

TEST(Blif, OffsetTablesAndConstants) {
  const std::string text =
      ".model t\n.inputs a b\n.outputs z c1\n"
      ".names a b z\n00 0\n01 0\n10 0\n"  // offset rows: z = a & b
      ".names c1\n1\n"                    // constant one
      ".end\n";
  const auto aig = cryo::logic::read_blif(text);
  cryo::logic::Simulation sim{aig, 1};
  sim.set_pi_word(0, 0, 0xa);
  sim.set_pi_word(1, 0, 0xc);
  sim.run();
  EXPECT_EQ(sim.signature(aig.po(0)) & 0xf, 0x8ull);
  EXPECT_EQ(sim.signature(aig.po(1)) & 0xf, 0xfull);
}

TEST(Blif, RejectsLatchesAndCycles) {
  EXPECT_THROW(cryo::logic::read_blif(".model x\n.latch a b\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(
      cryo::logic::read_blif(".model x\n.inputs a\n.outputs y\n"
                             ".names q y\n1 1\n.names y q\n1 1\n.end\n"),
      std::runtime_error);
}

}  // namespace
