#include "epfl/wordlib.hpp"

#include <stdexcept>

namespace cryo::epfl {

using logic::Aig;
using logic::Lit;

Word input_word(Aig& aig, const std::string& prefix, unsigned bits) {
  Word w;
  w.reserve(bits);
  for (unsigned i = 0; i < bits; ++i) {
    w.push_back(aig.add_pi(prefix + "[" + std::to_string(i) + "]"));
  }
  return w;
}

Word constant_word(unsigned long long value, unsigned bits) {
  Word w;
  w.reserve(bits);
  for (unsigned i = 0; i < bits; ++i) {
    w.push_back(((value >> i) & 1ull) != 0 ? logic::kConst1 : logic::kConst0);
  }
  return w;
}

Word add(Aig& aig, const Word& a, const Word& b, Lit carry_in,
         Lit* carry_out) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"add: width mismatch"};
  }
  Word sum(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = aig.lxor(a[i], b[i]);
    sum[i] = aig.lxor(axb, carry);
    carry = aig.lor(aig.land(a[i], b[i]), aig.land(axb, carry));
  }
  if (carry_out != nullptr) {
    *carry_out = carry;
  }
  return sum;
}

Word sub(Aig& aig, const Word& a, const Word& b, Lit* no_borrow) {
  Word nb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    nb[i] = logic::lit_not(b[i]);
  }
  Lit carry = logic::kConst0;
  Word diff = add(aig, a, nb, logic::kConst1, &carry);
  if (no_borrow != nullptr) {
    *no_borrow = carry;  // carry==1 means a >= b
  }
  return diff;
}

Lit less_than(Aig& aig, const Word& a, const Word& b) {
  Lit no_borrow = logic::kConst0;
  (void)sub(aig, a, b, &no_borrow);
  return logic::lit_not(no_borrow);
}

Lit equals(Aig& aig, const Word& a, const Word& b) {
  Word eq(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq[i] = aig.lxnor(a[i], b[i]);
  }
  return and_reduce(aig, eq);
}

Word mux_word(Aig& aig, Lit s, const Word& t, const Word& e) {
  if (t.size() != e.size()) {
    throw std::invalid_argument{"mux_word: width mismatch"};
  }
  Word out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = aig.lmux(s, t[i], e[i]);
  }
  return out;
}

Word shift_left(Aig& aig, const Word& value, const Word& amount) {
  Word cur = value;
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const unsigned dist = 1u << s;
    Word shifted(cur.size(), logic::kConst0);
    for (std::size_t i = dist; i < cur.size(); ++i) {
      shifted[i] = cur[i - dist];
    }
    cur = mux_word(aig, amount[s], shifted, cur);
  }
  return cur;
}

Word shift_right(Aig& aig, const Word& value, const Word& amount) {
  Word cur = value;
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const unsigned dist = 1u << s;
    Word shifted(cur.size(), logic::kConst0);
    for (std::size_t i = 0; i + dist < cur.size(); ++i) {
      shifted[i] = cur[i + dist];
    }
    cur = mux_word(aig, amount[s], shifted, cur);
  }
  return cur;
}

Word multiply(Aig& aig, const Word& a, const Word& b) {
  const std::size_t width = a.size() + b.size();
  Word acc(width, logic::kConst0);
  for (std::size_t j = 0; j < b.size(); ++j) {
    Word partial(width, logic::kConst0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      partial[i + j] = aig.land(a[i], b[j]);
    }
    acc = add(aig, acc, partial);
  }
  return acc;
}

Word popcount(Aig& aig, const Word& bits) {
  // Tournament of ripple additions over ever-wider words.
  std::vector<Word> layer;
  for (const Lit b : bits) {
    layer.push_back(Word{b});
  }
  while (layer.size() > 1) {
    std::vector<Word> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      Word a = layer[i];
      Word b = layer[i + 1];
      const std::size_t w = std::max(a.size(), b.size()) + 1;
      a.resize(w, logic::kConst0);
      b.resize(w, logic::kConst0);
      next.push_back(add(aig, a, b));
    }
    if (layer.size() % 2 != 0) {
      next.push_back(layer.back());
    }
    layer = std::move(next);
  }
  return layer.empty() ? Word{} : layer.front();
}

Lit and_reduce(Aig& aig, const Word& w) {
  Lit acc = logic::kConst1;
  for (const Lit l : w) {
    acc = aig.land(acc, l);
  }
  return acc;
}

Lit or_reduce(Aig& aig, const Word& w) {
  Lit acc = logic::kConst0;
  for (const Lit l : w) {
    acc = aig.lor(acc, l);
  }
  return acc;
}

void output_word(Aig& aig, const std::string& prefix, const Word& w) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    aig.add_po(w[i], prefix + "[" + std::to_string(i) + "]");
  }
}

}  // namespace cryo::epfl
