#pragma once

#include <string>

#include "map/netlist.hpp"

namespace cryo::map {

/// Emit a mapped netlist as a structural Verilog module instantiating the
/// liberty cells (the hand-off format to place & route). Net names are
/// PI/PO names where available and generated `n<id>` wires otherwise.
std::string to_verilog(const Netlist& netlist,
                       const std::string& module_name = "");

/// Write to a file. Throws std::runtime_error on I/O failure.
void write_verilog(const Netlist& netlist, const std::string& path,
                   const std::string& module_name = "");

}  // namespace cryo::map
