#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>

namespace cryo::core {

double CircuitComparison::power_saving_pad() const {
  return 1.0 - pad.total_power / baseline.total_power;
}
double CircuitComparison::power_saving_pda() const {
  return 1.0 - pda.total_power / baseline.total_power;
}
double CircuitComparison::delay_overhead_pad() const {
  return pad.delay / baseline.delay - 1.0;
}
double CircuitComparison::delay_overhead_pda() const {
  return pda.delay / baseline.delay - 1.0;
}

namespace {

ScenarioResult run_scenario(const logic::Aig& aig,
                            const map::CellMatcher& matcher,
                            const ExperimentOptions& options,
                            opt::CostPriority priority) {
  FlowOptions flow = options.flow;
  flow.priority = priority;
  const FlowResult result = synthesize(aig, matcher, flow);
  const sta::StaResult signoff = sta::analyze(result.netlist, options.sta);
  ScenarioResult out;
  out.priority = priority;
  out.power = signoff.power;
  out.total_power = signoff.power.total();
  out.delay = signoff.critical_delay;
  out.area = result.netlist.total_area();
  out.gates = result.netlist.gate_count();
  return out;
}

/// Rescale the dynamic power categories of a scenario from the analysis
/// clock to the normalized clock (dynamic power is proportional to the
/// clock frequency; leakage is clock-independent).
void renormalize(ScenarioResult& s, double analysis_clock,
                 double normalized_clock) {
  const double scale = analysis_clock / normalized_clock;
  s.power.internal *= scale;
  s.power.switching *= scale;
  s.total_power = s.power.total();
}

}  // namespace

CircuitComparison compare_circuit(const epfl::Benchmark& benchmark,
                                  const map::CellMatcher& matcher,
                                  const ExperimentOptions& options) {
  CircuitComparison cmp;
  cmp.circuit = benchmark.name;
  cmp.baseline = run_scenario(benchmark.aig, matcher, options,
                              opt::CostPriority::kBaselinePowerAware);
  cmp.pad = run_scenario(benchmark.aig, matcher, options,
                         opt::CostPriority::kPowerAreaDelay);
  cmp.pda = run_scenario(benchmark.aig, matcher, options,
                         opt::CostPriority::kPowerDelayArea);

  // Footnote 1: every variant's power is reported at the clock period of
  // the slowest variant of the same circuit, so faster variants are not
  // penalized with proportionally higher clock power.
  cmp.clock_period =
      std::max({cmp.baseline.delay, cmp.pad.delay, cmp.pda.delay});
  renormalize(cmp.baseline, options.sta.clock_period, cmp.clock_period);
  renormalize(cmp.pad, options.sta.clock_period, cmp.clock_period);
  renormalize(cmp.pda, options.sta.clock_period, cmp.clock_period);
  return cmp;
}

std::vector<CircuitComparison> run_synthesis_comparison(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const ExperimentOptions& options) {
  std::vector<CircuitComparison> rows;
  rows.reserve(suite.size());
  for (const auto& benchmark : suite) {
    if (options.verbose) {
      std::fprintf(stderr, "synthesizing %s (%u ANDs)...\n",
                   benchmark.name.c_str(), benchmark.aig.num_ands());
    }
    rows.push_back(compare_circuit(benchmark, matcher, options));
  }
  return rows;
}

}  // namespace cryo::core
