// Reproduction of paper Fig. 3(a, b): the headline experiment.
//
// For every EPFL circuit, run the three-stage synthesis pipeline at the
// 10 K corner in three scenarios:
//   * baseline  — state-of-the-art power-aware synthesis (stock priority
//                 list: area -> delay -> power);
//   * p->a->d   — proposed cryogenic-aware priorities;
//   * p->d->a   — proposed cryogenic-aware priorities;
// then sign off power and delay with the NLDM STA engine. Power is
// normalized to the clock of the slowest variant per circuit (paper
// footnote 1).
//
// Paper reference numbers: average power saving 6.47 % (p->a->d) and
// 5.74 % (p->d->a), best case up to 28 %, occasional negative savings;
// average delay overhead -6.21 % / -1.74 % with outliers up to +114 %.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cryo;

int main() {
  std::printf("=== Fig. 3: cryogenic-aware vs conventional synthesis ===\n\n");
  const auto lib = bench::corner_library(10.0);
  const map::CellMatcher matcher{lib};

  core::ExperimentOptions options;
  options.verbose = true;

  const auto suite = epfl::epfl_suite();
  std::fprintf(stderr, "synthesis fleet: %zu circuits x 3 scenarios on %d "
               "threads\n", suite.size(), util::resolve_threads(0));
  util::ScopedTimer fleet_timer{"fig3 synthesis fleet", /*log=*/false};
  const auto rows = core::run_synthesis_comparison(suite, matcher, options);
  std::fprintf(stderr, "[time] fig3 synthesis fleet: %.3f s\n",
               fleet_timer.elapsed_s());

  util::Table table{{"circuit", "base P [uW]", "base D [ps]", "base gates",
                     "dP p->a->d", "dP p->d->a", "dD p->a->d", "dD p->d->a"}};
  std::vector<double> save_pad;
  std::vector<double> save_pda;
  std::vector<double> over_pad;
  std::vector<double> over_pda;
  for (const auto& row : rows) {
    if (!row.ok()) {
      std::fprintf(stderr,
                   "fig3: circuit %s had failed scenarios; excluded from "
                   "averages\n",
                   row.circuit.c_str());
      continue;
    }
    save_pad.push_back(row.power_saving_pad());
    save_pda.push_back(row.power_saving_pda());
    over_pad.push_back(row.delay_overhead_pad());
    over_pda.push_back(row.delay_overhead_pda());
    table.add_row({row.circuit,
                   util::Table::num(row.baseline.total_power * 1e6, 2),
                   util::Table::num(row.baseline.delay * 1e12, 1),
                   std::to_string(row.baseline.gates),
                   util::Table::pct(row.power_saving_pad()),
                   util::Table::pct(row.power_saving_pda()),
                   util::Table::pct(row.delay_overhead_pad()),
                   util::Table::pct(row.delay_overhead_pda())});
  }
  table.write_csv(bench::csv_path("fig3_synthesis.csv"));
  std::printf("%s\n", table.render().c_str());

  const auto s_pad = util::summarize(save_pad);
  const auto s_pda = util::summarize(save_pda);
  const auto o_pad = util::summarize(over_pad);
  const auto o_pda = util::summarize(over_pda);

  util::Table summary{
      {"metric", "p->a->d", "p->d->a", "paper p->a->d", "paper p->d->a"}};
  summary.add_row({"avg power saving", util::Table::pct(s_pad.mean),
                   util::Table::pct(s_pda.mean), "+6.47 %", "+5.74 %"});
  summary.add_row({"best power saving", util::Table::pct(s_pad.max),
                   util::Table::pct(s_pda.max), "up to +28 %", "up to +28 %"});
  summary.add_row({"worst power saving", util::Table::pct(s_pad.min),
                   util::Table::pct(s_pda.min), "negative on some",
                   "negative on some"});
  summary.add_row({"avg delay overhead", util::Table::pct(o_pad.mean),
                   util::Table::pct(o_pda.mean), "-6.21 %", "-1.74 %"});
  summary.add_row({"worst delay overhead", util::Table::pct(o_pad.max),
                   util::Table::pct(o_pda.max), "+114 % (max)", "small"});
  std::printf("%s\n", summary.render().c_str());
  std::printf("per-circuit data: %s\n",
              bench::csv_path("fig3_synthesis.csv").c_str());
  bench::write_bench_report("fig3_synthesis", /*canonical=*/true);
  return 0;
}
