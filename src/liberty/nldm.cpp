#include "liberty/nldm.hpp"

#include <algorithm>
#include <stdexcept>

namespace cryo::liberty {
namespace {

/// Find the interpolation segment for x on a sorted axis: returns the
/// index i such that axis[i], axis[i+1] bracket x (clamped to edge
/// segments for extrapolation), plus the normalized coordinate.
std::pair<std::size_t, double> segment(const std::vector<double>& axis,
                                       double x) {
  if (axis.size() == 1) {
    return {0, 0.0};
  }
  std::size_t i = 0;
  while (i + 2 < axis.size() && x > axis[i + 1]) {
    ++i;
  }
  const double span = axis[i + 1] - axis[i];
  const double t = span != 0.0 ? (x - axis[i]) / span : 0.0;
  return {i, t};
}

}  // namespace

NldmTable::NldmTable(std::vector<double> index1, std::vector<double> index2,
                     std::vector<double> values)
    : index1_{std::move(index1)},
      index2_{std::move(index2)},
      values_{std::move(values)} {
  if (index1_.empty() || index2_.empty() ||
      values_.size() != index1_.size() * index2_.size()) {
    throw std::invalid_argument{"NldmTable: inconsistent dimensions"};
  }
  if (!std::is_sorted(index1_.begin(), index1_.end()) ||
      !std::is_sorted(index2_.begin(), index2_.end())) {
    throw std::invalid_argument{"NldmTable: indices must be sorted"};
  }
}

NldmTable NldmTable::scalar(double value) {
  return NldmTable{{0.0}, {0.0}, {value}};
}

double NldmTable::lookup(double x1, double x2, LookupMode mode) const {
  if (empty()) {
    throw std::logic_error{"NldmTable::lookup on empty table"};
  }
  auto [i, t] = segment(index1_, x1);
  auto [j, u] = segment(index2_, x2);
  if (mode == LookupMode::kClamp) {
    t = std::clamp(t, 0.0, 1.0);
    u = std::clamp(u, 0.0, 1.0);
  }
  if (index1_.size() == 1 && index2_.size() == 1) {
    return values_[0];
  }
  if (index1_.size() == 1) {
    return value_at(0, j) * (1.0 - u) + value_at(0, j + 1) * u;
  }
  if (index2_.size() == 1) {
    return value_at(i, 0) * (1.0 - t) + value_at(i + 1, 0) * t;
  }
  const double v00 = value_at(i, j);
  const double v01 = value_at(i, j + 1);
  const double v10 = value_at(i + 1, j);
  const double v11 = value_at(i + 1, j + 1);
  return v00 * (1.0 - t) * (1.0 - u) + v01 * (1.0 - t) * u +
         v10 * t * (1.0 - u) + v11 * t * u;
}

}  // namespace cryo::liberty
