#include "device/measurement.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace cryo::device {

ReferenceDevice::ReferenceDevice(Polarity polarity) {
  params_ = polarity == Polarity::kN ? nominal_nfet_5nm() : nominal_pfet_5nm();
  // Perturb the nominal card: the "real" transistor never matches the
  // model-card defaults, which is exactly what makes calibration necessary.
  params_.name += "_reference";
  params_.vth300 *= 1.018;
  params_.ideality *= 1.025;
  params_.band_tail_v *= 1.08;
  params_.mu0 *= 1.05;
  params_.theta *= 0.96;
  params_.kvt *= 1.06;
  params_.lambda *= 1.10;
  params_.i_floor_per_fin *= 1.30;
}

MeasurementSet ReferenceDevice::measure(const MeasurementPlan& plan) const {
  MeasurementSet set;
  set.polarity = params_.polarity;
  set.nfins = plan.nfins;
  util::Rng rng{plan.seed};

  for (double temp : plan.temperatures_k) {
    const FinFetModel model{params_, temp};
    for (double vds : plan.vds_values) {
      for (int i = 0; i < plan.vgs_steps; ++i) {
        const double vgs =
            plan.vgs_start + (plan.vgs_stop - plan.vgs_start) *
                                 static_cast<double>(i) /
                                 static_cast<double>(plan.vgs_steps - 1);
        const double ideal = model.ids(vgs, vds, plan.nfins);
        const double noisy =
            ideal * std::exp(plan.relative_noise * rng.next_gaussian()) +
            plan.noise_floor * rng.next_gaussian();
        MeasurementPoint pt;
        pt.temperature_k = temp;
        pt.vgs = vgs;
        pt.vds = vds;
        pt.ids = noisy;
        set.points.push_back(pt);
      }
    }
  }
  return set;
}

}  // namespace cryo::device
