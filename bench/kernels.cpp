// Micro-benchmarks (google-benchmark) of the synthesis kernels: AIG
// construction/strashing, bit-parallel simulation, cut enumeration, SAT
// solving, the optimization passes, and the compact-model evaluation that
// dominates characterization.

#include <benchmark/benchmark.h>

#include "device/finfet.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/cuts.hpp"
#include "logic/simulate.hpp"
#include "opt/passes.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

void BM_FinFetEvaluate(benchmark::State& state) {
  const cryo::device::FinFetModel model{cryo::device::nominal_nfet_5nm(),
                                        10.0};
  double vgs = 0.31;
  for (auto _ : state) {
    vgs = vgs > 0.7 ? 0.1 : vgs + 1e-4;
    benchmark::DoNotOptimize(model.evaluate(vgs, 0.7, 2));
  }
}
BENCHMARK(BM_FinFetEvaluate);

void BM_AigStrash(benchmark::State& state) {
  for (auto _ : state) {
    auto aig = cryo::epfl::make_multiplier(12);
    benchmark::DoNotOptimize(aig.num_ands());
  }
}
BENCHMARK(BM_AigStrash);

void BM_Simulation64Words(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  cryo::logic::Simulation sim{aig, 64};
  cryo::util::Rng rng{1};
  sim.randomize_pis(rng);
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.node_bits(aig.num_nodes() - 1));
  }
}
BENCHMARK(BM_Simulation64Words);

void BM_CutEnumerationK6(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  for (auto _ : state) {
    cryo::logic::CutEnumerator cuts{aig, 6, 8};
    cuts.run();
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
}
BENCHMARK(BM_CutEnumerationK6);

void BM_RewritePass(benchmark::State& state) {
  const auto aig = cryo::epfl::make_adder(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::opt::rewrite(aig).num_ands());
  }
}
BENCHMARK(BM_RewritePass);

void BM_SatCecAdder(benchmark::State& state) {
  const auto a = cryo::epfl::make_adder(12);
  const auto b = cryo::opt::compress2rs(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::sat::check_equivalence(a, b).equivalent());
  }
}
BENCHMARK(BM_SatCecAdder);

}  // namespace

BENCHMARK_MAIN();
