#include "spice/ngspice_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "device/finfet.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"

namespace cryo::spice {

namespace obs = util::obs;

const std::vector<double>& NgspiceRaw::column(
    const std::string& variable) const {
  for (std::size_t i = 0; i < variables.size(); ++i) {
    if (variables[i] == variable) {
      return columns[i];
    }
  }
  throw std::out_of_range{"NgspiceRaw: no variable " + variable};
}

namespace {

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string node_ref(const Circuit& circuit, NodeId node) {
  (void)circuit;
  if (node == kGround) {
    return "0";
  }
  std::string name{"n"};
  name += std::to_string(node);
  return name;
}

/// ngspice's probe of the ngspice binary: done once per process, shared
/// by every NgspiceBackend call (availability, version, failure reason).
struct BinaryProbe {
  bool ok = false;
  std::string version = "unknown";
  std::string reason = "ngspice not found on PATH";
};

const BinaryProbe& probe_binary() {
  static const BinaryProbe probe = [] {
    BinaryProbe result;
    FILE* pipe = ::popen("ngspice --version 2>/dev/null", "r");
    if (pipe == nullptr) {
      return result;
    }
    std::string out;
    char buf[256];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      out += buf;
    }
    const int status = ::pclose(pipe);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || out.empty()) {
      return result;
    }
    result.ok = true;
    result.reason.clear();
    // "ngspice-42 : Circuit level simulation program" -> "42".
    if (const auto pos = out.find("ngspice-"); pos != std::string::npos) {
      std::string v;
      for (std::size_t i = pos + 8; i < out.size(); ++i) {
        const char c = out[i];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
          v += c;
        } else {
          break;
        }
      }
      if (!v.empty()) {
        result.version = v;
      }
    }
    return result;
  }();
  return probe;
}

/// Emit one FinFET as a behavioral current source calling the chn/chp
/// .func with its per-temperature model constants baked in.
void emit_fet(std::ostream& out, const Circuit& circuit,
              const FetInstance& fet, const device::FinFetModel& model,
              std::size_t index) {
  const double nfins = static_cast<double>(fet.nfins);
  const char* func = fet.params.polarity == device::Polarity::kN ? "chn"
                                                                 : "chp";
  out << "bfet" << index << ' ' << node_ref(circuit, fet.drain) << ' '
      << node_ref(circuit, fet.source) << " i={" << func << "(v("
      << node_ref(circuit, fet.gate) << "),v("
      << node_ref(circuit, fet.drain) << "),v("
      << node_ref(circuit, fet.source) << ")," << fmt(model.vth()) << ','
      << fmt(1.0 / (2.0 * model.vte())) << ','
      << fmt(fet.params.ideality) << ','
      << fmt(model.specific_current() * nfins) << ','
      << fmt(model.theta_t() * 2.0 * model.vte()) << ','
      << fmt(fet.params.lambda) << ','
      << fmt(fet.params.i_floor_per_fin * nfins) << ")}\n";
}

/// Robust node/branch column lookup: rawfile variable spellings differ
/// across ngspice versions ("v(n4)" vs "n4", "vsrc3#branch" vs
/// "i(vsrc3)"). Returns nullptr when absent.
const std::vector<double>* find_column(
    const NgspiceRaw& raw, const std::vector<std::string>& candidates) {
  for (const auto& want : candidates) {
    for (std::size_t i = 0; i < raw.variables.size(); ++i) {
      if (lower(raw.variables[i]) == want) {
        return &raw.columns[i];
      }
    }
  }
  return nullptr;
}

const std::vector<double>* node_column(const NgspiceRaw& raw, NodeId node) {
  std::string n{"n"};
  n += std::to_string(node);
  return find_column(raw, {"v(" + n + ")", n});
}

const std::vector<double>* branch_column(const NgspiceRaw& raw, NodeId node) {
  std::string src{"vsrc"};
  src += std::to_string(node);
  return find_column(raw, {src + "#branch", "i(" + src + ")"});
}

/// Linear interpolation of a raw column onto time `t` (clamped).
double interp(const std::vector<double>& times,
              const std::vector<double>& values, double t) {
  if (times.empty()) {
    return 0.0;
  }
  if (t <= times.front()) {
    return values.front();
  }
  if (t >= times.back()) {
    return values.back();
  }
  const auto it = std::lower_bound(times.begin(), times.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times.begin());
  const std::size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  if (span <= 0.0) {
    return values[hi];
  }
  const double frac = (t - times[lo]) / span;
  return values[lo] + frac * (values[hi] - values[lo]);
}

/// Run an ngspice deck (piped via the shell, SNIPPETS popen idiom) and
/// return the parsed rawfile. `make_deck` receives the rawfile path the
/// deck's .control block must write to. Throws cryo::Error{kNumeric}
/// when ngspice exits non-zero, with the log tail for diagnosis.
template <typename MakeDeck>
NgspiceRaw run_deck(const MakeDeck& make_deck) {
  static std::atomic<unsigned> counter{0};
  const auto dir = std::filesystem::temp_directory_path();
  const std::string stem =
      "cryoeda_ng_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter.fetch_add(1));
  const std::string deck_path = (dir / (stem + ".cir")).string();
  const std::string raw_path = (dir / (stem + ".raw")).string();
  const std::string log_path = (dir / (stem + ".log")).string();

  {
    std::ofstream out{deck_path};
    out << make_deck(raw_path);
    if (!out) {
      throw Error{ErrorKind::kIo, "ngspice: cannot write deck " + deck_path};
    }
  }

  auto cleanup = [&] {
    std::remove(deck_path.c_str());
    std::remove(raw_path.c_str());
    std::remove(log_path.c_str());
  };

  obs::counter("spice.ngspice_runs").add();
  const std::string cmd = "ngspice -n < '" + deck_path + "' > '" + log_path +
                          "' 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    cleanup();
    throw Error{ErrorKind::kIo, "ngspice: popen failed"};
  }
  char buf[256];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;

  std::string raw_text;
  if (ok) {
    std::ifstream in{raw_path};
    std::ostringstream ss;
    ss << in.rdbuf();
    raw_text = ss.str();
  }
  if (!ok || raw_text.empty()) {
    std::string log;
    {
      std::ifstream in{log_path};
      std::ostringstream ss;
      ss << in.rdbuf();
      log = ss.str();
    }
    if (log.size() > 600) {
      log = "..." + log.substr(log.size() - 600);
    }
    cleanup();
    throw Error{ErrorKind::kNumeric,
                ok ? "ngspice produced no rawfile; log: " + log
                   : "ngspice exited non-zero; log: " + log};
  }
  cleanup();
  return parse_ngspice_raw(raw_text);
}

}  // namespace

NgspiceRaw parse_ngspice_raw(const std::string& text) {
  NgspiceRaw raw;
  std::istringstream in{text};
  std::string line;
  long n_vars = -1;
  long n_points = -1;
  bool saw_values = false;

  auto fail = [](const std::string& why) -> void {
    throw Error{ErrorKind::kIo, "ngspice rawfile: " + why};
  };

  while (std::getline(in, line)) {
    if (line.rfind("No. Variables:", 0) == 0) {
      n_vars = std::strtol(line.c_str() + 14, nullptr, 10);
    } else if (line.rfind("No. Points:", 0) == 0) {
      n_points = std::strtol(line.c_str() + 11, nullptr, 10);
    } else if (line.rfind("Flags:", 0) == 0) {
      if (line.find("complex") != std::string::npos) {
        fail("complex plots are not supported");
      }
    } else if (line.rfind("Variables:", 0) == 0) {
      if (n_vars <= 0) {
        fail("Variables: before No. Variables:");
      }
      for (long i = 0; i < n_vars; ++i) {
        if (!std::getline(in, line)) {
          fail("truncated Variables section");
        }
        // "\t0\ttime\ttime" -> index, name, type.
        std::istringstream fields{line};
        long index = -1;
        std::string name;
        std::string type;
        fields >> index >> name >> type;
        if (index != i || name.empty()) {
          fail("malformed variable line: " + line);
        }
        raw.variables.push_back(name);
      }
    } else if (line.rfind("Values:", 0) == 0) {
      if (n_vars <= 0 || n_points < 0 ||
          raw.variables.size() != static_cast<std::size_t>(n_vars)) {
        fail("Values: before a complete header");
      }
      saw_values = true;
      raw.columns.assign(static_cast<std::size_t>(n_vars), {});
      for (auto& col : raw.columns) {
        col.reserve(static_cast<std::size_t>(n_points));
      }
      for (long p = 0; p < n_points; ++p) {
        long index = -1;
        if (!(in >> index) || index != p) {
          fail("bad point index at point " + std::to_string(p));
        }
        for (long v = 0; v < n_vars; ++v) {
          double value = 0.0;
          if (!(in >> value)) {
            fail("truncated Values section at point " + std::to_string(p));
          }
          raw.columns[static_cast<std::size_t>(v)].push_back(value);
        }
      }
    }
  }
  if (!saw_values) {
    fail("missing Values section");
  }
  return raw;
}

std::string ngspice_deck(const Circuit& circuit, double temperature_k,
                         const TransientOptions& options,
                         NgspiceAnalysis analysis,
                         const std::string& rawfile_path) {
  std::ostringstream out;
  out << "* cryoeda deck, T = " << fmt(temperature_k) << " K\n";
  // Shared numerically-safe softplus and the cryogenic EKV channel
  // current (n / p flavours): sgn() orients the symmetric channel so
  // pass-gates conduct in both directions, exactly like the builtin
  // engine's drain/source swap.
  out << ".func sp(x) {max(x,0)+ln(1+exp(-abs(x)))}\n";
  out << ".func chn(vg,vd,vs,vth,kk,nn,iss,th2,lam,ifl)"
         " {sgn(vd-vs)*(iss*(pow(sp((vg-min(vd,vs)-vth)*kk),2)"
         "-pow(sp((vg-min(vd,vs)-vth-nn*(max(vd,vs)-min(vd,vs)))*kk),2))"
         "/(1+th2*sp((vg-min(vd,vs)-vth)*kk))"
         "*(1+lam*(max(vd,vs)-min(vd,vs)))"
         "+ifl*tanh((max(vd,vs)-min(vd,vs))/0.05))}\n";
  out << ".func chp(vg,vd,vs,vth,kk,nn,iss,th2,lam,ifl)"
         " {sgn(vd-vs)*(iss*(pow(sp((max(vd,vs)-vg-vth)*kk),2)"
         "-pow(sp((max(vd,vs)-vg-vth-nn*(max(vd,vs)-min(vd,vs)))*kk),2))"
         "/(1+th2*sp((max(vd,vs)-vg-vth)*kk))"
         "*(1+lam*(max(vd,vs)-min(vd,vs)))"
         "+ifl*tanh((max(vd,vs)-min(vd,vs))/0.05))}\n";

  const double h = options.t_stop / static_cast<double>(options.steps);
  for (const auto& src : circuit.sources()) {
    out << "vsrc" << src.node << ' ' << node_ref(circuit, src.node) << " 0 ";
    if (analysis == NgspiceAnalysis::kOperatingPoint) {
      out << "dc " << fmt(src.waveform.at(0.0)) << '\n';
    } else {
      // Sample the PWL on the builtin engine's uniform grid: that is
      // exactly the stimulus the builtin solver sees.
      out << "PWL(";
      for (int k = 0; k <= options.steps; ++k) {
        const double t = h * static_cast<double>(k);
        if (k > 0) {
          out << "\n+ ";
        }
        out << fmt(t) << ' ' << fmt(src.waveform.at(t));
      }
      out << ")\n";
    }
  }

  for (std::size_t i = 0; i < circuit.fets().size(); ++i) {
    const auto& fet = circuit.fets()[i];
    device::FinFetModel model{fet.params, temperature_k};
    emit_fet(out, circuit, fet, model, i);
  }
  for (std::size_t i = 0; i < circuit.caps().size(); ++i) {
    const auto& cap = circuit.caps()[i];
    out << "c" << i << ' ' << node_ref(circuit, cap.a) << ' '
        << node_ref(circuit, cap.b) << ' ' << fmt(cap.farads) << '\n';
  }
  for (std::size_t i = 0; i < circuit.resistors().size(); ++i) {
    const auto& res = circuit.resistors()[i];
    out << "r" << i << ' ' << node_ref(circuit, res.a) << ' '
        << node_ref(circuit, res.b) << ' ' << fmt(res.ohms) << '\n';
  }

  out << ".options gmin=" << fmt(options.gmin)
      << " abstol=" << fmt(options.abstol) << '\n';
  out << ".control\n";
  out << "set filetype=ascii\n";
  if (analysis == NgspiceAnalysis::kOperatingPoint) {
    out << "op\n";
  } else {
    out << "tran " << fmt(h) << ' ' << fmt(options.t_stop) << '\n';
  }
  out << "write " << rawfile_path << " all\n";
  out << "quit\n";
  out << ".endc\n";
  out << ".end\n";
  return out.str();
}

std::string NgspiceBackend::version() const { return probe_binary().version; }

bool NgspiceBackend::available() const { return probe_binary().ok; }

std::string NgspiceBackend::unavailable_reason() const {
  return probe_binary().reason;
}

DcResult NgspiceBackend::dc(const Circuit& circuit,
                            double temperature_k) const {
  if (!available()) {
    throw Error{ErrorKind::kRecipe,
                "SPICE backend 'ngspice' is unavailable: " +
                    unavailable_reason()};
  }
  const TransientOptions options;  // solver knobs only
  const NgspiceRaw raw = run_deck([&](const std::string& raw_path) {
    return ngspice_deck(circuit, temperature_k, options,
                        NgspiceAnalysis::kOperatingPoint, raw_path);
  });
  if (raw.points() < 1) {
    throw Error{ErrorKind::kNumeric, "ngspice: empty operating-point plot"};
  }

  DcResult result;
  result.voltages.assign(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
    if (const auto* col = node_column(raw, n)) {
      result.voltages[static_cast<std::size_t>(n)] = col->front();
    }
  }
  for (const auto& src : circuit.sources()) {
    const auto* col = branch_column(raw, src.node);
    if (col == nullptr) {
      throw Error{ErrorKind::kNumeric,
                  "ngspice: no branch current for source node " +
                      std::to_string(src.node)};
    }
    // SPICE measures branch current + -> - through the source; the
    // current the source delivers into the circuit is its negation.
    result.source_currents[src.node] = -col->front();
  }
  return result;
}

TransientResult NgspiceBackend::transient(
    const Circuit& circuit, double temperature_k,
    const TransientOptions& options, const std::vector<NodeId>& probes) const {
  if (!available()) {
    throw Error{ErrorKind::kRecipe,
                "SPICE backend 'ngspice' is unavailable: " +
                    unavailable_reason()};
  }
  if (options.steps < 2 || options.t_stop <= 0.0) {
    throw std::invalid_argument{"NgspiceBackend::transient: bad options"};
  }
  const NgspiceRaw raw = run_deck([&](const std::string& raw_path) {
    return ngspice_deck(circuit, temperature_k, options,
                        NgspiceAnalysis::kTransient, raw_path);
  });
  const auto* time_col = find_column(raw, {"time"});
  if (time_col == nullptr || time_col->empty()) {
    throw Error{ErrorKind::kNumeric, "ngspice: transient plot has no time"};
  }
  const std::vector<double>& rt = *time_col;

  // Resample onto the builtin engine's uniform grid so downstream
  // measurement code sees one trace format regardless of engine.
  const double h = options.t_stop / static_cast<double>(options.steps);
  TransientResult result;
  result.times.reserve(static_cast<std::size_t>(options.steps) + 1);
  for (int k = 0; k <= options.steps; ++k) {
    result.times.push_back(h * static_cast<double>(k));
  }

  for (NodeId p : probes) {
    Trace trace{p, {}};
    trace.values.reserve(result.times.size());
    const auto* col = p == kGround ? nullptr : node_column(raw, p);
    for (double t : result.times) {
      trace.values.push_back(col == nullptr ? 0.0 : interp(rt, *col, t));
    }
    result.traces.push_back(std::move(trace));
  }

  for (const auto& src : circuit.sources()) {
    const auto* col = branch_column(raw, src.node);
    if (col == nullptr) {
      throw Error{ErrorKind::kNumeric,
                  "ngspice: no branch current for source node " +
                      std::to_string(src.node)};
    }
    const auto* vcol = node_column(raw, src.node);
    double charge = 0.0;
    double energy = 0.0;
    double prev_i = 0.0;
    double prev_p = 0.0;
    for (std::size_t k = 0; k < result.times.size(); ++k) {
      const double t = result.times[k];
      const double i = -interp(rt, *col, t);
      const double v = vcol != nullptr ? interp(rt, *vcol, t)
                                       : src.waveform.at(t);
      const double p = i * v;
      if (k > 0) {
        charge += 0.5 * (prev_i + i) * h;
        energy += 0.5 * (prev_p + p) * h;
      }
      prev_i = i;
      prev_p = p;
    }
    result.source_charge[src.node] = charge;
    result.source_energy[src.node] = energy;
  }
  return result;
}

}  // namespace cryo::spice
