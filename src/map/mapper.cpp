#include "map/mapper.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "logic/cuts.hpp"
#include "logic/npn.hpp"
#include "logic/simulate.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"

namespace cryo::map {

namespace obs = util::obs;

using logic::Aig;
using logic::Cut;
using logic::Lit;
using logic::NodeIdx;
using opt::Cost;

namespace {

/// Nominal-corner figures of one library cell, precomputed once.
struct CellFigures {
  double delay = 0.0;   ///< worst arc delay at the nominal corner [s]
  double energy = 0.0;  ///< mean internal energy per transition [J]
  double area = 0.0;
  double leakage = 0.0;
  std::vector<double> pin_caps;  ///< per input pin, in input order
};

CellFigures figures_of(const liberty::Cell& cell, double slew, double load) {
  CellFigures f;
  f.delay = cell.typical_delay(slew, load);
  f.energy = cell.typical_energy(slew, load);
  f.area = cell.area;
  f.leakage = cell.leakage_power;
  for (const auto& name : cell.input_names()) {
    const auto* pin = cell.find_pin(name);
    f.pin_caps.push_back(pin != nullptr ? pin->capacitance : 0.0);
  }
  return f;
}

/// One candidate cell binding of one cut, with the round-independent
/// part of its cost precomputed. The leaf-flow part (which changes with
/// the reference counts every refinement round) is added on top.
struct MatchCand {
  Match match;
  Cost static_cost;
};

/// A deduplicated, support-minimized, match-bearing cut of one node.
struct CutCand {
  Cut cut;
  std::vector<MatchCand> matches;  ///< dominance-pruned, sorted, capped
};

/// Cost components in priority order, for capping an oversized match
/// frontier at the statically cheapest candidates.
std::array<double Cost::*, 3> priority_members(opt::CostPriority priority) {
  switch (priority) {
    case opt::CostPriority::kBaselinePowerAware:
      return {&Cost::area, &Cost::delay, &Cost::power};
    case opt::CostPriority::kPowerAreaDelay:
      return {&Cost::power, &Cost::area, &Cost::delay};
    case opt::CostPriority::kPowerDelayArea:
      return {&Cost::power, &Cost::delay, &Cost::area};
  }
  return {&Cost::area, &Cost::delay, &Cost::power};
}

/// A selected implementation of one AIG node.
struct Selection {
  Cut cut;                      ///< the chosen cut (support-minimized)
  const Match* match = nullptr; ///< the chosen cell binding
  Cost flow;                    ///< accumulated flow costs at this node
};

}  // namespace

Netlist tech_map(const Aig& aig, const CellMatcher& matcher,
                 const TechMapOptions& options,
                 const std::vector<std::vector<logic::Lit>>* choices) {
  const obs::ScopedSpan span{"map.tech_map"};
  // Mapping must always produce a netlist, so soft budget exhaustion is
  // ignored here; only a hard cancellation aborts.
  util::Budget& budget =
      options.budget != nullptr ? *options.budget : util::Budget::global();
  budget.check_cancelled("map.tech_map");
  std::uint64_t matches_tried = 0;  // flushed to obs after the rounds
  std::uint64_t canon_lookups = 0;
  logic::CutEnumerator cuts{aig, options.k, options.cuts_per_node,
                            options.cut_order};
  cuts.run();

  const liberty::Cell* inv = matcher.inverter();
  if (inv == nullptr) {
    throw std::runtime_error{"tech_map: library has no inverter"};
  }
  const CellFigures inv_fig =
      figures_of(*inv, options.nominal_slew, options.nominal_load);

  // Nominal figures per cell (lazy cache).
  std::unordered_map<const liberty::Cell*, CellFigures> figure_cache;
  auto figures = [&](const liberty::Cell* cell) -> const CellFigures& {
    auto it = figure_cache.find(cell);
    if (it == figure_cache.end()) {
      it = figure_cache
               .emplace(cell, figures_of(*cell, options.nominal_slew,
                                         options.nominal_load))
               .first;
    }
    return it->second;
  };

  const double vdd = matcher.library().voltage;
  const double vdd_sq = vdd * vdd;

  // Switching activity of every AIG node.
  logic::Simulation sim{aig, 16};
  util::Rng rng{options.seed};
  sim.randomize_pis_markov(rng, options.input_activity);
  sim.run();
  std::vector<double> activity(aig.num_nodes());
  for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    activity[v] = sim.activity(v);
  }

  // Candidate cuts per node (choice structures merged in).
  std::vector<std::vector<Cut>> candidates(aig.num_nodes());
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    for (const Cut& c : cuts.cuts(v)) {
      candidates[v].push_back(c);
    }
    if (choices != nullptr && v < choices->size()) {
      for (const Lit alt : (*choices)[v]) {
        for (Cut c : cuts.cuts(logic::lit_var(alt))) {
          // Preserve "cut leaves precede the root" (see lut_map.cpp).
          bool ordered = true;
          for (unsigned i = 0; i < c.size; ++i) {
            if (c.leaves[i] >= v) {
              ordered = false;
              break;
            }
          }
          if (!ordered) {
            continue;
          }
          if (logic::lit_compl(alt)) {
            c.tt = ~c.tt & logic::tt6_mask(c.size);
          }
          candidates[v].push_back(c);
        }
      }
    }
  }

  // ---------------------------------------------- match precompute ----
  // Everything that does not depend on the refinement round is hoisted
  // out of the rounds: support minimization, cut deduplication, NPN
  // canonicalization (memoized per truth table), the class lookup, and
  // the round-independent ("static") part of each match's cost. The
  // activity vector is fixed, so cell figures, phase-fixup inverters and
  // the pin-capacitance power term are all static; only the leaf flow
  // terms change between rounds.
  const unsigned matches_per_cut = std::max(1u, options.matches_per_cut);
  const auto members = priority_members(options.priority);
  std::uint64_t static_evals = 0;
  std::array<std::unordered_map<std::uint64_t, logic::NpnCanon>, 7>
      canon_cache;
  std::vector<std::vector<CutCand>> node_cands(aig.num_nodes());
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    if ((v & 0x3FFu) == 0) {
      budget.check_cancelled("map.tech_map");
    }
    std::vector<CutCand>& cands = node_cands[v];
    for (const Cut& c : candidates[v]) {
      // Support-minimize the cut function before matching.
      std::vector<unsigned> support;
      const std::uint64_t stt = logic::tt6_shrink(c.tt, c.size, support);
      Cut mc;  // minimized cut
      mc.size = static_cast<std::uint8_t>(support.size());
      for (unsigned i = 0; i < support.size(); ++i) {
        mc.leaves[i] = c.leaves[support[i]];
      }
      mc.tt = stt;
      if (mc.size == 1 && mc.leaves[0] == v) {
        continue;  // trivial self-cut
      }
      if (mc.size == 0) {
        continue;  // constant node functions are handled at the POs
      }
      // Minimization collapses distinct raw cuts onto the same
      // (function, leaves) pair; evaluate each only once.
      const auto duplicate = [&](const CutCand& cc) {
        return cc.cut.tt == mc.tt && cc.cut.size == mc.size &&
               std::equal(cc.cut.leaves.begin(),
                          cc.cut.leaves.begin() + mc.size, mc.leaves.begin());
      };
      if (std::any_of(cands.begin(), cands.end(), duplicate)) {
        continue;
      }
      ++canon_lookups;
      auto& cache = canon_cache[mc.size];
      auto canon_it = cache.find(stt);
      if (canon_it == cache.end()) {
        canon_it =
            cache.emplace(stt, logic::npn_canonicalize(stt, mc.size)).first;
      }
      const logic::NpnCanon& canon = canon_it->second;
      const auto* bindings = matcher.find_class(canon.signature, mc.size);
      if (bindings == nullptr) {
        continue;
      }
      CutCand cc;
      cc.cut = mc;
      for (const CellBinding& binding : *bindings) {
        ++static_evals;
        MatchCand mcand;
        mcand.match = CellMatcher::bind(binding, canon.transform, mc.size);
        const Match& m = mcand.match;
        const CellFigures& fig = figures(m.cell);
        Cost cost;
        const unsigned extra_invs =
            static_cast<unsigned>(std::popcount(m.input_phase)) +
            (m.out_invert ? 1u : 0u);
        cost.area = fig.area + extra_invs * inv_fig.area;
        // Power cost = internal energy at the output toggle rate
        //            + leakage converted to per-cycle energy
        //            + switched capacitance presented to the leaf nets
        //              (the term a power-aware mapper actually controls).
        cost.power =
            activity[v] * (fig.energy + extra_invs * inv_fig.energy) +
            (fig.leakage + extra_invs * inv_fig.leakage) *
                options.clock_estimate;
        for (unsigned i = 0; i < m.perm.size(); ++i) {
          const NodeIdx leaf = mc.leaves[m.perm[i]];
          double cap = fig.pin_caps.size() > i ? fig.pin_caps[i] : 0.0;
          if ((m.input_phase >> i) & 1u) {
            cap += inv_fig.pin_caps.empty() ? 0.0 : inv_fig.pin_caps[0];
          }
          cost.power += 0.5 * vdd_sq * cap * activity[leaf];
        }
        cost.delay = fig.delay + (m.out_invert ? inv_fig.delay : 0.0);
        mcand.static_cost = cost;
        cc.matches.push_back(std::move(mcand));
      }
      // The leaf-flow part of the cost is identical for every match of
      // the same cut, so a match that is no better than an earlier one
      // on any component can never be selected over it (costs are
      // nonnegative and `opt::better` must find a strictly better
      // level): prune it. Bucket order is library cell order — the same
      // evaluation order the pre-canonicalization matcher produced — so
      // epsilon tie-breaks in the rounds are preserved exactly.
      std::vector<MatchCand> kept;
      for (MatchCand& mcand : cc.matches) {
        const bool dominated = std::any_of(
            kept.begin(), kept.end(), [&](const MatchCand& k) {
              return k.static_cost.power <= mcand.static_cost.power &&
                     k.static_cost.area <= mcand.static_cost.area &&
                     k.static_cost.delay <= mcand.static_cost.delay;
            });
        if (!dominated) {
          kept.push_back(std::move(mcand));
        }
      }
      // When the frontier exceeds the bound, keep the statically
      // cheapest matches under the active priority — then restore
      // library order among the survivors so tie-breaks stay put.
      if (kept.size() > matches_per_cut) {
        std::vector<std::size_t> idx(kept.size());
        for (std::size_t i = 0; i < idx.size(); ++i) {
          idx[i] = i;
        }
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::size_t a, std::size_t b) {
                           for (const auto member : members) {
                             const double ka = kept[a].static_cost.*member;
                             const double kb = kept[b].static_cost.*member;
                             if (ka != kb) {
                               return ka < kb;
                             }
                           }
                           return false;
                         });
        idx.resize(matches_per_cut);
        std::sort(idx.begin(), idx.end());
        std::vector<MatchCand> capped;
        capped.reserve(idx.size());
        for (const std::size_t i : idx) {
          capped.push_back(std::move(kept[i]));
        }
        kept = std::move(capped);
      }
      cc.matches = std::move(kept);
      cands.push_back(std::move(cc));
    }
    if (cands.empty()) {
      throw std::runtime_error{
          "tech_map: no match for node (library too small?)"};
    }
  }

  std::vector<Selection> best(aig.num_nodes());
  std::vector<double> refs(aig.num_nodes(), 1.0);
  {
    const auto fanouts = aig.fanout_counts();
    for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
      refs[v] = std::max<double>(1.0, fanouts[v]);
    }
  }
  std::vector<bool> in_cover(aig.num_nodes(), false);

  for (unsigned round = 0; round < options.rounds; ++round) {
    budget.check_cancelled("map.tech_map");
    for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
      if (!aig.is_and(v)) {
        continue;
      }
      if ((v & 0x3FFu) == 0) {
        budget.check_cancelled("map.tech_map");
      }
      bool have = false;
      Cost best_cost;
      Selection sel;
      for (const CutCand& cc : node_cands[v]) {
        // Leaf-flow terms: shared by every match of this cut.
        double flow_area = 0.0;
        double flow_power = 0.0;
        double worst_arrival = 0.0;
        for (unsigned i = 0; i < cc.cut.size; ++i) {
          const NodeIdx leaf = cc.cut.leaves[i];
          flow_area += best[leaf].flow.area / refs[leaf];
          flow_power += best[leaf].flow.power / refs[leaf];
          worst_arrival = std::max(worst_arrival, best[leaf].flow.delay);
        }
        for (const MatchCand& mcand : cc.matches) {
          ++matches_tried;
          Cost cost = mcand.static_cost;
          cost.area += flow_area;
          cost.power += flow_power;
          cost.delay += worst_arrival;
          if (!have || opt::better(cost, best_cost, options.priority,
                                   options.epsilon)) {
            have = true;
            best_cost = cost;
            sel.cut = cc.cut;
            sel.match = &mcand.match;
            sel.flow = cost;
          }
        }
      }
      if (!have) {
        throw std::runtime_error{
            "tech_map: no match for node (library too small?)"};
      }
      best[v] = sel;
    }

    // Extract the cover and recompute reference counts.
    std::fill(in_cover.begin(), in_cover.end(), false);
    std::vector<double> cover_refs(aig.num_nodes(), 0.0);
    std::vector<NodeIdx> stack;
    for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
      stack.push_back(logic::lit_var(aig.po(i)));
    }
    while (!stack.empty()) {
      const NodeIdx v = stack.back();
      stack.pop_back();
      if (!aig.is_and(v)) {
        continue;
      }
      cover_refs[v] += 1.0;
      if (in_cover[v]) {
        continue;
      }
      in_cover[v] = true;
      const Cut& c = best[v].cut;
      for (unsigned i = 0; i < c.size; ++i) {
        stack.push_back(c.leaves[i]);
      }
    }
    for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
      refs[v] = std::max(1.0, cover_refs[v]);
    }
  }

  // Mapper statistics: candidate-cut pressure and the shape of the final
  // cover (cut sizes correlate directly with area/power quality).
  // `map.candidate_cuts` counts deduplicated, match-bearing cuts that
  // enter the evaluation loop; `map.matches_tried` counts static cost
  // evaluations (once per cut x match) plus per-round evaluations of
  // the pruned survivors.
  {
    std::uint64_t candidate_cuts = 0;
    for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
      candidate_cuts += node_cands[v].size();
    }
    obs::counter("map.runs").add();
    obs::counter("map.candidate_cuts").add(candidate_cuts);
    obs::counter("map.matches_tried").add(matches_tried);
    obs::counter("map.match_static_evals").add(static_evals);
    obs::counter("map.canon_lookups").add(canon_lookups);
    static obs::Histogram& cut_sizes = obs::histogram("map.chosen_cut_size");
    for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
      if (in_cover[v]) {
        obs::counter("map.covered_nodes").add();
        cut_sizes.record(static_cast<double>(best[v].cut.size));
      }
    }
  }

  // ------------------------------------------------ netlist assembly ----
  Netlist net;
  net.name = aig.name();
  net.library = &matcher.library();

  std::vector<std::uint32_t> node_net(aig.num_nodes(), UINT32_MAX);
  auto fresh_net = [&]() { return net.num_nets++; };

  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    const std::uint32_t n = fresh_net();
    node_net[logic::lit_var(aig.pi(i))] = n;
    net.pis.push_back(n);
    net.pi_names.push_back(aig.pi_name(i));
  }

  // Inverted versions of nets, created on demand and shared.
  std::unordered_map<std::uint32_t, std::uint32_t> inverted;
  auto invert_net = [&](std::uint32_t source) {
    const auto it = inverted.find(source);
    if (it != inverted.end()) {
      return it->second;
    }
    const std::uint32_t out = fresh_net();
    net.gates.push_back({inv, {source}, out});
    inverted.emplace(source, out);
    return out;
  };
  auto const_net = [&](bool value) -> std::uint32_t {
    std::uint32_t& slot = value ? net.const1_net : net.const0_net;
    if (slot == UINT32_MAX) {
      slot = fresh_net();
      const auto* tie = matcher.tie(value);
      if (tie != nullptr) {
        // TIE cells in this library are modelled with a pin; represent
        // them as pinless constant drivers in the netlist.
        net.gates.push_back({tie, {}, slot});
      }
    }
    return slot;
  };

  // Emit gates for covered nodes in topological order.
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!in_cover[v]) {
      continue;
    }
    const Selection& sel = best[v];
    const Match& m = *sel.match;
    Gate gate;
    gate.cell = m.cell;
    gate.fanins.resize(m.perm.size());
    for (unsigned i = 0; i < m.perm.size(); ++i) {
      const NodeIdx leaf = sel.cut.leaves[m.perm[i]];
      std::uint32_t src = node_net[leaf];
      if (src == UINT32_MAX) {
        throw std::logic_error{"tech_map: leaf mapped after root"};
      }
      if ((m.input_phase >> i) & 1u) {
        src = invert_net(src);
      }
      gate.fanins[i] = src;
    }
    gate.output = fresh_net();
    const std::uint32_t cell_out = gate.output;
    net.gates.push_back(gate);
    node_net[v] = m.out_invert ? invert_net(cell_out) : cell_out;
  }

  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po(i);
    const NodeIdx v = logic::lit_var(po);
    std::uint32_t src;
    if (aig.is_const0(v)) {
      src = const_net(logic::lit_compl(po));
    } else {
      src = node_net[v];
      if (logic::lit_compl(po)) {
        src = invert_net(src);
      }
    }
    net.pos.push_back(src);
    net.po_names.push_back(aig.po_name(i));
  }
  obs::counter("map.gates_emitted").add(net.gates.size());
  return net;
}

}  // namespace cryo::map
