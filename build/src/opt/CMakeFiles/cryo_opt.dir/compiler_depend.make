# Empty compiler generated dependencies file for cryo_opt.
# This may be replaced when dependencies are built.
