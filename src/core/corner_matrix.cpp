#include "core/corner_matrix.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "cells/characterize.hpp"
#include "map/matcher.hpp"
#include "spice/backend.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace cryo::core {

namespace obs = util::obs;

namespace {

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Resolve benchmark names into constructed circuits; "" axis = the
/// mini suite. An unknown name rejects the whole matrix up front.
std::vector<epfl::Benchmark> resolve_benches(
    const std::vector<std::string>& names) {
  if (names.empty()) {
    return epfl::mini_suite();
  }
  std::vector<epfl::Benchmark> suite;
  suite.reserve(names.size());
  for (const auto& name : names) {
    logic::Aig aig;
    if (!epfl::find_benchmark(name, aig)) {
      throw Error{ErrorKind::kRecipe,
                  "unknown benchmark '" + name +
                      "' (cryoeda bench lists the suite)"};
    }
    suite.push_back({name, /*arithmetic=*/false, std::move(aig)});
  }
  return suite;
}

util::Json scenario_json(const ScenarioResult& s) {
  util::Json j = util::Json::object();
  j["scenario"] = util::Json{s.scenario};
  j["ok"] = util::Json{s.ok};
  if (!s.ok) {
    j["error"] = util::Json{s.error};
    j["error_kind"] = util::Json{s.error_kind};
  }
  j["degraded"] = util::Json{s.degraded};
  j["total_power_w"] = util::Json{s.total_power};
  j["delay_s"] = util::Json{s.delay};
  j["area_um2"] = util::Json{s.area};
  j["gates"] = util::Json{static_cast<int>(s.gates)};
  return j;
}

util::Json row_json(const MatrixRow& row) {
  util::Json j = util::Json::object();
  j["bench"] = util::Json{row.bench};
  j["ok"] = util::Json{row.ok && row.comparison.ok()};
  if (!row.ok) {
    j["error"] = util::Json{row.error};
    j["error_kind"] = util::Json{row.error_kind};
  }
  if (row.ok) {
    j["clock_period_s"] = util::Json{row.comparison.clock_period};
    util::Json scenarios = util::Json::array();
    scenarios.push_back(scenario_json(row.comparison.baseline));
    scenarios.push_back(scenario_json(row.comparison.pad));
    scenarios.push_back(scenario_json(row.comparison.pda));
    j["scenarios"] = std::move(scenarios);
    j["power_saving_pad"] = util::Json{row.comparison.power_saving_pad()};
    j["power_saving_pda"] = util::Json{row.comparison.power_saving_pda()};
    j["delay_overhead_pad"] = util::Json{row.comparison.delay_overhead_pad()};
    j["delay_overhead_pda"] = util::Json{row.comparison.delay_overhead_pda()};
  }
  return j;
}

}  // namespace

std::string MatrixCorner::label() const {
  return preset.name + "@" + fmt_g(temperature_k) + "K/" + fmt_g(vdd) + "V";
}

std::vector<MatrixCorner> enumerate_corners(const MatrixAxes& axes) {
  std::vector<std::string> preset_names = axes.presets;
  if (preset_names.empty()) {
    preset_names.push_back(device::default_preset().name);
  }
  std::vector<MatrixCorner> corners;
  for (const auto& name : preset_names) {
    const device::Preset& preset = device::resolve_preset(name);
    const std::vector<double>& temps =
        axes.temps.empty() ? preset.corner_temps : axes.temps;
    std::vector<double> vdds = axes.vdds;
    if (vdds.empty()) {
      vdds.push_back(preset.default_vdd);
    }
    if (temps.empty()) {
      throw Error{ErrorKind::kRecipe,
                  "preset '" + preset.name +
                      "' declares no corner temperatures; pass --temp"};
    }
    for (const double t : temps) {
      for (const double v : vdds) {
        // Reject the *whole* matrix before any corner runs: a grid
        // that mixes presets must be valid for every one of them.
        device::validate_corner(preset, t, v);
        corners.push_back({preset, t, v});
      }
    }
  }
  return corners;
}

int MatrixResult::corners_ok() const {
  int n = 0;
  for (const auto& c : corners) {
    n += c.ok ? 1 : 0;
  }
  return n;
}

int MatrixResult::rows_total() const {
  int n = 0;
  for (const auto& c : corners) {
    n += static_cast<int>(c.rows.size());
  }
  return n;
}

int MatrixResult::rows_ok() const {
  int n = 0;
  for (const auto& c : corners) {
    for (const auto& row : c.rows) {
      n += (row.ok && row.comparison.ok()) ? 1 : 0;
    }
  }
  return n;
}

bool MatrixResult::all_ok() const {
  return corners_ok() == static_cast<int>(corners.size()) &&
         rows_ok() == rows_total();
}

MatrixResult run_matrix(const MatrixOptions& options) {
  validate(options.experiment);
  // Engine, axes, and benches are all validated before the first corner
  // runs: a typo'd flag must fail fast with kRecipe, not after an hour
  // of characterization.
  const spice::Backend& backend = spice::resolve_backend(options.backend);
  const std::vector<MatrixCorner> corners = enumerate_corners(options.axes);
  const std::vector<epfl::Benchmark> suite = resolve_benches(options.benches);
  const std::vector<cells::CellSpec> catalog =
      options.catalog.empty() ? cells::standard_catalog() : options.catalog;
  if (!options.lib_dir.empty()) {
    std::filesystem::create_directories(options.lib_dir);
  }

  MatrixResult result;
  result.backend_identity = backend.identity();
  result.corners.reserve(corners.size());
  for (const auto& corner : corners) {
    // Global cancellation still stops the whole matrix between corners
    // (inside a corner it surfaces as that corner's kBudget fault).
    util::Budget::global().check_cancelled("core.matrix");
    const obs::ScopedSpan span{"core.matrix:" + corner.label()};
    MatrixCornerResult entry;
    entry.corner = corner;
    entry.lib_path =
        cells::default_lib_path(options.lib_dir, corner.preset,
                                backend.name(), corner.temperature_k,
                                corner.vdd);
    try {
      util::faultinject::maybe_fail("core.matrix", ErrorKind::kInternal);
      // Per-corner deadline: bounds this corner's characterization
      // alone, so a pathological corner cannot starve the rest of the
      // grid.
      util::Budget corner_budget;
      cells::CharOptions copt = options.char_options;
      copt.vdd = corner.vdd;
      copt.preset = corner.preset;
      copt.backend = options.backend;
      copt.verbose = options.verbose;
      if (options.per_corner_deadline_s > 0.0) {
        corner_budget.set_deadline_in(options.per_corner_deadline_s);
        copt.budget = &corner_budget;
      }
      const liberty::Library library = cells::load_or_characterize(
          entry.lib_path, catalog, corner.temperature_k, copt);
      entry.library = library.name;
      const map::CellMatcher matcher{library};
      entry.rows = util::parallel_map(
          suite.size(),
          [&](std::size_t b) {
            MatrixRow row;
            row.bench = suite[b].name;
            // Row-level fault isolation, same contract as the scenario
            // fleet: anything but budget exhaustion stays in this row.
            try {
              row.comparison =
                  compare_circuit(suite[b], matcher, options.experiment);
            } catch (const Error& e) {
              if (e.kind() == ErrorKind::kBudget) {
                throw;  // faults the whole corner below
              }
              row.ok = false;
              row.error = e.what();
              row.error_kind = std::string{error_kind_name(e.kind())};
              obs::counter("matrix.row_errors").add();
            } catch (const std::exception& e) {
              row.ok = false;
              row.error = e.what();
              row.error_kind = "internal";
              obs::counter("matrix.row_errors").add();
            }
            return row;
          },
          options.experiment.threads);
    } catch (const Error& e) {
      entry.ok = false;
      entry.error = e.what();
      entry.error_kind = std::string{error_kind_name(e.kind())};
      entry.rows.clear();
      obs::counter("matrix.corner_errors").add();
    } catch (const std::exception& e) {
      entry.ok = false;
      entry.error = e.what();
      entry.error_kind = "internal";
      entry.rows.clear();
      obs::counter("matrix.corner_errors").add();
    }
    obs::counter("matrix.corners").add();
    result.corners.push_back(std::move(entry));
  }
  return result;
}

util::Json matrix_report(const MatrixResult& result) {
  util::Json report = util::Json::object();
  report["schema"] = util::Json{std::string{"cryoeda-matrix-v1"}};
  report["backend"] = util::Json{result.backend_identity};
  util::Json corners = util::Json::array();
  for (const auto& entry : result.corners) {
    util::Json c = util::Json::object();
    c["preset"] = util::Json{entry.corner.preset.name};
    c["technology"] = util::Json{entry.corner.preset.technology};
    c["temperature_k"] = util::Json{entry.corner.temperature_k};
    c["vdd"] = util::Json{entry.corner.vdd};
    c["label"] = util::Json{entry.corner.label()};
    c["library"] = util::Json{entry.library};
    c["lib_path"] = util::Json{entry.lib_path};
    c["ok"] = util::Json{entry.ok};
    if (!entry.ok) {
      c["error"] = util::Json{entry.error};
      c["error_kind"] = util::Json{entry.error_kind};
    }
    util::Json rows = util::Json::array();
    for (const auto& row : entry.rows) {
      rows.push_back(row_json(row));
    }
    c["rows"] = std::move(rows);
    corners.push_back(std::move(c));
  }
  report["corners"] = std::move(corners);
  util::Json summary = util::Json::object();
  summary["corners"] = util::Json{static_cast<int>(result.corners.size())};
  summary["corners_ok"] = util::Json{result.corners_ok()};
  summary["rows"] = util::Json{result.rows_total()};
  summary["rows_ok"] = util::Json{result.rows_ok()};
  summary["all_ok"] = util::Json{result.all_ok()};
  report["summary"] = std::move(summary);
  return report;
}

}  // namespace cryo::core
