// Extension experiment: supply-voltage scaling at 300 K vs 10 K.
//
// A classic cold-CMOS opportunity the paper's discussion points toward:
// at room temperature, scaling Vdd down runs into the leakage floor
// (leakage's share of total power grows as dynamic power shrinks with
// V^2). At 10 K leakage is gone, so the energy-per-operation keeps
// improving as Vdd drops until delay (the higher cryogenic Vth eats the
// overdrive) becomes the binding constraint. This bench quantifies that
// trade-off on a 32-bit adder mapped at each (T, Vdd) corner, clocked at
// 2x its own critical path.

#include <cstdio>

#include "bench_common.hpp"
#include "cells/characterize.hpp"
#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"
#include "sta/sta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cryo;

int main() {
  std::printf("=== Ablation: Vdd scaling at 300 K vs 10 K ===\n\n");
  const auto design = epfl::make_adder(32);

  util::Table table{{"T [K]", "Vdd [V]", "crit delay [ps]", "P total [uW]",
                     "leakage share", "energy/cycle [fJ]"}};
  for (const double temp : {300.0, 10.0}) {
    for (const double vdd : {0.45, 0.55, 0.70}) {
      // characterize() is internally parallel across cells; the timer
      // makes the per-corner SPICE cost visible.
      util::ScopedTimer corner_timer{
          "ablation_vdd corner T=" + util::Table::num(temp, 0) +
          " Vdd=" + util::Table::num(vdd, 2)};
      cells::CharOptions char_options;
      char_options.vdd = vdd;
      char_options.include_sequential = false;
      const auto lib =
          cells::characterize(cells::mini_catalog(), temp, char_options);
      const map::CellMatcher matcher{lib};
      core::FlowOptions flow;
      flow.priority = opt::CostPriority::kPowerDelayArea;
      const auto result = core::synthesize(design, matcher, flow);

      // Self-timed normalization: run each corner at 2x its own critical
      // path so corners are compared at iso-utilization.
      sta::StaOptions probe;
      const auto first = sta::analyze(result.netlist, probe);
      sta::StaOptions timed = probe;
      timed.clock_period = 2.0 * first.critical_delay;
      const auto signoff = sta::analyze(result.netlist, timed);

      const double energy_per_cycle =
          signoff.power.total() * timed.clock_period;
      table.add_row({util::Table::num(temp, 0), util::Table::num(vdd, 2),
                     util::Table::num(signoff.critical_delay * 1e12, 1),
                     util::Table::num(signoff.power.total() * 1e6, 2),
                     util::Table::pct(
                         signoff.power.leakage / signoff.power.total(), 4),
                     util::Table::num(energy_per_cycle * 1e15, 2)});
    }
  }
  table.write_csv("cryoeda_out/ablation_vdd.csv");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: at 300 K the leakage share balloons as Vdd (and the\n"
      "clock) drops; at 10 K it stays negligible at every Vdd, so the\n"
      "energy floor is set purely by CV^2 — the knob a cryogenic\n"
      "controller designer actually gets to turn.\n");
  bench::write_bench_report("ablation_vdd");
  return 0;
}
