#include "core/pipeline.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/state_io.hpp"
#include "liberty/json_io.hpp"
#include "opt/passes.hpp"
#include "sat/sweep.hpp"
#include "util/artifact_cache.hpp"
#include "util/budget.hpp"
#include "util/hash.hpp"
#include "util/obs.hpp"
#include "util/strings.hpp"

namespace cryo::core {

namespace obs = util::obs;

// ------------------------------------------------------------ PassArgs --

namespace {

const std::string* find_value(
    const std::vector<std::pair<std::string, std::string>>& values,
    std::string_view flag) {
  for (const auto& [f, v] : values) {
    if (f == flag) {
      return &v;
    }
  }
  return nullptr;
}

}  // namespace

bool PassArgs::has(std::string_view flag) const {
  return find_value(values, flag) != nullptr;
}

unsigned PassArgs::get_uint(std::string_view flag, unsigned fallback) const {
  const std::string* v = find_value(values, flag);
  // Validated at parse time, so a plain strtoul cannot fail here.
  return v ? static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 10))
           : fallback;
}

opt::CostPriority PassArgs::get_priority(std::string_view flag,
                                         opt::CostPriority fallback) const {
  const std::string* v = find_value(values, flag);
  return v ? *opt::priority_from_string(*v) : fallback;
}

// -------------------------------------------------------- PassRegistry --

void PassRegistry::add(Pass pass) {
  std::string name = pass.name;
  passes_.insert_or_assign(std::move(name), std::move(pass));
}

const Pass* PassRegistry::find(std::string_view name) const {
  const auto it = passes_.find(name);
  return it == passes_.end() ? nullptr : &it->second;
}

std::vector<const Pass*> PassRegistry::passes() const {
  std::vector<const Pass*> out;
  out.reserve(passes_.size());
  for (const auto& [name, pass] : passes_) {
    out.push_back(&pass);
  }
  return out;
}

// ----------------------------------------------------- builtin passes --

namespace {

ArgSpec uint_arg(std::string flag, unsigned min, unsigned max,
                 std::string help) {
  ArgSpec spec;
  spec.flag = std::move(flag);
  spec.kind = ArgKind::kUInt;
  spec.min_uint = min;
  spec.max_uint = max;
  spec.help = std::move(help);
  return spec;
}

ArgSpec priority_arg() {
  ArgSpec spec;
  spec.flag = "-p";
  spec.kind = ArgKind::kPriority;
  spec.help = "cost-priority list: baseline | pad | pda";
  return spec;
}

Pass aig_pass(std::string name, std::string help, std::vector<ArgSpec> args,
              std::function<void(FlowState&, const PassArgs&)> run) {
  Pass pass;
  pass.name = std::move(name);
  pass.help = std::move(help);
  pass.args = std::move(args);
  pass.aig_transform = true;
  pass.run = std::move(run);
  return pass;
}

util::Budget& budget_of(const FlowState& s) {
  return s.budget != nullptr ? *s.budget : util::Budget::global();
}

PassRegistry make_builtin_registry() {
  PassRegistry registry;

  registry.add(aig_pass(
      "balance", "AND-tree balancing (depth reduction)", {},
      [](FlowState& s, const PassArgs&) { s.aig = opt::balance(s.aig); }));

  registry.add(aig_pass(
      "rewrite", "DAG-aware cut rewriting",
      {uint_arg("-k", 2, 8, "cut size")},
      [](FlowState& s, const PassArgs& args) {
        s.aig = opt::rewrite(s.aig, args.get_uint("-k", 4));
      }));

  registry.add(aig_pass(
      "refactor", "reconvergence-driven cone refactoring",
      {uint_arg("-l", 4, 16, "max cone leaves")},
      [](FlowState& s, const PassArgs& args) {
        s.aig = opt::refactor(s.aig, args.get_uint("-l", 10));
      }));

  {
    Pass pass = aig_pass(
        "resub", "windowed resubstitution",
        {uint_arg("-l", 4, 16, "max window leaves")},
        [](FlowState& s, const PassArgs& args) {
          s.aig = opt::resub(s.aig, args.get_uint("-l", 8), &budget_of(s));
        });
    pass.budget_aware = true;
    registry.add(std::move(pass));
  }

  {
    Pass pass = aig_pass(
        "c2rs", "compress2rs: resub/rewrite/refactor/balance to fixpoint", {},
        [](FlowState& s, const PassArgs&) {
          s.aig = opt::compress2rs(s.aig, &budget_of(s));
          s.after_c2rs = s.aig.num_ands();
        });
    pass.budget_aware = true;
    registry.add(std::move(pass));
  }

  {
    Pass pass = aig_pass(
        "dch", "SAT sweeping for structural choices", {},
        [](FlowState& s, const PassArgs&) {
          // The AIG entering stage 2 is what `strash` compares against.
          s.stage_checkpoint = s.aig;
          sat::SweepOptions sopt;
          sopt.seed = s.options.seed;
          sopt.conflict_limit = s.options.sat_conflict_budget;
          sopt.budget = &budget_of(s);
          sat::SweepResult sweep = sat::sat_sweep(s.aig, sopt);
          s.aig = std::move(sweep.aig);
          s.choices = std::move(sweep.choices);
          s.has_choices = true;
        });
    pass.uses_sat = true;
    pass.budget_aware = true;
    registry.add(std::move(pass));
  }

  {
    Pass pass;
    pass.name = "if";
    pass.help = "power-aware k-LUT mapping (uses dch choices if present)";
    pass.args = {uint_arg("-K", 2, 16, "LUT input count"), priority_arg()};
    pass.makes_luts = true;
    pass.run = [](FlowState& s, const PassArgs& args) {
      if (!s.stage_checkpoint) {
        s.stage_checkpoint = s.aig;
      }
      opt::LutMapOptions lopt;
      lopt.k = args.get_uint("-K", s.options.lut_k);
      lopt.priority = args.get_priority("-p", s.options.priority);
      lopt.epsilon = s.options.epsilon;
      lopt.input_activity = s.options.input_activity;
      lopt.seed = s.options.seed;
      s.luts =
          opt::lut_map(s.aig, lopt, s.has_choices ? &s.choices : nullptr);
    };
    registry.add(std::move(pass));
  }

  {
    Pass pass;
    pass.name = "mfs";
    pass.help = "SAT don't-care minimization of the pending LUT cover";
    pass.needs_luts = true;
    pass.uses_sat = true;
    pass.budget_aware = true;
    pass.run = [](FlowState& s, const PassArgs&) {
      opt::MfsOptions mopt;
      mopt.seed = s.options.seed;
      mopt.budget = &budget_of(s);
      (void)opt::mfs(*s.luts, mopt);
    };
    registry.add(std::move(pass));
  }

  {
    Pass pass;
    pass.name = "strash";
    pass.help = "rebuild a hashed AIG from the LUT cover (keeps the "
                "stage-2 input if the round-trip inflated the network)";
    pass.needs_luts = true;
    pass.run = [](FlowState& s, const PassArgs&) {
      logic::Aig optimized = opt::luts_to_aig(*s.luts);
      // Keep the better of the two stages (the LUT round-trip
      // occasionally inflates small networks; ABC scripts guard
      // similarly).
      if (optimized.num_ands() > s.stage_checkpoint->num_ands()) {
        optimized = std::move(*s.stage_checkpoint);
      }
      s.aig = std::move(optimized);
      s.luts.reset();
      s.choices.clear();
      s.has_choices = false;
      s.stage_checkpoint.reset();
      s.after_power_stage = s.aig.num_ands();
      s.saw_strash = true;
      if (s.initial_ands > s.after_power_stage) {
        obs::counter("core.nodes_saved")
            .add(s.initial_ands - s.after_power_stage);
      }
    };
    registry.add(std::move(pass));
  }

  {
    Pass pass;
    pass.name = "map";
    pass.help = "cryogenic-aware standard-cell technology mapping";
    pass.args = {priority_arg(),
                 uint_arg("-C", 1, 32, "priority cuts kept per node"),
                 uint_arg("-M", 1, 16, "matches evaluated per cut"),
                 uint_arg("-F", 0, 1, "cut order: 0 size-first, 1 area-flow")};
    pass.run = [](FlowState& s, const PassArgs& args) {
      if (s.matcher == nullptr) {
        throw RecipeError{
            "pass 'map' needs a cell library: FlowState.matcher is null"};
      }
      map::TechMapOptions topt;
      topt.priority = args.get_priority("-p", s.options.priority);
      topt.cuts_per_node = args.get_uint("-C", topt.cuts_per_node);
      topt.matches_per_cut = args.get_uint("-M", topt.matches_per_cut);
      topt.cut_order = args.get_uint("-F", 0) != 0
                           ? logic::CutOrder::kAreaFlow
                           : logic::CutOrder::kSizeFirst;
      topt.epsilon = s.options.epsilon;
      topt.input_activity = s.options.input_activity;
      topt.clock_estimate = s.options.clock_estimate;
      topt.seed = s.options.seed;
      topt.budget = &budget_of(s);
      s.netlist = map::tech_map(s.aig, *s.matcher, topt);
      s.has_netlist = true;
    };
    registry.add(std::move(pass));
  }

  return registry;
}

}  // namespace

const PassRegistry& PassRegistry::global() {
  static const PassRegistry registry = make_builtin_registry();
  return registry;
}

// -------------------------------------------------------------- parse --

namespace {

[[noreturn]] void fail(std::size_t segment, std::string_view context,
                       const std::string& message) {
  throw RecipeError{"recipe error in segment " + std::to_string(segment + 1) +
                    " ('" + std::string{context} + "'): " + message};
}

std::string known_passes(const PassRegistry& registry) {
  std::string names;
  for (const Pass* pass : registry.passes()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += pass->name;
  }
  return names;
}

const ArgSpec* find_spec(const Pass& pass, std::string_view flag) {
  for (const ArgSpec& spec : pass.args) {
    if (spec.flag == flag) {
      return &spec;
    }
  }
  return nullptr;
}

/// Validate and canonicalize one flag value against its spec.
std::string canonical_value(std::size_t segment, std::string_view context,
                            const Pass& pass, const ArgSpec& spec,
                            const std::string& raw) {
  switch (spec.kind) {
    case ArgKind::kUInt: {
      const char* begin = raw.c_str();
      char* end = nullptr;
      const unsigned long value = std::strtoul(begin, &end, 10);
      if (raw.empty() || end != begin + raw.size() || raw[0] == '-') {
        fail(segment, context,
             "bad value for " + spec.flag + " of pass '" + pass.name +
                 "': '" + raw + "' (expected an integer in [" +
                 std::to_string(spec.min_uint) + ", " +
                 std::to_string(spec.max_uint) + "])");
      }
      if (value < spec.min_uint || value > spec.max_uint) {
        fail(segment, context,
             spec.flag + " " + raw + " of pass '" + pass.name +
                 "' is out of range [" + std::to_string(spec.min_uint) +
                 ", " + std::to_string(spec.max_uint) + "]");
      }
      return std::to_string(value);
    }
    case ArgKind::kPriority: {
      const auto priority = opt::priority_from_string(raw);
      if (!priority) {
        fail(segment, context,
             "bad value for " + spec.flag + " of pass '" + pass.name +
                 "': '" + raw + "' (expected baseline | pad | pda)");
      }
      return opt::short_name(*priority);
    }
  }
  fail(segment, context, "unhandled argument kind");
}

}  // namespace

Pipeline Pipeline::parse(std::string_view script,
                         const PassRegistry& registry) {
  Pipeline pipeline;
  // Split into ';'-separated segments by hand (util::split drops empty
  // tokens, but we need segment *indices* for diagnostics).
  std::vector<std::string_view> segments;
  std::size_t start = 0;
  while (start <= script.size()) {
    const std::size_t semi = script.find(';', start);
    const std::size_t end = semi == std::string_view::npos ? script.size()
                                                           : semi;
    segments.push_back(script.substr(start, end - start));
    if (semi == std::string_view::npos) {
      break;
    }
    start = semi + 1;
  }

  bool luts_pending = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string_view segment = util::trim(segments[i]);
    if (segment.empty()) {
      continue;  // stray ';' / trailing ';' are fine
    }
    const std::vector<std::string> tokens = util::split(segment, " \t\r\n");
    const std::string& name = tokens.front();
    const Pass* pass = registry.find(name);
    if (pass == nullptr) {
      fail(i, segment,
           "unknown pass '" + name + "' (known: " + known_passes(registry) +
               ")");
    }

    PassInvocation invocation;
    invocation.pass = pass;
    // Collect (flag, value) pairs, then re-order canonically below.
    std::vector<std::pair<std::string, std::string>> given;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const std::string& flag = tokens[t];
      const ArgSpec* spec = find_spec(*pass, flag);
      if (spec == nullptr) {
        fail(i, segment,
             "unknown flag '" + flag + "' for pass '" + name + "'" +
                 (pass->args.empty() ? " (it takes no flags)" : ""));
      }
      if (find_value(given, flag) != nullptr) {
        fail(i, segment, "duplicate flag " + flag + " for pass '" + name +
                             "'");
      }
      if (t + 1 >= tokens.size()) {
        fail(i, segment,
             "missing value for " + flag + " of pass '" + name + "'");
      }
      given.emplace_back(flag,
                         canonical_value(i, segment, *pass, *spec,
                                         tokens[++t]));
    }
    // Canonical order = spec declaration order.
    for (const ArgSpec& spec : pass->args) {
      if (const std::string* v = find_value(given, spec.flag)) {
        invocation.args.values.emplace_back(spec.flag, *v);
      }
    }

    // Static sequencing check.
    if (pass->needs_luts && !luts_pending) {
      fail(i, segment,
           "pass '" + name +
               "' needs a pending LUT cover; run 'if' before it");
    }
    if ((pass->aig_transform || pass->makes_luts || name == "map") &&
        luts_pending) {
      fail(i, segment,
           "pass '" + name +
               "' cannot run while a LUT cover is pending; run 'strash' "
               "first");
    }
    if (pass->makes_luts) {
      luts_pending = true;
    } else if (name == "strash") {
      luts_pending = false;
    }

    pipeline.sequence_.push_back(std::move(invocation));
  }

  if (pipeline.sequence_.empty()) {
    throw RecipeError{"recipe contains no passes"};
  }
  if (luts_pending) {
    throw RecipeError{
        "recipe ends with a pending LUT cover; add 'strash' after 'if'"};
  }
  return pipeline;
}

// -------------------------------------------------------------- print --

std::string PassInvocation::to_string() const {
  std::string out = pass->name;
  for (const auto& [flag, value] : args.values) {
    out += " " + flag + " " + value;
  }
  return out;
}

std::string Pipeline::to_string() const {
  std::string out;
  for (const PassInvocation& invocation : sequence_) {
    if (!out.empty()) {
      out += "; ";
    }
    out += invocation.to_string();
  }
  return out;
}

// ---------------------------------------------------------------- run --

namespace {

/// Artifact-cache stage of one pass execution: key = the state the pass
/// consumed + the pass itself + everything the pass reads from outside
/// the state; value = the resulting `FlowState` snapshot (state_io.hpp).
constexpr std::string_view kPassStage = "core.pass";

/// Process-wide kill switch (`CRYOEDA_PASS_CACHE=0`), separate from
/// `CRYOEDA_CACHE` so pass-level reuse can be benchmarked against
/// scenario-level reuse without disabling the whole cache.
bool pass_cache_env_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("CRYOEDA_PASS_CACHE");
    return env == nullptr || std::string_view{env} != "0";
  }();
  return enabled;
}

/// A pass participates in the cache iff its incoming state and its
/// result both round-trip through a snapshot: the AIG transforms and
/// `dch`. `if` produces a pending LUT cover (not serializable), `mfs` /
/// `strash` consume one, and `map`'s netlist is cheap relative to the
/// passes before it.
bool pass_cacheable(const Pass& pass) {
  return pass.cacheable && !pass.needs_luts && !pass.makes_luts &&
         pass.name != "map";
}

util::Json pass_cache_inputs(std::uint64_t state_fp,
                             const PassInvocation& invocation,
                             std::uint64_t library_fp,
                             const FlowOptions& options) {
  util::Json inputs = util::Json::object();
  inputs["pass_key_version"] = util::Json{kPassCacheKeyVersion};
  inputs["state_fingerprint"] = util::Json{util::hex64(state_fp)};
  // Canonical print, so spelling variants share an entry. Flag defaults
  // baked into the pass lambdas (e.g. rewrite's k = 4) are not spelled
  // out here: changing one is a semantics change covered by
  // kCacheSchemaVersion, like any other pass-body change.
  inputs["pass"] = util::Json{invocation.to_string()};
  inputs["library_fingerprint"] = util::Json{util::hex64(library_fp)};
  // The FlowOptions knobs pass bodies read (fallbacks for -K/-p and the
  // kernel seeds/thresholds). use_choices/use_mfs steer recipe
  // *construction*, not pass behaviour, so they stay out.
  util::Json flow = util::Json::object();
  flow["priority"] = util::Json{std::string{opt::short_name(options.priority)}};
  flow["epsilon"] = util::Json{options.epsilon};
  flow["input_activity"] = util::Json{options.input_activity};
  flow["lut_k"] = util::Json{options.lut_k};
  flow["clock_estimate"] = util::Json{options.clock_estimate};
  flow["seed"] = util::Json{options.seed};
  flow["sat_conflict_budget"] = util::Json{options.sat_conflict_budget};
  inputs["flow"] = std::move(flow);
  return inputs;
}

}  // namespace

void Pipeline::run(FlowState& state) const {
  validate(state.options);
  util::Budget& budget = budget_of(state);
  state.initial_ands = state.aig.num_ands();

  util::ArtifactCache& cache = util::ArtifactCache::global();
  // Budget constraints that change what a pass *produces* (not merely
  // whether it finishes) make cached snapshots wrong answers: a
  // node-growth ceiling reverts inflating transforms, and an already
  // soft-exhausted budget skips them outright. Restoring a full-quality
  // snapshot there would silently undo the constraint. A live-but-not-
  // exhausted deadline or SAT ceiling is fine — clean (non-degraded)
  // results under those are identical to unbudgeted ones, which is what
  // lets the recipe-search driver combine per-variant deadlines with
  // prefix reuse.
  const bool budget_allows = !budget.cancelled() &&
                             !budget.soft_exhausted() &&
                             budget.node_growth_limit() <= 0.0;
  const bool caching = state.use_pass_cache && budget_allows &&
                       pass_cache_env_enabled() && cache.enabled();
  const std::uint64_t library_fp =
      state.matcher != nullptr
          ? liberty::fingerprint(state.matcher->library())
          : 0;

  // Longest-cached-prefix skip: restore snapshots front-to-back until
  // the first miss or the first pass whose result cannot snapshot. Keys
  // chain through the restored states, so a hit at step k certifies the
  // whole prefix up to k.
  std::size_t resume_at = 0;
  if (caching && snapshotable(state)) {
    while (resume_at < sequence_.size()) {
      const PassInvocation& invocation = sequence_[resume_at];
      if (!pass_cacheable(*invocation.pass)) {
        break;
      }
      const std::string key = util::ArtifactCache::key(
          kPassStage, pass_cache_inputs(state_fingerprint(state), invocation,
                                        library_fp, state.options));
      auto hit = cache.load(kPassStage, key);
      if (!hit) {
        obs::counter("cache.pass_misses").add();
        break;
      }
      try {
        snapshot_from_json(*hit, state);
      } catch (const std::exception&) {
        obs::counter("cache.corrupt").add();
        break;  // fall through to recomputation from the current state
      }
      obs::counter("cache.pass_hits").add();
      // Keep the work-shape diagnostic meaningful on warm runs too.
      obs::gauge("pass." + invocation.pass->name + ".nodes",
                 obs::Unit::kNodes)
          .set(static_cast<double>(state.aig.num_ands()));
      ++resume_at;
    }
  }

  for (std::size_t step = resume_at; step < sequence_.size(); ++step) {
    const PassInvocation& invocation = sequence_[step];
    const Pass& pass = *invocation.pass;
    budget.check_cancelled("pass." + pass.name);

    // Compute the store key before the pass mutates the state: entries
    // are addressed by what the pass *consumed*. Only clean incoming
    // states get a key — after `if` the state carries a pending cover
    // and the chain is broken until the next run starts fresh.
    std::string store_key;
    if (caching && pass_cacheable(pass) && snapshotable(state)) {
      store_key = util::ArtifactCache::key(
          kPassStage, pass_cache_inputs(state_fingerprint(state), invocation,
                                        library_fp, state.options));
    }

    // Soft budget exhaustion *degrades* the flow instead of failing it:
    // out of wall-clock, every optimization pass is skipped; out of SAT
    // conflicts, only the SAT-backed passes are. `map` is never skipped
    // — the flow must still produce a netlist.
    bool degraded = false;
    bool skipped = false;
    const bool degradable = pass.name != "map";
    if (degradable && (budget.deadline_exceeded() ||
                       (pass.uses_sat && budget.sat_exhausted()))) {
      skipped = true;
      degraded = true;
    } else if (pass.needs_luts && !state.luts) {
      // An upstream skip consumed this pass's input (`if` skipped under
      // deadline leaves no pending cover): no-op instead of crashing.
      skipped = true;
      degraded = true;
    }

    if (!skipped) {
      // Optional node-growth ceiling: revert any AIG transform whose
      // result inflated the network past the configured factor.
      const double growth_limit = budget.node_growth_limit();
      const bool guarded = growth_limit > 0.0 && pass.aig_transform;
      logic::Aig snapshot;
      if (guarded) {
        snapshot = state.aig;
      }
      {
        const obs::ScopedSpan span{"pass." + pass.name};
        pass.run(state, invocation.args);
      }
      if (guarded && static_cast<double>(state.aig.num_ands()) >
                         growth_limit *
                             std::max(1u, snapshot.num_ands())) {
        state.aig = std::move(snapshot);
        degraded = true;
      }
      // A budget found exhausted right after a budget-aware pass means
      // the pass stopped early; record that as a degradation too.
      if (pass.budget_aware && (budget.deadline_exceeded() ||
                                (pass.uses_sat && budget.sat_exhausted()))) {
        degraded = true;
      }
      obs::counter("pass." + pass.name + ".runs").add();
    }
    if (degraded) {
      obs::counter("pass." + pass.name + ".degraded").add();
      state.degraded = true;
    }
    // Store the clean snapshot this pass produced. Never a degraded one
    // (`state.degraded` covers this pass and every pass before it): the
    // key covers inputs only, so a budget-starved intermediate would be
    // served to later unbudgeted runs as the full-quality result —
    // the same rule the scenario cache enforces.
    if (!store_key.empty() && !skipped && !state.degraded &&
        snapshotable(state)) {
      cache.store(kPassStage, store_key, snapshot_to_json(state));
    }
    // Diagnostic (Unit::kNodes, excluded from the signoff report):
    // network size leaving the pass — gates once mapped, LUTs while a
    // cover is pending, AND nodes otherwise.
    const double nodes =
        pass.name == "map"
            ? static_cast<double>(state.netlist.gate_count())
            : (state.luts ? static_cast<double>(state.luts->lut_count)
                          : static_cast<double>(state.aig.num_ands()));
    obs::gauge("pass." + pass.name + ".nodes", obs::Unit::kNodes).set(nodes);
  }
}

// ---------------------------------------------------------- canonical --

std::string canonical_recipe(const FlowOptions& options) {
  const std::string p = opt::short_name(options.priority);
  std::string recipe = "c2rs";
  if (options.use_choices) {
    recipe += "; dch";
  }
  recipe += "; if -K " + std::to_string(options.lut_k) + " -p " + p;
  if (options.use_mfs) {
    recipe += "; mfs";
  }
  recipe += "; strash; map -p " + p;
  return recipe;
}

}  // namespace cryo::core
