# Empty dependencies file for cryo_epfl.
# This may be replaced when dependencies are built.
