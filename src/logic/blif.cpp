#include "logic/blif.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cryo::logic {

std::string write_blif(const Aig& aig) {
  std::ostringstream out;
  out << ".model " << (aig.name().empty() ? "top" : aig.name()) << '\n';
  out << ".inputs";
  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    out << ' ' << aig.pi_name(i);
  }
  out << '\n';
  out << ".outputs";
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    out << ' ' << aig.po_name(i);
  }
  out << '\n';

  auto signal = [&](NodeIdx v) -> std::string {
    if (aig.is_pi(v)) {
      for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
        if (lit_var(aig.pi(i)) == v) {
          return aig.pi_name(i);
        }
      }
    }
    return "n" + std::to_string(v);
  };

  // Constant-zero node, if referenced.
  out << ".names n0\n";  // empty table = constant 0

  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    const Lit f0 = aig.fanin0(v);
    const Lit f1 = aig.fanin1(v);
    out << ".names " << signal(lit_var(f0)) << ' ' << signal(lit_var(f1))
        << ' ' << signal(v) << '\n';
    out << (lit_compl(f0) ? '0' : '1') << (lit_compl(f1) ? '0' : '1')
        << " 1\n";
  }
  // PO aliases (handle complemented and constant drivers).
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po(i);
    const NodeIdx v = lit_var(po);
    out << ".names " << signal(v) << ' ' << aig.po_name(i) << '\n';
    out << (lit_compl(po) ? "0 1\n" : "1 1\n");
  }
  out << ".end\n";
  return out.str();
}

Aig read_blif(const std::string& contents) {
  // Join continuation lines and strip comments.
  std::vector<std::string> lines;
  {
    std::istringstream in{contents};
    std::string line;
    std::string pending;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) {
        line.resize(hash);
      }
      std::string trimmed{util::trim(line)};
      if (!trimmed.empty() && trimmed.back() == '\\') {
        trimmed.pop_back();
        pending += trimmed + " ";
        continue;
      }
      pending += trimmed;
      if (!pending.empty()) {
        lines.push_back(pending);
      }
      pending.clear();
    }
  }

  Aig aig;
  std::map<std::string, Lit> signals;
  std::vector<std::string> outputs;

  struct Table {
    std::vector<std::string> inputs;
    std::string output;
    std::vector<std::pair<std::string, char>> rows;  // (input pattern, out)
  };
  std::vector<Table> tables;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const auto tokens = util::split(lines[li], " \t");
    if (tokens.empty()) {
      continue;
    }
    const std::string& cmd = tokens[0];
    if (cmd == ".model" || cmd == ".end") {
      if (cmd == ".model" && tokens.size() > 1) {
        aig.set_name(tokens[1]);
      }
      continue;
    }
    if (cmd == ".latch") {
      throw std::runtime_error{"read_blif: latches are not supported"};
    }
    if (cmd == ".inputs") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        signals[tokens[t]] = aig.add_pi(tokens[t]);
      }
      continue;
    }
    if (cmd == ".outputs") {
      outputs.insert(outputs.end(), tokens.begin() + 1, tokens.end());
      continue;
    }
    if (cmd == ".names") {
      Table table;
      if (tokens.size() < 2) {
        throw std::runtime_error{"read_blif: .names without signals"};
      }
      table.output = tokens.back();
      table.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      if (table.inputs.size() > 16) {
        throw std::runtime_error{"read_blif: .names with > 16 inputs"};
      }
      // Consume the cube rows that follow.
      while (li + 1 < lines.size() && !lines[li + 1].empty() &&
             lines[li + 1][0] != '.') {
        ++li;
        const auto row = util::split(lines[li], " \t");
        if (table.inputs.empty()) {
          if (row.size() != 1 || (row[0] != "1" && row[0] != "0")) {
            throw std::runtime_error{"read_blif: bad constant row"};
          }
          table.rows.emplace_back("", row[0][0]);
        } else {
          if (row.size() != 2 || row[0].size() != table.inputs.size()) {
            throw std::runtime_error{"read_blif: bad cube row"};
          }
          table.rows.emplace_back(row[0], row[1][0]);
        }
      }
      tables.push_back(std::move(table));
      continue;
    }
    throw std::runtime_error{"read_blif: unsupported construct " + cmd};
  }

  // Build tables in order (BLIF allows any order, but the writer and all
  // common producers emit topologically; do one simple multi-pass to
  // tolerate mild disorder).
  std::vector<bool> done(tables.size(), false);
  std::size_t remaining = tables.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
      if (done[ti]) {
        continue;
      }
      const Table& table = tables[ti];
      bool ready = true;
      for (const auto& in : table.inputs) {
        if (signals.find(in) == signals.end()) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      // SOP over the cube rows ("1" output rows; "0" rows complement).
      bool onset = true;
      for (const auto& [pattern, value] : table.rows) {
        (void)pattern;
        onset = value == '1';
        break;
      }
      Lit acc = kConst0;
      for (const auto& [pattern, value] : table.rows) {
        if ((value == '1') != onset) {
          throw std::runtime_error{
              "read_blif: mixed on/off rows in one table"};
        }
        Lit cube = kConst1;
        for (std::size_t i = 0; i < pattern.size(); ++i) {
          const Lit in = signals.at(table.inputs[i]);
          if (pattern[i] == '1') {
            cube = aig.land(cube, in);
          } else if (pattern[i] == '0') {
            cube = aig.land(cube, lit_not(in));
          } else if (pattern[i] != '-') {
            throw std::runtime_error{"read_blif: bad cube character"};
          }
        }
        acc = aig.lor(acc, cube);
      }
      if (table.rows.empty()) {
        acc = kConst0;  // empty table = constant 0
      } else if (!onset) {
        acc = lit_not(acc);
      }
      signals[table.output] = acc;
      done[ti] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    throw std::runtime_error{"read_blif: undriven or cyclic signals"};
  }

  for (const auto& name : outputs) {
    const auto it = signals.find(name);
    if (it == signals.end()) {
      throw std::runtime_error{"read_blif: undriven output " + name};
    }
    aig.add_po(it->second, name);
  }
  return aig;
}

void write_blif_file(const Aig& aig, const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"write_blif_file: cannot open " + path};
  }
  out << write_blif(aig);
}

Aig read_blif_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_blif_file: cannot open " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_blif(buf.str());
}

}  // namespace cryo::logic
