#include "spice/backend.hpp"

#include <array>
#include <cstdlib>

#include "spice/builtin_backend.hpp"
#include "spice/ngspice_backend.hpp"
#include "util/error.hpp"

namespace cryo::spice {

double DcResult::source_current(NodeId node) const {
  const auto it = source_currents.find(node);
  if (it == source_currents.end()) {
    throw std::out_of_range{"DcResult: node is not a source"};
  }
  return it->second;
}

namespace {

std::array<const Backend*, 2> registry() {
  static const BuiltinBackend builtin;
  static const NgspiceBackend ngspice;
  return {&builtin, &ngspice};
}

}  // namespace

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const Backend* backend : registry()) {
    names.push_back(backend->name());
  }
  return names;
}

const Backend* find_backend(const std::string& name) {
  for (const Backend* backend : registry()) {
    if (backend->name() == name) {
      return backend;
    }
  }
  return nullptr;
}

const Backend& builtin_backend() { return *registry()[0]; }

const Backend& resolve_backend(const std::string& name) {
  std::string want = name;
  if (want.empty()) {
    if (const char* env = std::getenv(kBackendEnv); env != nullptr) {
      want = env;
    }
  }
  if (want.empty()) {
    want = "builtin";
  }
  const Backend* backend = find_backend(want);
  if (backend == nullptr) {
    std::string known;
    for (const auto& n : backend_names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw Error{ErrorKind::kRecipe,
                "unknown SPICE backend '" + want + "' (known: " + known + ")"};
  }
  if (!backend->available()) {
    throw Error{ErrorKind::kRecipe, "SPICE backend '" + want +
                                        "' is unavailable: " +
                                        backend->unavailable_reason()};
  }
  return *backend;
}

}  // namespace cryo::spice
