#include <gtest/gtest.h>

#include "logic/aig.hpp"
#include "logic/cuts.hpp"
#include "logic/factor.hpp"
#include "logic/simulate.hpp"
#include "logic/tt.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo::logic;

TEST(Aig, TrivialAndRules) {
  Aig aig;
  const Lit a = aig.add_pi();
  const Lit b = aig.add_pi();
  EXPECT_EQ(aig.land(a, kConst0), kConst0);
  EXPECT_EQ(aig.land(a, kConst1), a);
  EXPECT_EQ(aig.land(a, a), a);
  EXPECT_EQ(aig.land(a, lit_not(a)), kConst0);
  const Lit ab = aig.land(a, b);
  EXPECT_EQ(aig.land(b, a), ab);  // structural hashing + commutativity
  EXPECT_EQ(aig.num_ands(), 1u);
}

TEST(Aig, PisBeforeAndsEnforced) {
  Aig aig;
  const Lit a = aig.add_pi();
  (void)aig.land(a, lit_not(a));  // no node created
  const Lit b = aig.add_pi();     // still fine: no AND yet
  (void)aig.land(a, b);
  EXPECT_THROW(aig.add_pi(), std::logic_error);
}

TEST(Aig, LevelsAndDepth) {
  Aig aig;
  const Lit a = aig.add_pi();
  const Lit b = aig.add_pi();
  const Lit c = aig.add_pi();
  const Lit ab = aig.land(a, b);
  const Lit abc = aig.land(ab, c);
  aig.add_po(abc);
  EXPECT_EQ(aig.depth(), 2u);
  const auto levels = aig.levels();
  EXPECT_EQ(levels[lit_var(ab)], 1u);
  EXPECT_EQ(levels[lit_var(abc)], 2u);
}

TEST(Aig, CleanupDropsDanglingKeepsFunction) {
  Aig aig;
  const Lit a = aig.add_pi();
  const Lit b = aig.add_pi();
  const Lit keep = aig.land(a, b);
  (void)aig.land(a, lit_not(b));  // dangling
  aig.add_po(lit_not(keep), "f");
  const Aig clean = aig.cleanup();
  EXPECT_EQ(clean.num_ands(), 1u);
  EXPECT_EQ(clean.po_name(0), "f");
  EXPECT_TRUE(simulate_equal(aig, clean));
}

TEST(Aig, XorMuxMajSemantics) {
  Aig aig;
  const Lit a = aig.add_pi();
  const Lit b = aig.add_pi();
  const Lit c = aig.add_pi();
  aig.add_po(aig.lxor(a, b));
  aig.add_po(aig.lmux(a, b, c));
  aig.add_po(aig.lmaj(a, b, c));
  Simulation sim{aig, 1};
  // Exhaustive 8 patterns packed into one word.
  sim.set_pi_word(0, 0, 0xaa);
  sim.set_pi_word(1, 0, 0xcc);
  sim.set_pi_word(2, 0, 0xf0);
  sim.run();
  EXPECT_EQ(sim.signature(aig.po(0)) & 0xff, 0x66ull);  // a^b
  EXPECT_EQ(sim.signature(aig.po(1)) & 0xff, 0xd8ull);  // a?b:c (mux tt)
  EXPECT_EQ(sim.signature(aig.po(2)) & 0xff, 0xe8ull);  // maj
}

// ------------------------------------------------------------- tt6 ------

TEST(Tt6, CofactorsAndSupport) {
  // f = A & B over 2 vars: tt = 0x8.
  EXPECT_EQ(tt6_cofactor1(0x8, 0) & tt6_mask(2), 0xcull);  // f|A=1 = B
  EXPECT_EQ(tt6_cofactor0(0x8, 0) & tt6_mask(2), 0x0ull);
  EXPECT_TRUE(tt6_has_var(0x8, 2, 0));
  EXPECT_TRUE(tt6_has_var(0x8, 2, 1));
  // g = A over 2 vars: tt = 0xa — no dependence on B.
  EXPECT_FALSE(tt6_has_var(0xa, 2, 1));
}

TEST(Tt6, ShrinkRemovesVacuousVars) {
  std::vector<unsigned> support;
  // f(A,B,C) = A & C: tt over 3 vars.
  std::uint64_t tt = 0;
  for (unsigned m = 0; m < 8; ++m) {
    if ((m & 1) && (m & 4)) {
      tt |= 1ull << m;
    }
  }
  const std::uint64_t s = tt6_shrink(tt, 3, support);
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0], 0u);
  EXPECT_EQ(support[1], 2u);
  EXPECT_EQ(s, 0x8ull);  // AND over the reduced support
}

TEST(Tt6, TransformPermutesAndPhases) {
  // f(x0, x1) = x0 & !x1 : tt bits where x0=1,x1=0 -> minterm 1 -> 0x2.
  const std::uint64_t f = 0x2;
  // Swap inputs: g(x0,x1) = f(x1, x0) = x1 & !x0 -> minterm 2 -> 0x4.
  EXPECT_EQ(tt6_transform(f, 2, {1, 0}, 0, false), 0x4ull);
  // Invert input 1 of f: g = x0 & x1 -> 0x8.
  EXPECT_EQ(tt6_transform(f, 2, {0, 1}, 0b10, false), 0x8ull);
  // Output inversion.
  EXPECT_EQ(tt6_transform(f, 2, {0, 1}, 0, true), (~f) & 0xfull);
}

TEST(TtVec, BasicOps) {
  const auto a = TtVec::variable(3, 0);
  const auto b = TtVec::variable(3, 1);
  EXPECT_EQ((a & b).to_tt6(), 0x88ull);
  EXPECT_EQ((a | b).to_tt6(), 0xeeull);
  EXPECT_EQ((a ^ b).to_tt6(), 0x66ull);
  EXPECT_EQ((~a).to_tt6(), 0x55ull);
  EXPECT_TRUE(TtVec::zeros(3).is_zero());
  EXPECT_TRUE(TtVec::ones(3).is_ones());
}

TEST(TtVec, LargeVariableAndCofactor) {
  // 8-variable table: var 7 lives across words.
  const auto v7 = TtVec::variable(8, 7);
  EXPECT_TRUE(v7.has_var(7));
  EXPECT_FALSE(v7.has_var(0));
  EXPECT_TRUE(v7.cofactor(7, true).is_ones());
  EXPECT_TRUE(v7.cofactor(7, false).is_zero());
}

class IsopRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsopRandom, CoverEqualsFunction) {
  const unsigned n = GetParam();
  cryo::util::Rng rng{n * 977 + 5};
  for (int trial = 0; trial < 30; ++trial) {
    TtVec f{n};
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      f.set_bit(m, rng.next_bool());
    }
    const auto cubes = isop(f, TtVec::zeros(n));
    EXPECT_TRUE(sop_to_tt(cubes, n) == f) << "n=" << n;
  }
}

TEST_P(IsopRandom, DontCaresRespected) {
  const unsigned n = GetParam();
  cryo::util::Rng rng{n * 1337};
  for (int trial = 0; trial < 20; ++trial) {
    TtVec on{n};
    TtVec dc{n};
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      const int r = static_cast<int>(rng.next_below(3));
      if (r == 0) {
        on.set_bit(m, true);
      } else if (r == 1) {
        dc.set_bit(m, true);
      }
    }
    const auto cubes = isop(on, dc);
    const TtVec cover = sop_to_tt(cubes, n);
    // on <= cover <= on | dc
    EXPECT_TRUE((on & ~cover).is_zero());
    EXPECT_TRUE((cover & ~(on | dc)).is_zero());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsopRandom, ::testing::Values(2u, 4u, 6u, 8u));

// ------------------------------------------------------------ factor ----

class FactorRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(FactorRandom, BuildFromTtRealizesFunction) {
  const unsigned n = GetParam();
  cryo::util::Rng rng{n * 31 + 7};
  for (int trial = 0; trial < 20; ++trial) {
    TtVec f{n};
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      f.set_bit(m, rng.next_bool());
    }
    Aig aig;
    std::vector<Lit> leaves;
    for (unsigned i = 0; i < n; ++i) {
      leaves.push_back(aig.add_pi());
    }
    const Lit out = build_from_tt(aig, f, leaves);
    aig.add_po(out);
    // Exhaustive check via simulation.
    Simulation sim{aig, 1};
    for (unsigned i = 0; i < n; ++i) {
      std::uint64_t w = 0;
      for (unsigned m = 0; m < (1u << n); ++m) {
        if ((m >> i) & 1u) {
          w |= 1ull << m;
        }
      }
      sim.set_pi_word(i, 0, w);
    }
    sim.run();
    const std::uint64_t got = sim.signature(aig.po(0)) & tt6_mask(n);
    std::uint64_t want = 0;
    for (unsigned m = 0; m < (1u << n); ++m) {
      if (f.bit(m)) {
        want |= 1ull << m;
      }
    }
    EXPECT_EQ(got, want) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorRandom,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(Factor, BalancedAndReducesDepth) {
  Aig aig;
  std::vector<Lit> lits;
  for (int i = 0; i < 16; ++i) {
    lits.push_back(aig.add_pi());
  }
  aig.add_po(build_and_balanced(aig, lits));
  EXPECT_EQ(aig.depth(), 4u);  // log2(16)
}

TEST(Factor, ConstantsHandled) {
  Aig aig;
  EXPECT_EQ(build_and_balanced(aig, {}), kConst1);
  EXPECT_EQ(build_or_balanced(aig, {}), kConst0);
  const auto zero = TtVec::zeros(2);
  EXPECT_EQ(build_from_tt(aig, zero, {aig.add_pi(), aig.add_pi()}), kConst0);
}

// -------------------------------------------------------------- cuts ----

TEST(Cuts, FunctionsAgreeWithSimulation) {
  // Random AIG; every enumerated cut's truth table must match simulation
  // of the root given simulated leaves.
  cryo::util::Rng rng{99};
  Aig aig;
  std::vector<Lit> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(aig.add_pi());
  }
  for (int i = 0; i < 60; ++i) {
    const Lit a = lit_notif(pool[rng.next_below(pool.size())], rng.next_bool());
    const Lit b = lit_notif(pool[rng.next_below(pool.size())], rng.next_bool());
    pool.push_back(aig.land(a, b));
  }
  aig.add_po(pool.back());

  Simulation sim{aig, 4};
  sim.randomize_pis(rng);
  sim.run();

  CutEnumerator cuts{aig, 4, 8};
  cuts.run();
  int checked = 0;
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    for (const Cut& c : cuts.cuts(v)) {
      // Evaluate the cut function on the simulated leaf values, compare
      // with the simulated root value, bit by bit.
      for (unsigned word = 0; word < 4; ++word) {
        for (unsigned bit = 0; bit < 64; bit += 17) {
          unsigned m = 0;
          for (unsigned i = 0; i < c.size; ++i) {
            if ((sim.node_bits(c.leaves[i])[word] >> bit) & 1ull) {
              m |= 1u << i;
            }
          }
          const bool cut_value = tt6_bit(c.tt, m);
          const bool sim_value = (sim.node_bits(v)[word] >> bit) & 1ull;
          ASSERT_EQ(cut_value, sim_value) << "node " << v;
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST(Cuts, RespectsKAndIncludesTrivial) {
  Aig aig;
  std::vector<Lit> pis;
  for (int i = 0; i < 8; ++i) {
    pis.push_back(aig.add_pi());
  }
  Lit acc = pis[0];
  for (int i = 1; i < 8; ++i) {
    acc = aig.land(acc, pis[i]);
  }
  aig.add_po(acc);
  CutEnumerator cuts{aig, 4, 6};
  cuts.run();
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    bool trivial_found = false;
    for (const Cut& c : cuts.cuts(v)) {
      EXPECT_LE(c.size, 4u);
      trivial_found |= c.size == 1 && c.leaves[0] == v;
    }
    EXPECT_TRUE(trivial_found);
  }
}

TEST(Simulation, ActivityBounds) {
  Aig aig;
  const Lit a = aig.add_pi();
  const Lit b = aig.add_pi();
  aig.add_po(aig.land(a, b));
  Simulation sim{aig, 8};
  cryo::util::Rng rng{3};
  sim.randomize_pis_markov(rng, 0.2);
  sim.run();
  for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    EXPECT_GE(sim.activity(v), 0.0);
    EXPECT_LE(sim.activity(v), 1.0);
  }
  // PI toggle rate should be near the requested 0.2.
  EXPECT_NEAR(sim.activity(lit_var(a)), 0.2, 0.06);
  // AND output toggles no more often than the sum of its inputs.
  EXPECT_LE(sim.activity(lit_var(aig.po(0))),
            sim.activity(lit_var(a)) + sim.activity(lit_var(b)) + 1e-12);
}

TEST(Simulation, EqualCircuitsCompareEqual) {
  Aig a;
  const Lit x = a.add_pi();
  const Lit y = a.add_pi();
  a.add_po(a.lxor(x, y));
  Aig b;
  const Lit p = b.add_pi();
  const Lit q = b.add_pi();
  // Different structure, same function: (p|q) & !(p&q).
  b.add_po(b.land(b.lor(p, q), lit_not(b.land(p, q))));
  EXPECT_TRUE(simulate_equal(a, b));
  Aig c;
  const Lit r = c.add_pi();
  const Lit s = c.add_pi();
  c.add_po(c.land(r, s));
  EXPECT_FALSE(simulate_equal(a, c));
}

}  // namespace
