#include "map/netlist.hpp"

#include <bit>
#include <stdexcept>

#include "liberty/function.hpp"
#include "util/rng.hpp"

namespace cryo::map {

double Netlist::total_area() const {
  double area = 0.0;
  for (const auto& gate : gates) {
    area += gate.cell->area;
  }
  return area;
}

namespace {

/// Cached truth table of a cell over its input pins.
std::uint64_t cell_tt(const liberty::Cell& cell) {
  const auto* out = cell.output_pin();
  if (out == nullptr || out->function.empty()) {
    throw std::logic_error{"Netlist: cell without output function: " +
                           cell.name};
  }
  return liberty::function_truth_table(out->function, cell.input_names());
}

}  // namespace

std::vector<double> Netlist::simulate_activity(double toggle_rate,
                                               unsigned words,
                                               std::uint64_t seed) const {
  std::vector<std::vector<std::uint64_t>> bits(
      num_nets, std::vector<std::uint64_t>(words, 0));
  util::Rng rng{seed};
  for (const std::uint32_t pi : pis) {
    bool state = rng.next_bool();
    for (unsigned k = 0; k < words; ++k) {
      std::uint64_t word = 0;
      for (unsigned b = 0; b < 64; ++b) {
        if (rng.next_bool(toggle_rate)) {
          state = !state;
        }
        if (state) {
          word |= 1ull << b;
        }
      }
      bits[pi][k] = word;
    }
  }
  if (const1_net != UINT32_MAX) {
    for (auto& w : bits[const1_net]) {
      w = ~0ull;
    }
  }
  for (const auto& gate : gates) {
    const std::uint64_t tt = cell_tt(*gate.cell);
    auto& out = bits[gate.output];
    for (unsigned k = 0; k < words; ++k) {
      std::uint64_t word = 0;
      for (unsigned b = 0; b < 64; ++b) {
        unsigned m = 0;
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
          if ((bits[gate.fanins[i]][k] >> b) & 1ull) {
            m |= 1u << i;
          }
        }
        if ((tt >> m) & 1ull) {
          word |= 1ull << b;
        }
      }
      out[k] = word;
    }
  }
  std::vector<double> activity(num_nets, 0.0);
  const unsigned total = 64 * words - 1;
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    unsigned toggles = 0;
    for (unsigned k = 0; k < words; ++k) {
      const std::uint64_t x = bits[n][k] ^ (bits[n][k] >> 1);
      toggles += static_cast<unsigned>(std::popcount(x & ~(1ull << 63)));
      if (k + 1 < words) {
        toggles += ((bits[n][k] >> 63) ^ (bits[n][k + 1] & 1ull)) != 0;
      }
    }
    activity[n] = static_cast<double>(toggles) / static_cast<double>(total);
  }
  return activity;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& pi_values) const {
  if (pi_values.size() != pis.size()) {
    throw std::invalid_argument{"Netlist::evaluate: PI count mismatch"};
  }
  std::vector<bool> value(num_nets, false);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    value[pis[i]] = pi_values[i];
  }
  if (const1_net != UINT32_MAX) {
    value[const1_net] = true;
  }
  for (const auto& gate : gates) {
    const std::uint64_t tt = cell_tt(*gate.cell);
    unsigned m = 0;
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (value[gate.fanins[i]]) {
        m |= 1u << i;
      }
    }
    value[gate.output] = ((tt >> m) & 1ull) != 0;
  }
  std::vector<bool> outs;
  outs.reserve(pos.size());
  for (const std::uint32_t po : pos) {
    outs.push_back(value[po]);
  }
  return outs;
}

}  // namespace cryo::map
