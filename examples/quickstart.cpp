// Quickstart: the whole cryogenic-aware flow on one page.
//
//   1. characterize a small standard-cell library at 10 K (SPICE-level,
//      using the cryogenic-aware FinFET compact model);
//   2. describe a tiny datapath as an AIG;
//   3. synthesize it with the cryogenic-aware priorities (power first);
//   4. sign off delay and power with the NLDM STA engine.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cells/characterize.hpp"
#include "core/flow.hpp"
#include "epfl/wordlib.hpp"
#include "sta/sta.hpp"

using namespace cryo;

int main() {
  // --- 1. a characterized library at the cryogenic corner --------------
  std::printf("characterizing a small cell library at 10 K...\n");
  cells::CharOptions char_options;
  const auto library =
      cells::characterize(cells::mini_catalog(), 10.0, char_options);
  std::printf("  %zu cells ready (e.g. %s: delay %.2f ps, leakage %.3g W)\n",
              library.cells.size(), library.cells[3].name.c_str(),
              library.cells[3].typical_delay(10e-12, 1e-15) * 1e12,
              library.cells[3].leakage_power);

  // --- 2. a small design: 8-bit add-and-compare ------------------------
  logic::Aig design;
  design.set_name("quickstart");
  const auto a = epfl::input_word(design, "a", 8);
  const auto b = epfl::input_word(design, "b", 8);
  const auto limit = epfl::input_word(design, "limit", 8);
  const auto sum = epfl::add(design, a, b);
  const auto over = logic::lit_not(epfl::less_than(design, sum, limit));
  epfl::output_word(design, "sum", sum);
  design.add_po(over, "overflow");
  std::printf("design: %u AND nodes, depth %u\n", design.num_ands(),
              design.depth());

  // --- 3. cryogenic-aware synthesis ------------------------------------
  const map::CellMatcher matcher{library};
  core::FlowOptions flow;
  flow.priority = opt::CostPriority::kPowerDelayArea;  // power first!
  const auto result = core::synthesize(design, matcher, flow);
  std::printf("synthesis: %u -> %u -> %u AND nodes; mapped to %zu gates, "
              "%.2f um^2\n",
              result.initial_ands, result.after_c2rs,
              result.after_power_stage, result.netlist.gate_count(),
              result.netlist.total_area());

  // --- 4. signoff -------------------------------------------------------
  sta::StaOptions sta_options;
  sta_options.clock_period = 1e-9;
  const auto signoff = sta::analyze(result.netlist, sta_options);
  std::printf("signoff @ 10 K, 1 GHz:\n");
  std::printf("  critical path : %.1f ps\n", signoff.critical_delay * 1e12);
  std::printf("  leakage power : %.4g W  (%.5f %% of total)\n",
              signoff.power.leakage,
              100.0 * signoff.power.leakage / signoff.power.total());
  std::printf("  internal power: %.4g W\n", signoff.power.internal);
  std::printf("  switching pwr : %.4g W\n", signoff.power.switching);
  std::printf("  total         : %.4g W\n", signoff.power.total());
  return 0;
}
