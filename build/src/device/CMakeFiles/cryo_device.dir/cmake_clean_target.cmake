file(REMOVE_RECURSE
  "libcryo_device.a"
)
