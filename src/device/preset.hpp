#pragma once

#include <string>
#include <vector>

#include "device/finfet.hpp"
#include "util/json.hpp"

namespace cryo::device {

/// A named device/technology operating platform: the transistor flavour
/// pair plus the corner envelope the compact model is trusted over.
///
/// The paper evaluates one technology (5 nm-class FinFET) at exactly
/// 300 K and 10 K; the related work spans much wider — generic
/// EDA-compatible cryo device platforms, 4 K SOI, 77 K SkyWater 130 nm.
/// Presets make that space navigable: every flow entry point
/// (characterization, the corner matrix, synth jobs) names a preset
/// instead of hard-coding `nominal_*_5nm()`, and the declared
/// temperature/Vdd ranges stop the model from being silently
/// extrapolated outside the regime it was calibrated for.
struct Preset {
  std::string name;         ///< registry key ("finfet5", "soi4k", ...)
  std::string description;  ///< one-line provenance
  std::string technology;   ///< process label ("finfet-5nm", ...)

  FinFetParams nfet;
  FinFetParams pfet;

  // Declared validity envelope of the compact model.
  double temp_min_k = 4.0;
  double temp_max_k = 400.0;
  double vdd_min = 0.3;
  double vdd_max = 1.0;

  // Nominal operating point.
  double default_temp_k = 300.0;
  double default_vdd = 0.7;

  /// The paper-style evaluation temperatures of this platform.
  std::vector<double> corner_temps;
};

/// All registered presets, in stable registry order.
const std::vector<Preset>& preset_registry();

/// Registry names, in registry order.
std::vector<std::string> preset_names();

/// Look up a preset by name; nullptr when unknown.
const Preset* find_preset(const std::string& name);

/// The paper's platform ("finfet5"): exactly `nominal_nfet_5nm()` /
/// `nominal_pfet_5nm()`, so default-preset flows reproduce the paper
/// bit-for-bit.
const Preset& default_preset();

/// Resolve a preset name ("" = default). Throws cryo::Error{kRecipe}
/// for an unknown name, listing the registry.
const Preset& resolve_preset(const std::string& name);

/// Check (temperature, Vdd) against the preset's declared envelope.
/// Throws cryo::Error{kRecipe} with a usage-style diagnostic when the
/// corner falls outside it — extrapolating the compact model silently
/// is how wrong libraries get signed off.
void validate_corner(const Preset& preset, double temperature_k, double vdd);

/// The preset's device identity for artifact-cache keys: the full
/// parameter sets (not just the name, which could be re-bound across
/// versions to different parameters).
util::Json preset_device_json(const Preset& preset);

}  // namespace cryo::device
