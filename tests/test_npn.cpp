#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/npn.hpp"
#include "logic/tt.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo::logic;

std::vector<unsigned> perm_vec(const NpnTransform& t, unsigned n) {
  std::vector<unsigned> p(n);
  for (unsigned i = 0; i < n; ++i) {
    p[i] = t.perm[i];
  }
  return p;
}

NpnTransform random_transform(cryo::util::Rng& rng, unsigned n) {
  NpnTransform t;
  for (unsigned i = 0; i < n; ++i) {
    t.perm[i] = static_cast<std::uint8_t>(i);
  }
  // Fisher-Yates over the first n entries.
  for (unsigned i = n; i > 1; --i) {
    const unsigned j = static_cast<unsigned>(rng.next_u64() % i);
    std::swap(t.perm[i - 1], t.perm[j]);
  }
  t.input_phase = static_cast<unsigned>(rng.next_u64()) & ((1u << n) - 1u);
  t.out_negate = (rng.next_u64() & 1u) != 0;
  return t;
}

TEST(Npn, ApplyMatchesTt6Transform) {
  cryo::util::Rng rng{7};
  for (unsigned n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t tt = rng.next_u64() & tt6_mask(n);
      const NpnTransform t = random_transform(rng, n);
      EXPECT_EQ(npn_apply(tt, n, t),
                tt6_transform(tt, n, perm_vec(t, n), t.input_phase,
                              t.out_negate));
    }
  }
}

TEST(Npn, ComposeAndInverseRoundTrip) {
  cryo::util::Rng rng{11};
  for (unsigned n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t tt = rng.next_u64() & tt6_mask(n);
      const NpnTransform a = random_transform(rng, n);
      const NpnTransform b = random_transform(rng, n);
      EXPECT_EQ(npn_apply(npn_apply(tt, n, b), n, a),
                npn_apply(tt, n, npn_compose(a, b, n)));
      const NpnTransform inv = npn_inverse(a, n);
      EXPECT_EQ(npn_apply(npn_apply(tt, n, a), n, inv), tt);
      EXPECT_EQ(npn_apply(npn_apply(tt, n, inv), n, a), tt);
    }
  }
}

TEST(Npn, TransformAchievesSignature) {
  cryo::util::Rng rng{13};
  for (unsigned n = 0; n <= 6; ++n) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::uint64_t tt = rng.next_u64() & tt6_mask(n);
      const NpnCanon canon = npn_canonicalize(tt, n);
      EXPECT_EQ(npn_apply(tt, n, canon.transform), canon.signature);
    }
  }
}

TEST(Npn, SignatureInvariantUnderRandomTransforms) {
  cryo::util::Rng rng{17};
  for (unsigned n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 30; ++trial) {
      const std::uint64_t tt = rng.next_u64() & tt6_mask(n);
      const std::uint64_t sig = npn_signature(tt, n);
      const NpnTransform t = random_transform(rng, n);
      EXPECT_EQ(npn_signature(npn_apply(tt, n, t), n), sig);
    }
  }
}

// The headline guarantee, proved exhaustively for every 4-input
// function: the signature is invariant under input permutation and
// input/output negation, and two functions share a signature iff they
// are NPN-equivalent — exactly the condition under which the old
// full-orbit matcher considered them matchable against the same cell.
TEST(Npn, ExhaustiveFourInputClasses) {
  constexpr unsigned kN = 4;
  constexpr std::uint32_t kCount = 1u << (1u << kN);  // 65536 tables
  std::vector<std::int32_t> orbit(kCount, -1);

  // Generators of the NPN group acting on tables: adjacent input swaps,
  // single input flips, output flip.
  std::vector<NpnTransform> generators;
  for (unsigned v = 0; v + 1 < kN; ++v) {
    NpnTransform t;
    std::swap(t.perm[v], t.perm[v + 1]);
    generators.push_back(t);
  }
  for (unsigned v = 0; v < kN; ++v) {
    NpnTransform t;
    t.input_phase = 1u << v;
    generators.push_back(t);
  }
  {
    NpnTransform t;
    t.out_negate = true;
    generators.push_back(t);
  }

  // Flood-fill the orbits (classes) with BFS over the generators.
  std::int32_t num_classes = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t seed = 0; seed < kCount; ++seed) {
    if (orbit[seed] >= 0) {
      continue;
    }
    const std::int32_t cls = num_classes++;
    orbit[seed] = cls;
    stack.assign(1, seed);
    while (!stack.empty()) {
      const std::uint32_t tt = stack.back();
      stack.pop_back();
      for (const NpnTransform& g : generators) {
        const auto next =
            static_cast<std::uint32_t>(npn_apply(tt, kN, g));
        if (orbit[next] < 0) {
          orbit[next] = cls;
          stack.push_back(next);
        }
      }
    }
  }
  // 4-input NPN class count is a known constant.
  EXPECT_EQ(num_classes, 222);

  // Invariance: every member of a class has the class's signature.
  // Completeness: no two classes share a signature.
  std::vector<std::uint64_t> class_signature(num_classes, ~0ull);
  std::vector<std::uint32_t> class_witness(num_classes, 0);
  std::unordered_map<std::uint64_t, std::int32_t> signature_owner;
  for (std::uint32_t tt = 0; tt < kCount; ++tt) {
    const std::int32_t cls = orbit[tt];
    const std::uint64_t sig = npn_signature(tt, kN);
    if (class_signature[cls] == ~0ull) {
      class_signature[cls] = sig;
      class_witness[cls] = tt;
      const auto [it, inserted] = signature_owner.emplace(sig, cls);
      ASSERT_TRUE(inserted)
          << "signature 0x" << std::hex << sig << " is shared by class of 0x"
          << class_witness[it->second] << " and class of 0x" << tt
          << " — functions the old matcher would NOT have matched";
    } else {
      ASSERT_EQ(class_signature[cls], sig)
          << "signature not invariant: 0x" << std::hex << tt << " vs class "
          << "witness 0x" << class_witness[cls];
    }
    // The signature is itself a member of the class (it is reached by a
    // concrete transform), so matchability is preserved in both
    // directions.
    ASSERT_EQ(orbit[static_cast<std::uint32_t>(sig)], cls);
  }
}

}  // namespace
