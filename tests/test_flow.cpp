#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "core/flow.hpp"
#include "logic/simulate.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo;

class FlowTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    lib_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 10.0, options));
    matcher_ = new map::CellMatcher(*lib_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete lib_;
    matcher_ = nullptr;
    lib_ = nullptr;
  }
  static liberty::Library* lib_;
  static map::CellMatcher* matcher_;
};

liberty::Library* FlowTest::lib_ = nullptr;
map::CellMatcher* FlowTest::matcher_ = nullptr;

/// Netlist-vs-AIG functional agreement on random vectors.
void expect_equiv(const map::Netlist& net, const logic::Aig& aig,
                  std::uint64_t seed) {
  util::Rng rng{seed};
  for (int trial = 0; trial < 48; ++trial) {
    std::vector<bool> inputs(net.pis.size());
    for (auto&& b : inputs) {
      b = rng.next_bool();
    }
    const auto got = net.evaluate(inputs);
    logic::Simulation sim{aig, 1};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      sim.set_pi_word(static_cast<logic::NodeIdx>(i), 0,
                      inputs[i] ? ~0ull : 0ull);
    }
    sim.run();
    for (logic::NodeIdx o = 0; o < aig.num_pos(); ++o) {
      ASSERT_EQ(got[o], (sim.signature(aig.po(o)) & 1ull) != 0)
          << "output " << o;
    }
  }
}

class FlowOnSuite : public FlowTest, public ::testing::WithParamInterface<int> {
};

TEST_P(FlowOnSuite, EndToEndPreservesFunction) {
  const auto suite = epfl::mini_suite();
  const auto& bench = suite[static_cast<std::size_t>(GetParam())];
  for (const auto priority :
       {opt::CostPriority::kBaselinePowerAware,
        opt::CostPriority::kPowerAreaDelay,
        opt::CostPriority::kPowerDelayArea}) {
    core::FlowOptions options;
    options.priority = priority;
    const auto result = core::synthesize(bench.aig, *matcher_, options);
    EXPECT_GT(result.netlist.gate_count(), 0u) << bench.name;
    expect_equiv(result.netlist, bench.aig, 100 + GetParam());
    // Optimization reduced (or at least did not explode) the network.
    EXPECT_LE(result.after_power_stage, result.initial_ands * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(MiniSuite, FlowOnSuite, ::testing::Range(0, 5));

TEST_F(FlowTest, FlagsCanBeDisabled) {
  const auto aig = epfl::make_adder(8);
  core::FlowOptions options;
  options.use_choices = false;
  options.use_mfs = false;
  const auto result = core::synthesize(aig, *matcher_, options);
  expect_equiv(result.netlist, aig, 7);
}

TEST_F(FlowTest, ComparisonRowsAreConsistent) {
  const auto suite = epfl::mini_suite();
  core::ExperimentOptions options;
  const auto row = core::compare_circuit(suite[0], *matcher_, options);
  EXPECT_EQ(row.circuit, suite[0].name);
  EXPECT_GT(row.baseline.total_power, 0.0);
  EXPECT_GT(row.pad.total_power, 0.0);
  EXPECT_GT(row.pda.total_power, 0.0);
  EXPECT_GT(row.clock_period, 0.0);
  // The normalized clock is the slowest variant.
  EXPECT_GE(row.clock_period, row.baseline.delay - 1e-15);
  EXPECT_GE(row.clock_period, row.pad.delay - 1e-15);
  EXPECT_GE(row.clock_period, row.pda.delay - 1e-15);
  // Saving/overhead definitions are self-consistent.
  EXPECT_NEAR(row.power_saving_pad(),
              1.0 - row.pad.total_power / row.baseline.total_power, 1e-12);
  EXPECT_NEAR(row.delay_overhead_pda(),
              row.pda.delay / row.baseline.delay - 1.0, 1e-12);
}

TEST_F(FlowTest, SuiteComparisonRunsAllCircuits) {
  const auto suite = epfl::mini_suite();
  core::ExperimentOptions options;
  const auto rows = core::run_synthesis_comparison(suite, *matcher_, options);
  ASSERT_EQ(rows.size(), suite.size());
  for (const auto& row : rows) {
    EXPECT_GT(row.baseline.gates, 0u) << row.circuit;
    // Savings are bounded: nothing pathological on either side.
    EXPECT_GT(row.power_saving_pad(), -1.0) << row.circuit;
    EXPECT_LT(row.power_saving_pad(), 1.0) << row.circuit;
  }
}

TEST_F(FlowTest, CryoLibraryLeakageShareNegligible) {
  // End-to-end restatement of Fig. 2(c) at 10 K through the full flow.
  const auto aig = epfl::make_adder(16);
  core::FlowOptions options;
  const auto result = core::synthesize(aig, *matcher_, options);
  const auto signoff = sta::analyze(result.netlist, {});
  EXPECT_LT(signoff.power.leakage / signoff.power.total(), 1e-3);
}

}  // namespace
