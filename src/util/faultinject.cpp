#include "util/faultinject.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "util/obs.hpp"
#include "util/strings.hpp"

namespace cryo::util::faultinject {

namespace {

struct SiteState {
  enum class Mode { kEveryN, kOnceAt };
  Mode mode = Mode::kEveryN;
  std::uint64_t n = 1;  ///< period (every-N) or target arrival (once@K)
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> injected{0};
};

struct Registry {
  std::atomic<bool> armed{false};
  std::atomic<bool> env_loaded{false};
  mutable std::shared_mutex mutex;
  std::map<std::string, std::unique_ptr<SiteState>, std::less<>> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void bad_spec(const std::string& detail) {
  throw Error{ErrorKind::kRecipe, "CRYOEDA_FAULTS: " + detail};
}

std::uint64_t parse_count(std::string_view text, const std::string& entry) {
  const std::string raw{text};
  // Digits-only, then range-checked. strtoull alone is not enough: it
  // *accepts* "-1" by wrapping to 2^64-1 (a count that to first
  // approximation never fires — the injection silently becomes a no-op)
  // and saturates out-of-range values to ULLONG_MAX with only errno to
  // tell. A zero count is equally unusable: every-0 would divide by
  // zero in the arrival check and once@0 can never match an arrival
  // ordinal (they start at 1).
  const bool all_digits =
      !raw.empty() && raw.find_first_not_of("0123456789") == std::string::npos;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value =
      all_digits ? std::strtoull(raw.c_str(), &end, 10) : 0;
  if (!all_digits || errno == ERANGE || value == 0) {
    bad_spec("bad count '" + raw + "' in '" + entry +
             "' (expected an integer >= 1)");
  }
  return value;
}

/// Parse CRYOEDA_FAULTS the first time any site is consulted. The env
/// var is intentionally lazy: libraries never pay for it, and a
/// malformed spec surfaces as cryo::Error{kRecipe} from the first wired
/// site (exit 2 in the driver) instead of a startup crash.
void ensure_env_loaded() {
  Registry& r = registry();
  if (r.env_loaded.load(std::memory_order_acquire)) {
    return;
  }
  static std::once_flag once;
  std::call_once(once, [&r] {
    if (const char* env = std::getenv("CRYOEDA_FAULTS")) {
      configure(env);
    } else {
      r.env_loaded.store(true, std::memory_order_release);
    }
  });
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "cache.corrupt",     "cache.read",    "cache.write",
      "cells.characterize", "core.matrix",  "core.scenario",
      "liberty.parse",      "sat.solve",    "spice.solve",
  };
  return sites;
}

bool armed() {
  ensure_env_loaded();
  return registry().armed.load(std::memory_order_relaxed);
}

void configure(std::string_view spec) {
  Registry& r = registry();
  std::map<std::string, std::unique_ptr<SiteState>, std::less<>> sites;
  for (const std::string& entry : split(spec, ",")) {
    const std::string_view trimmed = trim(entry);
    if (trimmed.empty()) {
      continue;
    }
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      bad_spec("missing '=' in '" + std::string{trimmed} +
               "' (expected <site>=every-<N> or <site>=once@<K>)");
    }
    const std::string site{trim(trimmed.substr(0, eq))};
    const std::string_view mode = trim(trimmed.substr(eq + 1));
    const auto& known = known_sites();
    if (std::find(known.begin(), known.end(), site) == known.end()) {
      std::string names;
      for (const std::string& s : known) {
        names += (names.empty() ? "" : ", ") + s;
      }
      bad_spec("unknown site '" + site + "' (known: " + names + ")");
    }
    if (sites.count(site) != 0) {
      bad_spec("duplicate site '" + site + "'");
    }
    auto state = std::make_unique<SiteState>();
    if (starts_with(mode, "every-")) {
      state->mode = SiteState::Mode::kEveryN;
      state->n = parse_count(mode.substr(6), std::string{trimmed});
    } else if (starts_with(mode, "once@")) {
      state->mode = SiteState::Mode::kOnceAt;
      state->n = parse_count(mode.substr(5), std::string{trimmed});
    } else {
      bad_spec("bad mode '" + std::string{mode} + "' for site '" + site +
               "' (expected every-<N> or once@<K>)");
    }
    sites.emplace(site, std::move(state));
  }
  const bool any = !sites.empty();
  {
    const std::unique_lock<std::shared_mutex> lock{r.mutex};
    r.sites = std::move(sites);
  }
  r.armed.store(any, std::memory_order_relaxed);
  // An explicit configure (tests) overrides whatever the environment
  // would have loaded.
  r.env_loaded.store(true, std::memory_order_release);
}

bool should_fail(std::string_view site) {
  if (!armed()) {
    return false;
  }
  Registry& r = registry();
  const std::shared_lock<std::shared_mutex> lock{r.mutex};
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) {
    return false;
  }
  SiteState& state = *it->second;
  const std::uint64_t arrival =
      state.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool fire = state.mode == SiteState::Mode::kEveryN
                        ? arrival % state.n == 0
                        : arrival == state.n;
  if (fire) {
    state.injected.fetch_add(1, std::memory_order_relaxed);
    obs::counter("fault." + std::string{site} + ".injected").add();
  }
  return fire;
}

void maybe_fail(std::string_view site, ErrorKind kind) {
  if (should_fail(site)) {
    throw Error{kind, "injected fault at " + std::string{site}};
  }
}

std::uint64_t injected(std::string_view site) {
  Registry& r = registry();
  const std::shared_lock<std::shared_mutex> lock{r.mutex};
  const auto it = r.sites.find(site);
  return it == r.sites.end()
             ? 0
             : it->second->injected.load(std::memory_order_relaxed);
}

}  // namespace cryo::util::faultinject
