#pragma once

#include <vector>

#include "logic/aig.hpp"
#include "logic/cuts.hpp"
#include "opt/cost.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::opt {

/// Options for technology-independent k-LUT mapping (ABC's `if`).
struct LutMapOptions {
  unsigned k = 6;
  unsigned cuts_per_node = 8;
  CostPriority priority = CostPriority::kBaselinePowerAware;
  double epsilon = 0.02;
  unsigned rounds = 2;          ///< area/power-recovery refinement rounds
  double input_activity = 0.2;  ///< PI toggle rate for the power cost
  std::uint64_t seed = 11;
};

/// A k-LUT cover of an AIG. Nodes keep their AIG indices; `in_cover`
/// marks the LUT roots, `chosen` holds each root's cut, `tt`/`dc` its
/// (possibly don't-care-minimized) local function.
struct LutMapping {
  const logic::Aig* aig = nullptr;
  std::vector<logic::Cut> chosen;     // indexed by AIG node
  std::vector<bool> in_cover;         // indexed by AIG node
  std::vector<std::uint64_t> tt;      // current function of covered roots
  std::vector<std::uint64_t> dc;      // don't-care mask (mfs fills this)
  std::vector<double> activity;       // per-node switching activity
  unsigned lut_count = 0;

  /// Total activity-weighted LUT count (the power proxy).
  double switched_estimate() const;
};

/// Cut-based k-LUT mapping with the given cost priority. `choices`
/// (optional, from SAT sweeping) gives alternative structures whose cuts
/// are merged into their representative's cut set.
LutMapping lut_map(const logic::Aig& aig, const LutMapOptions& options,
                   const std::vector<std::vector<logic::Lit>>* choices = nullptr);

/// Rebuild an AIG from the LUT cover (ABC's `strash` after `if`), using
/// ISOP + factoring per LUT and honoring don't-care masks.
logic::Aig luts_to_aig(const LutMapping& mapping);

/// Options for SAT-based don't-care minimization (ABC's `mfs`).
struct MfsOptions {
  unsigned sim_words = 32;            ///< simulation to seed the care set
  std::int64_t conflict_limit = 200;  ///< per-minterm SAT budget
  std::size_t sat_call_budget = 20000;
  std::uint64_t seed = 13;
  /// Shared resource budget; nullptr means `util::Budget::global()`.
  /// Exhaustion stops the search early — don't-cares found so far are
  /// kept, the rest are conservatively treated as care.
  util::Budget* budget = nullptr;
};

/// Compute satisfiability don't-cares of every covered LUT's leaf space
/// (unreachable leaf patterns) and record them in `mapping.dc`; high-
/// activity LUTs are processed first (the power-aware "-p" behaviour).
/// Returns the number of don't-care minterms found.
std::size_t mfs(LutMapping& mapping, const MfsOptions& options = {});

}  // namespace cryo::opt
