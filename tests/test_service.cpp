#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/catalog.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/artifact_cache.hpp"
#include "util/json.hpp"
#include "util/obs.hpp"

namespace {

using namespace cryo;
namespace fs = std::filesystem;
using util::Json;

// ---------------------------------------------------------------------
// protocol unit tests
// ---------------------------------------------------------------------

Json parse_json(const std::string& text) { return Json::parse(text); }

TEST(Protocol, ParseRequestAppliesDefaults) {
  const auto req =
      service::parse_request(parse_json(R"({"bench": "dec4"})"));
  EXPECT_EQ(req.op, "synth");
  EXPECT_EQ(req.bench, "dec4");
  EXPECT_TRUE(req.aiger_path.empty());
  EXPECT_TRUE(req.recipe.empty());
  EXPECT_DOUBLE_EQ(req.temp, 10.0);
  EXPECT_DOUBLE_EQ(req.vdd, 0.7);
  EXPECT_DOUBLE_EQ(req.deadline_s, 0.0);
  EXPECT_EQ(req.flow.priority, opt::CostPriority::kPowerDelayArea);
}

TEST(Protocol, ParseRequestReadsEveryField) {
  const auto req = service::parse_request(parse_json(
      R"({"op": "synth", "id": "j1", "bench": "adder8", "recipe": "c2rs; map",
          "priority": "pad", "temp": 300, "vdd": 0.8, "deadline_s": 2.5,
          "seed": 7})"));
  EXPECT_EQ(req.id, "j1");
  EXPECT_EQ(req.recipe, "c2rs; map");
  EXPECT_EQ(req.flow.priority, opt::CostPriority::kPowerAreaDelay);
  EXPECT_DOUBLE_EQ(req.temp, 300.0);
  EXPECT_DOUBLE_EQ(req.vdd, 0.8);
  EXPECT_DOUBLE_EQ(req.deadline_s, 2.5);
  EXPECT_EQ(req.flow.seed, 7u);
}

void expect_rejected(const std::string& request, const std::string& needle) {
  try {
    service::parse_request(parse_json(request));
    FAIL() << "expected Error{kRecipe} for " << request;
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe) << request;
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(Protocol, ParseRequestRejectsBadRequests) {
  expect_rejected(R"({"bench": "dec4", "wat": 1})", "unknown field 'wat'");
  expect_rejected(R"({"bench": 42})", "must be a string");
  expect_rejected(R"({"temp": "cold", "bench": "dec4"})", "must be a number");
  expect_rejected(R"({"bench": "dec4", "aiger_path": "x.aig"})",
                  "exactly one");
  expect_rejected(R"({"op": "synth"})", "exactly one");
  expect_rejected(R"({"op": "fly"})", "unknown op");
  expect_rejected(R"({"bench": "dec4", "priority": "fastest"})",
                  "unknown priority");
  expect_rejected(R"({"bench": "dec4", "temp": -4})", "positive temperature");
  expect_rejected(R"({"bench": "dec4", "deadline_s": -1})", "deadline_s");
  expect_rejected(R"({"bench": "dec4", "seed": -1})", "non-negative");
  expect_rejected(R"({"bench": "dec4", "name": "p"})", "takes no name");
  expect_rejected(R"({"op": "load_plugin", "name": "p"})", "non-empty");
  expect_rejected(R"({"op": "ping", "bench": "dec4"})", "takes no bench");
  expect_rejected(R"([1, 2])", "must be a JSON object");
}

TEST(Protocol, DefaultLibPathMatchesCliConvention) {
  EXPECT_EQ(service::default_lib_path("cryoeda_out", 10.0, 0.7),
            "cryoeda_out/cryoeda_lib_10K.lib");
  EXPECT_EQ(service::default_lib_path("cryoeda_out", 300.0, 0.7),
            "cryoeda_out/cryoeda_lib_300K.lib");
  EXPECT_EQ(service::default_lib_path("d", 77.0, 0.8),
            "d/cryoeda_lib_77K_0.8V.lib");
}

TEST(Protocol, ErrorReplyCarriesTheTaxonomy) {
  const Json reply = service::error_reply("j9", ErrorKind::kBudget, "late");
  EXPECT_EQ(reply.at("id").as_string(), "j9");
  EXPECT_EQ(reply.at("status").as_string(), "error");
  EXPECT_EQ(reply.at("error_kind").as_string(), "budget");
  EXPECT_EQ(reply.at("exit_code").as_int(), 4);
  EXPECT_EQ(reply.at("error").as_string(), "late");
}

// ---------------------------------------------------------------------
// server tests
// ---------------------------------------------------------------------

/// Shared suite state: one temp dir for liberty caches (characterized
/// once, reused by every server instance) and the process-global
/// artifact cache pointed at a sibling temp dir.
class ServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    root_ = new fs::path{fs::temp_directory_path() /
                         ("cryoeda_test_service_" +
                          std::to_string(::getpid()))};
    fs::remove_all(*root_);
    fs::create_directories(*root_);
    util::ArtifactCache::Config config;
    config.root = *root_ / "cache";
    util::ArtifactCache::global().configure(std::move(config));
  }
  static void TearDownTestSuite() {
    util::ArtifactCache::global().configure(
        util::ArtifactCache::env_config());
    std::error_code ec;
    fs::remove_all(*root_, ec);
    delete root_;
    root_ = nullptr;
  }

  /// Cheap daemon config: mini catalog on a coarse grid (the test_flow
  /// characterization setup), single worker unless overridden.
  static service::ServeOptions cheap_options(int threads = 1) {
    service::ServeOptions options;
    options.threads = threads;
    options.lib_dir = (*root_ / "lib").string();
    options.catalog = cells::mini_catalog();
    options.char_options.slews = {4e-12, 16e-12, 48e-12};
    options.char_options.loads = {2e-16, 1e-15, 4e-15};
    options.char_options.include_sequential = false;
    return options;
  }

  static std::vector<Json> run_session(service::Server& server,
                                       const std::string& input,
                                       int* exit_code = nullptr) {
    std::istringstream in{input};
    std::ostringstream out;
    const int code = server.serve(in, out);
    if (exit_code != nullptr) {
      *exit_code = code;
    }
    std::vector<Json> replies;
    std::istringstream lines{out.str()};
    std::string line;
    while (std::getline(lines, line)) {
      replies.push_back(Json::parse(line));
    }
    return replies;
  }

  static fs::path* root_;
};

fs::path* ServiceTest::root_ = nullptr;

TEST_F(ServiceTest, ServesBatchWithWarmRepeatsAndByteIdenticalReports) {
  service::Server server{cheap_options()};
  const std::string batch =
      R"({"id": "a", "op": "ping"})"
      "\n"
      R"({"id": "b", "bench": "dec4", "priority": "pda"})"
      "\n"
      R"({"id": "c", "bench": "adder8", "priority": "pad"})"
      "\n"
      R"({"id": "d", "bench": "dec4", "priority": "pda"})"
      "\n";
  int code = -1;
  const auto replies = run_session(server, batch, &code);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].at("op").as_string(), "ping");
  for (std::size_t i = 1; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].at("status").as_string(), "ok")
        << replies[i].dump();
  }
  // Positional protocol: replies carry the request ids in order.
  EXPECT_EQ(replies[1].at("id").as_string(), "b");
  EXPECT_EQ(replies[2].at("id").as_string(), "c");
  EXPECT_EQ(replies[3].at("id").as_string(), "d");
  // Job d repeats job b: the scenario cache must serve it warm, the
  // corner must already be resident, and the report must round-trip
  // byte-identically through the cache.
  EXPECT_GE(replies[3].at("cache").at("scenario_hits").as_int(), 1);
  EXPECT_TRUE(replies[3].at("corner_warm").as_bool());
  EXPECT_FALSE(replies[1].at("corner_warm").as_bool());
  EXPECT_EQ(replies[1].at("report").dump(), replies[3].at("report").dump());
  // Report sanity: deterministic schema with real figures.
  const Json& report = replies[1].at("report");
  EXPECT_EQ(report.at("schema").as_string(), service::kJobReportSchema);
  EXPECT_EQ(report.at("design").at("name").as_string(), "dec4");
  EXPECT_GT(report.at("result").at("gates").as_int(), 0);
  EXPECT_GT(report.at("result").at("total_power_w").as_double(), 0.0);
  EXPECT_FALSE(report.at("result").at("degraded").as_bool());
}

TEST_F(ServiceTest, MalformedRequestsGetStructuredErrorsWithoutKillingIt) {
  service::Server server{cheap_options()};
  std::string oversized = R"({"bench": ")";
  oversized += std::string(service::kMaxRequestLine, 'x');
  oversized += R"("})";
  const std::string batch =
      R"({"id": "good1", "bench": "dec4"})"
      "\n"
      "this is not json\n"
      R"({"id": "bad-field", "bench": "dec4", "frobnicate": true})"
      "\n" +
      oversized + "\n" +
      R"({"id": "bad-bench", "bench": "no_such_circuit"})"
      "\n"
      R"({"id": "bad-recipe", "bench": "dec4", "recipe": "warp9; map"})"
      "\n"
      R"({"id": "good2", "bench": "dec4"})"
      "\n";
  int code = -1;
  const auto replies = run_session(server, batch, &code);
  EXPECT_EQ(code, 0) << "protocol errors must not fail the session";
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_EQ(replies[0].at("status").as_string(), "ok");
  EXPECT_EQ(replies[6].at("status").as_string(), "ok");
  for (const std::size_t i : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_EQ(replies[i].at("status").as_string(), "error") << i;
    EXPECT_EQ(replies[i].at("error_kind").as_string(), "recipe") << i;
    EXPECT_EQ(replies[i].at("exit_code").as_int(), 2) << i;
  }
  EXPECT_NE(replies[1].at("error").as_string().find("malformed JSON"),
            std::string::npos);
  EXPECT_NE(replies[2].at("error").as_string().find("frobnicate"),
            std::string::npos);
  EXPECT_NE(replies[3].at("error").as_string().find("exceeds"),
            std::string::npos);
  // Parse errors cannot echo an id; field errors can.
  EXPECT_EQ(replies[2].at("id").as_string(), "bad-field");
  EXPECT_EQ(replies[5].at("id").as_string(), "bad-recipe");
}

TEST_F(ServiceTest, BudgetExhaustedJobFailsAloneMidBatch) {
  service::Server server{cheap_options()};
  // Job "slow" needs a *cold* corner (47 K is used by no other test), so
  // its microscopic deadline expires inside characterization — which
  // cannot degrade and must abort with kBudget. Its neighbors run at the
  // shared 10 K corner and must be untouched.
  const std::string batch =
      R"({"id": "before", "bench": "dec4"})"
      "\n"
      R"({"id": "slow", "bench": "dec4", "temp": 47, "deadline_s": 1e-09})"
      "\n"
      R"({"id": "after", "bench": "adder8"})"
      "\n";
  int code = -1;
  const auto replies = run_session(server, batch, &code);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].at("status").as_string(), "ok");
  EXPECT_EQ(replies[1].at("status").as_string(), "error");
  EXPECT_EQ(replies[1].at("error_kind").as_string(), "budget");
  EXPECT_EQ(replies[1].at("exit_code").as_int(), 4);
  EXPECT_EQ(replies[2].at("status").as_string(), "ok");
}

TEST_F(ServiceTest, ShutdownDrainsAcknowledgesAndStopsReading) {
  service::Server server{cheap_options()};
  const std::string batch =
      R"({"id": "j", "bench": "dec4"})"
      "\n"
      R"({"id": "bye", "op": "shutdown"})"
      "\n"
      R"({"id": "never", "bench": "dec4"})"
      "\n";
  int code = -1;
  const auto replies = run_session(server, batch, &code);
  EXPECT_EQ(code, 0);
  EXPECT_TRUE(server.shutdown_requested());
  ASSERT_EQ(replies.size(), 2u) << "requests after shutdown must be ignored";
  EXPECT_EQ(replies[0].at("id").as_string(), "j");
  EXPECT_EQ(replies[1].at("id").as_string(), "bye");
  EXPECT_EQ(replies[1].at("op").as_string(), "shutdown");
}

TEST_F(ServiceTest, RepliesStayInRequestOrderUnderConcurrency) {
  service::Server server{cheap_options(/*threads=*/4)};
  std::string batch;
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    const std::string bench = (i % 2 == 0) ? "dec4" : "adder8";
    const std::string id = "job" + std::to_string(i);
    ids.push_back(id);
    batch += R"({"id": ")" + id + R"(", "bench": ")" + bench + R"("})" "\n";
  }
  const auto replies = run_session(server, batch);
  ASSERT_EQ(replies.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(replies[i].at("id").as_string(), ids[i]);
    EXPECT_EQ(replies[i].at("status").as_string(), "ok");
  }
}

TEST_F(ServiceTest, HalfClosedSocketClientStillGetsItsReplies) {
  service::Server server{cheap_options()};
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int code = -1;
  std::thread daemon{[&] { code = server.serve_fd(sv[1], sv[1]); }};
  const std::string batch =
      R"({"id": "s1", "bench": "dec4"})"
      "\n"
      R"({"id": "s2", "op": "ping"})"
      "\n";
  ASSERT_EQ(::write(sv[0], batch.data(), batch.size()),
            static_cast<ssize_t>(batch.size()));
  // Half-close: no more requests, but the reply direction stays open.
  ASSERT_EQ(::shutdown(sv[0], SHUT_WR), 0);
  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(sv[0], buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    received.append(buf, static_cast<std::size_t>(n));
    // Two complete reply lines are all this session produces.
    if (std::count(received.begin(), received.end(), '\n') >= 2) {
      break;
    }
  }
  daemon.join();
  ::close(sv[0]);
  ::close(sv[1]);
  EXPECT_EQ(code, 0);
  std::vector<Json> replies;
  std::istringstream lines{received};
  std::string line;
  while (std::getline(lines, line)) {
    replies.push_back(Json::parse(line));
  }
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].at("id").as_string(), "s1");
  EXPECT_EQ(replies[0].at("status").as_string(), "ok");
  EXPECT_EQ(replies[1].at("op").as_string(), "ping");
}

TEST_F(ServiceTest, LoadPluginRegistersACompositePassAndJobsUseIt) {
  service::Server server{cheap_options()};
  const std::string batch =
      R"({"id": "p", "op": "load_plugin", "name": "boost",)"
      R"( "script": "balance; rewrite; refactor"})"
      "\n"
      R"({"id": "plugged", "bench": "dec4", "recipe": "boost; map"})"
      "\n"
      R"({"id": "spelled", "bench": "dec4",)"
      R"( "recipe": "balance; rewrite; refactor; map"})"
      "\n";
  const auto replies = run_session(server, batch);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].at("status").as_string(), "ok") << replies[0].dump();
  EXPECT_EQ(replies[0].at("pass").as_string(), "boost");
  ASSERT_EQ(replies[1].at("status").as_string(), "ok") << replies[1].dump();
  ASSERT_EQ(replies[2].at("status").as_string(), "ok");
  // The composite pass runs exactly its expansion: identical figures.
  EXPECT_EQ(replies[1].at("report").at("result").dump(),
            replies[2].at("report").at("result").dump());
  // A plugin recipe must never be served from (or stored into) the
  // name-keyed scenario cache.
  EXPECT_EQ(replies[1].at("cache").at("scenario_hits").as_int(), 0);
  EXPECT_NE(server.registry().find("boost"), nullptr);
  EXPECT_EQ(core::PassRegistry::global().find("boost"), nullptr)
      << "plugins must stay daemon-local";
}

TEST_F(ServiceTest, LoadPluginRejectsBadDefinitions) {
  service::Server server{cheap_options()};
  const std::string batch =
      R"({"id": "dup", "op": "load_plugin", "name": "balance",)"
      R"( "script": "rewrite"})"
      "\n"
      R"({"id": "unknown", "op": "load_plugin", "name": "p1",)"
      R"( "script": "warp9"})"
      "\n"
      R"({"id": "notaig", "op": "load_plugin", "name": "p2",)"
      R"( "script": "map"})"
      "\n"
      R"({"id": "ok", "op": "load_plugin", "name": "p3",)"
      R"( "script": "balance"})"
      "\n"
      R"({"id": "redef", "op": "load_plugin", "name": "p3",)"
      R"( "script": "rewrite"})"
      "\n";
  const auto replies = run_session(server, batch);
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[0].at("status").as_string(), "error");
  EXPECT_NE(replies[0].at("error").as_string().find("already exists"),
            std::string::npos);
  EXPECT_EQ(replies[1].at("status").as_string(), "error");
  EXPECT_EQ(replies[2].at("status").as_string(), "error");
  EXPECT_NE(replies[2].at("error").as_string().find("AIG-transform"),
            std::string::npos);
  EXPECT_EQ(replies[3].at("status").as_string(), "ok");
  EXPECT_EQ(replies[4].at("status").as_string(), "error");
}

TEST_F(ServiceTest, StatsReportsServiceCounters) {
  service::Server server{cheap_options()};
  const auto replies = run_session(
      server,
      R"({"id": "q", "bench": "dec4"})"
      "\n"
      R"({"id": "s", "op": "stats"})"
      "\n");
  ASSERT_EQ(replies.size(), 2u);
  const Json& report = replies[1].at("report");
  EXPECT_GE(report.at("counters").at("service.jobs").as_int(), 1);
}

}  // namespace
