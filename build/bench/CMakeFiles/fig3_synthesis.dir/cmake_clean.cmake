file(REMOVE_RECURSE
  "CMakeFiles/fig3_synthesis.dir/fig3_synthesis.cpp.o"
  "CMakeFiles/fig3_synthesis.dir/fig3_synthesis.cpp.o.d"
  "fig3_synthesis"
  "fig3_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
