# Empty compiler generated dependencies file for fig2b_energy_distribution.
# This may be replaced when dependencies are built.
