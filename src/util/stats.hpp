#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cryo::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p5 = 0.0;   ///< 5th percentile
  double p95 = 0.0;  ///< 95th percentile
};

/// Compute summary statistics; returns a zeroed Summary for empty input.
Summary summarize(std::vector<double> values);

/// Geometric mean; values must be strictly positive.
double geomean(const std::vector<double>& values);

/// Linear interpolated percentile (q in [0,1]) of a *sorted* sample.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// A fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the
/// first/last bin so distribution plots never silently drop data.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Render as an ASCII bar chart, one line per bin.
  std::string render(std::size_t width = 50) const;

private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace cryo::util
