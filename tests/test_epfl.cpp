#include <gtest/gtest.h>

#include <cmath>

#include "epfl/benchmarks.hpp"
#include "epfl/wordlib.hpp"
#include "logic/simulate.hpp"
#include "util/rng.hpp"

namespace {

using namespace cryo::epfl;
using cryo::logic::Aig;

/// Evaluate an AIG on one input assignment (LSB-first words laid out as
/// consecutive PIs).
std::vector<bool> eval(const Aig& aig, const std::vector<bool>& inputs) {
  cryo::logic::Simulation sim{aig, 1};
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sim.set_pi_word(static_cast<cryo::logic::NodeIdx>(i), 0,
                    inputs[i] ? ~0ull : 0ull);
  }
  sim.run();
  std::vector<bool> outs;
  for (cryo::logic::NodeIdx o = 0; o < aig.num_pos(); ++o) {
    outs.push_back((sim.signature(aig.po(o)) & 1ull) != 0);
  }
  return outs;
}

std::vector<bool> to_bits(unsigned long long value, unsigned bits) {
  std::vector<bool> out(bits);
  for (unsigned i = 0; i < bits; ++i) {
    out[i] = ((value >> i) & 1ull) != 0;
  }
  return out;
}

unsigned long long from_bits(const std::vector<bool>& bits, unsigned offset,
                             unsigned count) {
  unsigned long long value = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (bits[offset + i]) {
      value |= 1ull << i;
    }
  }
  return value;
}

std::vector<bool> concat(std::initializer_list<std::vector<bool>> parts) {
  std::vector<bool> out;
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

class RandomVectors : public ::testing::TestWithParam<int> {};

TEST_P(RandomVectors, AdderComputesSum) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const Aig aig = make_adder(16);
  for (int t = 0; t < 20; ++t) {
    const auto a = rng.next_below(1ull << 16);
    const auto b = rng.next_below(1ull << 16);
    const auto out = eval(aig, concat({to_bits(a, 16), to_bits(b, 16)}));
    EXPECT_EQ(from_bits(out, 0, 17), a + b);
  }
}

TEST_P(RandomVectors, MultiplierComputesProduct) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 10};
  const Aig aig = make_multiplier(8);
  for (int t = 0; t < 20; ++t) {
    const auto a = rng.next_below(256);
    const auto b = rng.next_below(256);
    const auto out = eval(aig, concat({to_bits(a, 8), to_bits(b, 8)}));
    EXPECT_EQ(from_bits(out, 0, 16), a * b);
  }
}

TEST_P(RandomVectors, SquareMatchesMultiplier) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 20};
  const Aig aig = make_square(8);
  for (int t = 0; t < 20; ++t) {
    const auto a = rng.next_below(256);
    const auto out = eval(aig, to_bits(a, 8));
    EXPECT_EQ(from_bits(out, 0, 16), a * a);
  }
}

TEST_P(RandomVectors, DividerComputesQuotientAndRemainder) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 30};
  const Aig aig = make_div(8);
  for (int t = 0; t < 20; ++t) {
    const auto n = rng.next_below(256);
    const auto d = 1 + rng.next_below(255);
    const auto out = eval(aig, concat({to_bits(n, 8), to_bits(d, 8)}));
    EXPECT_EQ(from_bits(out, 0, 8), n / d) << n << "/" << d;
    EXPECT_EQ(from_bits(out, 8, 8), n % d) << n << "%" << d;
  }
}

TEST_P(RandomVectors, SqrtComputesIntegerRoot) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 40};
  const Aig aig = make_sqrt(16);
  for (int t = 0; t < 20; ++t) {
    const auto v = rng.next_below(1ull << 16);
    const auto out = eval(aig, to_bits(v, 16));
    const auto root = from_bits(out, 0, 8);
    EXPECT_EQ(root, static_cast<unsigned long long>(
                        std::sqrt(static_cast<double>(v))))
        << "sqrt(" << v << ")";
  }
}

TEST_P(RandomVectors, MaxSelectsMaximum) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 50};
  const Aig aig = make_max(16, 4);
  for (int t = 0; t < 20; ++t) {
    unsigned long long w[4];
    std::vector<bool> inputs;
    unsigned long long expected = 0;
    for (auto& x : w) {
      x = rng.next_below(1ull << 16);
      expected = std::max(expected, x);
      const auto bits = to_bits(x, 16);
      inputs.insert(inputs.end(), bits.begin(), bits.end());
    }
    const auto out = eval(aig, inputs);
    EXPECT_EQ(from_bits(out, 0, 16), expected);
  }
}

TEST_P(RandomVectors, BarrelShifterShifts) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 60};
  const Aig aig = make_bar(16);
  for (int t = 0; t < 20; ++t) {
    const auto v = rng.next_below(1ull << 16);
    const auto sh = rng.next_below(16);
    for (const bool left : {true, false}) {
      auto inputs = concat({to_bits(v, 16), to_bits(sh, 4)});
      inputs.push_back(left);
      const auto out = eval(aig, inputs);
      const auto expected =
          left ? ((v << sh) & 0xFFFFull) : (v >> sh);
      EXPECT_EQ(from_bits(out, 0, 16), expected)
          << v << (left ? "<<" : ">>") << sh;
    }
  }
}

TEST_P(RandomVectors, PriorityEncoderFindsFirstOne) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 70};
  const Aig aig = make_priority(16);
  for (int t = 0; t < 20; ++t) {
    const auto v = rng.next_below(1ull << 16);
    const auto out = eval(aig, to_bits(v, 16));
    const bool valid = out[4];
    EXPECT_EQ(valid, v != 0);
    if (v != 0) {
      unsigned expected = 0;
      while (((v >> expected) & 1ull) == 0) {
        ++expected;
      }
      EXPECT_EQ(from_bits(out, 0, 4), expected);
    }
  }
}

TEST_P(RandomVectors, VoterComputesMajority) {
  cryo::util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 80};
  const Aig aig = make_voter(15);
  for (int t = 0; t < 30; ++t) {
    std::vector<bool> votes(15);
    int ones = 0;
    for (auto&& v : votes) {
      v = rng.next_bool();
      ones += v ? 1 : 0;
    }
    const auto out = eval(aig, votes);
    EXPECT_EQ(out[0], ones >= 8) << "ones=" << ones;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomVectors, ::testing::Range(1, 4));

TEST(Generators, DecoderIsOneHot) {
  const Aig aig = make_dec(4);
  for (unsigned v = 0; v < 16; ++v) {
    const auto out = eval(aig, to_bits(v, 4));
    for (unsigned i = 0; i < 16; ++i) {
      EXPECT_EQ(out[i], i == v);
    }
  }
}

TEST(Generators, ArbiterGrantsOneHotRoundRobin) {
  const Aig aig = make_arbiter(8);
  cryo::util::Rng rng{5};
  for (int t = 0; t < 40; ++t) {
    const auto req = rng.next_below(256);
    const auto ptr = rng.next_below(8);
    const auto out =
        eval(aig, concat({to_bits(req, 8), to_bits(ptr, 3)}));
    int grants = 0;
    int granted = -1;
    for (int i = 0; i < 8; ++i) {
      if (out[static_cast<std::size_t>(i)]) {
        ++grants;
        granted = i;
      }
    }
    EXPECT_EQ(out[8], req != 0);  // "any"
    EXPECT_EQ(grants, req != 0 ? 1 : 0);
    if (req != 0) {
      // The grant must be a requester, and it is the first one at or
      // after the pointer in ring order.
      EXPECT_TRUE((req >> granted) & 1u);
      for (unsigned step = 0; step < 8; ++step) {
        const unsigned pos = (static_cast<unsigned>(ptr) + step) % 8;
        if ((req >> pos) & 1u) {
          EXPECT_EQ(static_cast<unsigned>(granted), pos);
          break;
        }
      }
    }
  }
}

TEST(Generators, Int2FloatNormalizes) {
  const Aig aig = make_int2float(16);
  cryo::util::Rng rng{9};
  for (int t = 0; t < 30; ++t) {
    const auto v = 1 + rng.next_below((1ull << 16) - 1);
    const auto out = eval(aig, to_bits(v, 16));
    const auto exponent = from_bits(out, 0, 4);
    unsigned expected_exp = 0;
    while ((v >> (expected_exp + 1)) != 0) {
      ++expected_exp;
    }
    EXPECT_EQ(exponent, expected_exp) << "v=" << v;
    EXPECT_TRUE(out[12]);  // nonzero flag
  }
  const auto zero_out = eval(aig, to_bits(0, 16));
  EXPECT_FALSE(zero_out[12]);
}

TEST(Generators, Log2ExponentCorrect) {
  const Aig aig = make_log2(16);
  cryo::util::Rng rng{11};
  for (int t = 0; t < 30; ++t) {
    const auto v = 1 + rng.next_below((1ull << 16) - 1);
    const auto out = eval(aig, to_bits(v, 16));
    unsigned expected = 0;
    while ((v >> (expected + 1)) != 0) {
      ++expected;
    }
    EXPECT_EQ(from_bits(out, 0, 4), expected) << "v=" << v;
  }
}

TEST(Generators, RouterGrantsAreConsistent) {
  const Aig aig = make_router(4);
  cryo::util::Rng rng{13};
  // inputs: v[4], then d0..d3 (2 bits each).
  for (int t = 0; t < 40; ++t) {
    std::vector<bool> inputs;
    std::vector<bool> valid(4);
    std::vector<unsigned> dest(4);
    for (auto&& v : valid) {
      v = rng.next_bool();
      inputs.push_back(v);
    }
    for (auto& d : dest) {
      d = static_cast<unsigned>(rng.next_below(4));
      inputs.push_back((d & 1u) != 0);
      inputs.push_back((d & 2u) != 0);
    }
    const auto out = eval(aig, inputs);
    // Outputs per port: src (2 bits) + busy.
    for (unsigned port = 0; port < 4; ++port) {
      const bool busy = out[port * 3 + 2];
      const auto src = from_bits(out, port * 3, 2);
      bool expected_busy = false;
      unsigned expected_src = 0;
      for (unsigned p = 0; p < 4; ++p) {
        if (valid[p] && dest[p] == port) {
          expected_busy = true;
          expected_src = p;
          break;  // lowest index wins
        }
      }
      EXPECT_EQ(busy, expected_busy) << "port " << port;
      if (expected_busy) {
        EXPECT_EQ(src, expected_src) << "port " << port;
      }
    }
  }
}

TEST(Generators, SinIsMonotoneOnFirstQuadrant) {
  // CORDIC sine on [0, pi/2): check monotone growth at a few points.
  const unsigned bits = 12;
  const Aig aig = make_sin(bits);
  // theta fixed point: [0, 2^(bits-3)) ~ radians * 2^(bits-3).
  unsigned long long prev = 0;
  bool monotone = true;
  for (unsigned long long theta = 0; theta < (1ull << (bits - 3));
       theta += (1ull << (bits - 6))) {
    const auto out = eval(aig, to_bits(theta, bits));
    const auto y = from_bits(out, 0, bits - 1);  // positive range
    if (theta > 0 && y + 2 < prev) {
      monotone = false;
    }
    prev = y;
  }
  EXPECT_TRUE(monotone);
}

TEST(Suite, FullSuiteShapes) {
  const auto suite = epfl_suite();
  ASSERT_EQ(suite.size(), 20u);
  int arithmetic = 0;
  for (const auto& b : suite) {
    EXPECT_GT(b.aig.num_ands(), 50u) << b.name;
    EXPECT_GT(b.aig.num_pos(), 0u) << b.name;
    arithmetic += b.arithmetic ? 1 : 0;
  }
  EXPECT_EQ(arithmetic, 10);
}

TEST(Suite, DeterministicGeneration) {
  const auto a = make_ctrl();
  const auto b = make_ctrl();
  EXPECT_EQ(a.num_ands(), b.num_ands());
  EXPECT_TRUE(cryo::logic::simulate_equal(a, b));
}

TEST(WordLib, PopcountAndComparisons) {
  Aig aig;
  const Word w = input_word(aig, "w", 7);
  output_word(aig, "c", popcount(aig, w));
  cryo::util::Rng rng{3};
  for (int t = 0; t < 30; ++t) {
    const auto v = rng.next_below(128);
    const auto out = eval(aig, to_bits(v, 7));
    EXPECT_EQ(from_bits(out, 0, 3), static_cast<unsigned>(
                                        __builtin_popcountll(v)));
  }
}

}  // namespace
