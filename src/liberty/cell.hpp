#pragma once

#include <optional>
#include <string>
#include <vector>

#include "liberty/nldm.hpp"

namespace cryo::liberty {

/// Unateness of a timing arc.
enum class ArcSense { kPositive, kNegative, kNonUnate };

/// One timing arc: related (input) pin -> the cell's output pin.
struct TimingArc {
  std::string related_pin;
  ArcSense sense = ArcSense::kNegative;
  NldmTable cell_rise;        ///< output-rise delay [s]
  NldmTable cell_fall;        ///< output-fall delay [s]
  NldmTable rise_transition;  ///< output rise slew [s]
  NldmTable fall_transition;  ///< output fall slew [s]
};

/// One internal-power arc: energy drawn from the rail per output
/// transition, excluding the energy stored in the external load [J].
struct PowerArc {
  std::string related_pin;
  NldmTable rise_power;
  NldmTable fall_power;
};

/// A cell pin.
struct Pin {
  std::string name;
  bool is_output = false;
  double capacitance = 0.0;  ///< input capacitance [F] (inputs only)
  std::string function;      ///< liberty boolean function (outputs only)
};

/// A standard cell.
struct Cell {
  std::string name;
  double area = 0.0;           ///< [um^2]
  double leakage_power = 0.0;  ///< state-averaged leakage [W]
  bool is_sequential = false;
  std::string next_state;  ///< sequential cells: D-input expression
  std::string clocked_on;  ///< sequential cells: clock expression
  std::vector<Pin> pins;
  std::vector<TimingArc> arcs;
  std::vector<PowerArc> power_arcs;

  const Pin* output_pin() const;
  const Pin* find_pin(const std::string& pin_name) const;
  std::vector<std::string> input_names() const;
  const TimingArc* arc_from(const std::string& input) const;
  const PowerArc* power_arc_from(const std::string& input) const;

  /// Worst-case (max over arcs) delay at a nominal corner — a convenient
  /// scalar for distribution plots (paper Fig. 2a).
  double typical_delay(double slew, double load) const;
  /// Mean switching (internal) energy over arcs at a nominal corner [J]
  /// (paper Fig. 2b).
  double typical_energy(double slew, double load) const;
};

}  // namespace cryo::liberty
