#include "core/flow.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "util/obs.hpp"

namespace cryo::core {

namespace obs = util::obs;

void validate(const FlowOptions& options) {
  if (options.lut_k < 2 || options.lut_k > 16) {
    throw std::invalid_argument{
        "FlowOptions.lut_k = " + std::to_string(options.lut_k) +
        " is unusable: the k-LUT stage supports k in [2, 16]"};
  }
  if (!(options.epsilon >= 0.0) || !std::isfinite(options.epsilon)) {
    throw std::invalid_argument{
        "FlowOptions.epsilon = " + std::to_string(options.epsilon) +
        " is unusable: the tie-break threshold must be a finite value >= 0 "
        "(0 disables threshold relaxation)"};
  }
  if (!(options.input_activity > 0.0) || options.input_activity > 1.0) {
    throw std::invalid_argument{
        "FlowOptions.input_activity = " +
        std::to_string(options.input_activity) +
        " is unusable: the PI toggle rate must be in (0, 1]"};
  }
  if (!(options.clock_estimate > 0.0) ||
      !std::isfinite(options.clock_estimate)) {
    throw std::invalid_argument{
        "FlowOptions.clock_estimate = " +
        std::to_string(options.clock_estimate) +
        " is unusable: the clock period estimate must be a positive finite "
        "time in seconds"};
  }
  if (options.sat_conflict_budget == 0 || options.sat_conflict_budget < -1) {
    throw std::invalid_argument{
        "FlowOptions.sat_conflict_budget = " +
        std::to_string(options.sat_conflict_budget) +
        " is unusable: the per-call SAT conflict ceiling must be >= 1, or "
        "-1 for unlimited (disable sweeping with use_choices instead of 0)"};
  }
}

namespace {

FlowResult run_recipe(const logic::Aig& input, const map::CellMatcher& matcher,
                      const FlowOptions& options, const Pipeline& pipeline,
                      util::Budget* budget = nullptr) {
  const obs::ScopedSpan flow_span{"core.synthesize:" + input.name()};
  obs::counter("core.synthesis_runs").add();

  FlowState state;
  state.aig = input;
  state.matcher = &matcher;
  state.options = options;
  state.budget = budget;
  pipeline.run(state);

  FlowResult result;
  result.initial_ands = state.initial_ands;
  result.after_c2rs = state.after_c2rs;
  // A recipe without `strash` never closes stage 2; report the final
  // network size so the figures stay meaningful.
  result.after_power_stage =
      state.saw_strash ? state.after_power_stage : state.aig.num_ands();
  result.netlist = std::move(state.netlist);
  result.optimized = std::move(state.aig);
  result.degraded = state.degraded;
  return result;
}

}  // namespace

FlowResult synthesize(const logic::Aig& input, const map::CellMatcher& matcher,
                      const FlowOptions& options) {
  validate(options);
  return run_recipe(input, matcher, options,
                    Pipeline::parse(canonical_recipe(options)));
}

FlowResult synthesize_with_recipe(const logic::Aig& input,
                                  const map::CellMatcher& matcher,
                                  const FlowOptions& options,
                                  std::string_view recipe,
                                  util::Budget* budget,
                                  const PassRegistry* registry) {
  validate(options);
  return run_recipe(
      input, matcher, options,
      Pipeline::parse(recipe, registry ? *registry : PassRegistry::global()),
      budget);
}

}  // namespace cryo::core
