file(REMOVE_RECURSE
  "libcryo_map.a"
)
