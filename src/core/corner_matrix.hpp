#pragma once

#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "device/preset.hpp"
#include "util/json.hpp"

namespace cryo::core {

/// The axes of a corner matrix: every (preset, temperature, Vdd) triple
/// of the cross product is one characterization + synthesis corner.
/// Empty axes take preset-derived defaults, so `cryoeda matrix` with no
/// flags reproduces each platform's paper-style evaluation corners.
struct MatrixAxes {
  /// Preset names; empty = the default platform only.
  std::vector<std::string> presets;
  /// Temperatures [K]; empty = each preset's `corner_temps`.
  std::vector<double> temps;
  /// Supplies [V]; empty = each preset's `default_vdd`.
  std::vector<double> vdds;
};

/// One resolved corner of the matrix.
struct MatrixCorner {
  device::Preset preset;
  double temperature_k = 0.0;
  double vdd = 0.0;

  /// Human-readable corner tag: "<preset>@<T>K/<Vdd>V".
  std::string label() const;
};

/// Options of a corner-matrix run.
struct MatrixOptions {
  MatrixAxes axes;
  /// Benchmark names (epfl::find_benchmark); empty = the mini suite.
  std::vector<std::string> benches;
  /// Shared synthesis/signoff knobs, applied identically per corner.
  ExperimentOptions experiment;
  /// SPICE engine name; "" resolves via $CRYOEDA_SPICE_BACKEND.
  std::string backend;
  /// Directory of the per-corner characterized-library caches.
  std::string lib_dir = "cryoeda_out";
  /// Per-corner wall-clock bound on characterization [s]; 0 = none.
  /// (Synthesis remains governed by the global budget — a blown corner
  /// deadline faults that corner only.)
  double per_corner_deadline_s = 0.0;
  /// Cell catalog; empty = the standard catalog. Injectable so tests
  /// can run the matrix on the mini catalog with a coarse grid.
  std::vector<cells::CellSpec> catalog;
  /// Characterization knobs; vdd/preset/backend/budget are overwritten
  /// per corner from the axes above.
  cells::CharOptions char_options;
  bool verbose = false;
};

/// Expand the axes into the ordered corner list: preset-major, then
/// temperatures, then supplies, each in the order given (or the
/// preset's own defaults where an axis is empty). Every corner is
/// validated against its preset's declared envelope up front — one
/// out-of-range triple rejects the whole matrix with
/// cryo::Error{kRecipe} before any work runs.
std::vector<MatrixCorner> enumerate_corners(const MatrixAxes& axes);

/// One (corner, benchmark) row of the matrix.
struct MatrixRow {
  std::string bench;
  CircuitComparison comparison;
  /// Fault isolation at the row level: a benchmark whose comparison
  /// threw records the failure here instead of sinking its siblings.
  bool ok = true;
  std::string error;
  std::string error_kind;
};

/// All rows of one corner, plus the corner-level failure record: a
/// corner whose library characterization failed has no rows, and the
/// failure stays confined to this entry.
struct MatrixCornerResult {
  MatrixCorner corner;
  std::string library;   ///< canonical library name (empty on failure)
  std::string lib_path;  ///< on-disk cache the corner used
  std::vector<MatrixRow> rows;
  bool ok = true;
  std::string error;
  std::string error_kind;
};

/// The full matrix run.
struct MatrixResult {
  std::string backend_identity;  ///< engine that produced every corner
  std::vector<MatrixCornerResult> corners;

  int corners_ok() const;
  int rows_total() const;
  /// Rows whose comparison ran *and* whose three scenarios all
  /// produced valid figures.
  int rows_ok() const;
  bool all_ok() const;
};

/// Run the matrix: corners execute serially (parallelism lives inside
/// characterization and the per-corner benchmark fleet), each behind
/// its own fault-isolation boundary, so one poisoned corner degrades
/// exactly its own entry. Throws cryo::Error{kRecipe} for unusable
/// axes/benches/engine before any corner runs; propagates global
/// cancellation between corners.
MatrixResult run_matrix(const MatrixOptions& options);

/// Deterministic `cryoeda-matrix-v1` report of a run: stable key order,
/// no wall-clock or host-dependent values, so byte-identical inputs
/// give byte-identical reports (the property `check_regression.py
/// --matrix-from` gates on).
util::Json matrix_report(const MatrixResult& result);

}  // namespace cryo::core
