#include "opt/lut_map.hpp"

#include <algorithm>
#include <cmath>

#include "logic/factor.hpp"
#include "logic/simulate.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"

namespace cryo::opt {

using logic::Aig;
using logic::Cut;
using logic::Lit;
using logic::NodeIdx;

double LutMapping::switched_estimate() const {
  double total = 0.0;
  for (NodeIdx v = 0; v < in_cover.size(); ++v) {
    if (in_cover[v]) {
      total += activity[v];
    }
  }
  return total;
}

LutMapping lut_map(const Aig& aig, const LutMapOptions& options,
                   const std::vector<std::vector<logic::Lit>>* choices) {
  logic::CutEnumerator cuts{aig, options.k, options.cuts_per_node};
  cuts.run();

  // Per-node cut candidates; for nodes with structural choices, the
  // choice structures' cuts are merged in (with output-phase fixup).
  std::vector<std::vector<Cut>> candidates(aig.num_nodes());
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    for (const Cut& c : cuts.cuts(v)) {
      if (c.size == 1 && c.leaves[0] == v) {
        continue;  // trivial cut cannot be a LUT
      }
      candidates[v].push_back(c);
    }
    if (choices != nullptr && v < choices->size()) {
      for (const Lit alt : (*choices)[v]) {
        for (Cut c : cuts.cuts(logic::lit_var(alt))) {
          if (c.size == 1 && c.leaves[0] == logic::lit_var(alt)) {
            continue;
          }
          // Keep the topological invariant "cut leaves precede the root":
          // choice structures are newer nodes, so their cuts may reach
          // leaves with higher indices than v — those would make the
          // cover emission order (and in the worst case the cover
          // itself) cyclic.
          bool ordered = true;
          for (unsigned i = 0; i < c.size; ++i) {
            if (c.leaves[i] >= v) {
              ordered = false;
              break;
            }
          }
          if (!ordered) {
            continue;
          }
          if (logic::lit_compl(alt)) {
            c.tt = ~c.tt & logic::tt6_mask(c.size);
          }
          candidates[v].push_back(c);
        }
      }
    }
  }

  // Switching activity from Markov-chain simulation.
  logic::Simulation sim{aig, 16};
  util::Rng rng{options.seed};
  sim.randomize_pis_markov(rng, options.input_activity);
  sim.run();

  LutMapping mapping;
  mapping.aig = &aig;
  mapping.chosen.resize(aig.num_nodes());
  mapping.in_cover.assign(aig.num_nodes(), false);
  mapping.tt.assign(aig.num_nodes(), 0);
  mapping.dc.assign(aig.num_nodes(), 0);
  mapping.activity.resize(aig.num_nodes());
  for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    mapping.activity[v] = sim.activity(v);
  }

  // Reference estimates: structural fanout counts initially, actual
  // cover references in later rounds.
  std::vector<double> refs(aig.num_nodes(), 1.0);
  {
    const auto fanouts = aig.fanout_counts();
    for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
      refs[v] = std::max<double>(1.0, fanouts[v]);
    }
  }

  std::vector<double> area_flow(aig.num_nodes(), 0.0);
  std::vector<double> power_flow(aig.num_nodes(), 0.0);
  std::vector<double> depth(aig.num_nodes(), 0.0);
  std::vector<bool> has_best(aig.num_nodes(), false);

  for (unsigned round = 0; round < options.rounds; ++round) {
    for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
      if (!aig.is_and(v)) {
        continue;
      }
      Cost best_cost;
      const Cut* best_cut = nullptr;
      for (const Cut& c : candidates[v]) {
        Cost cost;
        cost.area = 1.0;
        cost.power = mapping.activity[v];
        cost.delay = 0.0;
        for (unsigned i = 0; i < c.size; ++i) {
          const NodeIdx leaf = c.leaves[i];
          cost.area += area_flow[leaf] / refs[leaf];
          cost.power += power_flow[leaf] / refs[leaf];
          cost.delay = std::max(cost.delay, depth[leaf]);
        }
        cost.delay += 1.0;
        if (best_cut == nullptr ||
            better(cost, best_cost, options.priority, options.epsilon)) {
          best_cost = cost;
          best_cut = &c;
        }
      }
      // Every AND node has at least the cut over its two fanins.
      mapping.chosen[v] = *best_cut;
      has_best[v] = true;
      area_flow[v] = best_cost.area;
      power_flow[v] = best_cost.power;
      depth[v] = best_cost.delay;
    }

    // Cover extraction from the POs.
    std::fill(mapping.in_cover.begin(), mapping.in_cover.end(), false);
    std::vector<NodeIdx> stack;
    for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
      stack.push_back(logic::lit_var(aig.po(i)));
    }
    std::vector<double> cover_refs(aig.num_nodes(), 0.0);
    while (!stack.empty()) {
      const NodeIdx v = stack.back();
      stack.pop_back();
      if (!aig.is_and(v)) {
        continue;
      }
      cover_refs[v] += 1.0;
      if (mapping.in_cover[v]) {
        continue;
      }
      mapping.in_cover[v] = true;
      const Cut& c = mapping.chosen[v];
      for (unsigned i = 0; i < c.size; ++i) {
        stack.push_back(c.leaves[i]);
      }
    }
    // Next round uses actual cover references.
    for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
      refs[v] = std::max(1.0, cover_refs[v]);
    }
  }

  mapping.lut_count = 0;
  for (NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    if (mapping.in_cover[v]) {
      mapping.tt[v] = mapping.chosen[v].tt;
      ++mapping.lut_count;
    }
  }
  util::obs::counter("opt.lut_map_runs").add();
  util::obs::counter("opt.luts_mapped").add(mapping.lut_count);
  return mapping;
}

logic::Aig luts_to_aig(const LutMapping& mapping) {
  const Aig& aig = *mapping.aig;
  Aig out;
  out.set_name(aig.name());
  std::vector<Lit> map(aig.num_nodes(), logic::kConst0);
  for (NodeIdx i = 0; i < aig.num_pis(); ++i) {
    map[logic::lit_var(aig.pi(i))] = out.add_pi(aig.pi_name(i));
  }
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (!mapping.in_cover[v]) {
      continue;
    }
    const Cut& c = mapping.chosen[v];
    std::vector<Lit> leaves;
    leaves.reserve(c.size);
    for (unsigned i = 0; i < c.size; ++i) {
      leaves.push_back(map[c.leaves[i]]);
    }
    const auto on =
        logic::TtVec::from_tt6(mapping.tt[v] & ~mapping.dc[v], c.size);
    const auto dc = logic::TtVec::from_tt6(mapping.dc[v], c.size);
    // Factor both polarities of the DC-minimized ISOP; keep the smaller.
    const auto pos_cubes = logic::isop(on, dc);
    // Complement polarity: its on-set is the care off-set ~(on | dc).
    const auto neg_cubes = logic::isop(~(on | dc), dc);
    const NodeIdx mark = out.num_nodes();
    const Lit pos = logic::build_factored(out, pos_cubes, leaves);
    const NodeIdx pos_cost = out.num_nodes() - mark;
    const NodeIdx mark2 = out.num_nodes();
    const Lit neg = logic::build_factored(out, neg_cubes, leaves);
    const NodeIdx neg_cost = out.num_nodes() - mark2;
    map[v] = neg_cost < pos_cost ? logic::lit_not(neg) : pos;
  }
  for (NodeIdx i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po(i);
    out.add_po(logic::lit_notif(map[logic::lit_var(po)], logic::lit_compl(po)),
               aig.po_name(i));
  }
  return out.cleanup();
}

std::size_t mfs(LutMapping& mapping, const MfsOptions& options) {
  const Aig& aig = *mapping.aig;

  // Care sets seeded by simulation: any leaf pattern observed is care.
  logic::Simulation sim{aig, options.sim_words};
  util::Rng rng{options.seed};
  sim.randomize_pis(rng);
  sim.run();

  sat::Solver solver;
  util::Budget& budget =
      options.budget != nullptr ? *options.budget : util::Budget::global();
  solver.set_budget(&budget);
  const sat::CnfMap cnf = sat::encode_aig(aig, solver);

  // Process high-activity LUTs first (power-aware ordering): don't-cares
  // found there shrink the most frequently toggling logic.
  std::vector<NodeIdx> roots;
  for (NodeIdx v = 1; v < aig.num_nodes(); ++v) {
    if (mapping.in_cover[v] && mapping.chosen[v].size >= 2) {
      roots.push_back(v);
    }
  }
  std::sort(roots.begin(), roots.end(), [&](NodeIdx a, NodeIdx b) {
    return mapping.activity[a] > mapping.activity[b];
  });

  std::size_t found = 0;
  std::size_t sat_calls = 0;
  for (const NodeIdx v : roots) {
    if (sat_calls >= options.sat_call_budget || budget.exhausted()) {
      break;  // keep don't-cares found so far; the rest stay care
    }
    const Cut& c = mapping.chosen[v];
    const unsigned n = c.size;
    std::uint64_t observed = 0;
    const unsigned total_bits = 64 * options.sim_words;
    for (unsigned bit = 0; bit < total_bits; ++bit) {
      unsigned m = 0;
      for (unsigned i = 0; i < n; ++i) {
        const auto* w = sim.node_bits(c.leaves[i]);
        if ((w[bit / 64] >> (bit % 64)) & 1ull) {
          m |= 1u << i;
        }
      }
      observed |= 1ull << m;
    }
    std::uint64_t dc_mask = 0;
    for (unsigned m = 0; m < (1u << n); ++m) {
      if ((observed >> m) & 1ull) {
        continue;
      }
      if (sat_calls >= options.sat_call_budget || budget.exhausted()) {
        break;
      }
      std::vector<sat::Lit> assumptions;
      for (unsigned i = 0; i < n; ++i) {
        const sat::Lit l = cnf.lit(logic::make_lit(c.leaves[i]));
        assumptions.push_back(((m >> i) & 1u) != 0 ? l : sat::lit_neg(l));
      }
      ++sat_calls;
      const sat::Status s = solver.solve(assumptions, options.conflict_limit);
      if (s == sat::Status::kUnsat) {
        dc_mask |= 1ull << m;
        ++found;
      }
    }
    mapping.dc[v] = dc_mask & logic::tt6_mask(n);
  }
  util::obs::counter("opt.mfs_runs").add();
  util::obs::counter("opt.mfs_dc_minterms").add(found);
  util::obs::counter("opt.mfs_sat_calls").add(sat_calls);
  return found;
}

}  // namespace cryo::opt
