#pragma once

#include <string_view>

#include "logic/aig.hpp"
#include "map/mapper.hpp"
#include "opt/cost.hpp"
#include "sta/sta.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::core {

class PassRegistry;

/// Options of the three-stage cryogenic-aware synthesis pipeline
/// (paper §V-B).
struct FlowOptions {
  opt::CostPriority priority = opt::CostPriority::kBaselinePowerAware;
  double epsilon = 0.02;
  double input_activity = 0.2;
  bool use_choices = true;       ///< SAT-sweep structural choices (dch)
  bool use_mfs = true;           ///< SAT-based don't-care resub (mfs)
  unsigned lut_k = 6;            ///< k of the power-aware LUT stage (if)
  double clock_estimate = 1e-9;  ///< leakage-vs-dynamic weighting in costs
  std::uint64_t seed = 29;
  /// Per-call SAT conflict ceiling of the dch sweeping stage (`cryoeda
  /// --sat-budget`): a candidate pair whose proof exceeds it stays
  /// unmerged. -1 = unlimited; 0 is rejected by `validate` (it would
  /// silently disable sweeping — use `use_choices = false` for that).
  std::int64_t sat_conflict_budget = 500;
};

/// Reject unusable flow knobs with an actionable std::invalid_argument:
/// `lut_k` outside [2, 16], `epsilon` negative or not finite (0 is
/// valid — it disables tie-break relaxation and is swept by the epsilon
/// ablation), `input_activity` outside (0, 1], `clock_estimate` not a
/// positive finite time, `sat_conflict_budget` zero or below -1. Called
/// by `synthesize` and the experiment drivers on entry.
void validate(const FlowOptions& options);

/// Result of a full synthesis run.
struct FlowResult {
  logic::Aig optimized;   ///< AIG after stages (1) and (2)
  map::Netlist netlist;   ///< after stage (3)
  unsigned initial_ands = 0;
  unsigned after_c2rs = 0;
  unsigned after_power_stage = 0;
  /// True when any pass degraded under a budget (skipped, stopped
  /// early, or reverted). Callers that persist results keyed on inputs
  /// alone (the scenario artifact cache) must not store degraded runs.
  bool degraded = false;
};

/// The three-stage pipeline:
///  (1) technology-independent AIG compression (`c2rs`);
///  (2) power-aware optimization: SAT-sweep choices (`dch`), k-LUT
///      mapping with the configured cost priority (`if`), SAT-based
///      don't-care minimization (`mfs`), re-strash;
///  (3) cryogenic-aware technology mapping (`map`) with the configured
///      priority list.
///
/// Executes `core::canonical_recipe(options)` through the pass pipeline
/// (core/pipeline.hpp); behaviour-identical to the historical
/// hard-coded sequence (asserted bit-for-bit by tests/test_pipeline).
FlowResult synthesize(const logic::Aig& input, const map::CellMatcher& matcher,
                      const FlowOptions& options = {});

/// Synthesize with an explicit recipe string instead of the canonical
/// one — `options` still supplies the shared knobs (epsilon, activity,
/// seeds, defaults for `-K`/`-p`). Throws core::RecipeError on a
/// malformed recipe. If the recipe never runs `map`, the returned
/// netlist is empty. `budget`, when non-null, replaces
/// `util::Budget::global()` for this run (the recipe-search driver
/// gives every variant its own wall-clock budget this way). `registry`,
/// when non-null, resolves pass names instead of the builtin
/// `PassRegistry::global()` — the service's `load_plugin` path compiles
/// recipes against a per-daemon registry copy this way.
FlowResult synthesize_with_recipe(const logic::Aig& input,
                                  const map::CellMatcher& matcher,
                                  const FlowOptions& options,
                                  std::string_view recipe,
                                  util::Budget* budget = nullptr,
                                  const PassRegistry* registry = nullptr);

}  // namespace cryo::core
