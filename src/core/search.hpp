#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/json.hpp"

namespace cryo::core {

/// Recipe-search driver: design-space exploration over pass scripts
/// (the paper's §V-B thesis — synthesis quality comes from reordering
/// and re-parameterizing the flow — turned into a workload). Variants
/// are enumerated deterministically from the Fig. 3 seed recipes,
/// fanned out over `util::ThreadPool` with per-job budgets and fault
/// isolation, and ranked lexicographically by (power, delay, area) —
/// the paper's power-first objective. The per-pass prefix cache
/// (core/pipeline.hpp) is what makes this affordable: variants sharing
/// a script prefix reuse the cached intermediate states.

struct SearchOptions {
  ExperimentOptions experiment;  ///< shared flow/STA knobs + threads
  /// Total variant budget per circuit, *including* the three Fig. 3
  /// seed recipes that always lead the enumeration (so the search can
  /// never report a best worse than the paper's own flows).
  std::size_t variants = 16;
  std::uint64_t seed = 1;  ///< mutation seed (util::Rng; deterministic)
  /// Wall-clock budget of one variant evaluation in seconds; a variant
  /// that blows it degrades and is excluded from "best". 0 = none.
  double per_variant_deadline_s = 0.0;
};

/// Reject unusable search knobs (delegates to the ExperimentOptions
/// validator; additionally rejects a zero variant budget and a negative
/// or non-finite per-variant deadline).
void validate(const SearchOptions& options);

/// Deterministic recipe enumeration: the three Fig. 3 seed recipes
/// first, then mutations (pre-`if` pass order and repetition, `-K` in
/// 3..6, `-p` priorities, dch/mfs on and off, a second LUT round),
/// canonicalized via `Pipeline::parse(...).to_string()`, deduplicated,
/// capped at `count`. Same (flow, count, seed) -> same list.
std::vector<std::string> enumerate_recipes(const FlowOptions& flow,
                                           std::size_t count,
                                           std::uint64_t seed);

/// One evaluated variant on one circuit.
struct RecipeTrial {
  std::string recipe;    ///< canonical print
  ScenarioResult result; ///< signoff figures (ok=false on failure)
};

struct CircuitSearchResult {
  std::string circuit;
  std::vector<RecipeTrial> trials;  ///< in enumeration order
  /// Index of the best OK, non-degraded trial by (power, delay, area)
  /// lexicographic comparison, ties broken by recipe string; -1 when
  /// every trial failed or degraded.
  int best = -1;
};

/// Evaluate every enumerated recipe on every circuit of `suite`
/// (circuits x variants jobs on the shared pool). Each job runs under
/// its own `util::Budget` deadline (per_variant_deadline_s) and is
/// fault-isolated like the fig3 fleet: a throwing variant records its
/// error in the trial row (`search.variant_errors`) instead of sinking
/// the sweep; only global-budget cancellation propagates. Results are
/// deterministic for any thread count.
std::vector<CircuitSearchResult> search_recipes(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const SearchOptions& options);

/// Deterministic JSON search report: the enumerated recipes, then per
/// circuit the best trial and every trial's figures (at the analysis
/// clock — figures of different recipes on one circuit are directly
/// comparable). The first three trials are tagged with their Fig. 3
/// seed names, which is what scripts/check_regression.py --search-from
/// gates the best against.
util::Json search_report(const std::vector<CircuitSearchResult>& results,
                         const SearchOptions& options);

}  // namespace cryo::core
