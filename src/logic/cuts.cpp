#include "logic/cuts.hpp"

#include <algorithm>
#include <stdexcept>

namespace cryo::logic {

bool Cut::contains_all_of(const Cut& other) const {
  // True if other's leaves are a subset of ours => other dominates us.
  if ((other.signature & ~signature) != 0) {
    return false;
  }
  unsigned i = 0;
  for (unsigned j = 0; j < other.size; ++j) {
    while (i < size && leaves[i] < other.leaves[j]) {
      ++i;
    }
    if (i >= size || leaves[i] != other.leaves[j]) {
      return false;
    }
  }
  return true;
}

std::uint64_t tt6_expand(std::uint64_t tt, const NodeIdx* sub_leaves,
                         unsigned sub_size, const NodeIdx* super_leaves,
                         unsigned super_size) {
  // Position of each sub leaf inside the super leaf list.
  std::array<unsigned, Cut::kMaxLeaves> pos{};
  unsigned si = 0;
  for (unsigned j = 0; j < sub_size; ++j) {
    while (si < super_size && super_leaves[si] != sub_leaves[j]) {
      ++si;
    }
    pos[j] = si;
  }
  std::uint64_t out = 0;
  for (unsigned m = 0; m < (1u << super_size); ++m) {
    unsigned sub_m = 0;
    for (unsigned j = 0; j < sub_size; ++j) {
      sub_m |= ((m >> pos[j]) & 1u) << j;
    }
    if (tt6_bit(tt, sub_m)) {
      out |= 1ull << m;
    }
  }
  return out;
}

CutEnumerator::CutEnumerator(const Aig& aig, unsigned k, unsigned max_cuts)
    : aig_{aig}, k_{k}, max_cuts_{max_cuts} {
  if (k > Cut::kMaxLeaves || k < 2) {
    throw std::invalid_argument{"CutEnumerator: k must be in [2, 6]"};
  }
}

void CutEnumerator::run() {
  cuts_.assign(aig_.num_nodes(), {});
  // Constant node: single empty cut with constant-0 function.
  {
    Cut c;
    c.size = 0;
    c.tt = 0;
    cuts_[0].push_back(c);
  }
  for (NodeIdx v = 1; v < aig_.num_nodes(); ++v) {
    if (aig_.is_pi(v)) {
      Cut c;
      c.size = 1;
      c.leaves[0] = v;
      c.tt = 0x2;  // identity over one variable
      c.signature = 1ull << (v & 63u);
      cuts_[v].push_back(c);
    } else {
      merge_node(v);
    }
  }
}

bool CutEnumerator::merge_leaves(const Cut& a, const Cut& b, unsigned k,
                                 Cut& out) {
  unsigned i = 0;
  unsigned j = 0;
  unsigned n = 0;
  while (i < a.size && j < b.size) {
    if (n >= k) {
      return false;
    }
    if (a.leaves[i] == b.leaves[j]) {
      out.leaves[n++] = a.leaves[i];
      ++i;
      ++j;
    } else if (a.leaves[i] < b.leaves[j]) {
      out.leaves[n++] = a.leaves[i++];
    } else {
      out.leaves[n++] = b.leaves[j++];
    }
  }
  while (i < a.size) {
    if (n >= k) {
      return false;
    }
    out.leaves[n++] = a.leaves[i++];
  }
  while (j < b.size) {
    if (n >= k) {
      return false;
    }
    out.leaves[n++] = b.leaves[j++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

void CutEnumerator::merge_node(NodeIdx v) {
  const Lit f0 = aig_.fanin0(v);
  const Lit f1 = aig_.fanin1(v);
  const auto& cuts0 = cuts_[lit_var(f0)];
  const auto& cuts1 = cuts_[lit_var(f1)];

  std::vector<Cut>& out = cuts_[v];
  std::vector<Cut> candidates;
  candidates.reserve(cuts0.size() * cuts1.size());

  for (const Cut& c0 : cuts0) {
    for (const Cut& c1 : cuts1) {
      Cut merged;
      if (!merge_leaves(c0, c1, k_, merged)) {
        continue;
      }
      std::uint64_t t0 = tt6_expand(c0.tt, c0.leaves.data(), c0.size,
                                    merged.leaves.data(), merged.size);
      std::uint64_t t1 = tt6_expand(c1.tt, c1.leaves.data(), c1.size,
                                    merged.leaves.data(), merged.size);
      if (lit_compl(f0)) {
        t0 = ~t0;
      }
      if (lit_compl(f1)) {
        t1 = ~t1;
      }
      merged.tt = (t0 & t1) & tt6_mask(merged.size);
      candidates.push_back(merged);
    }
  }

  // Dominance filtering: drop any cut that is a superset of another.
  std::sort(candidates.begin(), candidates.end(),
            [](const Cut& a, const Cut& b) { return a.size < b.size; });
  for (const Cut& cand : candidates) {
    bool dominated = false;
    for (const Cut& kept : out) {
      if (cand.contains_all_of(kept)) {
        dominated = true;
        break;
      }
    }
    if (!dominated && out.size() < max_cuts_) {
      out.push_back(cand);
    }
  }

  // Always include the trivial cut so the node itself stays mappable.
  Cut trivial;
  trivial.size = 1;
  trivial.leaves[0] = v;
  trivial.tt = 0x2;
  trivial.signature = 1ull << (v & 63u);
  out.push_back(trivial);
}

}  // namespace cryo::logic
