#!/usr/bin/env python3
"""Regression gate over cryoeda run reports.

Compares a freshly generated ``report.json`` (see ``util::obs``) against
a checked-in baseline and fails when a quality figure drifts:

* every ``experiment.<circuit>.<scenario>.*`` gauge in the baseline must
  be present in the fresh report and must not be *worse* than the
  baseline by more than ``--rel-tol`` (delay / area / power / gate
  count — the normalized Fig. 3 figures, all lower-is-better).
  Improvements beyond the tolerance are reported as advisory notes (a
  hint to refresh the baseline), not failures: the quality gate exists
  to catch regressions, while bit-level reproducibility is the job of
  the much tighter counter gate below;
* total wall time (``meta.wall_s``) may grow by at most ``--wall-slack``
  x the baseline (a coarse guard against order-of-magnitude slowdowns).
  Baselines are typically recorded on a developer machine while CI runs
  on shared runners of unknown speed, so pass ``--wall-advisory`` in CI
  to print the comparison without failing on it; the hard wall gate only
  makes sense when baseline and fresh report come from the same machine
  class. The canonical signoff ``report.json`` carries no wall clock, so
  pass ``--fresh-wall-from cryoeda_out/BENCH_<name>.json`` to source the
  fresh wall time from the full diagnostic report;
* schema versions must match;
* with ``--fail-on-degraded``, any nonzero degradation counter
  (``pass.*.degraded``, ``fleet.scenario_errors``) in the fresh report —
  or in an extra report named by ``--degradation-from`` — fails the gate.
  A baseline-gated signoff run is expected to be clean: degradation means
  the quality figures were produced by a partially skipped flow, so the
  comparison is not measuring what the baseline measured.

* with ``--counters-from``, deterministic work counters are gated
  *symmetrically*: every counter present in the named baseline file
  must agree with the fresh report within ``--counter-tol`` (default
  0.5 %) in **both** directions. The counters
  (``map.matches_tried``, ``map.candidate_cuts``, ``sat.conflicts``,
  ...) count algorithmic work, not wall time, so on a pinned
  single-thread cold-cache run they are exactly reproducible; any
  drift — growth *or* shrinkage — means the algorithm changed and the
  baseline must be re-frozen deliberately. Reads the fresh counters
  from FRESH unless ``--counters-report`` points at a different report
  (the canonical signoff report strips counters; point it at the full
  ``BENCH_<name>.json``). Works standalone (no BASELINE/FRESH) or
  combined with the baseline gate;

* with ``--search-from``, a ``cryoeda --search`` report is gated: every
  circuit's searched best must be a clean (ok, non-degraded) trial whose
  power is no worse than the best clean Fig. 3 seed trial of the same
  report, within ``--rel-tol``. Works standalone (no BASELINE/FRESH) or
  combined with the baseline gate;

* with ``--matrix-from``, a ``cryoeda matrix`` report
  (``cryoeda-matrix-v1``) is gated: every corner and every per-bench row
  must be ok (fault-isolated failures are *visible* in the report, and
  a gated smoke run must be clean). With ``--matrix-baseline``, the
  fresh report is additionally compared against a frozen baseline: the
  corner grid (labels, in order), the canonical library names, and the
  backend identity must match *exactly* — a silently renamed library
  means the preset/backend cache-key seam moved — while the per-scenario
  quality figures (power / delay / area / gates, lower-is-better) and
  the headline power savings (higher-is-better) are gated within
  ``--rel-tol``. Works standalone (no BASELINE/FRESH) or combined with
  the baseline gate.

Exit code 0 = gate passed, 1 = regression detected, 2 = usage/IO error.

Typical use (CI)::

    build/bench/fig3_synthesis
    python3 scripts/check_regression.py \
        bench/baselines/fig3_baseline.json cryoeda_out/report.json
"""

import argparse
import json
import sys


def fail_usage(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path, what):
    """Parse ``path`` or exit 2 with a message naming the exact problem.

    Missing file, unreadable file, and invalid JSON each get their own
    diagnostic so a CI log immediately shows whether the bench run never
    produced the report, produced a truncated one, or the path is wrong.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        fail_usage(f"{what} not found: {path} — did the bench run produce it?")
    except OSError as err:
        fail_usage(f"cannot read {what} {path}: {err.strerror or err}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        fail_usage(f"{what} {path} is not valid JSON "
                   f"(line {err.lineno}, column {err.colno}: {err.msg}) — "
                   "truncated or partially written report?")


def load_report(path, what="report"):
    report = load_json(path, what)
    if not isinstance(report, dict) or "schema" not in report:
        fail_usage(f"{what} {path} is not a cryoeda run report "
                   "(expected a JSON object with a 'schema' field)")
    return report


def numeric_gauges(report, path):
    """The report's gauge map with every value checked to be a number."""
    gauges = report.get("gauges", {})
    if not isinstance(gauges, dict):
        fail_usage(f"{path}: 'gauges' is {type(gauges).__name__}, "
                   "expected an object")
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail_usage(f"{path}: gauge {name!r} is {value!r}, "
                       "expected a number")
    return gauges


def wall_seconds(report, path):
    """meta.wall_s as a positive float, or None when absent/unusable."""
    meta = report.get("meta", {})
    if not isinstance(meta, dict):
        return None
    wall = meta.get("wall_s")
    if isinstance(wall, bool) or not isinstance(wall, (int, float)):
        return None
    if wall <= 0:
        print(f"note: {path} has non-positive meta.wall_s ({wall}); "
              "skipping wall comparison")
        return None
    return float(wall)


def degraded_counters(report, path):
    """Nonzero degradation counters from a report, as a sorted name->value
    dict.

    Reads both the dedicated ``degradation`` section (full diagnostic
    reports) and the ``counters`` section (in case the section was
    filtered out); the signoff report carries neither, which is why
    ``--degradation-from`` exists to point at the BENCH_<name>.json.
    ``cache.retries`` / ``cache.quarantined`` are resilience events, not
    degradation — the flow recovered — so they are reported but never
    counted against the gate.
    """
    found = {}
    for section in ("degradation", "counters"):
        values = report.get(section, {})
        if not isinstance(values, dict):
            fail_usage(f"{path}: '{section}' is {type(values).__name__}, "
                       "expected an object")
        for name, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            is_degradation = (name.endswith(".degraded")
                              or name == "fleet.scenario_errors")
            if is_degradation and value != 0:
                found[name] = value
    return dict(sorted(found.items()))


def rel_diff(baseline, fresh):
    if baseline == fresh:
        return 0.0
    scale = max(abs(baseline), abs(fresh))
    return abs(fresh - baseline) / scale if scale > 0 else float("inf")


def numeric_counters(report, path):
    """The report's counter map restricted to numeric values."""
    counters = report.get("counters", {})
    if not isinstance(counters, dict):
        fail_usage(f"{path}: 'counters' is {type(counters).__name__}, "
                   "expected an object")
    return {name: value for name, value in counters.items()
            if not isinstance(value, bool)
            and isinstance(value, (int, float))}


def check_counters(baseline_path, fresh_report, fresh_path, counter_tol):
    """Symmetric gate over deterministic work counters.

    Every numeric counter in the baseline file must be present in the
    fresh report and agree within ``counter_tol`` relative drift — in
    both directions. A counter that *shrinks* fails just like one that
    grows: these counters are exactly reproducible on a pinned run, so
    any movement is an unreviewed algorithm change, and an "improvement"
    that nobody froze into the baseline is indistinguishable from a
    search-space loss.
    """
    base = load_report(baseline_path, "counter baseline")
    base_counters = numeric_counters(base, baseline_path)
    fresh_counters = numeric_counters(fresh_report, fresh_path)
    if not base_counters:
        fail_usage(f"counter baseline {baseline_path} has no numeric "
                   "counters — nothing to gate on")

    failures = []
    worst = (0.0, None)
    for name in sorted(base_counters):
        baseline_value = base_counters[name]
        if name not in fresh_counters:
            failures.append(f"counter {name}: missing from {fresh_path}")
            continue
        fresh_value = fresh_counters[name]
        drift = rel_diff(baseline_value, fresh_value)
        if drift > worst[0]:
            worst = (drift, name)
        if drift > counter_tol:
            direction = "grew" if fresh_value > baseline_value else "shrank"
            failures.append(
                f"counter {name}: {baseline_value:g} -> {fresh_value:g} "
                f"({direction}; drift {drift * 100.0:.3f} % > tol "
                f"{counter_tol * 100.0:.3f} %) — re-freeze the baseline "
                "if this change is intentional")
    if worst[1] is not None:
        print(f"checked {len(base_counters)} counters from "
              f"{baseline_path}; worst drift {worst[0] * 100.0:.3f} % "
              f"({worst[1]})")
    return failures


def check_search_report(path, rel_tol):
    """Gate a ``cryoeda --search`` report: searched-best quality must be
    no worse than the Fig. 3 seed recipes.

    The report tags its first three trials with the seed names
    (baseline / pad / pda); all trials of a circuit ran at the same
    corner and analysis clock, so the power figures are directly
    comparable. Fails when a circuit has no clean best, no clean seed to
    gate against, or a best whose power exceeds the best seed by more
    than ``rel_tol`` (the seeds lead the enumeration, so anything worse
    means the ranking itself is broken).
    """
    report = load_json(path, "search report")
    if not isinstance(report, dict) or \
            report.get("schema") != "cryoeda-search-v1":
        fail_usage(f"search report {path} is not a cryoeda search report "
                   "(expected schema 'cryoeda-search-v1')")
    circuits = report.get("circuits")
    if not isinstance(circuits, list) or not circuits:
        fail_usage(f"search report {path} has no circuits")

    failures = []
    for circuit in circuits:
        name = circuit.get("circuit", "<unnamed>")
        best = circuit.get("best")
        if not isinstance(best, dict) or not best.get("ok") \
                or best.get("degraded"):
            failures.append(
                f"search[{name}]: no clean best trial — every variant "
                "failed or degraded")
            continue
        seeds = {label: trial
                 for label, trial in circuit.get("seeds", {}).items()
                 if isinstance(trial, dict) and trial.get("ok")
                 and not trial.get("degraded")}
        if not seeds:
            failures.append(
                f"search[{name}]: no clean Fig. 3 seed trial to gate "
                "against (all seeds failed or degraded)")
            continue
        seed_label, seed_trial = min(
            seeds.items(), key=lambda item: item[1]["power_w"])
        best_power = best["power_w"]
        seed_power = seed_trial["power_w"]
        print(f"search[{name}]: best {best_power:.6g} W "
              f"({best.get('recipe')}) vs seed '{seed_label}' "
              f"{seed_power:.6g} W")
        if best_power > seed_power * (1.0 + rel_tol):
            failures.append(
                f"search[{name}]: searched best ({best_power:.6g} W) is "
                f"worse than the '{seed_label}' seed ({seed_power:.6g} W) "
                f"beyond tol {rel_tol * 100.0:.2f} % — the seeds lead the "
                "enumeration, so the ranking is broken")
    return failures


SCENARIO_FIGURES = ("total_power_w", "delay_s", "area_um2", "gates")
SAVING_FIGURES = ("power_saving_pad", "power_saving_pda")


def check_matrix_report(path, baseline_path, rel_tol):
    """Gate a ``cryoeda matrix`` report (schema ``cryoeda-matrix-v1``).

    Always: every corner and every per-bench row must be ok. The matrix
    runner isolates per-corner and per-row faults so a crash degrades
    only its own entry — which is exactly why a *gated* smoke run must
    come back fully clean: an entry marked failed means a corner of the
    envelope silently stopped being covered.

    With a frozen baseline: the corner grid must be structurally
    identical (same labels in the same order, same canonical library
    names, same backend identity) — library names encode the
    (preset, backend, temperature) cache key, so a rename here means
    cached characterizations would alias or silently go cold. Quality
    figures are then gated like the Fig. 3 gauges: per-scenario
    power / delay / area / gate count may not be *worse* than the
    baseline beyond ``rel_tol`` (improvements are advisory), and the
    headline power savings may not *shrink* beyond ``rel_tol``.
    """
    report = load_json(path, "matrix report")
    if not isinstance(report, dict) or \
            report.get("schema") != "cryoeda-matrix-v1":
        fail_usage(f"matrix report {path} is not a cryoeda matrix report "
                   "(expected schema 'cryoeda-matrix-v1')")
    corners = report.get("corners")
    if not isinstance(corners, list) or not corners:
        fail_usage(f"matrix report {path} has no corners")

    failures = []
    rows_seen = 0
    for corner in corners:
        label = corner.get("label", "<unlabeled>")
        if not corner.get("ok"):
            failures.append(
                f"matrix[{label}]: corner failed "
                f"({corner.get('error_kind', '?')}: "
                f"{corner.get('error', 'no diagnostic')})")
            continue
        for row in corner.get("rows", []):
            rows_seen += 1
            if not row.get("ok"):
                failures.append(
                    f"matrix[{label}/{row.get('bench', '?')}]: row failed "
                    f"({row.get('error_kind', '?')}: "
                    f"{row.get('error', 'no diagnostic')})")
    summary = report.get("summary", {})
    if isinstance(summary, dict) and not summary.get("all_ok") \
            and not failures:
        failures.append(
            f"matrix report {path}: summary.all_ok is false but every "
            "corner and row claims ok — inconsistent report")
    print(f"matrix: {len(corners)} corners, {rows_seen} rows, backend "
          f"{report.get('backend', '?')!r}")

    if baseline_path is None:
        return failures

    base = load_json(baseline_path, "matrix baseline")
    if not isinstance(base, dict) or \
            base.get("schema") != "cryoeda-matrix-v1":
        fail_usage(f"matrix baseline {baseline_path} is not a cryoeda "
                   "matrix report (expected schema 'cryoeda-matrix-v1')")
    if base.get("backend") != report.get("backend"):
        failures.append(
            f"matrix backend changed: baseline {base.get('backend')!r} vs "
            f"fresh {report.get('backend')!r} — refreeze the baseline if "
            "the engine change is intentional")
    base_corners = base.get("corners")
    if not isinstance(base_corners, list) or not base_corners:
        fail_usage(f"matrix baseline {baseline_path} has no corners")

    base_labels = [c.get("label") for c in base_corners]
    fresh_labels = [c.get("label") for c in corners]
    if base_labels != fresh_labels:
        failures.append(
            f"matrix corner grid changed: baseline {base_labels} vs "
            f"fresh {fresh_labels} — the smoke grid is part of the "
            "frozen contract")
        return failures

    checked = 0
    worst = (0.0, None)
    improvements = []

    def gate(name, baseline_value, fresh_value, lower_is_better):
        nonlocal checked, worst
        if isinstance(baseline_value, bool) or isinstance(fresh_value, bool) \
                or not isinstance(baseline_value, (int, float)) \
                or not isinstance(fresh_value, (int, float)):
            failures.append(f"{name}: non-numeric figure "
                            f"({baseline_value!r} vs {fresh_value!r})")
            return
        drift = rel_diff(baseline_value, fresh_value)
        checked += 1
        if drift > worst[0]:
            worst = (drift, name)
        if drift <= rel_tol:
            return
        got_worse = (fresh_value > baseline_value) == lower_is_better
        line = (f"{name}: {baseline_value:.6g} -> {fresh_value:.6g} "
                f"({drift * 100.0:.2f} %)")
        if got_worse:
            failures.append(f"{line} — worse beyond tol "
                            f"{rel_tol * 100.0:.2f} %")
        else:
            improvements.append(line)

    for base_corner, fresh_corner in zip(base_corners, corners):
        label = base_corner.get("label", "<unlabeled>")
        if base_corner.get("library") != fresh_corner.get("library"):
            failures.append(
                f"matrix[{label}]: canonical library name changed: "
                f"{base_corner.get('library')!r} -> "
                f"{fresh_corner.get('library')!r} — the name encodes the "
                "(preset, backend, temperature) cache key")
        if not base_corner.get("ok"):
            # A baseline with failed corners gates nothing there; the
            # ok-gate above already handles the fresh side.
            continue
        fresh_rows = {row.get("bench"): row
                      for row in fresh_corner.get("rows", [])}
        for base_row in base_corner.get("rows", []):
            bench = base_row.get("bench", "<unnamed>")
            where = f"matrix[{label}/{bench}]"
            fresh_row = fresh_rows.get(bench)
            if fresh_row is None:
                failures.append(f"{where}: bench missing from fresh report")
                continue
            if not base_row.get("ok") or not fresh_row.get("ok"):
                continue  # the ok-gate above already flagged fresh failures
            base_scenarios = base_row.get("scenarios", [])
            fresh_scenarios = fresh_row.get("scenarios", [])
            if len(base_scenarios) != len(fresh_scenarios):
                failures.append(
                    f"{where}: scenario count changed "
                    f"({len(base_scenarios)} -> {len(fresh_scenarios)})")
                continue
            for base_s, fresh_s in zip(base_scenarios, fresh_scenarios):
                scenario = base_s.get("scenario", "?")
                for figure in SCENARIO_FIGURES:
                    gate(f"{where}.{scenario}.{figure}",
                         base_s.get(figure), fresh_s.get(figure),
                         lower_is_better=True)
            for figure in SAVING_FIGURES:
                gate(f"{where}.{figure}",
                     base_row.get(figure), fresh_row.get(figure),
                     lower_is_better=False)

    if improvements:
        print(f"note: {len(improvements)} matrix figure(s) improved beyond "
              f"{rel_tol * 100.0:.2f} % — consider refreshing the baseline:")
        for line in improvements:
            print(f"  + {line}")
    if worst[1] is not None:
        print(f"checked {checked} matrix figures vs {baseline_path}; "
              f"worst drift {worst[0] * 100.0:.3f} % ({worst[1]})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?",
                        help="checked-in baseline report")
    parser.add_argument("fresh", nargs="?",
                        help="freshly generated report")
    parser.add_argument(
        "--rel-tol", type=float, default=0.05,
        help="max relative drift for quality gauges (default %(default)s)")
    parser.add_argument(
        "--wall-slack", type=float, default=3.0,
        help="max wall-time growth factor vs baseline (default %(default)s)")
    parser.add_argument(
        "--wall-advisory", action="store_true",
        help="report wall-time drift without failing the gate (use when "
             "baseline and fresh report come from different machines)")
    parser.add_argument(
        "--prefix", default="experiment.",
        help="gauge prefix under the gate (default %(default)s)")
    parser.add_argument(
        "--fresh-wall-from", metavar="PATH",
        help="read the fresh side's meta.wall_s from this report instead "
             "of FRESH (the canonical signoff report carries no wall "
             "clock; point this at the full BENCH_<name>.json)")
    parser.add_argument(
        "--fail-on-degraded", action="store_true",
        help="fail the gate when any pass.*.degraded or "
             "fleet.scenario_errors counter is nonzero (a baseline-gated "
             "run must not silently compare a degraded flow)")
    parser.add_argument(
        "--degradation-from", metavar="PATH",
        help="additionally scan this report for degradation counters "
             "(the signoff report excludes them; point this at the full "
             "BENCH_<name>.json)")
    parser.add_argument(
        "--counters-from", metavar="PATH",
        help="gate deterministic work counters against this baseline "
             "report: every counter it lists must match the fresh "
             "counters within --counter-tol in both directions (growth "
             "and shrinkage both fail); usable alone or alongside "
             "BASELINE FRESH")
    parser.add_argument(
        "--counters-report", metavar="PATH",
        help="read the fresh side's counters from this report instead of "
             "FRESH (the canonical signoff report strips counters; point "
             "this at the full BENCH_<name>.json)")
    parser.add_argument(
        "--counter-tol", type=float, default=0.005,
        help="max symmetric relative drift for gated counters "
             "(default %(default)s)")
    parser.add_argument(
        "--search-from", metavar="PATH",
        help="gate a 'cryoeda --search' report: every circuit's searched "
             "best must be a clean trial no worse (in power, within "
             "--rel-tol) than the best clean Fig. 3 seed trial of the "
             "same report; usable alone or alongside BASELINE FRESH")
    parser.add_argument(
        "--matrix-from", metavar="PATH",
        help="gate a 'cryoeda matrix' report (cryoeda-matrix-v1): every "
             "corner and per-bench row must be ok; usable alone or "
             "alongside BASELINE FRESH")
    parser.add_argument(
        "--matrix-baseline", metavar="PATH",
        help="additionally compare the --matrix-from report against this "
             "frozen baseline: the corner grid, library names and backend "
             "identity must match exactly, and quality figures must be no "
             "worse than the baseline within --rel-tol")
    args = parser.parse_args()

    if (args.baseline is None) != (args.fresh is None):
        fail_usage("give both BASELINE and FRESH, or neither "
                   "(with --search-from / --counters-from)")
    if args.baseline is None and not args.search_from \
            and not args.counters_from and not args.matrix_from:
        fail_usage("nothing to gate: give BASELINE FRESH, --search-from "
                   "PATH, --counters-from PATH, --matrix-from PATH, or a "
                   "combination")
    if args.counters_from and args.baseline is None \
            and not args.counters_report:
        fail_usage("--counters-from without BASELINE FRESH needs "
                   "--counters-report to name the fresh report")
    if args.matrix_baseline and not args.matrix_from:
        fail_usage("--matrix-baseline needs --matrix-from to name the "
                   "fresh matrix report")

    if args.baseline is None:
        failures = []
        if args.counters_from:
            counters_source = load_report(args.counters_report,
                                          "fresh counter report")
            failures.extend(check_counters(
                args.counters_from, counters_source, args.counters_report,
                args.counter_tol))
        if args.search_from:
            failures.extend(
                check_search_report(args.search_from, args.rel_tol))
        if args.matrix_from:
            failures.extend(check_matrix_report(
                args.matrix_from, args.matrix_baseline, args.rel_tol))
        if failures:
            print(f"\nREGRESSION GATE FAILED ({len(failures)} issue(s)):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("regression gate passed")
        return 0

    base = load_report(args.baseline, "baseline report")
    fresh = load_report(args.fresh, "fresh report")
    wall_source = fresh
    wall_source_path = args.fresh
    if args.fresh_wall_from:
        wall_source = load_report(args.fresh_wall_from, "wall-time report")
        wall_source_path = args.fresh_wall_from

    failures = []
    checked = 0

    if base.get("schema") != fresh.get("schema"):
        failures.append(
            f"schema mismatch: baseline {base.get('schema')!r} vs "
            f"fresh {fresh.get('schema')!r}")

    base_gauges = numeric_gauges(base, args.baseline)
    fresh_gauges = numeric_gauges(fresh, args.fresh)
    gated = {k: v for k, v in base_gauges.items()
             if k.startswith(args.prefix)}
    if not gated:
        failures.append(
            f"baseline has no gauges under prefix {args.prefix!r} — "
            "nothing to gate on (stale baseline?)")

    worst = (0.0, None)
    improvements = []
    for name in sorted(gated):
        baseline_value = gated[name]
        if name not in fresh_gauges:
            failures.append(f"{name}: missing from fresh report")
            continue
        fresh_value = fresh_gauges[name]
        drift = rel_diff(baseline_value, fresh_value)
        checked += 1
        if drift > worst[0]:
            worst = (drift, name)
        if drift > args.rel_tol:
            # Gated gauges are quality figures where lower is better;
            # only movement *toward worse* fails. Large improvements are
            # surfaced so the baseline gets re-frozen, keeping the gate
            # tight around current behavior.
            if fresh_value > baseline_value:
                failures.append(
                    f"{name}: {baseline_value:.6g} -> {fresh_value:.6g} "
                    f"(worse by {drift * 100.0:.2f} % > tol "
                    f"{args.rel_tol * 100.0:.2f} %)")
            else:
                improvements.append(
                    f"{name}: {baseline_value:.6g} -> {fresh_value:.6g} "
                    f"(better by {drift * 100.0:.2f} %)")
    if improvements:
        print(f"note: {len(improvements)} gauge(s) improved beyond "
              f"{args.rel_tol * 100.0:.2f} % — consider refreshing the "
              "baseline:")
        for line in improvements:
            print(f"  + {line}")

    new_keys = sorted(k for k in fresh_gauges
                      if k.startswith(args.prefix) and k not in base_gauges)
    if new_keys:
        print(f"note: {len(new_keys)} gauge(s) not in baseline "
              f"(e.g. {new_keys[0]}) — refresh the baseline to gate them")

    base_wall = wall_seconds(base, args.baseline)
    fresh_wall = wall_seconds(wall_source, wall_source_path)
    if base_wall and fresh_wall:
        factor = fresh_wall / base_wall
        print(f"wall time: baseline {base_wall:.1f} s, fresh "
              f"{fresh_wall:.1f} s ({factor:.2f}x, slack "
              f"{args.wall_slack:.2f}x)")
        if factor > args.wall_slack:
            message = (
                f"wall time regression: {base_wall:.1f} s -> "
                f"{fresh_wall:.1f} s ({factor:.2f}x > {args.wall_slack:.2f}x)")
            if args.wall_advisory:
                print(f"warning (advisory): {message}")
            else:
                failures.append(message)
    else:
        print("wall time: not compared (meta.wall_s missing on one side)")

    degraded = degraded_counters(fresh, args.fresh)
    degraded_path = args.fresh
    if args.degradation_from:
        extra = load_report(args.degradation_from, "degradation report")
        extra_degraded = degraded_counters(extra, args.degradation_from)
        if extra_degraded:
            degraded = dict(sorted({**degraded, **extra_degraded}.items()))
            degraded_path = args.degradation_from
    if degraded:
        print(f"degradation in {degraded_path}:")
        for name, value in degraded.items():
            print(f"  {name} = {value:g}")
        if args.fail_on_degraded:
            failures.append(
                f"{len(degraded)} nonzero degradation counter(s) in "
                f"{degraded_path} (e.g. {next(iter(degraded))}) — the "
                "gated quality figures come from a degraded flow")
    elif args.fail_on_degraded:
        print("degradation: none (clean flow)")

    if args.counters_from:
        counters_source = fresh
        counters_source_path = args.fresh
        if args.counters_report:
            counters_source = load_report(args.counters_report,
                                          "fresh counter report")
            counters_source_path = args.counters_report
        failures.extend(check_counters(
            args.counters_from, counters_source, counters_source_path,
            args.counter_tol))

    if args.search_from:
        failures.extend(check_search_report(args.search_from, args.rel_tol))

    if args.matrix_from:
        failures.extend(check_matrix_report(
            args.matrix_from, args.matrix_baseline, args.rel_tol))

    if worst[1] is not None:
        print(f"checked {checked} gauges under {args.prefix!r}; worst drift "
              f"{worst[0] * 100.0:.3f} % ({worst[1]})")

    if failures:
        print(f"\nREGRESSION GATE FAILED ({len(failures)} issue(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
