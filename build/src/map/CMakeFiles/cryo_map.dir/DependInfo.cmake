
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/mapper.cpp" "src/map/CMakeFiles/cryo_map.dir/mapper.cpp.o" "gcc" "src/map/CMakeFiles/cryo_map.dir/mapper.cpp.o.d"
  "/root/repo/src/map/matcher.cpp" "src/map/CMakeFiles/cryo_map.dir/matcher.cpp.o" "gcc" "src/map/CMakeFiles/cryo_map.dir/matcher.cpp.o.d"
  "/root/repo/src/map/netlist.cpp" "src/map/CMakeFiles/cryo_map.dir/netlist.cpp.o" "gcc" "src/map/CMakeFiles/cryo_map.dir/netlist.cpp.o.d"
  "/root/repo/src/map/verilog.cpp" "src/map/CMakeFiles/cryo_map.dir/verilog.cpp.o" "gcc" "src/map/CMakeFiles/cryo_map.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/cryo_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/cryo_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cryo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cryo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
