#include "util/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace cryo::util::obs {

namespace detail {

namespace {
bool enabled_from_env() {
  const char* env = std::getenv("CRYOEDA_OBS");
  return env == nullptr || std::string_view{env} != "0";
}
}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

/// Histogram sums are accumulated by CAS in whatever order the threads
/// arrive, so the low-order bits depend on scheduling. Rounding to nine
/// significant digits at dump time keeps reports thread-count
/// independent for any realistically conditioned sum while losing
/// nothing anyone gates on (the regression tolerance is percent-level).
double round_sum(double v) {
  if (v == 0.0 || !std::isfinite(v)) {
    return v;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return std::strtod(buf, nullptr);
}

const char* unit_name(Unit unit) {
  switch (unit) {
    case Unit::kCount: return "count";
    case Unit::kSeconds: return "s";
    case Unit::kWallSeconds: return "wall_s";
    case Unit::kBytes: return "bytes";
    case Unit::kNodes: return "nodes";
  }
  return "count";
}

}  // namespace

void Gauge::max(double v) {
  if (enabled()) {
    atomic_max(value_, v);
  }
}

void Histogram::record(double v) {
  if (!enabled() || std::isnan(v)) {
    return;
  }
  int index = 0;
  if (v > 0.0) {
    int exp = 0;
    const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    if (m == 0.5) {
      --exp;  // exact power of two: keep v <= 2^exp tight
    }
    index = std::clamp(exp - kMinExponent + 1, 1, kBuckets - 1);
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::bucket_le(int i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, kMinExponent + i - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------- registry ----

namespace {

// `unit` is atomic because registration happens on worker threads
// (cells::characterize registers histograms inside parallel_map), so a
// first registration can race another thread's registration or a
// concurrent report dump after `lookup` has dropped the registry lock.
struct GaugeEntry {
  Gauge gauge;
  std::atomic<Unit> unit{Unit::kCount};
};

struct HistogramEntry {
  Histogram histogram;
  std::atomic<Unit> unit{Unit::kCount};
};

class Registry {
public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  Counter& counter(std::string_view name) {
    return lookup(counters_, name);
  }
  GaugeEntry& gauge(std::string_view name, Unit unit) {
    GaugeEntry& entry = lookup(gauges_, name);
    return fix_unit(entry, unit);
  }
  HistogramEntry& histogram(std::string_view name, Unit unit) {
    HistogramEntry& entry = lookup(histograms_, name);
    return fix_unit(entry, unit);
  }

  std::int64_t now_ns() const {
    return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
  }

  std::uint32_t alloc_span_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint32_t thread_id() {
    thread_local std::uint32_t id =
        next_thread_id_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  void add_span(SpanRecord record) {
    const std::lock_guard<std::mutex> lock{span_mutex_};
    spans_.push_back(std::move(record));
  }

  void reset() {
    const std::unique_lock<std::shared_mutex> lock{mutex_};
    for (auto& [name, c] : counters_) {
      c.reset();
    }
    for (auto& [name, g] : gauges_) {
      g.gauge.reset();
    }
    for (auto& [name, h] : histograms_) {
      h.histogram.reset();
    }
    {
      const std::lock_guard<std::mutex> span_lock{span_mutex_};
      spans_.clear();
      next_span_id_.store(1, std::memory_order_relaxed);
    }
    // Atomic: ScopedSpan reads the epoch from any thread without a
    // lock, and a reset may overlap a live span.
    epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  }

  Json to_json(const ReportOptions& options) const {
    Json report = Json::object();
    report["schema"] = Json{"cryoeda-report-v1"};
    if (options.include_meta) {
      Json meta = Json::object();
      if (!options.flow.empty()) {
        meta["flow"] = Json{options.flow};
      }
      meta["threads"] = Json{resolve_threads(0)};
      meta["wall_s"] = Json{static_cast<double>(now_ns()) * 1e-9};
      meta["unix_ms"] =
          Json{std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count()};
      report["meta"] = std::move(meta);
    }

    const std::shared_lock<std::shared_mutex> lock{mutex_};
    if (options.include_counters) {
      Json counters = Json::object();
      for (const auto& [name, c] : counters_) {
        counters[name] = Json{c.get()};
      }
      report["counters"] = std::move(counters);
    }

    if (options.include_degradation) {
      // Nonzero robustness counters in one section: which passes
      // degraded, how often the cache retried or quarantined, and how
      // many fleet scenarios failed. Absent entirely on a clean run.
      Json degradation = Json::object();
      for (const auto& [name, c] : counters_) {
        const bool relevant =
            (name.size() > 9 &&
             name.compare(name.size() - 9, 9, ".degraded") == 0) ||
            name == "cache.retries" || name == "cache.quarantined" ||
            name == "cache.degraded_skips" || name == "fleet.scenario_errors";
        if (relevant && c.get() != 0) {
          degradation[name] = Json{c.get()};
        }
      }
      if (!degradation.members().empty()) {
        report["degradation"] = std::move(degradation);
      }
    }

    Json gauges = Json::object();
    for (const auto& [name, g] : gauges_) {
      const Unit unit = g.unit.load(std::memory_order_relaxed);
      if (unit == Unit::kWallSeconds && !options.include_wallclock) {
        continue;
      }
      if (unit == Unit::kNodes && !options.include_diagnostics) {
        continue;
      }
      gauges[name] = Json{g.gauge.get()};
    }
    report["gauges"] = std::move(gauges);

    if (options.include_histograms) {
      Json histograms = Json::object();
      for (const auto& [name, h] : histograms_) {
        const Unit unit = h.unit.load(std::memory_order_relaxed);
        if (unit == Unit::kWallSeconds && !options.include_wallclock) {
          continue;
        }
        if (unit == Unit::kNodes && !options.include_diagnostics) {
          continue;
        }
        const auto& hist = h.histogram;
        Json entry = Json::object();
        entry["unit"] = Json{unit_name(unit)};
        const std::uint64_t n = hist.count();
        entry["count"] = Json{n};
        entry["sum"] = Json{n > 0 ? round_sum(hist.sum()) : 0.0};
        entry["min"] = Json{n > 0 ? hist.min() : 0.0};
        entry["max"] = Json{n > 0 ? hist.max() : 0.0};
        Json buckets = Json::array();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (hist.bucket(i) > 0) {
            Json pair = Json::array();
            pair.push_back(Json{Histogram::bucket_le(i)});
            pair.push_back(Json{hist.bucket(i)});
            buckets.push_back(std::move(pair));
          }
        }
        entry["buckets"] = std::move(buckets);
        histograms[name] = std::move(entry);
      }
      report["histograms"] = std::move(histograms);
    }

    if (options.include_spans) {
      std::vector<SpanRecord> spans;
      {
        const std::lock_guard<std::mutex> span_lock{span_mutex_};
        spans = spans_;
      }
      std::sort(spans.begin(), spans.end(),
                [](const SpanRecord& a, const SpanRecord& b) {
                  return a.id < b.id;
                });
      Json arr = Json::array();
      for (const auto& s : spans) {
        Json span = Json::object();
        span["name"] = Json{s.name};
        span["id"] = Json{s.id};
        span["parent"] = Json{s.parent};
        span["thread"] = Json{s.thread};
        span["start_ns"] = Json{s.start_ns};
        span["dur_ns"] = Json{s.end_ns - s.start_ns};
        arr.push_back(std::move(span));
      }
      report["spans"] = std::move(arr);
    }
    return report;
  }

private:
  Registry() : epoch_ns_{steady_ns()} {}

  static std::int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Find-or-create with a double-checked shared/unique lock. std::map
  /// nodes are address-stable, so returned references survive later
  /// insertions (and `reset`, which only zeroes values).
  template <typename M>
  typename M::mapped_type& lookup(M& entries, std::string_view name) {
    {
      const std::shared_lock<std::shared_mutex> lock{mutex_};
      const auto it = entries.find(name);
      if (it != entries.end()) {
        return it->second;
      }
    }
    const std::unique_lock<std::shared_mutex> lock{mutex_};
    return entries.try_emplace(std::string{name}).first->second;
  }

  template <typename E>
  E& fix_unit(E& entry, Unit unit) {
    // First registration fixes the unit; later callers must agree (a
    // kCount default from a stray lookup is upgraded silently). CAS so
    // concurrent first registrations settle on one writer.
    if (unit != Unit::kCount) {
      Unit expected = Unit::kCount;
      entry.unit.compare_exchange_strong(expected, unit,
                                         std::memory_order_relaxed);
    }
    return entry;
  }

  mutable std::shared_mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, GaugeEntry, std::less<>> gauges_;
  std::map<std::string, HistogramEntry, std::less<>> histograms_;

  mutable std::mutex span_mutex_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint32_t> next_span_id_{1};
  std::atomic<std::uint32_t> next_thread_id_{1};
  std::atomic<std::int64_t> epoch_ns_;
};

thread_local std::uint32_t t_current_span = 0;

}  // namespace

// ------------------------------------------------------------- spans ----

ScopedSpan::ScopedSpan(std::string name) {
  if (!enabled()) {
    return;
  }
  auto& reg = Registry::instance();
  active_ = true;
  name_ = std::move(name);
  id_ = reg.alloc_span_id();
  parent_ = t_current_span;
  t_current_span = id_;
  start_ns_ = reg.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  auto& reg = Registry::instance();
  t_current_span = parent_;
  reg.add_span(SpanRecord{std::move(name_), id_, parent_, reg.thread_id(),
                          start_ns_, reg.now_ns()});
}

// --------------------------------------------------------- free API -----

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name, Unit unit) {
  return Registry::instance().gauge(name, unit).gauge;
}

Histogram& histogram(std::string_view name, Unit unit) {
  return Registry::instance().histogram(name, unit).histogram;
}

void reset() { Registry::instance().reset(); }

Json report_json(const ReportOptions& options) {
  return Registry::instance().to_json(options);
}

void write_report(const std::string& path, const ReportOptions& options) {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out{p};
  if (!out) {
    throw std::runtime_error{"obs::write_report: cannot open " + path};
  }
  out << report_json(options).dump(2) << '\n';
  if (!out) {
    throw std::runtime_error{"obs::write_report: write failed for " + path};
  }
}

}  // namespace cryo::util::obs
