#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cryo::util {

/// Minimal JSON value: null / bool / integer / double / string / array /
/// object. Objects preserve insertion order, and `dump` is fully
/// deterministic (integers verbatim, doubles via shortest-round-trip
/// std::to_chars) — the observability run reports rely on this to be
/// byte-identical across thread counts. `parse` accepts exactly what
/// `dump` emits plus ordinary whitespace, so reports round-trip.
class Json {
public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool value) : type_{Type::kBool}, bool_{value} {}
  Json(int value) : type_{Type::kInt}, int_{value} {}
  Json(unsigned value) : type_{Type::kInt}, int_{value} {}
  Json(long value) : type_{Type::kInt}, int_{value} {}
  Json(unsigned long value)
      : type_{Type::kInt}, int_{static_cast<std::int64_t>(value)} {}
  Json(long long value) : type_{Type::kInt}, int_{value} {}
  Json(unsigned long long value)
      : type_{Type::kInt}, int_{static_cast<std::int64_t>(value)} {}
  Json(double value) : type_{Type::kDouble}, double_{value} {}
  Json(const char* value) : type_{Type::kString}, string_{value} {}
  Json(std::string value) : type_{Type::kString}, string_{std::move(value)} {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Checked accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;     ///< kInt only
  double as_double() const;        ///< kInt or kDouble
  const std::string& as_string() const;

  // Array interface.
  void push_back(Json value);
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  const std::vector<Json>& elements() const;

  // Object interface. `operator[]` inserts a null member if absent.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  /// Like `find` but throws std::runtime_error when the key is missing.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize. `indent` = 0 emits a single line; > 0 pretty-prints with
  /// that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse a JSON document; throws std::runtime_error with a byte offset
  /// on malformed input (including trailing garbage).
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace cryo::util
