#pragma once

#include <vector>

#include "logic/aig.hpp"
#include "sat/solver.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::sat {

/// Options for SAT sweeping.
struct SweepOptions {
  unsigned sim_words = 8;            ///< initial random simulation words
  std::int64_t conflict_limit = 500; ///< per-pair SAT budget
  std::uint64_t seed = 5;
  /// Search-control knobs of the incremental proof solver (restart
  /// cadence, clause-database reduction schedule).
  SolverConfig solver;
  /// Shared resource budget; nullptr means `util::Budget::global()`.
  /// When exhausted, the sweep degrades: remaining candidate pairs stay
  /// unmerged (counted in `unresolved`) but the result is still a valid,
  /// equivalent AIG.
  util::Budget* budget = nullptr;
};

/// Result of SAT sweeping (fraiging).
struct SweepResult {
  logic::Aig aig;  ///< functionally reduced AIG (may contain dangling
                   ///< "choice" structures — see `choices`)
  /// For each node of `aig`: alternative, functionally equivalent
  /// literals (the structural choices of ABC's dch). Empty for most.
  std::vector<std::vector<logic::Lit>> choices;
  unsigned merged = 0;       ///< node pairs proven equivalent and merged
  unsigned unresolved = 0;   ///< candidate pairs abandoned at the limit
};

/// SAT sweeping: detect and merge functionally equivalent nodes (up to
/// complementation) using random simulation for candidates and SAT for
/// proofs, with counterexample-guided refinement. This implements both
/// the fraig step and the structural-choice computation (`dch`) of the
/// synthesis flow.
SweepResult sat_sweep(const logic::Aig& input, const SweepOptions& options = {});

}  // namespace cryo::sat
