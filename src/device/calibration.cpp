#include "device/calibration.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "device/serialize.hpp"
#include "util/artifact_cache.hpp"
#include "util/obs.hpp"
#include "util/optimize.hpp"
#include "util/thread_pool.hpp"

namespace cryo::device {
namespace {

/// Current below which a sample is treated as noise-floor-limited.
constexpr double kFitFloor = 1e-14;

/// Map a parameter vector (as scale factors on the initial guess) onto a
/// parameter struct. Fitting multiplicative factors keeps the optimizer
/// well-conditioned despite parameters spanning 10 orders of magnitude.
FinFetParams apply_factors(const FinFetParams& base,
                           const std::vector<double>& f) {
  FinFetParams p = base;
  p.vth300 = base.vth300 * f[0];
  p.ideality = base.ideality * f[1];
  p.band_tail_v = base.band_tail_v * f[2];
  p.mu0 = base.mu0 * f[3];
  p.theta = base.theta * f[4];
  p.kvt = base.kvt * f[5];
  p.lambda = base.lambda * f[6];
  p.i_floor_per_fin = base.i_floor_per_fin * f[7];
  return p;
}

double log_current(double i) {
  return std::log10(std::max(std::fabs(i), kFitFloor));
}

/// Sum of squared log residuals; groups points by temperature so each
/// FinFetModel (with its per-T precomputation) is built once per group.
/// The temperature groups are independent model sweeps, so they are
/// evaluated in parallel; partial sums are combined in group order, so
/// the result is the same for any thread count.
double objective(const FinFetParams& params, const MeasurementSet& meas) {
  std::map<double, std::vector<const MeasurementPoint*>> by_temp;
  for (const auto& pt : meas.points) {
    by_temp[pt.temperature_k].push_back(&pt);
  }
  struct Group {
    double temperature_k = 0.0;
    const std::vector<const MeasurementPoint*>* points = nullptr;
  };
  std::vector<Group> groups;
  groups.reserve(by_temp.size());
  for (const auto& [temp, pts] : by_temp) {
    groups.push_back({temp, &pts});
  }
  const auto partial = util::parallel_map(groups.size(), [&](std::size_t g) {
    const FinFetModel model{params, groups[g].temperature_k};
    double sum = 0.0;
    for (const auto* pt : *groups[g].points) {
      const double sim = model.ids(pt->vgs, pt->vds, meas.nfins);
      const double r = log_current(sim) - log_current(pt->ids);
      sum += r * r;
    }
    return sum;
  });
  double sum = 0.0;
  for (const double s : partial) {
    sum += s;
  }
  return sum;
}

}  // namespace

namespace {

/// Artifact-cache stage of parameter extraction. The key covers the
/// entire fitting problem: every measurement sample, the starting point,
/// and the optimizer budget.
constexpr std::string_view kCalibrateStage = "device.calibrate";

util::Json calibrate_cache_inputs(const MeasurementSet& measurements,
                                  const FinFetParams& initial_guess,
                                  int max_evaluations,
                                  const std::string& backend_identity) {
  util::Json inputs = util::Json::object();
  inputs["measurements"] = to_json(measurements);
  inputs["initial_guess"] = to_json(initial_guess);
  inputs["max_evaluations"] = util::Json{max_evaluations};
  inputs["backend"] = util::Json{backend_identity};
  return inputs;
}

}  // namespace

CalibrationResult calibrate(const MeasurementSet& measurements,
                            const FinFetParams& initial_guess,
                            int max_evaluations,
                            const std::string& backend_identity) {
  if (measurements.points.empty()) {
    throw std::invalid_argument{"calibrate: empty measurement set"};
  }

  auto& cache = util::ArtifactCache::global();
  std::string cache_key;
  if (cache.enabled()) {
    cache_key = util::ArtifactCache::key(
        kCalibrateStage,
        calibrate_cache_inputs(measurements, initial_guess, max_evaluations,
                               backend_identity));
    if (auto hit = cache.load(kCalibrateStage, cache_key)) {
      try {
        return calibration_result_from_json(*hit);
      } catch (const std::exception&) {
        util::obs::counter("cache.corrupt").add();
      }
    }
  }

  auto fun = [&](const std::vector<double>& factors) {
    for (double f : factors) {
      if (f <= 0.05 || f >= 20.0) {
        return 1e300;  // reject unphysical excursions
      }
    }
    return objective(apply_factors(initial_guess, factors), measurements);
  };

  util::NelderMeadOptions options;
  options.max_evaluations = max_evaluations;
  options.initial_step = 0.08;
  const auto fit =
      util::nelder_mead(fun, std::vector<double>(8, 1.0), options);

  CalibrationResult result;
  result.params = apply_factors(initial_guess, fit.x);
  result.evaluations = fit.evaluations;

  // Residual statistics of the final fit.
  double sum = 0.0;
  double worst = 0.0;
  std::map<double, FinFetModel> models;
  for (const auto& pt : measurements.points) {
    auto it = models.find(pt.temperature_k);
    if (it == models.end()) {
      it = models.emplace(pt.temperature_k,
                          FinFetModel{result.params, pt.temperature_k})
               .first;
    }
    const double sim = it->second.ids(pt.vgs, pt.vds, measurements.nfins);
    const double r = std::fabs(log_current(sim) - log_current(pt.ids));
    sum += r * r;
    worst = std::max(worst, r);
  }
  result.rms_log_error =
      std::sqrt(sum / static_cast<double>(measurements.points.size()));
  result.max_log_error = worst;
  if (cache.enabled()) {
    cache.store(kCalibrateStage, cache_key, to_json(result));
  }
  return result;
}

std::vector<CurveError> curve_errors(const FinFetParams& params,
                                     const MeasurementSet& measurements) {
  std::map<std::pair<double, double>, std::vector<const MeasurementPoint*>>
      curves;
  for (const auto& pt : measurements.points) {
    curves[{pt.temperature_k, pt.vds}].push_back(&pt);
  }
  struct Curve {
    std::pair<double, double> key;
    const std::vector<const MeasurementPoint*>* points = nullptr;
  };
  std::vector<Curve> flat;
  flat.reserve(curves.size());
  for (const auto& [key, pts] : curves) {
    flat.push_back({key, &pts});
  }
  // Each (T, Vds) curve is an independent sweep; errors are computed in
  // parallel and returned in the original (sorted-key) order.
  return util::parallel_map(flat.size(), [&](std::size_t c) {
    const auto& [key, pts] = flat[c];
    const FinFetModel model{params, key.first};
    CurveError err;
    err.temperature_k = key.first;
    err.vds = key.second;
    double sum = 0.0;
    double rel_sum = 0.0;
    int rel_count = 0;
    for (const auto* pt : *pts) {
      const double sim = model.ids(pt->vgs, pt->vds, measurements.nfins);
      const double r = log_current(sim) - log_current(pt->ids);
      sum += r * r;
      if (std::fabs(pt->ids) > 100.0 * kFitFloor) {
        rel_sum += std::fabs(sim - pt->ids) / std::fabs(pt->ids);
        ++rel_count;
      }
    }
    err.rms_log_error = std::sqrt(sum / static_cast<double>(pts->size()));
    err.mean_rel_error =
        rel_count > 0 ? rel_sum / static_cast<double>(rel_count) : 0.0;
    return err;
  });
}

}  // namespace cryo::device
