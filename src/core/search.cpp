#include "core/search.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cryo::core {

namespace obs = util::obs;

void validate(const SearchOptions& options) {
  validate(options.experiment);
  if (options.variants == 0) {
    throw std::invalid_argument{
        "SearchOptions.variants = 0 is unusable: the search needs at "
        "least one recipe to evaluate"};
  }
  if (!(options.per_variant_deadline_s >= 0.0) ||
      !std::isfinite(options.per_variant_deadline_s)) {
    throw std::invalid_argument{
        "SearchOptions.per_variant_deadline_s = " +
        std::to_string(options.per_variant_deadline_s) +
        " is unusable: the per-variant wall budget must be a finite time "
        "in seconds >= 0 (0 disables it)"};
  }
}

namespace {

/// Lexicographic (power, delay, area) comparison — the paper's
/// power-first objective. Ties (e.g. two recipes compiling to mapped
/// netlists with identical figures) break on the canonical recipe
/// string so "best" is deterministic.
bool better(const RecipeTrial& a, const RecipeTrial& b) {
  if (a.result.total_power != b.result.total_power) {
    return a.result.total_power < b.result.total_power;
  }
  if (a.result.delay != b.result.delay) {
    return a.result.delay < b.result.delay;
  }
  if (a.result.area != b.result.area) {
    return a.result.area < b.result.area;
  }
  return a.recipe < b.recipe;
}

util::Json trial_to_json(const RecipeTrial& trial) {
  util::Json json = util::Json::object();
  json["recipe"] = util::Json{trial.recipe};
  json["ok"] = util::Json{trial.result.ok};
  json["degraded"] = util::Json{trial.result.degraded};
  if (trial.result.ok) {
    json["power_w"] = util::Json{trial.result.total_power};
    json["delay_s"] = util::Json{trial.result.delay};
    json["area_um2"] = util::Json{trial.result.area};
    json["gates"] = util::Json{trial.result.gates};
  } else {
    json["error"] = util::Json{trial.result.error};
    json["error_kind"] = util::Json{trial.result.error_kind};
  }
  return json;
}

}  // namespace

std::vector<std::string> enumerate_recipes(const FlowOptions& flow,
                                           std::size_t count,
                                           std::uint64_t seed) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  const auto push = [&](const std::string& script) {
    if (out.size() >= count) {
      return;
    }
    std::string canonical;
    try {
      canonical = Pipeline::parse(script).to_string();
    } catch (const RecipeError&) {
      return;  // a mutation that broke sequencing rules: drop it
    }
    if (seen.insert(canonical).second) {
      out.push_back(std::move(canonical));
    }
  };

  // The Fig. 3 seeds always lead (and count against the budget), so the
  // search result can never be worse than the paper's own flows.
  for (const ScenarioSpec& spec : fig3_scenarios(flow)) {
    push(spec.recipe);
  }

  // Deterministic mutations of the seed shape: optional pre-compression
  // block, c2rs repetition, dch/mfs toggles, -K and priority sweeps,
  // and an occasional second LUT round.
  static constexpr const char* kPreBlocks[] = {
      "",
      "balance; ",
      "rewrite -k 4; balance; ",
      "balance; rewrite -k 6; refactor -l 10; balance; ",
      "resub -l 8; balance; ",
      "refactor -l 12; rewrite -k 4; ",
  };
  // Upper bound 6 matches the CutEnumerator limit (logic/cuts.cpp): a
  // larger -K parses fine but can never map, so it would only burn
  // variant budget on guaranteed failures.
  static constexpr unsigned kLutK[] = {3, 4, 5, 6};
  static constexpr const char* kPriorities[] = {"baseline", "pad", "pda"};
  util::Rng rng{seed};
  // The guard bounds the loop when `count` outruns the distinct-variant
  // space (dedup makes small spaces saturate).
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 64 + 256;
  while (out.size() < count && attempts++ < max_attempts) {
    std::string script{kPreBlocks[rng.next_below(std::size(kPreBlocks))]};
    script += "c2rs";
    if (rng.next_bool(0.25)) {
      script += "; c2rs";
    }
    if (rng.next_bool(0.75)) {
      script += "; dch";
    }
    script += "; if -K " + std::to_string(kLutK[rng.next_below(4)]) + " -p " +
              kPriorities[rng.next_below(3)];
    if (rng.next_bool(0.75)) {
      script += "; mfs";
    }
    script += "; strash";
    if (rng.next_bool(0.2)) {
      script += "; if -K " + std::to_string(kLutK[rng.next_below(4)]) +
                " -p " + kPriorities[rng.next_below(3)] + "; strash";
    }
    script += "; map -p ";
    script += kPriorities[rng.next_below(3)];
    push(script);
  }
  return out;
}

std::vector<CircuitSearchResult> search_recipes(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const SearchOptions& options) {
  validate(options);
  const obs::ScopedSpan span{"core.recipe_search"};
  const std::vector<std::string> recipes = enumerate_recipes(
      options.experiment.flow, options.variants, options.seed);

  // One job per (circuit, variant); written by job index, so the trial
  // table — and therefore "best" — is thread-count independent.
  const std::size_t jobs = suite.size() * recipes.size();
  std::vector<RecipeTrial> trials = util::parallel_map(
      jobs,
      [&](std::size_t job) {
        const std::size_t circuit = job / recipes.size();
        const std::size_t variant = job % recipes.size();
        ScenarioSpec spec;
        spec.name = "variant" + std::to_string(variant);
        spec.priority = options.experiment.flow.priority;
        spec.recipe = recipes[variant];
        RecipeTrial trial;
        trial.recipe = recipes[variant];
        // Per-variant wall budget: one runaway variant degrades itself
        // instead of starving the sweep.
        util::Budget variant_budget;
        util::Budget* budget = nullptr;
        if (options.per_variant_deadline_s > 0.0) {
          variant_budget.set_deadline_in(options.per_variant_deadline_s);
          budget = &variant_budget;
        }
        // Same fault isolation as the fig3 fleet: record the failure in
        // the trial row; only global cancellation stops the sweep.
        try {
          trial.result = run_scenario(suite[circuit].aig, matcher,
                                      options.experiment, spec, budget);
        } catch (const Error& e) {
          if (e.kind() == ErrorKind::kBudget) {
            throw;
          }
          trial.result.ok = false;
          trial.result.error = e.what();
          trial.result.error_kind = std::string{error_kind_name(e.kind())};
          obs::counter("search.variant_errors").add();
        } catch (const std::exception& e) {
          trial.result.ok = false;
          trial.result.error = e.what();
          trial.result.error_kind = "internal";
          obs::counter("search.variant_errors").add();
        }
        obs::counter("search.variants_run").add();
        return trial;
      },
      options.experiment.threads);

  std::vector<CircuitSearchResult> results(suite.size());
  for (std::size_t c = 0; c < suite.size(); ++c) {
    CircuitSearchResult& result = results[c];
    result.circuit = suite[c].name;
    result.trials.assign(trials.begin() + c * recipes.size(),
                         trials.begin() + (c + 1) * recipes.size());
    for (std::size_t v = 0; v < result.trials.size(); ++v) {
      const RecipeTrial& trial = result.trials[v];
      if (!trial.result.ok || trial.result.degraded) {
        continue;
      }
      if (result.best < 0 ||
          better(trial, result.trials[static_cast<std::size_t>(result.best)])) {
        result.best = static_cast<int>(v);
      }
    }
  }
  return results;
}

util::Json search_report(const std::vector<CircuitSearchResult>& results,
                         const SearchOptions& options) {
  util::Json report = util::Json::object();
  report["schema"] = util::Json{"cryoeda-search-v1"};
  util::Json search = util::Json::object();
  search["variants"] = util::Json{options.variants};
  search["seed"] = util::Json{options.seed};
  search["per_variant_deadline_s"] =
      util::Json{options.per_variant_deadline_s};
  report["search"] = std::move(search);

  // The first three trials are the Fig. 3 seeds (enumerate_recipes
  // guarantees the order); naming them lets the regression gate compare
  // "best" against the paper's flows within the same report — the same
  // circuit, corner, and analysis clock, so the figures are directly
  // comparable.
  static constexpr const char* kSeedNames[] = {"baseline", "pad", "pda"};

  util::Json circuits = util::Json::array();
  for (const CircuitSearchResult& result : results) {
    util::Json row = util::Json::object();
    row["circuit"] = util::Json{result.circuit};
    if (result.best >= 0) {
      row["best"] =
          trial_to_json(result.trials[static_cast<std::size_t>(result.best)]);
    } else {
      row["best"] = util::Json{};
    }
    util::Json seeds = util::Json::object();
    for (std::size_t i = 0; i < result.trials.size() && i < 3; ++i) {
      seeds[kSeedNames[i]] = trial_to_json(result.trials[i]);
    }
    row["seeds"] = std::move(seeds);
    util::Json trials = util::Json::array();
    for (const RecipeTrial& trial : result.trials) {
      trials.push_back(trial_to_json(trial));
    }
    row["trials"] = std::move(trials);
    circuits.push_back(std::move(row));
  }
  report["circuits"] = std::move(circuits);
  return report;
}

}  // namespace cryo::core
