# Empty dependencies file for cryo_sat.
# This may be replaced when dependencies are built.
