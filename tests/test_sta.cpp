#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "epfl/benchmarks.hpp"
#include "map/mapper.hpp"
#include "sta/sta.hpp"

namespace {

using namespace cryo;

class StaTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 48e-12};
    options.loads = {2e-16, 1e-15, 4e-15};
    options.include_sequential = false;
    warm_lib_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 300.0, options));
    cold_lib_ = new liberty::Library(
        cells::characterize(cells::mini_catalog(), 10.0, options));
    warm_matcher_ = new map::CellMatcher(*warm_lib_);
    cold_matcher_ = new map::CellMatcher(*cold_lib_);
  }
  static void TearDownTestSuite() {
    delete warm_matcher_;
    delete cold_matcher_;
    delete warm_lib_;
    delete cold_lib_;
    warm_matcher_ = nullptr;
    cold_matcher_ = nullptr;
    warm_lib_ = nullptr;
    cold_lib_ = nullptr;
  }
  static liberty::Library* warm_lib_;
  static liberty::Library* cold_lib_;
  static map::CellMatcher* warm_matcher_;
  static map::CellMatcher* cold_matcher_;
};

liberty::Library* StaTest::warm_lib_ = nullptr;
liberty::Library* StaTest::cold_lib_ = nullptr;
map::CellMatcher* StaTest::warm_matcher_ = nullptr;
map::CellMatcher* StaTest::cold_matcher_ = nullptr;

/// One-gate netlist: the arrival of its output equals the arc delay.
TEST_F(StaTest, SingleGateDelayMatchesTable) {
  logic::Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(aig.land(a, b));  // positive-phase PO -> single cell
  const auto net = map::tech_map(aig, *warm_matcher_);
  ASSERT_EQ(net.gate_count(), 1u);
  sta::StaOptions options;
  options.input_slew = 16e-12;
  options.output_load = 1e-15;
  const auto result = sta::analyze(net, options);

  const auto* cell = net.gates[0].cell;
  const auto* arc = cell->arc_from(cell->input_names()[0]);
  ASSERT_NE(arc, nullptr);
  const double expected = std::max(arc->cell_rise.lookup(16e-12, 1e-15),
                                   arc->cell_fall.lookup(16e-12, 1e-15));
  EXPECT_NEAR(result.critical_delay, expected, expected * 1e-9);
}

TEST_F(StaTest, ChainDelayAddsUp) {
  // Inverter chain of 4: critical delay ~ sum of stage delays and grows
  // monotonically with length.
  double prev = 0.0;
  for (int len : {1, 2, 4, 8}) {
    logic::Aig aig;
    const auto first = aig.add_pi();
    const auto second = aig.add_pi();
    auto x = first;
    for (int i = 0; i < len; ++i) {
      x = aig.lnand(x, second);  // an uncollapsible inverting stage
    }
    aig.add_po(x);
    const auto net = map::tech_map(aig, *warm_matcher_);
    const auto result = sta::analyze(net, {});
    // Mapping may merge stages into wider cells, so allow slack while
    // still requiring the overall growth trend.
    EXPECT_GE(result.critical_delay, prev * 0.7);
    prev = result.critical_delay;
  }
  EXPECT_GT(prev, 5e-12);
}

TEST_F(StaTest, PowerCategoriesArePositiveAndScaleWithClock) {
  const auto bench = epfl::make_adder(8);
  const auto net = map::tech_map(bench, *warm_matcher_);
  sta::StaOptions fast;
  fast.clock_period = 1e-9;
  sta::StaOptions slow;
  slow.clock_period = 2e-9;
  const auto r_fast = sta::analyze(net, fast);
  const auto r_slow = sta::analyze(net, slow);
  EXPECT_GT(r_fast.power.leakage, 0.0);
  EXPECT_GT(r_fast.power.internal, 0.0);
  EXPECT_GT(r_fast.power.switching, 0.0);
  // Dynamic power halves at half the frequency; leakage unchanged.
  EXPECT_NEAR(r_slow.power.internal, r_fast.power.internal / 2.0,
              r_fast.power.internal * 0.01);
  EXPECT_NEAR(r_slow.power.switching, r_fast.power.switching / 2.0,
              r_fast.power.switching * 0.01);
  EXPECT_NEAR(r_slow.power.leakage, r_fast.power.leakage,
              r_fast.power.leakage * 1e-9);
}

TEST_F(StaTest, LeakageShareCollapsesAtCryo) {
  // The headline of paper Fig. 2(c).
  const auto bench = epfl::make_adder(16);
  sta::StaOptions options;
  const auto warm_net = map::tech_map(bench, *warm_matcher_);
  const auto cold_net = map::tech_map(bench, *cold_matcher_);
  const auto warm = sta::analyze(warm_net, options);
  const auto cold = sta::analyze(cold_net, options);
  const double warm_share = warm.power.leakage / warm.power.total();
  const double cold_share = cold.power.leakage / cold.power.total();
  EXPECT_GT(warm_share, 0.005);
  EXPECT_LT(cold_share, warm_share / 50.0);
}

TEST_F(StaTest, ActivityAffectsDynamicPower) {
  const auto bench = epfl::make_adder(8);
  const auto net = map::tech_map(bench, *warm_matcher_);
  sta::StaOptions low;
  low.input_activity = 0.05;
  sta::StaOptions high;
  high.input_activity = 0.45;
  const auto r_low = sta::analyze(net, low);
  const auto r_high = sta::analyze(net, high);
  EXPECT_GT(r_high.power.switching, r_low.power.switching * 1.5);
}

TEST_F(StaTest, ArrivalsAreMonotoneAlongPaths) {
  const auto bench = epfl::make_priority(16);
  const auto net = map::tech_map(bench, *warm_matcher_);
  const auto result = sta::analyze(net, {});
  for (const auto& gate : net.gates) {
    for (const auto fanin : gate.fanins) {
      EXPECT_GE(result.arrival[gate.output], result.arrival[fanin]);
    }
  }
  EXPECT_GT(result.critical_delay, 0.0);
}

}  // namespace
