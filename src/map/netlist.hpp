#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/library.hpp"

namespace cryo::map {

/// A gate instance in a mapped netlist.
struct Gate {
  const liberty::Cell* cell = nullptr;
  std::vector<std::uint32_t> fanins;  ///< net ids, ordered as cell inputs
  std::uint32_t output = 0;           ///< net id
};

/// A technology-mapped, gate-level netlist over a liberty library.
/// Gates are stored in topological order (fanins precede fanouts).
struct Netlist {
  std::string name;
  const liberty::Library* library = nullptr;
  std::uint32_t num_nets = 0;
  std::vector<std::uint32_t> pis;       ///< input net ids
  std::vector<std::string> pi_names;
  std::vector<std::uint32_t> pos;       ///< output net ids
  std::vector<std::string> po_names;
  std::vector<Gate> gates;
  /// Net ids tied to constants (outputs of TIE cells or unconnected).
  std::uint32_t const0_net = UINT32_MAX;
  std::uint32_t const1_net = UINT32_MAX;

  double total_area() const;
  std::size_t gate_count() const { return gates.size(); }

  /// Bit-parallel simulation of the netlist: PI streams are Markov toggle
  /// chains with the given rate; returns per-net toggle activity.
  std::vector<double> simulate_activity(double toggle_rate, unsigned words,
                                        std::uint64_t seed) const;

  /// Evaluate all POs for one input assignment (for equivalence tests).
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;
};

}  // namespace cryo::map
