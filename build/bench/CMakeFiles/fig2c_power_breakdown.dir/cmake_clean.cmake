file(REMOVE_RECURSE
  "CMakeFiles/fig2c_power_breakdown.dir/fig2c_power_breakdown.cpp.o"
  "CMakeFiles/fig2c_power_breakdown.dir/fig2c_power_breakdown.cpp.o.d"
  "fig2c_power_breakdown"
  "fig2c_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
