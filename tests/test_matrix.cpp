#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/corner_matrix.hpp"
#include "device/finfet.hpp"
#include "device/preset.hpp"
#include "device/serialize.hpp"
#include "service/protocol.hpp"
#include "util/artifact_cache.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace {

namespace fs = std::filesystem;
namespace fi = cryo::util::faultinject;

using cryo::Error;
using cryo::ErrorKind;
using cryo::core::MatrixAxes;
using cryo::core::MatrixOptions;
using cryo::core::MatrixResult;
using cryo::util::Json;

// ---------------------------------------------------------------------
// preset registry
// ---------------------------------------------------------------------

TEST(Presets, RegistryNamesAndDefault) {
  const auto names = cryo::device::preset_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "finfet5");
  EXPECT_EQ(names[1], "soi4k");
  EXPECT_EQ(names[2], "sky130_77k");
  EXPECT_EQ(cryo::device::default_preset().name, "finfet5");
  EXPECT_EQ(cryo::device::resolve_preset("").name, "finfet5");
}

/// The default preset IS the paper platform: any drift from the
/// hard-coded nominal 5 nm parameters would silently change every
/// default-flow figure.
TEST(Presets, Finfet5IsThePaperPlatformBitForBit) {
  const auto& preset = cryo::device::default_preset();
  EXPECT_EQ(cryo::device::to_json(preset.nfet).dump(),
            cryo::device::to_json(cryo::device::nominal_nfet_5nm()).dump());
  EXPECT_EQ(cryo::device::to_json(preset.pfet).dump(),
            cryo::device::to_json(cryo::device::nominal_pfet_5nm()).dump());
  ASSERT_EQ(preset.corner_temps.size(), 2u);
  EXPECT_EQ(preset.corner_temps[0], 300.0);
  EXPECT_EQ(preset.corner_temps[1], 10.0);
}

TEST(Presets, UnknownNameIsARecipeError) {
  try {
    cryo::device::resolve_preset("tsmc3");
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    // The message lists the registry so the fix is one copy-paste away.
    EXPECT_NE(std::string{e.what()}.find("finfet5"), std::string::npos);
  }
}

TEST(Presets, EnvelopeValidationRejectsExtrapolation) {
  const auto& soi = cryo::device::resolve_preset("soi4k");
  EXPECT_NO_THROW(cryo::device::validate_corner(soi, 4.0, 0.8));
  for (const auto& [temp, vdd] : std::vector<std::pair<double, double>>{
           {1.0, 0.8}, {360.0, 0.8}, {4.0, 0.3}, {4.0, 1.3}}) {
    try {
      cryo::device::validate_corner(soi, temp, vdd);
      FAIL() << temp << " K / " << vdd << " V";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    }
  }
}

TEST(Presets, DeviceJsonCarriesFullParameterSets) {
  const Json j =
      cryo::device::preset_device_json(cryo::device::resolve_preset("soi4k"));
  EXPECT_EQ(j.at("name").as_string(), "soi4k");
  // Parameters, not just the name: cache keys must change if a preset
  // is ever re-bound to different physics.
  EXPECT_NE(j.at("nfet").dump(), j.at("pfet").dump());
}

// ---------------------------------------------------------------------
// library naming / lib paths: no cross-platform aliasing
// ---------------------------------------------------------------------

TEST(LibraryNaming, DefaultPlatformKeepsLegacySpelling) {
  const auto& finfet5 = cryo::device::default_preset();
  EXPECT_EQ(cryo::cells::library_name(finfet5, "builtin/1", 10.0),
            "cryoeda_10K");
  EXPECT_EQ(cryo::cells::default_lib_path("out", finfet5, "builtin", 10.0,
                                          0.7),
            "out/cryoeda_lib_10K.lib");
  EXPECT_EQ(cryo::cells::default_lib_path("out", finfet5, "builtin", 10.0,
                                          0.65),
            "out/cryoeda_lib_10K_0.65V.lib");
  // The service wrapper is the same function, minus the platform.
  EXPECT_EQ(cryo::service::default_lib_path("out", 10.0, 0.7),
            "out/cryoeda_lib_10K.lib");
}

TEST(LibraryNaming, PresetsAndEnginesNeverAlias) {
  const auto& finfet5 = cryo::device::default_preset();
  const auto& soi = cryo::device::resolve_preset("soi4k");
  const std::string a = cryo::cells::library_name(finfet5, "builtin/1", 300.0);
  const std::string b = cryo::cells::library_name(soi, "builtin/1", 300.0);
  const std::string c =
      cryo::cells::library_name(finfet5, "ngspice/42", 300.0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(b, "cryoeda_soi4k_builtin_1_300K");
  EXPECT_NE(cryo::cells::default_lib_path("", soi, "builtin", 300.0, 0.8),
            cryo::cells::default_lib_path("", finfet5, "builtin", 300.0,
                                          0.8));
}

// ---------------------------------------------------------------------
// corner enumeration
// ---------------------------------------------------------------------

TEST(CornerEnumeration, DefaultsToThePaperCornersOfEachPreset) {
  const auto corners = cryo::core::enumerate_corners({});
  ASSERT_EQ(corners.size(), 2u);
  EXPECT_EQ(corners[0].label(), "finfet5@300K/0.7V");
  EXPECT_EQ(corners[1].label(), "finfet5@10K/0.7V");
}

TEST(CornerEnumeration, CrossProductIsPresetMajorInInputOrder) {
  MatrixAxes axes;
  axes.presets = {"soi4k", "finfet5"};
  axes.temps = {300.0, 77.0};
  axes.vdds = {0.8, 0.9};
  const auto corners = cryo::core::enumerate_corners(axes);
  ASSERT_EQ(corners.size(), 8u);
  EXPECT_EQ(corners[0].label(), "soi4k@300K/0.8V");
  EXPECT_EQ(corners[1].label(), "soi4k@300K/0.9V");
  EXPECT_EQ(corners[2].label(), "soi4k@77K/0.8V");
  EXPECT_EQ(corners[3].label(), "soi4k@77K/0.9V");
  EXPECT_EQ(corners[4].label(), "finfet5@300K/0.8V");
  EXPECT_EQ(corners[7].label(), "finfet5@77K/0.9V");
}

TEST(CornerEnumeration, OneBadTripleRejectsTheWholeMatrix) {
  MatrixAxes axes;
  axes.presets = {"finfet5", "sky130_77k"};
  axes.temps = {300.0, 10.0};  // 10 K is below sky130_77k's 50 K floor
  axes.vdds = {0.7};
  try {
    cryo::core::enumerate_corners(axes);
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    EXPECT_NE(std::string{e.what()}.find("sky130_77k"), std::string::npos);
  }
  MatrixAxes unknown;
  unknown.presets = {"tsmc3"};
  EXPECT_THROW(cryo::core::enumerate_corners(unknown), Error);
}

// ---------------------------------------------------------------------
// matrix runs (mini catalog, coarse grid — the test_flow cheap config)
// ---------------------------------------------------------------------

class MatrixRun : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    root_ = new fs::path{fs::temp_directory_path() /
                         ("cryoeda_test_matrix_" +
                          std::to_string(::getpid()))};
    fs::remove_all(*root_);
    fs::create_directories(*root_);
    cryo::util::ArtifactCache::Config config;
    config.root = *root_ / "cache";
    cryo::util::ArtifactCache::global().configure(std::move(config));
  }
  static void TearDownTestSuite() {
    cryo::util::ArtifactCache::global().configure(
        cryo::util::ArtifactCache::env_config());
    std::error_code ec;
    fs::remove_all(*root_, ec);
    delete root_;
    root_ = nullptr;
  }
  void TearDown() override { fi::configure(""); }

  static MatrixOptions cheap_options(const std::string& tag) {
    MatrixOptions options;
    options.axes.temps = {300.0, 10.0};
    options.benches = {"dec4"};
    options.lib_dir = (*root_ / tag).string();
    options.catalog = cryo::cells::mini_catalog();
    options.char_options.slews = {4e-12, 16e-12, 48e-12};
    options.char_options.loads = {2e-16, 1e-15, 4e-15};
    options.char_options.include_sequential = false;
    options.verbose = false;
    return options;
  }

  static fs::path* root_;
};

fs::path* MatrixRun::root_ = nullptr;

TEST_F(MatrixRun, RunsTheGridAndReportsDeterministically) {
  const MatrixOptions options = cheap_options("grid");
  const MatrixResult result = cryo::core::run_matrix(options);
  ASSERT_EQ(result.corners.size(), 2u);
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.backend_identity, "builtin/1");
  EXPECT_EQ(result.rows_total(), 2);
  for (const auto& corner : result.corners) {
    EXPECT_TRUE(fs::exists(corner.lib_path)) << corner.lib_path;
    ASSERT_EQ(corner.rows.size(), 1u);
    EXPECT_EQ(corner.rows[0].bench, "dec4");
    EXPECT_TRUE(corner.rows[0].comparison.ok());
    EXPECT_GT(corner.rows[0].comparison.baseline.total_power, 0.0);
  }
  // Colder corner leaks less: the 10 K library must actually differ.
  EXPECT_LT(result.corners[1].rows[0].comparison.baseline.total_power,
            result.corners[0].rows[0].comparison.baseline.total_power);

  const Json report = cryo::core::matrix_report(result);
  EXPECT_EQ(report.at("schema").as_string(), "cryoeda-matrix-v1");
  EXPECT_EQ(report.at("summary").at("corners").as_int(), 2);
  EXPECT_EQ(report.at("summary").at("rows_ok").as_int(), 2);
  EXPECT_TRUE(report.at("summary").at("all_ok").as_bool());

  // Second run (warm library + artifact caches): byte-identical report.
  const Json again = cryo::core::matrix_report(cryo::core::run_matrix(options));
  EXPECT_EQ(again.dump(2), report.dump(2));
}

TEST_F(MatrixRun, InjectedCornerFaultDegradesOnlyItsEntry) {
  MatrixOptions options = cheap_options("fault");
  // Deterministic injection at the per-corner seam: the first corner
  // faults, the second must still complete.
  fi::configure("core.matrix=once@1");
  const MatrixResult result = cryo::core::run_matrix(options);
  fi::configure("");
  ASSERT_EQ(result.corners.size(), 2u);
  EXPECT_FALSE(result.corners[0].ok);
  EXPECT_EQ(result.corners[0].error_kind, "internal");
  EXPECT_TRUE(result.corners[0].rows.empty());
  EXPECT_TRUE(result.corners[1].ok);
  ASSERT_EQ(result.corners[1].rows.size(), 1u);
  EXPECT_TRUE(result.corners[1].rows[0].comparison.ok());
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(result.corners_ok(), 1);
  const Json report = cryo::core::matrix_report(result);
  EXPECT_FALSE(report.at("summary").at("all_ok").as_bool());
  EXPECT_EQ(report.at("corners").at(0).at("error_kind").as_string(),
            "internal");
}

TEST_F(MatrixRun, CharacterizationFaultIsConfinedToItsCorner) {
  MatrixOptions options = cheap_options("charfault");
  options.char_options.threads = 1;
  options.experiment.threads = 1;
  // Fail the first per-cell characterization worker arrival: corner 1
  // cannot build its library; corner 2 characterizes from scratch and
  // synthesizes normally.
  fi::configure("cells.characterize=once@1");
  const MatrixResult result = cryo::core::run_matrix(options);
  fi::configure("");
  ASSERT_EQ(result.corners.size(), 2u);
  EXPECT_FALSE(result.corners[0].ok);
  EXPECT_EQ(result.corners[0].error_kind, "internal");
  EXPECT_TRUE(result.corners[1].ok);
  EXPECT_EQ(result.rows_ok(), 1);
}

TEST_F(MatrixRun, TwoPresetsAtTheSameCornerGetDistinctLibraries) {
  MatrixOptions options = cheap_options("presets");
  options.axes.presets = {"finfet5", "soi4k"};
  options.axes.temps = {300.0};
  options.axes.vdds = {0.8};
  const MatrixResult result = cryo::core::run_matrix(options);
  ASSERT_EQ(result.corners.size(), 2u);
  EXPECT_TRUE(result.all_ok());
  // Satellite guarantee: same (T, Vdd), different preset — different
  // library file, different library name, different figures.
  EXPECT_NE(result.corners[0].lib_path, result.corners[1].lib_path);
  EXPECT_NE(result.corners[0].library, result.corners[1].library);
  EXPECT_NE(result.corners[0].rows[0].comparison.baseline.total_power,
            result.corners[1].rows[0].comparison.baseline.total_power);
}

TEST_F(MatrixRun, UnknownBenchmarkFailsFast) {
  MatrixOptions options = cheap_options("badbench");
  options.benches = {"no_such_bench"};
  try {
    cryo::core::run_matrix(options);
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
  }
  // Failing fast means no corner ran: no library files were written.
  EXPECT_FALSE(fs::exists(options.lib_dir));
}

}  // namespace
