#include "core/flow.hpp"

#include "opt/lut_map.hpp"
#include "opt/passes.hpp"
#include "sat/sweep.hpp"
#include "util/obs.hpp"

namespace cryo::core {

namespace obs = util::obs;

FlowResult synthesize(const logic::Aig& input, const map::CellMatcher& matcher,
                      const FlowOptions& options) {
  const obs::ScopedSpan flow_span{"core.synthesize:" + input.name()};
  obs::counter("core.synthesis_runs").add();
  FlowResult result;
  result.initial_ands = input.num_ands();

  // (1) Technology-independent compression.
  logic::Aig compact = [&] {
    const obs::ScopedSpan span{"flow.c2rs"};
    return opt::compress2rs(input);
  }();
  result.after_c2rs = compact.num_ands();

  // (2) Power-aware optimization with structural choices.
  const std::vector<std::vector<logic::Lit>>* choices = nullptr;
  sat::SweepResult sweep;
  if (options.use_choices) {
    const obs::ScopedSpan span{"flow.dch"};
    sat::SweepOptions sopt;
    sopt.seed = options.seed;
    sweep = sat::sat_sweep(compact, sopt);
    choices = &sweep.choices;
  }
  const logic::Aig& choice_aig = options.use_choices ? sweep.aig : compact;

  opt::LutMapOptions lopt;
  lopt.k = options.lut_k;
  lopt.priority = options.priority;
  lopt.epsilon = options.epsilon;
  lopt.input_activity = options.input_activity;
  lopt.seed = options.seed;
  opt::LutMapping luts = [&] {
    const obs::ScopedSpan span{"flow.lut_map"};
    return opt::lut_map(choice_aig, lopt, choices);
  }();
  if (options.use_mfs) {
    const obs::ScopedSpan span{"flow.mfs"};
    opt::MfsOptions mopt;
    mopt.seed = options.seed;
    (void)opt::mfs(luts, mopt);
  }
  logic::Aig optimized = opt::luts_to_aig(luts);
  // Keep the better of the two stages (the LUT round-trip occasionally
  // inflates small networks; ABC scripts guard similarly).
  if (optimized.num_ands() > compact.num_ands()) {
    optimized = std::move(compact);
  }
  result.after_power_stage = optimized.num_ands();
  if (result.initial_ands > result.after_power_stage) {
    obs::counter("core.nodes_saved")
        .add(result.initial_ands - result.after_power_stage);
  }

  // (3) Cryogenic-aware technology mapping.
  map::TechMapOptions topt;
  topt.priority = options.priority;
  topt.epsilon = options.epsilon;
  topt.input_activity = options.input_activity;
  topt.clock_estimate = options.clock_estimate;
  topt.seed = options.seed;
  {
    const obs::ScopedSpan span{"flow.tech_map"};
    result.netlist = map::tech_map(optimized, matcher, topt);
  }
  result.optimized = std::move(optimized);
  return result;
}

}  // namespace cryo::core
