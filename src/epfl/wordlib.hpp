#pragma once

#include <vector>

#include "logic/aig.hpp"

namespace cryo::epfl {

/// Word-level construction helpers over AIG literals — the building
/// blocks of the benchmark generators (and a convenient user-facing API
/// for assembling datapaths).
using Word = std::vector<logic::Lit>;

/// A fresh input word of `bits` PIs named `<prefix>[i]`.
Word input_word(logic::Aig& aig, const std::string& prefix, unsigned bits);

/// Constant word (LSB first).
Word constant_word(unsigned long long value, unsigned bits);

/// Ripple-carry addition; returns sum (same width), carry-out optional.
Word add(logic::Aig& aig, const Word& a, const Word& b,
         logic::Lit carry_in = logic::kConst0, logic::Lit* carry_out = nullptr);

/// Two's-complement subtraction a - b; borrow_out = !carry.
Word sub(logic::Aig& aig, const Word& a, const Word& b,
         logic::Lit* no_borrow = nullptr);

/// Unsigned comparison a < b / a >= b / a == b.
logic::Lit less_than(logic::Aig& aig, const Word& a, const Word& b);
logic::Lit equals(logic::Aig& aig, const Word& a, const Word& b);

/// Bitwise select: s ? t : e (words of equal width).
Word mux_word(logic::Aig& aig, logic::Lit s, const Word& t, const Word& e);

/// Logical shift left/right by a variable amount (barrel structure,
/// stage per shift bit). `amount` is LSB-first.
Word shift_left(logic::Aig& aig, const Word& value, const Word& amount);
Word shift_right(logic::Aig& aig, const Word& value, const Word& amount);

/// Unsigned multiplication (array multiplier), result truncated to
/// `a.size() + b.size()` bits.
Word multiply(logic::Aig& aig, const Word& a, const Word& b);

/// Population count of the bits (result has ceil(log2(n+1)) bits).
Word popcount(logic::Aig& aig, const Word& bits);

/// AND/OR-reduce a word to one literal.
logic::Lit and_reduce(logic::Aig& aig, const Word& w);
logic::Lit or_reduce(logic::Aig& aig, const Word& w);

/// Add a whole word as POs named `<prefix>[i]`.
void output_word(logic::Aig& aig, const std::string& prefix, const Word& w);

}  // namespace cryo::epfl
