#include "liberty/json_io.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace cryo::liberty {

using util::Json;

namespace {

Json doubles_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) {
    arr.push_back(Json{v});
  }
  return arr;
}

std::vector<double> doubles_from_json(const Json& json) {
  std::vector<double> out;
  out.reserve(json.size());
  for (const Json& v : json.elements()) {
    out.push_back(v.as_double());
  }
  return out;
}

const char* sense_name(ArcSense sense) {
  switch (sense) {
    case ArcSense::kPositive: return "positive";
    case ArcSense::kNegative: return "negative";
    case ArcSense::kNonUnate: return "non_unate";
  }
  return "negative";
}

ArcSense sense_from_name(const std::string& name) {
  if (name == "positive") {
    return ArcSense::kPositive;
  }
  if (name == "negative") {
    return ArcSense::kNegative;
  }
  if (name == "non_unate") {
    return ArcSense::kNonUnate;
  }
  throw std::runtime_error{"liberty json: unknown arc sense '" + name + "'"};
}

void hash_doubles(util::Fnv1a& hash, const std::vector<double>& values) {
  hash.u64(values.size());
  for (const double v : values) {
    hash.f64(v);
  }
}

void hash_table(util::Fnv1a& hash, const NldmTable& table) {
  hash_doubles(hash, table.index1());
  hash_doubles(hash, table.index2());
  hash_doubles(hash, table.values());
}

}  // namespace

Json to_json(const NldmTable& table) {
  Json json = Json::object();
  json["index1"] = doubles_to_json(table.index1());
  json["index2"] = doubles_to_json(table.index2());
  json["values"] = doubles_to_json(table.values());
  return json;
}

NldmTable nldm_from_json(const Json& json) {
  return NldmTable{doubles_from_json(json.at("index1")),
                   doubles_from_json(json.at("index2")),
                   doubles_from_json(json.at("values"))};
}

Json to_json(const Cell& cell) {
  Json json = Json::object();
  json["name"] = Json{cell.name};
  json["area"] = Json{cell.area};
  json["leakage_power"] = Json{cell.leakage_power};
  json["is_sequential"] = Json{cell.is_sequential};
  json["next_state"] = Json{cell.next_state};
  json["clocked_on"] = Json{cell.clocked_on};

  Json pins = Json::array();
  for (const Pin& pin : cell.pins) {
    Json p = Json::object();
    p["name"] = Json{pin.name};
    p["is_output"] = Json{pin.is_output};
    p["capacitance"] = Json{pin.capacitance};
    p["function"] = Json{pin.function};
    pins.push_back(std::move(p));
  }
  json["pins"] = std::move(pins);

  Json arcs = Json::array();
  for (const TimingArc& arc : cell.arcs) {
    Json a = Json::object();
    a["related_pin"] = Json{arc.related_pin};
    a["sense"] = Json{sense_name(arc.sense)};
    a["cell_rise"] = to_json(arc.cell_rise);
    a["cell_fall"] = to_json(arc.cell_fall);
    a["rise_transition"] = to_json(arc.rise_transition);
    a["fall_transition"] = to_json(arc.fall_transition);
    arcs.push_back(std::move(a));
  }
  json["arcs"] = std::move(arcs);

  Json power_arcs = Json::array();
  for (const PowerArc& arc : cell.power_arcs) {
    Json a = Json::object();
    a["related_pin"] = Json{arc.related_pin};
    a["rise_power"] = to_json(arc.rise_power);
    a["fall_power"] = to_json(arc.fall_power);
    power_arcs.push_back(std::move(a));
  }
  json["power_arcs"] = std::move(power_arcs);
  return json;
}

Cell cell_from_json(const Json& json) {
  Cell cell;
  cell.name = json.at("name").as_string();
  cell.area = json.at("area").as_double();
  cell.leakage_power = json.at("leakage_power").as_double();
  cell.is_sequential = json.at("is_sequential").as_bool();
  cell.next_state = json.at("next_state").as_string();
  cell.clocked_on = json.at("clocked_on").as_string();

  for (const Json& p : json.at("pins").elements()) {
    Pin pin;
    pin.name = p.at("name").as_string();
    pin.is_output = p.at("is_output").as_bool();
    pin.capacitance = p.at("capacitance").as_double();
    pin.function = p.at("function").as_string();
    cell.pins.push_back(std::move(pin));
  }

  for (const Json& a : json.at("arcs").elements()) {
    TimingArc arc;
    arc.related_pin = a.at("related_pin").as_string();
    arc.sense = sense_from_name(a.at("sense").as_string());
    arc.cell_rise = nldm_from_json(a.at("cell_rise"));
    arc.cell_fall = nldm_from_json(a.at("cell_fall"));
    arc.rise_transition = nldm_from_json(a.at("rise_transition"));
    arc.fall_transition = nldm_from_json(a.at("fall_transition"));
    cell.arcs.push_back(std::move(arc));
  }

  for (const Json& a : json.at("power_arcs").elements()) {
    PowerArc arc;
    arc.related_pin = a.at("related_pin").as_string();
    arc.rise_power = nldm_from_json(a.at("rise_power"));
    arc.fall_power = nldm_from_json(a.at("fall_power"));
    cell.power_arcs.push_back(std::move(arc));
  }
  return cell;
}

std::uint64_t fingerprint(const Library& library) {
  util::Fnv1a hash;
  hash.str(library.name);
  hash.f64(library.temperature_k);
  hash.f64(library.voltage);
  hash.u64(library.cells.size());
  for (const Cell& cell : library.cells) {
    hash.str(cell.name);
    hash.f64(cell.area);
    hash.f64(cell.leakage_power);
    hash.u64(cell.is_sequential ? 1 : 0);
    hash.str(cell.next_state);
    hash.str(cell.clocked_on);
    hash.u64(cell.pins.size());
    for (const Pin& pin : cell.pins) {
      hash.str(pin.name);
      hash.u64(pin.is_output ? 1 : 0);
      hash.f64(pin.capacitance);
      hash.str(pin.function);
    }
    hash.u64(cell.arcs.size());
    for (const TimingArc& arc : cell.arcs) {
      hash.str(arc.related_pin);
      hash.u64(static_cast<std::uint64_t>(arc.sense));
      hash_table(hash, arc.cell_rise);
      hash_table(hash, arc.cell_fall);
      hash_table(hash, arc.rise_transition);
      hash_table(hash, arc.fall_transition);
    }
    hash.u64(cell.power_arcs.size());
    for (const PowerArc& arc : cell.power_arcs) {
      hash.str(arc.related_pin);
      hash_table(hash, arc.rise_power);
      hash_table(hash, arc.fall_power);
    }
  }
  return hash.value();
}

}  // namespace cryo::liberty
