file(REMOVE_RECURSE
  "CMakeFiles/cryo_map.dir/mapper.cpp.o"
  "CMakeFiles/cryo_map.dir/mapper.cpp.o.d"
  "CMakeFiles/cryo_map.dir/matcher.cpp.o"
  "CMakeFiles/cryo_map.dir/matcher.cpp.o.d"
  "CMakeFiles/cryo_map.dir/netlist.cpp.o"
  "CMakeFiles/cryo_map.dir/netlist.cpp.o.d"
  "CMakeFiles/cryo_map.dir/verilog.cpp.o"
  "CMakeFiles/cryo_map.dir/verilog.cpp.o.d"
  "libcryo_map.a"
  "libcryo_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
