#include <gtest/gtest.h>

#include <cmath>

#include "device/calibration.hpp"
#include "device/finfet.hpp"
#include "device/measurement.hpp"
#include "device/physics.hpp"

namespace {

using namespace cryo::device;

TEST(Physics, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
  EXPECT_THROW(thermal_voltage(0.0), std::invalid_argument);
}

TEST(Physics, EffectiveThermalVoltageSaturatesAtBandTail) {
  const double wt = 5.5e-3;
  // At room temperature: Boltzmann-dominated.
  EXPECT_NEAR(effective_thermal_voltage(300.0, wt), thermal_voltage(300.0),
              1e-3);
  // Deep cryogenic: saturates at Wt, never below.
  EXPECT_NEAR(effective_thermal_voltage(4.0, wt), wt, 1e-5);
  EXPECT_GE(effective_thermal_voltage(10.0, wt), wt);
}

TEST(Physics, EffectiveThermalVoltageMonotonicInTemperature) {
  double prev = 0.0;
  for (double t = 4.0; t <= 300.0; t += 4.0) {
    const double v = effective_thermal_voltage(t, 5e-3);
    EXPECT_GT(v, prev * 0.999);
    prev = v;
  }
}

TEST(Physics, SubthresholdSlopeFollowsPaperTrends) {
  // ~65-70 mV/dec at 300 K, floors near ~14-16 mV/dec at 10 K (not the
  // unphysical Boltzmann 2 mV/dec).
  const double ss300 = subthreshold_slope(300.0, 1.12, 5.5e-3);
  const double ss10 = subthreshold_slope(10.0, 1.12, 5.5e-3);
  EXPECT_NEAR(ss300 * 1e3, 67.0, 3.0);
  EXPECT_NEAR(ss10 * 1e3, 14.0, 2.0);
  // Without band tails it would collapse to the Boltzmann limit:
  EXPECT_LT(subthreshold_slope(10.0, 1.12, 0.0) * 1e3, 3.0);
}

TEST(Physics, MobilityImprovesAndSaturates) {
  const double m300 = mobility_factor(300.0, 0.5857);
  const double m77 = mobility_factor(77.0, 0.5857);
  const double m10 = mobility_factor(10.0, 0.5857);
  const double m4 = mobility_factor(4.0, 0.5857);
  EXPECT_GT(m77, m300);
  EXPECT_GT(m10, m77);
  // Saturation: 10 K -> 4 K gains little.
  EXPECT_NEAR(m4 / m10, 1.0, 0.01);
  // Paper ref [9]: ~58 % improvement at deep cryo.
  EXPECT_NEAR(m10 / m300, 1.58, 0.03);
}

TEST(Physics, VthShiftPositiveAtCryo) {
  EXPECT_NEAR(vth_shift(300.0, 0.45e-3, 0.35), 0.0, 1e-12);
  const double shift10 = vth_shift(10.0, 0.45e-3, 0.35);
  EXPECT_GT(shift10, 0.08);
  EXPECT_LT(shift10, 0.20);
}

class FinFetModelTrends : public ::testing::TestWithParam<Polarity> {};

TEST_P(FinFetModelTrends, IonRoughlyTemperatureIndependent) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  const FinFetModel warm{params, 300.0};
  const FinFetModel cold{params, 10.0};
  const double ratio = cold.ion(0.7) / warm.ion(0.7);
  // Paper: "ON current remains almost the same" (Fig. 1b,c).
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.30);
}

TEST_P(FinFetModelTrends, LeakageCollapsesAtCryo) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  const FinFetModel warm{params, 300.0};
  const FinFetModel cold{params, 10.0};
  const double ratio = cold.ioff(0.7) / warm.ioff(0.7);
  // Several orders of magnitude down (paper: "100x or more").
  EXPECT_LT(ratio, 1e-3);
  EXPECT_GT(cold.ioff(0.7), 0.0);  // floor keeps it physical
}

TEST_P(FinFetModelTrends, MonotonicInVgs) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  for (const double temp : {300.0, 77.0, 10.0}) {
    const FinFetModel model{params, temp};
    double prev = -1.0;
    for (double vgs = 0.0; vgs <= 0.9; vgs += 0.01) {
      const double i = model.ids(vgs, 0.7);
      // Non-decreasing: deep subthreshold at 10 K sits on the constant
      // leakage floor, so equality is allowed there.
      EXPECT_GE(i, prev) << "vgs=" << vgs << " T=" << temp;
      prev = i;
    }
  }
}

TEST_P(FinFetModelTrends, MonotonicInVds) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  for (const double temp : {300.0, 10.0}) {
    const FinFetModel model{params, temp};
    double prev = -1.0;
    for (double vds = 0.0; vds <= 0.9; vds += 0.01) {
      const double i = model.ids(0.7, vds);
      EXPECT_GE(i, prev) << "vds=" << vds;
      prev = i;
    }
  }
}

TEST_P(FinFetModelTrends, DerivativesMatchFiniteDifferences) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  const FinFetModel model{params, 77.0};
  const double h = 1e-6;
  for (double vgs : {0.1, 0.3, 0.5, 0.7}) {
    for (double vds : {0.05, 0.35, 0.7}) {
      const auto op = model.evaluate(vgs, vds);
      const double gm_fd =
          (model.ids(vgs + h, vds) - model.ids(vgs - h, vds)) / (2 * h);
      const double gds_fd =
          (model.ids(vgs, vds + h) - model.ids(vgs, vds - h)) / (2 * h);
      EXPECT_NEAR(op.gm, gm_fd, std::max(1e-9, std::fabs(gm_fd) * 1e-4));
      EXPECT_NEAR(op.gds, gds_fd, std::max(1e-9, std::fabs(gds_fd) * 1e-4));
    }
  }
}

TEST_P(FinFetModelTrends, NfinsScalesLinearly) {
  const auto params = GetParam() == Polarity::kN ? nominal_nfet_5nm()
                                                 : nominal_pfet_5nm();
  const FinFetModel model{params, 300.0};
  EXPECT_NEAR(model.ids(0.7, 0.7, 4), 4.0 * model.ids(0.7, 0.7, 1), 1e-12);
  EXPECT_NEAR(model.cgg(3), 3.0 * model.cgg(1), 1e-24);
}

INSTANTIATE_TEST_SUITE_P(BothPolarities, FinFetModelTrends,
                         ::testing::Values(Polarity::kN, Polarity::kP));

TEST(FinFetModel, VthIncreasesMonotonicallyAsTemperatureDrops) {
  const auto params = nominal_nfet_5nm();
  double prev = 0.0;
  for (double t : {300.0, 200.0, 100.0, 50.0, 10.0}) {
    const FinFetModel model{params, t};
    EXPECT_GT(model.vth(), prev) << "T=" << t;
    prev = model.vth();
  }
}

TEST(FinFetModel, ConstantCurrentVthExtractionTracksModelVth) {
  const auto params = nominal_nfet_5nm();
  const FinFetModel model{params, 300.0};
  const double vth = model.extract_vth_constant_current(0.05, 1e-7);
  EXPECT_NEAR(vth, model.vth(), 0.1);
}

TEST(FinFetModel, GateCapacitanceShrinksSlightlyAtCryo) {
  const auto params = nominal_nfet_5nm();
  const FinFetModel warm{params, 300.0};
  const FinFetModel cold{params, 10.0};
  const double ratio = cold.cgg() / warm.cgg();
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.9);
}

TEST(FinFetModel, RejectsBadTemperature) {
  EXPECT_THROW((FinFetModel{nominal_nfet_5nm(), -5.0}), std::invalid_argument);
  EXPECT_THROW((FinFetModel{nominal_nfet_5nm(), 600.0}), std::invalid_argument);
}

TEST(Measurement, CampaignCoversPlan) {
  const ReferenceDevice device{Polarity::kN};
  MeasurementPlan plan;
  plan.vgs_steps = 11;
  const auto set = device.measure(plan);
  EXPECT_EQ(set.points.size(),
            plan.temperatures_k.size() * plan.vds_values.size() * 11);
  EXPECT_EQ(set.nfins, plan.nfins);
}

TEST(Measurement, NoiseIsSmallRelativeToSignal) {
  const ReferenceDevice device{Polarity::kN};
  MeasurementPlan plan;
  plan.relative_noise = 0.01;
  const auto set = device.measure(plan);
  const FinFetModel truth{device.true_params(), 300.0};
  for (const auto& pt : set.points) {
    if (pt.temperature_k != 300.0 || pt.ids < 1e-6) {
      continue;
    }
    const double ideal = truth.ids(pt.vgs, pt.vds, set.nfins);
    EXPECT_NEAR(pt.ids / ideal, 1.0, 0.06);
  }
}

TEST(Calibration, RecoversReferenceDevice) {
  const ReferenceDevice device{Polarity::kN};
  const auto set = device.measure(MeasurementPlan{});
  const auto result = calibrate(set, nominal_nfet_5nm(), 4000);
  // Fit quality: better than a tenth of a decade RMS.
  EXPECT_LT(result.rms_log_error, 0.1);
  // Extracted parameters land near the hidden truth.
  EXPECT_NEAR(result.params.vth300, device.true_params().vth300, 0.03);
  EXPECT_NEAR(result.params.band_tail_v / device.true_params().band_tail_v,
              1.0, 0.3);
}

TEST(Calibration, CurveErrorsCoverEveryCondition) {
  const ReferenceDevice device{Polarity::kP};
  MeasurementPlan plan;
  const auto set = device.measure(plan);
  const auto errors = curve_errors(nominal_pfet_5nm(), set);
  EXPECT_EQ(errors.size(),
            plan.temperatures_k.size() * plan.vds_values.size());
}

TEST(Calibration, EmptySetThrows) {
  EXPECT_THROW(calibrate(MeasurementSet{}, nominal_nfet_5nm()),
               std::invalid_argument);
}

}  // namespace
